//! Quickstart: build a Full Ruche network, push synthetic traffic through
//! it, and compare it with 2-D mesh and folded torus.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ruche::noc::prelude::*;
use ruche::traffic::{run, Pattern, Testbench};

fn main() {
    let dims = Dims::new(8, 8);

    // 1. One packet, corner to corner, on a Ruche-2 network.
    let cfg = NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated);
    let mut net = Network::new(cfg.clone()).expect("valid configuration");
    let (src, dst) = (Coord::new(0, 0), Coord::new(7, 7));
    net.enqueue(
        net.tile_endpoint(src),
        ruche::noc::packet::Flit::single(src, Dest::tile(dst), 0, 0),
    );
    while net.snapshot().ejected == 0 {
        net.step();
    }
    println!(
        "corner-to-corner on {}: {} cycles ({} router hops)",
        cfg.label(),
        net.cycle(),
        route_hops(&cfg, src, dst)
    );

    // 2. Uniform-random load sweep: who saturates first?
    println!("\nuniform random @ 8x8 (offered 0.25 packets/tile/cycle):");
    for cfg in [
        NetworkConfig::mesh(dims),
        NetworkConfig::torus(dims),
        NetworkConfig::ruche_one(dims),
        NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated),
        NetworkConfig::full_ruche(dims, 3, CrossbarScheme::FullyPopulated),
    ] {
        let tb = Testbench::builder(Pattern::UniformRandom, 0.25)
            .quick()
            .build()
            .expect("testbench is valid");
        let res = run(&cfg, &tb).expect("pattern fits");
        println!(
            "  {:14} accepted {:.3}  avg latency {:>7.1}{}",
            cfg.label(),
            res.accepted,
            res.avg_latency,
            if res.saturated { "  (saturated)" } else { "" }
        );
    }
}
