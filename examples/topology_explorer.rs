//! Topology explorer: sweep the Ruche Factor and crossbar scheme on a
//! network size of your choosing and report the full cost/performance
//! picture — saturation throughput, zero-load latency, router area, cycle
//! time, and per-packet energy.
//!
//! ```sh
//! cargo run --release --example topology_explorer -- 16 16
//! ```

use ruche::noc::prelude::*;
use ruche::phys::{min_cycle_time_fo4, router_area, EnergyModel, RouterParams, Tech};
use ruche::stats::{fmt_f, Table};
use ruche::traffic::{saturation_throughput, zero_load_latency, Pattern};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cols: u16 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let rows: u16 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let dims = Dims::new(cols, rows);
    let tech = Tech::n12();

    let mut configs = vec![
        NetworkConfig::mesh(dims),
        NetworkConfig::multi_mesh(dims),
        NetworkConfig::torus(dims),
        NetworkConfig::ruche_one(dims),
    ];
    for rf in 2..=3u16 {
        if rf < cols && rf < rows {
            configs.push(NetworkConfig::full_ruche(
                dims,
                rf,
                CrossbarScheme::Depopulated,
            ));
            configs.push(NetworkConfig::full_ruche(
                dims,
                rf,
                CrossbarScheme::FullyPopulated,
            ));
        }
    }

    println!("design space at {dims} (uniform random, 128-bit channels):\n");
    let mut t = Table::new(vec![
        "config",
        "sat thpt",
        "zero-load",
        "area um2",
        "min FO4",
        "pJ/hop (E)",
        "bisectionBW",
    ]);
    for cfg in configs {
        let p = RouterParams::of(&cfg);
        let energy = EnergyModel::new(&cfg, tech);
        t.row(vec![
            cfg.label(),
            fmt_f(saturation_throughput(&cfg, Pattern::UniformRandom, 1), 3),
            fmt_f(zero_load_latency(&cfg, Pattern::UniformRandom, 1), 1),
            fmt_f(router_area(&p, &tech).total(), 0),
            fmt_f(min_cycle_time_fo4(&p, &tech), 1),
            fmt_f(energy.hop_energy_pj(Dir::E), 2),
            cfg.horizontal_bisection_channels().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("reading guide: Ruche trades a modest area/energy premium over mesh for");
    println!("torus-beating throughput without the torus VC-router cycle-time penalty.");
}
