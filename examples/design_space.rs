//! Bandwidth-oriented design-space walk in the spirit of the paper's
//! §4.5/Table 4 guidance: pick a compute-to-memory ratio, then choose the
//! array aspect ratio and Ruche Factor so the horizontal bisection
//! bandwidth covers the memory-tile bandwidth.
//!
//! ```sh
//! cargo run --release --example design_space -- 512
//! ```
//! (argument: total compute tiles; default 256)

use ruche::noc::prelude::*;
use ruche::phys::{tile_area_increase, Tech};
use ruche::stats::{fmt_f, Table};

fn main() {
    let tiles: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let tech = Tech::n12();

    println!("arrays of ~{tiles} compute tiles, memory on north/south edges\n");
    let mut t = Table::new(vec![
        "array",
        "aspect",
        "rf",
        "bisection",
        "memBW",
        "covered",
        "compute:mem",
        "tile area",
    ]);
    // Candidate factorizations near the requested tile count.
    let mut shapes: Vec<(u16, u16)> = Vec::new();
    for rows in [4u16, 8, 16, 32] {
        let cols = (tiles / rows as u32).max(2) as u16;
        if cols >= rows && cols as u32 * rows as u32 >= tiles / 2 {
            shapes.push((cols, rows));
        }
    }
    for (cols, rows) in shapes {
        let dims = Dims::new(cols, rows);
        for rf in 0..=4u16 {
            let cfg = if rf == 0 {
                NetworkConfig::mesh(dims)
            } else {
                NetworkConfig::half_ruche(dims, rf, CrossbarScheme::Depopulated)
            };
            if cfg.validate().is_err() {
                continue;
            }
            let bisect = cfg.horizontal_bisection_channels();
            let mem = cfg.memory_tile_bandwidth();
            let ratio = (dims.count() as u32) as f64 / mem as f64;
            t.row(vec![
                format!("{dims}"),
                format!("{}:1", cols / rows.max(1)),
                if rf == 0 { "-".into() } else { rf.to_string() },
                bisect.to_string(),
                mem.to_string(),
                if bisect >= mem { "yes" } else { "no" }.to_string(),
                format!("{}:1", ratio as u32),
                format!("{}x", fmt_f(tile_area_increase(&cfg, &tech), 3)),
            ]);
        }
    }
    println!("{}", t.render());
    println!("rule of thumb (§4.5): pick compute:memory from the application, then the");
    println!("cheapest (aspect, RF) whose bisection covers the memory-tile bandwidth.");
}
