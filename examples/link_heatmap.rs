//! Link-utilization heatmap: run uniform random traffic, then render each
//! router's horizontal-channel utilization as an ASCII grid. The mesh
//! shows the classic bright band at the vertical mid-cut (the bisection
//! bottleneck); the Ruche network spreads the same traffic across its
//! long-range channels.
//!
//! ```sh
//! cargo run --release --example link_heatmap -- 16 16 0.25
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ruche::noc::packet::Flit;
use ruche::noc::prelude::*;
use ruche::stats::Heatmap;

fn utilization_grid(cfg: NetworkConfig, rate: f64, cycles: u64) -> (Vec<f64>, String) {
    let dims = cfg.dims;
    let label = cfg.label();
    let mut net = Network::new(cfg).expect("valid configuration");
    let mut rng = SmallRng::seed_from_u64(7);
    let mut id = 0;
    for cycle in 0..cycles {
        for c in dims.iter() {
            if rng.gen_bool(rate) {
                let d = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
                if d != c {
                    net.enqueue(
                        net.tile_endpoint(c),
                        Flit::single(c, Dest::tile(d), id, cycle),
                    );
                    id += 1;
                }
            }
        }
        net.step();
    }
    // Per-router flits forwarded on X-axis channels (local + Ruche), as a
    // fraction of cycles.
    let mut grid = vec![0.0f64; dims.count()];
    for (node, dir, count) in net.link_loads().iter() {
        if dir.axis() == Some(Axis::X) {
            grid[node] += count as f64 / cycles as f64;
        }
    }
    (grid, label)
}

fn render(dims: Dims, grid: &[f64], label: &str) {
    let title = format!("\n{label}: X-channel utilization per router, flits/cycle");
    let map = Heatmap::new(
        &title,
        dims.cols as usize,
        dims.rows as usize,
        grid.to_vec(),
    )
    .expect("grid matches dims");
    print!("{}", map.render());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cols: u16 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let rows: u16 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let rate: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.2);
    let dims = Dims::new(cols, rows);
    let cycles = 3_000;

    println!("uniform random at {rate} packets/tile/cycle for {cycles} cycles");
    for cfg in [
        NetworkConfig::mesh(dims),
        NetworkConfig::full_ruche(dims, 3, CrossbarScheme::Depopulated),
    ] {
        let (grid, label) = utilization_grid(cfg, rate, cycles);
        render(dims, &grid, &label);
    }
    println!("\nreading guide: the mesh's bright mid-column band is the saturated");
    println!("bisection; the Ruche network moves that traffic onto RE/RW channels,");
    println!("flattening the hotspot — the paper's 'unused wiring resources' at work.");
}
