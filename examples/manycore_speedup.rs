//! Run a parallel workload on the execution-driven manycore and compare
//! mesh against Half Ruche and half-torus, reporting runtime, remote-load
//! latency split, and the energy breakdown — a miniature of the paper's
//! Figures 10, 12, and 13.
//!
//! ```sh
//! cargo run --release --example manycore_speedup -- bfs
//! ```
//! (workloads: jacobi, sgemm, fft, bh, bfs, pr, spgemm)

use ruche::manycore::prelude::*;
use ruche::noc::prelude::*;
use ruche::stats::{fmt_f, Table};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "fft".into());
    let (bench, ds) = match which.as_str() {
        "jacobi" => (Benchmark::Jacobi, DatasetId::Default),
        "sgemm" => (Benchmark::Sgemm, DatasetId::Default),
        "fft" => (Benchmark::Fft, DatasetId::Fft16K),
        "bh" => (Benchmark::BarnesHut, DatasetId::Bh16K),
        "bfs" => (Benchmark::Bfs, DatasetId::Graph(GraphId::Pk)),
        "pr" => (Benchmark::PageRank, DatasetId::Graph(GraphId::Os)),
        "spgemm" => (Benchmark::SpGemm, DatasetId::Graph(GraphId::Ca)),
        other => {
            eprintln!("unknown workload '{other}'");
            std::process::exit(2);
        }
    };

    let dims = Dims::new(16, 8);
    let workload = Workload::build(bench, ds, dims);
    println!(
        "workload {} on a {dims} manycore ({} ops across {} tiles)\n",
        workload.name,
        workload.total_ops(),
        dims.count()
    );

    let configs = [
        NetworkConfig::mesh(dims),
        NetworkConfig::half_torus(dims),
        NetworkConfig::half_ruche(dims, 2, CrossbarScheme::Depopulated),
        NetworkConfig::half_ruche(dims, 3, CrossbarScheme::FullyPopulated),
    ];
    let mut t = Table::new(vec![
        "network",
        "cycles",
        "speedup",
        "load lat (intr+cong)",
        "NoC energy (uJ)",
        "total energy (uJ)",
    ]);
    let mut base = None;
    for cfg in configs {
        let r = run(&SystemConfig::new(cfg), &workload).expect("run completes");
        let base_cycles = *base.get_or_insert(r.cycles);
        t.row(vec![
            r.label.clone(),
            r.cycles.to_string(),
            format!("{}x", fmt_f(base_cycles as f64 / r.cycles as f64, 2)),
            format!(
                "{} + {}",
                fmt_f(r.load_latency.intrinsic.mean(), 1),
                fmt_f(r.load_latency.congestion.mean(), 1)
            ),
            fmt_f((r.energy.router_pj + r.energy.wire_pj) / 1e6, 1),
            fmt_f(r.energy.total_pj() / 1e6, 1),
        ]);
    }
    println!("{}", t.render());
}
