//! Turns batch files into protocol lines.
//!
//! Three input shapes are accepted, all normalised to one compact JSON
//! line per request (the protocol is line-framed):
//!
//! * **JSONL** — one request object per line, the protocol's native form.
//! * **One whole-file JSON object** — pretty-printed batches; field
//!   order and whitespace are free because cache keys derive from the
//!   canonical re-rendering, not the file bytes.
//! * **A bare array of sweep requests** — wrapped into `{"jobs":[...]}`.
//!
//! Lines that do not parse are forwarded untouched so the daemon's
//! structured `request` error comes back through the normal protocol
//! path instead of being swallowed client-side.

use ruche_telemetry::json::{parse, Json};
use std::io::{self, Read};
use std::path::Path;

/// Reads a batch file (or stdin when `file` is `None`) and returns the
/// protocol lines to send.
///
/// # Errors
///
/// An [`io::Error`] if the file or stdin cannot be read.
pub fn request_lines(file: Option<&Path>) -> io::Result<Vec<String>> {
    let text = match file {
        Some(path) => std::fs::read_to_string(path)?,
        None => {
            let mut buf = String::new();
            io::stdin().read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(lines_from(&text))
}

/// The pure core of [`request_lines`]: normalises raw batch text into
/// protocol lines.
pub fn lines_from(text: &str) -> Vec<String> {
    // A single JSON value spanning the whole input (the parser rejects
    // trailing content, so multi-line JSONL cannot be mistaken for one).
    if let Ok(v) = parse(text) {
        return vec![compact(v)];
    }
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|l| match parse(l) {
            Ok(v) => compact(v),
            Err(_) => l.to_string(),
        })
        .collect()
}

/// Is this line a batch (streams many response lines) rather than a
/// single-response command? Unparseable lines count as batches: the
/// daemon answers them with one top-level error, which the batch reader
/// treats as a terminator.
pub fn is_batch(line: &str) -> bool {
    match parse(line) {
        Ok(v) => v.get("cmd").is_none(),
        Err(_) => true,
    }
}

fn compact(v: Json) -> String {
    match v {
        Json::Arr(jobs) => Json::Obj(vec![("jobs".into(), Json::Arr(jobs))]).render(),
        other => other.render(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_file_json_collapses_to_one_line() {
        let lines = lines_from("{\n  \"jobs\": [\n    {\"key_version\": 1}\n  ]\n}\n");
        assert_eq!(lines, vec![r#"{"jobs":[{"key_version":1}]}"#.to_string()]);
    }

    #[test]
    fn bare_arrays_become_a_batch() {
        let lines = lines_from("[\n  {\"key_version\": 1}\n]");
        assert_eq!(lines, vec![r#"{"jobs":[{"key_version":1}]}"#.to_string()]);
    }

    #[test]
    fn jsonl_keeps_one_line_per_request() {
        let lines = lines_from("{\"cmd\":\"ping\"}\n\n{ \"cmd\" : \"metrics\" }\nnot json\n");
        assert_eq!(
            lines,
            vec![
                r#"{"cmd":"ping"}"#.to_string(),
                r#"{"cmd":"metrics"}"#.to_string(),
                "not json".to_string(),
            ]
        );
    }

    #[test]
    fn batches_and_commands_are_told_apart() {
        assert!(is_batch(r#"{"jobs":[]}"#));
        assert!(is_batch("utter garbage"));
        assert!(!is_batch(r#"{"cmd":"ping"}"#));
        assert!(!is_batch(r#"{"cmd":"shutdown"}"#));
    }
}
