//! Option parsing for the `serve`, `submit`, and `eval` subcommands.
//!
//! The same flat `--flag value` style as the simulator CLI. Engine
//! flags (`--threads`, `--step-threads`, `--step-mode`, `--no-cache`)
//! are shared between `serve` and `eval` so the offline path can be
//! configured identically to the daemon it is diffed against.

use ruche_noc::topology::StepMode;
use ruche_service::Bind;
use std::path::PathBuf;

/// Default TCP address for `serve` and `submit` when neither `--bind`
/// nor `--unix` is given.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7641";

/// Prints subcommand usage to stderr; returns the exit code to use.
pub fn usage() -> i32 {
    eprintln!(
        "usage: ruche-sim serve  [--bind ADDR | --unix PATH] [--threads N] \
         [--step-threads N] [--step-mode cycle|event|auto] [--no-cache]\n\
         \x20      ruche-sim submit [--bind ADDR | --unix PATH] [--file PATH] [--shutdown]\n\
         \x20      ruche-sim eval   [--file PATH] [--threads N] [--step-threads N] \
         [--step-mode cycle|event|auto] [--no-cache]\n\
         \n\
         submit/eval read protocol lines from --file (or stdin): a JSON object\n\
         per line, one whole-file JSON object, or a bare array of sweep requests\n\
         (wrapped into a single batch)."
    );
    2
}

/// Engine construction flags shared by `serve` and `eval`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineOpts {
    /// Sweep pool width (`--threads`, default: all available cores).
    pub threads: usize,
    /// `Network::step` worker threads per simulation (`--step-threads`,
    /// 0 = leave the runner's default).
    pub step_threads: usize,
    /// Stepping mode override (`--step-mode`).
    pub step_mode: Option<StepMode>,
    /// Whether to back the engine with the on-disk result store
    /// (disabled by `--no-cache`).
    pub cache: bool,
}

impl Default for EngineOpts {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            step_threads: 0,
            step_mode: None,
            cache: true,
        }
    }
}

impl EngineOpts {
    /// Consumes `flag` (pulling values from `it`) if it is an engine
    /// flag; returns whether it was.
    fn accept<'a>(
        &mut self,
        flag: &str,
        it: &mut impl Iterator<Item = &'a String>,
    ) -> Result<bool, String> {
        match flag {
            "--threads" => self.threads = parse_count(value(it, flag)?, flag)?.max(1),
            "--step-threads" => self.step_threads = parse_count(value(it, flag)?, flag)?,
            "--step-mode" => self.step_mode = Some(parse_step_mode(value(it, flag)?)?),
            "--no-cache" => self.cache = false,
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Options for `ruche-sim serve`.
#[derive(Debug)]
pub struct ServeOpts {
    /// Where to listen.
    pub bind: Bind,
    /// Engine construction flags.
    pub engine: EngineOpts,
}

impl ServeOpts {
    /// Parses `serve` arguments, exiting with usage on error.
    pub fn parse(argv: &[String]) -> Self {
        unwrap_or_usage(Self::try_parse(argv))
    }

    fn try_parse(argv: &[String]) -> Result<Self, String> {
        let mut bind = Bind::tcp(DEFAULT_ADDR);
        let mut engine = EngineOpts::default();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--bind" => bind = Bind::tcp(value(&mut it, flag)?),
                "--unix" => bind = Bind::unix(value(&mut it, flag)?),
                other => {
                    if !engine.accept(other, &mut it)? {
                        return Err(format!("unknown serve flag {other:?}"));
                    }
                }
            }
        }
        Ok(Self { bind, engine })
    }
}

/// Options for `ruche-sim submit`.
#[derive(Debug)]
pub struct ClientOpts {
    /// Daemon to talk to.
    pub bind: Bind,
    /// Batch file (`--file`; stdin when absent).
    pub file: Option<PathBuf>,
    /// Send `{"cmd":"shutdown"}` after the batch (`--shutdown`).
    pub shutdown: bool,
}

impl ClientOpts {
    /// Parses `submit` arguments, exiting with usage on error.
    pub fn parse(argv: &[String]) -> Self {
        unwrap_or_usage(Self::try_parse(argv))
    }

    fn try_parse(argv: &[String]) -> Result<Self, String> {
        let mut bind = Bind::tcp(DEFAULT_ADDR);
        let mut file = None;
        let mut shutdown = false;
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--bind" => bind = Bind::tcp(value(&mut it, flag)?),
                "--unix" => bind = Bind::unix(value(&mut it, flag)?),
                "--file" => file = Some(PathBuf::from(value(&mut it, flag)?)),
                "--shutdown" => shutdown = true,
                other => return Err(format!("unknown submit flag {other:?}")),
            }
        }
        Ok(Self {
            bind,
            file,
            shutdown,
        })
    }
}

/// Options for `ruche-sim eval`.
#[derive(Debug)]
pub struct EvalOpts {
    /// Batch file (`--file`; stdin when absent).
    pub file: Option<PathBuf>,
    /// Engine construction flags.
    pub engine: EngineOpts,
}

impl EvalOpts {
    /// Parses `eval` arguments, exiting with usage on error.
    pub fn parse(argv: &[String]) -> Self {
        unwrap_or_usage(Self::try_parse(argv))
    }

    fn try_parse(argv: &[String]) -> Result<Self, String> {
        let mut file = None;
        let mut engine = EngineOpts::default();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--file" => file = Some(PathBuf::from(value(&mut it, flag)?)),
                other => {
                    if !engine.accept(other, &mut it)? {
                        return Err(format!("unknown eval flag {other:?}"));
                    }
                }
            }
        }
        Ok(Self { file, engine })
    }
}

fn unwrap_or_usage<T>(r: Result<T, String>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("ruche-sim: {e}");
            std::process::exit(usage());
        }
    }
}

fn value<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<&'a str, String> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_count(s: &str, flag: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("{flag} needs an unsigned integer, got {s:?}"))
}

fn parse_step_mode(s: &str) -> Result<StepMode, String> {
    match s {
        "cycle" => Ok(StepMode::CycleAccurate),
        "event" => Ok(StepMode::EventDriven),
        "auto" => Ok(StepMode::Auto),
        other => Err(format!(
            "unknown step mode {other:?}; expected cycle, event, or auto"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn serve_flags_parse() {
        let o = ServeOpts::try_parse(&args(&[
            "--bind",
            "0.0.0.0:9000",
            "--threads",
            "3",
            "--step-threads",
            "2",
            "--step-mode",
            "event",
            "--no-cache",
        ]))
        .expect("parses");
        assert_eq!(o.engine.threads, 3);
        assert_eq!(o.engine.step_threads, 2);
        assert_eq!(o.engine.step_mode, Some(StepMode::EventDriven));
        assert!(!o.engine.cache);
    }

    #[test]
    fn defaults_use_the_cache_and_all_cores() {
        let o = ServeOpts::try_parse(&[]).expect("parses");
        assert!(o.engine.cache);
        assert!(o.engine.threads >= 1);
        assert_eq!(o.engine.step_threads, 0);
        assert_eq!(o.engine.step_mode, None);
    }

    #[test]
    fn bad_flags_are_reported_not_ignored() {
        assert!(ServeOpts::try_parse(&args(&["--step-mode", "warp"]))
            .unwrap_err()
            .contains("warp"));
        assert!(ServeOpts::try_parse(&args(&["--threads"]))
            .unwrap_err()
            .contains("--threads"));
        assert!(ClientOpts::try_parse(&args(&["--frobnicate"]))
            .unwrap_err()
            .contains("--frobnicate"));
        assert!(EvalOpts::try_parse(&args(&["--bind", "x"])).is_err());
    }

    #[test]
    fn submit_collects_file_and_shutdown() {
        let o =
            ClientOpts::try_parse(&args(&["--file", "batch.json", "--shutdown"])).expect("parses");
        assert_eq!(o.file.as_deref(), Some(std::path::Path::new("batch.json")));
        assert!(o.shutdown);
    }
}
