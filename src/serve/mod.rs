//! The `ruche-sim` service subcommands: `serve`, `submit`, and `eval`.
//!
//! * `ruche-sim serve` boots the long-lived sweep daemon
//!   (`ruche-service`) on a TCP or Unix socket, backed by the shared
//!   result store under `results/sweep_store/`.
//! * `ruche-sim submit` sends a batch file to a running daemon and
//!   prints the streamed response lines.
//! * `ruche-sim eval` answers the same batch file offline — through the
//!   very same [`ruche_service::respond`] seam the daemon uses — so its
//!   output is byte-identical to what `submit` receives. CI diffs the
//!   two (`service-smoke`).
//!
//! The module tree mirrors the split: [`opts`] parses the subcommand
//! options, [`batch`] turns batch files (pretty-printed JSON, JSONL, or
//! a bare request array) into protocol lines, and this module dispatches.

pub mod batch;
pub mod opts;

use ruche_bench::out::results_dir;
use ruche_bench::ResultStore;
use ruche_service::{respond, Client, Engine, Server};
use std::io::Write;
use std::sync::Arc;

/// Runs a service subcommand (`argv` excludes the subcommand word).
/// Returns the process exit code.
pub fn dispatch(cmd: &str, argv: &[String]) -> i32 {
    match cmd {
        "serve" => serve(argv),
        "submit" => submit(argv),
        "eval" => eval(argv),
        _ => {
            eprintln!("unknown service subcommand: {cmd}");
            opts::usage()
        }
    }
}

/// Builds the engine a daemon or offline evaluation runs on.
fn build_engine(o: &opts::EngineOpts) -> Engine {
    let mut engine = Engine::new(o.threads);
    if o.step_threads > 0 {
        engine = engine.with_step_threads(o.step_threads);
    }
    if let Some(mode) = o.step_mode {
        engine = engine.with_step_mode(mode);
    }
    if o.cache {
        let store = ResultStore::open_default();
        store.migrate_legacy_tsv(&results_dir().join("sweep_cache.tsv"));
        engine = engine.with_store(Arc::new(store));
    }
    engine
}

/// `ruche-sim serve`: run the daemon until a `{"cmd":"shutdown"}`
/// request (or a fatal accept error).
fn serve(argv: &[String]) -> i32 {
    let o = opts::ServeOpts::parse(argv);
    let server = match Server::bind(&o.bind, build_engine(&o.engine)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ruche-sim serve: cannot bind: {e}");
            return 1;
        }
    };
    // Stderr, so stdout stays free for embedding scripts that parse it.
    eprintln!("ruche-sim serve: listening on {}", server.addr());
    match server.run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("ruche-sim serve: accept loop failed: {e}");
            1
        }
    }
}

/// `ruche-sim submit`: send each request line to a running daemon and
/// print every response line.
fn submit(argv: &[String]) -> i32 {
    let o = opts::ClientOpts::parse(argv);
    let lines = match batch::request_lines(o.file.as_deref()) {
        Ok(lines) => lines,
        Err(e) => {
            eprintln!("ruche-sim submit: cannot read batch: {e}");
            return 1;
        }
    };
    let mut client = match Client::connect(&o.bind) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ruche-sim submit: cannot connect: {e}");
            return 1;
        }
    };
    let stdout = std::io::stdout();
    for line in &lines {
        let result = if batch::is_batch(line) {
            client.submit(line).map(|resp| {
                let mut out = stdout.lock();
                for l in &resp {
                    let _ = writeln!(out, "{l}");
                }
            })
        } else {
            client.send(line).and_then(|()| client.recv()).map(|resp| {
                let _ = writeln!(stdout.lock(), "{resp}");
            })
        };
        if let Err(e) = result {
            eprintln!("ruche-sim submit: exchange failed: {e}");
            return 1;
        }
    }
    if o.shutdown {
        if let Err(e) = client.shutdown() {
            eprintln!("ruche-sim submit: shutdown failed: {e}");
            return 1;
        }
    }
    0
}

/// `ruche-sim eval`: answer each request line offline, printing the
/// byte-identical response lines a daemon would stream.
fn eval(argv: &[String]) -> i32 {
    let o = opts::EvalOpts::parse(argv);
    let lines = match batch::request_lines(o.file.as_deref()) {
        Ok(lines) => lines,
        Err(e) => {
            eprintln!("ruche-sim eval: cannot read batch: {e}");
            return 1;
        }
    };
    let engine = build_engine(&o.engine);
    let stdout = std::io::stdout();
    for line in &lines {
        respond(&engine, line, &mut |resp| {
            let _ = writeln!(stdout.lock(), "{resp}");
        });
    }
    0
}
