//! `ruche-sim` — a command-line front end to the NoC simulator.
//!
//! ```sh
//! cargo run --release --bin ruche-sim -- \
//!     --topology ruche --rf 2 --scheme depop --size 16x16 \
//!     --pattern uniform --rate 0.2
//! ```
//!
//! Prints the latency/throughput of one run, or a latency curve with
//! `--sweep`.
//!
//! The service subcommands — `ruche-sim serve` (long-lived sweep
//! daemon), `ruche-sim submit` (client), and `ruche-sim eval` (offline
//! evaluation of the same batch files) — are documented in
//! `docs/SERVICE.md` and dispatched to [`ruche::serve`] before the
//! flat-argument simulator CLI parses anything.

use ruche::noc::prelude::*;
use ruche::stats::AsciiPlot;
use ruche::traffic::{latency_curve, run, Pattern, Testbench};

#[derive(Debug)]
struct Args {
    topology: String,
    rf: u16,
    scheme: CrossbarScheme,
    size: Dims,
    pattern: String,
    rate: f64,
    sweep: bool,
    packet_len: usize,
    pipeline: u32,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: ruche-sim [--topology mesh|multimesh|torus|half-torus|ruche|half-ruche]\n\
         \x20                [--rf N] [--scheme pop|depop] [--size WxH]\n\
         \x20                [--pattern uniform|bitcomp|transpose|tornado|neighbor|memory]\n\
         \x20                [--rate R | --sweep] [--packet-len N] [--pipeline N] [--seed N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        topology: "ruche".into(),
        rf: 2,
        scheme: CrossbarScheme::Depopulated,
        size: Dims::new(8, 8),
        pattern: "uniform".into(),
        rate: 0.1,
        sweep: false,
        packet_len: 1,
        pipeline: 0,
        seed: 0xC0FFEE,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--topology" => args.topology = take(&mut i),
            "--rf" => args.rf = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--scheme" => {
                args.scheme = match take(&mut i).as_str() {
                    "pop" => CrossbarScheme::FullyPopulated,
                    "depop" => CrossbarScheme::Depopulated,
                    _ => usage(),
                }
            }
            "--size" => {
                let s = take(&mut i);
                let (w, h) = s.split_once('x').unwrap_or_else(|| usage());
                args.size = Dims::new(
                    w.parse().unwrap_or_else(|_| usage()),
                    h.parse().unwrap_or_else(|_| usage()),
                );
            }
            "--pattern" => args.pattern = take(&mut i),
            "--rate" => args.rate = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--sweep" => args.sweep = true,
            "--packet-len" => args.packet_len = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--pipeline" => args.pipeline = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Some(cmd @ ("serve" | "submit" | "eval")) = argv.first().map(String::as_str) {
        std::process::exit(ruche::serve::dispatch(cmd, &argv[1..]));
    }
    let a = parse_args();
    let cfg = match a.topology.as_str() {
        "mesh" => NetworkConfig::mesh(a.size),
        "multimesh" => NetworkConfig::multi_mesh(a.size),
        "torus" => NetworkConfig::torus(a.size),
        "half-torus" => NetworkConfig::half_torus(a.size),
        "ruche" if a.rf == 1 => NetworkConfig::ruche_one(a.size),
        "ruche" => NetworkConfig::full_ruche(a.size, a.rf, a.scheme),
        "half-ruche" => NetworkConfig::half_ruche(a.size, a.rf, a.scheme),
        _ => usage(),
    }
    .with_pipeline_stages(a.pipeline);
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        std::process::exit(1);
    }
    let pattern = match a.pattern.as_str() {
        "uniform" => Pattern::UniformRandom,
        "bitcomp" => Pattern::BitComplement,
        "transpose" => Pattern::Transpose,
        "tornado" => Pattern::Tornado,
        "neighbor" => Pattern::Neighbor,
        "memory" => Pattern::TileToMemory,
        _ => usage(),
    };

    let tb = match Testbench::builder(pattern, a.rate)
        .seed(a.seed)
        .packet_len(a.packet_len)
        .build()
    {
        Ok(tb) => tb,
        Err(e) => {
            eprintln!("invalid testbench: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "network {} ({}), pattern {}, {} bisection channels (horizontal)",
        cfg.label(),
        cfg.dims,
        pattern.name(),
        cfg.horizontal_bisection_channels()
    );

    if a.sweep {
        let rates: Vec<f64> = (1..=20).map(|i| i as f64 * 0.05).collect();
        let curve = latency_curve(&cfg, &tb, &rates);
        let mut plot = AsciiPlot::new(&cfg.label(), "offered load", "avg latency (cycles)");
        let pts: Vec<(f64, f64)> = curve
            .iter()
            .filter(|p| !p.saturated)
            .map(|p| (p.offered, p.avg_latency))
            .collect();
        plot.series(pattern.name(), &pts);
        println!("{}", plot.render());
        for p in &curve {
            println!(
                "offered {:>5.2}  accepted {:>6.3}  latency {:>9.1}{}",
                p.offered,
                p.accepted,
                p.avg_latency,
                if p.saturated { "  (saturated)" } else { "" }
            );
        }
    } else {
        match run(&cfg, &tb) {
            Ok(res) => {
                println!(
                    "offered {:.3}  accepted {:.3}  avg latency {:.1}  p99 {:.1}  delivered {}{}",
                    res.offered,
                    res.accepted,
                    res.avg_latency,
                    res.p99_latency,
                    res.delivered,
                    if res.saturated { "  (saturated)" } else { "" }
                );
            }
            Err(e) => {
                eprintln!("cannot run pattern: {e}");
                std::process::exit(1);
            }
        }
    }
}
