//! Facade crate: see README.md. Re-exports the whole workspace API.
pub use ruche_bench as bench;
pub use ruche_manycore as manycore;
pub use ruche_noc as noc;
pub use ruche_phys as phys;
pub use ruche_service as service;
pub use ruche_stats as stats;
pub use ruche_telemetry as telemetry;
pub use ruche_traffic as traffic;

pub mod serve;
