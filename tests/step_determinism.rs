//! Sharded-step determinism: a network stepped by the multi-threaded
//! sharded engine must be **byte-identical** to the serial engine — same
//! per-cycle ejection sequence, same snapshots, same link loads, same
//! telemetry counters — for every topology, dimension (including
//! degenerate lines), and fault model. See `docs/PARALLELISM.md` for why
//! this holds by construction.

use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use ruche::noc::packet::Flit;
use ruche::noc::prelude::*;

/// Strategy over network families, including degenerate 1×N / N×1 lines
/// (which must collapse to a single shard).
fn arb_config() -> impl Strategy<Value = NetworkConfig> {
    (1u16..=9, 1u16..=9, 0u8..=6, 1u16..=3, any::<bool>()).prop_map(
        |(cols, rows, kind, rf, pop)| {
            let dims = Dims::new(cols, rows);
            let rf = rf
                .min(cols.saturating_sub(1))
                .min(rows.saturating_sub(1))
                .max(1);
            let scheme = if pop || rf == 1 {
                CrossbarScheme::FullyPopulated
            } else {
                CrossbarScheme::Depopulated
            };
            match kind {
                0 => NetworkConfig::mesh(dims),
                1 => NetworkConfig::multi_mesh(dims),
                2 => NetworkConfig::torus(dims),
                3 => NetworkConfig::half_torus(dims),
                4 => NetworkConfig::full_ruche(dims, rf, scheme),
                5 => NetworkConfig::half_ruche(dims, rf, scheme),
                _ => NetworkConfig::ruche_one(dims),
            }
        },
    )
}

/// Drives `serial` and `sharded` with identical random traffic and asserts
/// they agree cycle by cycle: ejections (order included), snapshots, and —
/// after drain — traversal counters and per-link telemetry.
fn assert_lockstep(mut serial: Network, mut sharded: Network, seed: u64, rate: u32, cycles: u64) {
    assert_eq!(serial.step_threads(), 1, "control must run serial");
    serial.attach_telemetry(64);
    sharded.attach_telemetry(64);
    let dims = serial.cfg().dims;
    let table = serial.route_table().cloned();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut id = 0u64;
    for cycle in 0..cycles {
        for c in dims.iter() {
            if !rng.gen_ratio(rate, 100) {
                continue;
            }
            let d = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
            if let Some(t) = &table {
                if !t.reachable(c, Dir::P, Dest::tile(d)) {
                    continue;
                }
            }
            let f = Flit::single(c, Dest::tile(d), id, cycle);
            id += 1;
            serial.enqueue(serial.tile_endpoint(c), f);
            sharded.enqueue(sharded.tile_endpoint(c), f);
        }
        let a = serial.step().to_vec();
        let b = sharded.step().to_vec();
        assert_eq!(&a, &b, "ejections diverge at cycle {}", cycle);
        assert_eq!(serial.snapshot(), sharded.snapshot());
    }
    let mut guard = 0u32;
    while !serial.snapshot().is_idle() || !sharded.snapshot().is_idle() {
        let a = serial.step().to_vec();
        let b = sharded.step().to_vec();
        assert_eq!(&a, &b, "ejections diverge while draining");
        assert_eq!(serial.snapshot(), sharded.snapshot());
        guard += 1;
        assert!(guard < 60_000, "drain stalled");
    }
    let (la, lb) = (serial.link_loads(), sharded.link_loads());
    assert!(
        la.iter().eq(lb.iter()),
        "per-link traversal counters diverge"
    );
    let (ta, tb) = (
        serial.telemetry().expect("attached"),
        sharded.telemetry().expect("attached"),
    );
    let np = ta.ports().len();
    for node in 0..ta.n_nodes() {
        for port in 0..np {
            for vc in 0..ta.max_vcs() {
                assert_eq!(
                    ta.link(node, port, vc),
                    tb.link(node, port, vc),
                    "telemetry diverges at node {} port {} vc {}",
                    node,
                    port,
                    vc
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded (4 threads) and serial execution agree exactly on random
    /// topologies and traffic.
    #[test]
    fn sharded_step_matches_serial(
        cfg in arb_config(),
        seed in any::<u64>(),
        rate in 1u32..=50,
    ) {
        prop_assume!(cfg.validate().is_ok());
        let serial = Network::new(cfg.clone().with_step_threads(1)).unwrap();
        let sharded = Network::new(cfg.with_step_threads(4)).unwrap();
        assert_lockstep(serial, sharded, seed, rate, 120);
    }

    /// Same, under random link/router faults (detour tables are shared
    /// read-only across shards).
    #[test]
    fn sharded_step_matches_serial_under_faults(
        seed in any::<u64>(),
        fseed in any::<u64>(),
        rate in 1u32..=40,
    ) {
        let dims = Dims::new(8, 8);
        let cfg = NetworkConfig::mesh(dims);
        let faults = FaultModel::random_links(&cfg, 0.08, fseed);
        let serial = Network::with_faults(cfg.clone().with_step_threads(1), &faults);
        let sharded = Network::with_faults(cfg.with_step_threads(4), &faults);
        match (serial, sharded) {
            (Ok(serial), Ok(sharded)) => assert_lockstep(serial, sharded, seed, rate, 100),
            // A fault set the builder rejects (e.g. a disconnecting cut)
            // must be rejected identically by both engines.
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "engines disagree on {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }
}

#[test]
fn one_by_n_lines_collapse_to_a_single_shard() {
    let cfg = NetworkConfig::mesh(Dims::new(1, 9)).with_step_threads(8);
    let net = Network::new(cfg).unwrap();
    assert_eq!(net.step_threads(), 1, "1×N must run serial");
}

#[test]
fn shard_count_clamps_to_rows_and_cap() {
    let net = Network::new(NetworkConfig::mesh(Dims::new(9, 3)).with_step_threads(8)).unwrap();
    assert_eq!(net.step_threads(), 3);
    let net = Network::new(NetworkConfig::mesh(Dims::new(8, 8)).with_step_threads(4)).unwrap();
    assert_eq!(net.step_threads(), 4);
}
