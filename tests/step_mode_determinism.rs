//! Step-mode determinism: a network stepped by the event wheel
//! (`StepMode::EventDriven` / `StepMode::Auto`, fast-forwarding quiescent
//! spans) must be **byte-identical** to the cycle-accurate engine — same
//! per-cycle ejection sequence, same snapshots, same link loads, same
//! telemetry counters — for every topology, dimension, fault model, and
//! step-thread count. See `docs/EVENTS.md` for why this holds by
//! construction: the only spans skipped are provably empty.

use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use ruche::noc::packet::Flit;
use ruche::noc::prelude::*;

/// Strategy over network families, including degenerate 1×N / N×1 lines.
fn arb_config() -> impl Strategy<Value = NetworkConfig> {
    (1u16..=9, 1u16..=9, 0u8..=6, 1u16..=3, any::<bool>()).prop_map(
        |(cols, rows, kind, rf, pop)| {
            let dims = Dims::new(cols, rows);
            let rf = rf
                .min(cols.saturating_sub(1))
                .min(rows.saturating_sub(1))
                .max(1);
            let scheme = if pop || rf == 1 {
                CrossbarScheme::FullyPopulated
            } else {
                CrossbarScheme::Depopulated
            };
            match kind {
                0 => NetworkConfig::mesh(dims),
                1 => NetworkConfig::multi_mesh(dims),
                2 => NetworkConfig::torus(dims),
                3 => NetworkConfig::half_torus(dims),
                4 => NetworkConfig::full_ruche(dims, rf, scheme),
                5 => NetworkConfig::half_ruche(dims, rf, scheme),
                _ => NetworkConfig::ruche_one(dims),
            }
        },
    )
}

/// Precomputes a bursty injection schedule: uniform-random traffic at
/// `rate`% per tile, but only on cycles that are multiples of `gap` — so
/// large gaps leave quiescent spans for the event wheel to skip, and
/// `gap == 1` degenerates to the dense traffic of `step_determinism.rs`.
fn gen_schedule(
    net: &Network,
    seed: u64,
    rate: u32,
    gap: u64,
    cycles: u64,
) -> Vec<(u64, Coord, Flit)> {
    let dims = net.cfg().dims;
    let table = net.route_table().cloned();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut id = 0u64;
    let mut schedule = Vec::new();
    for cycle in (0..cycles).filter(|c| c.is_multiple_of(gap)) {
        for c in dims.iter() {
            if !rng.gen_ratio(rate, 100) {
                continue;
            }
            let d = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
            if let Some(t) = &table {
                if !t.reachable(c, Dir::P, Dest::tile(d)) {
                    continue;
                }
            }
            schedule.push((cycle, c, Flit::single(c, Dest::tile(d), id, cycle)));
            id += 1;
        }
    }
    schedule
}

/// Drives `cycle_net` strictly cycle by cycle and `event_net` through the
/// fast-forward driver, and asserts they agree in lockstep: whenever the
/// event engine skips a span, the cycle-accurate engine replays it step by
/// step and must eject nothing; at every shared cycle the ejections (order
/// included) and snapshots must match; after drain the traversal counters
/// and per-link telemetry must match.
fn assert_mode_lockstep(
    mut cycle_net: Network,
    mut event_net: Network,
    seed: u64,
    rate: u32,
    gap: u64,
    cycles: u64,
) {
    assert_eq!(
        cycle_net.step_mode(),
        StepMode::CycleAccurate,
        "control must run cycle-accurate"
    );
    cycle_net.attach_telemetry(64);
    event_net.attach_telemetry(64);
    let schedule = gen_schedule(&cycle_net, seed, rate, gap, cycles);
    let mut next = 0usize;
    let mut guard = 0u32;
    while event_net.cycle() < cycles || !event_net.is_quiescent() {
        // Replay any span the event engine skipped: it claimed the span
        // was empty, so the cycle-accurate engine must eject nothing in it.
        while cycle_net.cycle() < event_net.cycle() {
            let ej = cycle_net.step().to_vec();
            assert!(
                ej.is_empty(),
                "cycle-accurate engine ejected at cycle {} inside a skipped span",
                cycle_net.cycle()
            );
        }
        assert_eq!(cycle_net.cycle(), event_net.cycle(), "clocks diverged");
        while schedule
            .get(next)
            .is_some_and(|&(c, ..)| c == event_net.cycle())
        {
            let (_, src, f) = schedule[next];
            cycle_net.enqueue(cycle_net.tile_endpoint(src), f);
            event_net.enqueue(event_net.tile_endpoint(src), f);
            next += 1;
        }
        assert!(
            schedule
                .get(next)
                .is_none_or(|&(c, ..)| c > event_net.cycle()),
            "fast-forward skipped past a scheduled injection"
        );
        let a = cycle_net.step().to_vec();
        let b = event_net.step().to_vec();
        assert_eq!(a, b, "ejections diverge at cycle {}", event_net.cycle());
        assert_eq!(cycle_net.snapshot(), event_net.snapshot());
        assert_shard_events_cover(&event_net);
        let wake = schedule.get(next).map_or(cycles, |&(c, ..)| c);
        event_net.fast_forward(wake.min(cycles));
        guard += 1;
        assert!(guard < 100_000, "drain stalled");
    }
    while cycle_net.cycle() < event_net.cycle() {
        assert!(
            cycle_net.step().is_empty(),
            "cycle-accurate engine ejected inside the final skipped span"
        );
    }
    assert_eq!(cycle_net.snapshot(), event_net.snapshot());
    assert!(cycle_net.is_quiescent() && event_net.is_quiescent());
    let (la, lb) = (cycle_net.link_loads(), event_net.link_loads());
    assert!(
        la.iter().eq(lb.iter()),
        "per-link traversal counters diverge"
    );
    let (ta, tb) = (
        cycle_net.telemetry().expect("attached"),
        event_net.telemetry().expect("attached"),
    );
    let np = ta.ports().len();
    for node in 0..ta.n_nodes() {
        for port in 0..np {
            for vc in 0..ta.max_vcs() {
                assert_eq!(
                    ta.link(node, port, vc),
                    tb.link(node, port, vc),
                    "telemetry diverges at node {} port {} vc {}",
                    node,
                    port,
                    vc
                );
            }
        }
    }
}

/// The wake-set decomposition invariant behind `fast_forward`: the global
/// next-event cycle is exactly the minimum of the per-shard event cycles
/// ([`Network::shard_next_event_cycle`]), so no shard's pending work can
/// be skipped past and a fully quiescent network reports `None` everywhere.
fn assert_shard_events_cover(net: &Network) {
    let per_shard = (0..net.step_threads()).filter_map(|s| net.shard_next_event_cycle(s));
    assert_eq!(
        net.next_event_cycle(),
        per_shard.min(),
        "global next event must be the min over shard event cycles"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Event-driven and cycle-accurate execution agree exactly on random
    /// topologies and bursty traffic (serial steps).
    #[test]
    fn event_step_matches_cycle_accurate(
        cfg in arb_config(),
        seed in any::<u64>(),
        rate in 1u32..=50,
        gap in 1u64..=32,
    ) {
        prop_assume!(cfg.validate().is_ok());
        let cycle_net = Network::new(cfg.clone().with_step_mode(StepMode::CycleAccurate)).unwrap();
        let event_net = Network::new(cfg.with_step_mode(StepMode::EventDriven)).unwrap();
        assert_mode_lockstep(cycle_net, event_net, seed, rate, gap, 120);
    }

    /// Auto mode (fast-forward engages only after an idle streak) is just
    /// as exact.
    #[test]
    fn auto_step_matches_cycle_accurate(
        cfg in arb_config(),
        seed in any::<u64>(),
        rate in 1u32..=50,
        gap in 1u64..=32,
    ) {
        prop_assume!(cfg.validate().is_ok());
        let cycle_net = Network::new(cfg.clone().with_step_mode(StepMode::CycleAccurate)).unwrap();
        let auto_net = Network::new(cfg.with_step_mode(StepMode::Auto)).unwrap();
        assert_mode_lockstep(cycle_net, auto_net, seed, rate, gap, 120);
    }

    /// The event wheel composes with the sharded step engine: a serial
    /// cycle-accurate network agrees with a 4-thread event-driven one.
    #[test]
    fn event_step_composes_with_sharding(
        cfg in arb_config(),
        seed in any::<u64>(),
        rate in 1u32..=40,
        gap in 1u64..=32,
    ) {
        prop_assume!(cfg.validate().is_ok());
        let cycle_net = Network::new(
            cfg.clone().with_step_threads(1).with_step_mode(StepMode::CycleAccurate),
        ).unwrap();
        let event_net = Network::new(
            cfg.with_step_threads(4).with_step_mode(StepMode::EventDriven),
        ).unwrap();
        assert_mode_lockstep(cycle_net, event_net, seed, rate, gap, 120);
    }

    /// Same, under random link faults (detours change which spans are
    /// busy, not whether skipping is exact).
    #[test]
    fn event_step_matches_cycle_accurate_under_faults(
        seed in any::<u64>(),
        fseed in any::<u64>(),
        rate in 1u32..=40,
        gap in 1u64..=32,
    ) {
        let dims = Dims::new(8, 8);
        let cfg = NetworkConfig::mesh(dims);
        let faults = FaultModel::random_links(&cfg, 0.08, fseed);
        let cycle_net = Network::with_faults(
            cfg.clone().with_step_mode(StepMode::CycleAccurate), &faults,
        );
        let event_net = Network::with_faults(
            cfg.with_step_mode(StepMode::EventDriven), &faults,
        );
        match (cycle_net, event_net) {
            (Ok(c), Ok(e)) => assert_mode_lockstep(c, e, seed, rate, gap, 100),
            // A fault set the builder rejects must be rejected in any mode.
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "engines disagree on {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// The full product in one lockstep run: event-driven stepping ×
    /// step-thread count × random link faults. Detoured routes change
    /// which bands are busy each cycle, so the serial, two-shard, and
    /// four-shard engines all exercise sleep/wake transitions and the
    /// wake-on-credit edges that faulted detours induce.
    #[test]
    fn event_sharding_and_faults_compose(
        seed in any::<u64>(),
        fseed in any::<u64>(),
        threads in (0u8..3).prop_map(|i| [1usize, 2, 4][i as usize]),
        rate in 1u32..=40,
        gap in 1u64..=32,
    ) {
        let dims = Dims::new(8, 8);
        let cfg = NetworkConfig::mesh(dims);
        let faults = FaultModel::random_links(&cfg, 0.08, fseed);
        let cycle_net = Network::with_faults(
            cfg.clone().with_step_threads(1).with_step_mode(StepMode::CycleAccurate), &faults,
        );
        let event_net = Network::with_faults(
            cfg.with_step_threads(threads).with_step_mode(StepMode::EventDriven), &faults,
        );
        match (cycle_net, event_net) {
            (Ok(c), Ok(e)) => assert_mode_lockstep(c, e, seed, rate, gap, 100),
            // A fault set the builder rejects must be rejected at every
            // thread count.
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "engines disagree on {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// `Network::run` reaches the same state in every mode: same final
    /// snapshot, same link loads.
    #[test]
    fn run_is_mode_independent(
        seed in any::<u64>(),
        burst in 1usize..=12,
    ) {
        let dims = Dims::new(6, 6);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut flits = Vec::new();
        for id in 0..burst as u64 {
            let s = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
            let d = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
            flits.push((s, Flit::single(s, Dest::tile(d), id, 0)));
        }
        let mut snaps = Vec::new();
        for mode in [StepMode::CycleAccurate, StepMode::EventDriven, StepMode::Auto] {
            let cfg = NetworkConfig::mesh(dims).with_step_mode(mode);
            let mut net = Network::new(cfg).unwrap();
            for &(s, f) in &flits {
                net.enqueue(net.tile_endpoint(s), f);
            }
            net.run(400);
            prop_assert_eq!(net.cycle(), 400);
            prop_assert!(net.is_quiescent());
            snaps.push((net.snapshot(), net.link_loads().iter().collect::<Vec<_>>()));
        }
        prop_assert_eq!(&snaps[0], &snaps[1]);
        prop_assert_eq!(&snaps[0], &snaps[2]);
    }
}

#[test]
fn quiescence_introspection_tracks_in_flight_traffic() {
    let dims = Dims::new(4, 4);
    let mut net = Network::new(NetworkConfig::mesh(dims)).unwrap();
    // A fresh network is quiescent with no next event.
    assert!(net.is_quiescent());
    assert_eq!(net.next_event_cycle(), None);
    // An enqueued flit wakes its source: the next event is *now*.
    let (src, dst) = (Coord::new(0, 0), Coord::new(3, 3));
    net.enqueue(
        net.tile_endpoint(src),
        Flit::single(src, Dest::tile(dst), 0, 0),
    );
    assert!(!net.is_quiescent());
    assert_eq!(net.next_event_cycle(), Some(net.cycle()));
    // While the packet is in flight the network stays busy...
    while net.snapshot().ejected == 0 {
        assert!(!net.is_quiescent());
        assert!(net.next_event_cycle().is_some());
        net.step();
    }
    // ...and once it ejects, quiescence returns.
    assert!(net.is_quiescent());
    assert_eq!(net.next_event_cycle(), None);
}

#[test]
fn global_next_event_is_the_min_over_shard_event_cycles() {
    let cfg = NetworkConfig::mesh(Dims::new(8, 8))
        .with_step_threads(4)
        .with_step_mode(StepMode::EventDriven);
    let mut net = Network::new(cfg).unwrap();
    assert_eq!(net.step_threads(), 4);
    // Quiescent: every shard reports no pending event.
    for s in 0..net.step_threads() {
        assert_eq!(net.shard_next_event_cycle(s), None);
    }
    assert_shard_events_cover(&net);
    // A flit enqueued at (0, 0) wakes only the top row band; the other
    // shards stay event-free until traffic actually enters their rows.
    let (src, dst) = (Coord::new(0, 0), Coord::new(7, 7));
    net.enqueue(
        net.tile_endpoint(src),
        Flit::single(src, Dest::tile(dst), 0, 0),
    );
    assert_eq!(net.shard_next_event_cycle(0), Some(net.cycle()));
    for s in 1..net.step_threads() {
        assert_eq!(net.shard_next_event_cycle(s), None);
    }
    // The invariant holds at every cycle of the flit's journey across the
    // band boundaries and through the drain.
    while !net.is_quiescent() {
        assert_shard_events_cover(&net);
        net.step();
    }
    assert_shard_events_cover(&net);
    assert_eq!(net.snapshot().ejected, 1);
}

#[test]
fn fast_forward_is_a_no_op_in_cycle_accurate_mode() {
    let cfg = NetworkConfig::mesh(Dims::new(4, 4)).with_step_mode(StepMode::CycleAccurate);
    let mut net = Network::new(cfg).unwrap();
    assert!(net.is_quiescent());
    assert_eq!(net.fast_forward(1_000), 0, "cycle mode must never skip");
    assert_eq!(net.cycle(), 0);
}

#[test]
fn fast_forward_skips_quiescent_spans_in_event_mode() {
    let cfg = NetworkConfig::mesh(Dims::new(4, 4)).with_step_mode(StepMode::EventDriven);
    let mut net = Network::new(cfg).unwrap();
    assert_eq!(net.fast_forward(1_000), 1_000);
    assert_eq!(net.cycle(), 1_000);
    // A busy network refuses to skip: the next event is the current cycle.
    let (src, dst) = (Coord::new(0, 0), Coord::new(3, 3));
    net.enqueue(
        net.tile_endpoint(src),
        Flit::single(src, Dest::tile(dst), 0, net.cycle()),
    );
    assert_eq!(net.fast_forward(2_000), 1_000);
    assert_eq!(net.cycle(), 1_000);
}

#[test]
fn auto_mode_engages_only_after_an_idle_streak() {
    let cfg = NetworkConfig::mesh(Dims::new(4, 4)).with_step_mode(StepMode::Auto);
    let mut net = Network::new(cfg).unwrap();
    // Fresh network: no idle streak yet, so auto stays cycle-accurate.
    assert_eq!(net.fast_forward(1_000), 0);
    // After a few provably-idle steps the streak trips and it skips.
    for _ in 0..8 {
        net.step();
    }
    assert_eq!(net.fast_forward(1_000), 1_000);
}

#[test]
fn step_mode_resolution_prefers_the_config_knob() {
    let cfg = NetworkConfig::mesh(Dims::new(4, 4));
    // With no config knob the mode comes from `RUCHE_STEP_MODE`, falling
    // back to cycle-accurate (the whole test suite runs under either).
    let fallback = std::env::var("RUCHE_STEP_MODE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(StepMode::CycleAccurate);
    let net = Network::new(cfg.clone()).unwrap();
    assert_eq!(net.step_mode(), fallback);
    // The config knob always wins over the environment.
    let net = Network::new(cfg.with_step_mode(StepMode::Auto)).unwrap();
    assert_eq!(net.step_mode(), StepMode::Auto);
}
