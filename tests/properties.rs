//! Property-based tests over the core invariants (DESIGN.md §5):
//! deadlock freedom, in-order delivery, route correctness, flit
//! conservation, and crossbar consistency, across randomized topologies,
//! sizes, Ruche factors, and traffic.

use proptest::prelude::*;
use ruche::noc::crossbar::Connectivity;
use ruche::noc::packet::Flit;
use ruche::noc::prelude::*;
use ruche::noc::routing::{route_hops, try_walk_route, walk_route};

/// Strategy over the evaluated network families on modest arrays.
fn arb_config() -> impl Strategy<Value = NetworkConfig> {
    (4u16..=9, 4u16..=9, 0u8..=6, 1u16..=3, any::<bool>()).prop_map(
        |(cols, rows, kind, rf, pop)| {
            let dims = Dims::new(cols, rows);
            let rf = rf.min(cols - 1).min(rows - 1).max(1);
            let scheme = if pop || rf == 1 {
                CrossbarScheme::FullyPopulated
            } else {
                CrossbarScheme::Depopulated
            };
            match kind {
                0 => NetworkConfig::mesh(dims),
                1 => NetworkConfig::multi_mesh(dims),
                2 => NetworkConfig::torus(dims),
                3 => NetworkConfig::half_torus(dims),
                4 => NetworkConfig::full_ruche(dims, rf, scheme),
                5 => NetworkConfig::half_ruche(dims, rf, scheme),
                _ => NetworkConfig::ruche_one(dims),
            }
        },
    )
}

/// Like [`arb_config`], but additionally varies the DOR order and allows
/// degenerate line arrays (1×N / N×1); invalid combinations are filtered
/// by `prop_assume!(cfg.validate().is_ok())` at the use sites.
fn arb_dor_config() -> impl Strategy<Value = NetworkConfig> {
    (
        1u16..=9,
        1u16..=9,
        0u8..=6,
        1u16..=3,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(cols, rows, kind, rf, pop, yx)| {
            let dims = Dims::new(cols, rows);
            let rf = rf
                .min(cols.saturating_sub(1))
                .min(rows.saturating_sub(1))
                .max(1);
            let scheme = if pop || rf == 1 {
                CrossbarScheme::FullyPopulated
            } else {
                CrossbarScheme::Depopulated
            };
            let cfg = match kind {
                0 => NetworkConfig::mesh(dims),
                1 => NetworkConfig::multi_mesh(dims),
                2 => NetworkConfig::torus(dims),
                3 => NetworkConfig::half_torus(dims),
                4 => NetworkConfig::full_ruche(dims, rf, scheme),
                5 => NetworkConfig::half_ruche(dims, rf, scheme),
                _ => NetworkConfig::ruche_one(dims),
            };
            let dor = if yx { DorOrder::YX } else { DorOrder::XY };
            cfg.with_dor(dor)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under either DOR order (and on degenerate line arrays), every walk
    /// terminates at the destination's P port within the static hop
    /// bound, and its length agrees with the analytic hop counter.
    #[test]
    fn walks_terminate_under_either_dor(
        cfg in arb_dor_config(),
        sx in 0u16..9, sy in 0u16..9, dx in 0u16..9, dy in 0u16..9,
    ) {
        prop_assume!(cfg.validate().is_ok());
        let dims = cfg.dims;
        let src = Coord::new(sx % dims.cols, sy % dims.rows);
        let dst = Coord::new(dx % dims.cols, dy % dims.rows);
        let walked = try_walk_route(&cfg, src, Dest::tile(dst));
        prop_assert!(walked.is_ok(), "{}: {}", cfg.label(), walked.unwrap_err());
        let path = walked.unwrap();
        prop_assert_eq!(path.last().unwrap(), &(dst, Dir::P));
        prop_assert!(path.len() <= cfg.max_route_hops());
        prop_assert_eq!(path.len() as u32, route_hops(&cfg, src, dst));
    }

    /// Every route terminates at its destination, within the hop bound,
    /// through legal crossbar transitions only.
    #[test]
    fn routes_terminate_and_respect_crossbar(cfg in arb_config(), sx in 0u16..9, sy in 0u16..9, dx in 0u16..9, dy in 0u16..9) {
        prop_assume!(cfg.validate().is_ok());
        let dims = cfg.dims;
        let src = Coord::new(sx % dims.cols, sy % dims.rows);
        let dst = Coord::new(dx % dims.cols, dy % dims.rows);
        let conn = Connectivity::of(&cfg);
        let path = walk_route(&cfg, src, Dest::tile(dst));
        // Terminates at the destination's P port.
        prop_assert_eq!(path.last().unwrap(), &(dst, Dir::P));
        // Each transition is implemented by the crossbar.
        let mut in_dir = Dir::P;
        for &(_, out) in &path {
            prop_assert!(conn.allows(in_dir, out), "{} -> {} missing", in_dir, out);
            in_dir = out.opposite();
        }
    }

    /// Pop routes are per-axis hop-minimal; depop routes are
    /// distance-preserving (never travel more tiles than Manhattan).
    #[test]
    fn route_length_bounds(cfg in arb_config(), sx in 0u16..9, sy in 0u16..9, dx in 0u16..9, dy in 0u16..9) {
        prop_assume!(cfg.validate().is_ok());
        prop_assume!(!cfg.is_vc_router()); // torus rides rings, not Manhattan
        let dims = cfg.dims;
        let src = Coord::new(sx % dims.cols, sy % dims.rows);
        let dst = Coord::new(dx % dims.cols, dy % dims.rows);
        let rf = cfg.topology.ruche_factor().max(1) as i64;
        let path = walk_route(&cfg, src, Dest::tile(dst));
        let tiles: i64 = path
            .iter()
            .map(|&(_, d)| {
                let (x, y) = d.displacement(rf as u16);
                (x.abs() + y.abs()) as i64
            })
            .sum();
        prop_assert_eq!(tiles as u32, src.manhattan(dst), "distance preserved");
        if cfg.scheme == CrossbarScheme::FullyPopulated && cfg.topology.ruche_factor() >= 2 {
            let ax = (dst.x as i64 - src.x as i64).abs();
            let ay = (dst.y as i64 - src.y as i64).abs();
            let min_hops = ax / rf + ax % rf + ay / rf + ay % rf + 1;
            prop_assert!(path.len() as i64 <= min_hops + 2 * rf, "near-minimal");
        }
    }

    /// Everything injected drains: no deadlock, no loss, no duplication —
    /// and per-pair delivery order matches injection order.
    #[test]
    fn conservation_order_and_deadlock_freedom(
        cfg in arb_config(),
        seed in any::<u64>(),
        rate in 1u32..=60,
    ) {
        prop_assume!(cfg.validate().is_ok());
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let dims = cfg.dims;
        let mut net = Network::new(cfg).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sent = 0u64;
        let mut expected: std::collections::HashMap<(Coord, Coord), Vec<u64>> =
            std::collections::HashMap::new();
        let mut seen: std::collections::HashMap<(Coord, Coord), Vec<u64>> =
            std::collections::HashMap::new();
        let mut drained = 0u64;
        for cycle in 0..120u64 {
            for c in dims.iter() {
                if rng.gen_ratio(rate, 100) {
                    let d = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
                    let ep = net.tile_endpoint(c);
                    net.enqueue(ep, Flit::single(c, Dest::tile(d), sent, cycle));
                    expected.entry((c, d)).or_default().push(sent);
                    sent += 1;
                }
            }
            let out = net.step().to_vec();
            for (ep, f) in out {
                let EndpointKind::Tile(at) = net.endpoint_kind(ep) else { unreachable!() };
                prop_assert_eq!(at, f.dest.coord, "delivered to its destination");
                seen.entry((f.src, at)).or_default().push(f.packet_id);
                drained += 1;
            }
        }
        let mut guard = 0u32;
        while drained < sent {
            let out = net.step().to_vec();
            for (ep, f) in out {
                let EndpointKind::Tile(at) = net.endpoint_kind(ep) else { unreachable!() };
                prop_assert_eq!(at, f.dest.coord, "delivered to its destination");
                seen.entry((f.src, at)).or_default().push(f.packet_id);
                drained += 1;
            }
            guard += 1;
            prop_assert!(guard < 60_000, "deadlock: {} of {} drained", drained, sent);
        }
        prop_assert_eq!(net.snapshot().in_flight, 0);
        let empty: Vec<u64> = vec![];
        for (pair, ids) in &expected {
            prop_assert_eq!(seen.get(pair).unwrap_or(&empty), ids, "in-order for {:?}", pair);
        }
    }

    /// Credits balance after drain: every counted output port has its full
    /// credit pool back.
    #[test]
    fn credits_return_after_drain(seed in any::<u64>()) {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let dims = Dims::new(6, 6);
        let cfg = NetworkConfig::torus(dims);
        let depth = cfg.fifo_depth;
        let mut net = Network::new(cfg).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sent = 0u64;
        for cycle in 0..100u64 {
            for c in dims.iter() {
                if rng.gen_bool(0.4) {
                    let d = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
                    let ep = net.tile_endpoint(c);
                    net.enqueue(ep, Flit::single(c, Dest::tile(d), sent, cycle));
                    sent += 1;
                }
            }
            net.step();
        }
        let mut guard = 0;
        while net.snapshot().ejected < sent {
            net.step();
            guard += 1;
            prop_assert!(guard < 60_000, "drain stalled");
        }
        // Two idle cycles settle in-flight credit returns.
        net.step();
        net.step();
        prop_assert_eq!(net.snapshot().in_flight, 0);
        let _ = depth;
    }

    /// Bisection analytics: Ruche adds exactly `RF` channels per row per
    /// direction over mesh; torus doubles mesh.
    #[test]
    fn bisection_closed_forms(cols in 6u16..=24, rows in 2u16..=12, rf in 2u16..=4) {
        prop_assume!(rf < cols / 2);
        let dims = Dims::new(cols, rows);
        let mesh = NetworkConfig::mesh(dims).horizontal_bisection_channels();
        prop_assert_eq!(mesh, 2 * rows as u32);
        let ruche = NetworkConfig::half_ruche(dims, rf, CrossbarScheme::Depopulated)
            .horizontal_bisection_channels();
        prop_assert_eq!(ruche, 2 * rows as u32 * (1 + rf as u32));
        if cols >= 3 && rows >= 3 {
            let torus = NetworkConfig::torus(dims).horizontal_bisection_channels();
            prop_assert_eq!(torus, 2 * mesh);
        }
    }
}
