//! Cross-crate integration tests: the full stack from topology through
//! traffic, physical models, and the manycore, exercised through the
//! public facade API.

use ruche::manycore::prelude::*;
use ruche::noc::prelude::*;
use ruche::phys::{min_cycle_time_fo4, router_area, EnergyModel, RouterParams, Tech};
use ruche::traffic::{run as tb_run, saturation_throughput, Pattern, Testbench};

#[test]
fn paper_headline_uniform_random_ordering() {
    // §4.1: on 8×8 uniform random, mesh < torus < ruche1-pop < ruche2-pop
    // in saturation throughput, with ruche1 ≈ multi-mesh.
    let dims = Dims::new(8, 8);
    let sat = |cfg: &NetworkConfig| saturation_throughput(cfg, Pattern::UniformRandom, 11);
    let mesh = sat(&NetworkConfig::mesh(dims));
    let torus = sat(&NetworkConfig::torus(dims));
    let r1 = sat(&NetworkConfig::ruche_one(dims));
    let mm = sat(&NetworkConfig::multi_mesh(dims));
    let r2 = sat(&NetworkConfig::full_ruche(
        dims,
        2,
        CrossbarScheme::FullyPopulated,
    ));
    assert!(mesh < torus, "mesh {mesh} < torus {torus}");
    assert!(torus < r1, "torus {torus} < ruche1 {r1}");
    assert!(r1 <= r2 + 0.02, "ruche1 {r1} <= ruche2 {r2}");
    assert!((r1 - mm).abs() < 0.05, "ruche1 {r1} ~ multimesh {mm}");
    // Rough paper magnitudes: mesh ~0.28, torus ~0.42, ruche1 ~0.48.
    assert!((0.22..0.36).contains(&mesh));
    assert!((0.46..0.56).contains(&r1));
}

#[test]
fn torus_vc_handicap_widens_at_16x16() {
    // §4.1: at 16×16 torus reaches only ~0.19 while ruche1-pop reaches
    // ~0.28 — far closer to the 2× the doubled bisection promises.
    let dims = Dims::new(16, 16);
    let mesh = saturation_throughput(&NetworkConfig::mesh(dims), Pattern::UniformRandom, 11);
    let torus = saturation_throughput(&NetworkConfig::torus(dims), Pattern::UniformRandom, 11);
    let r1 = saturation_throughput(&NetworkConfig::ruche_one(dims), Pattern::UniformRandom, 11);
    assert!(
        torus < mesh * 1.55,
        "torus gains far less than its 2x bisection: {torus} vs mesh {mesh}"
    );
    assert!(r1 > mesh * 1.6, "ruche1 {r1} well above mesh {mesh}");
    assert!(r1 > torus * 1.25, "ruche1 {r1} well above torus {torus}");
}

#[test]
fn area_performance_cost_triangle() {
    // The depopulated Full Ruche is cheaper than the torus router and still
    // reaches a wormhole-class cycle time, while beating it on uniform
    // random throughput: the paper's overall thesis in one test.
    let dims = Dims::new(8, 8);
    let tech = Tech::n12();
    let depop = NetworkConfig::full_ruche(dims, 3, CrossbarScheme::Depopulated);
    let torus = NetworkConfig::torus(dims);
    let a_depop = router_area(&RouterParams::of(&depop), &tech).total();
    let a_torus = router_area(&RouterParams::of(&torus), &tech).total();
    assert!(a_depop < a_torus);
    let t_depop = min_cycle_time_fo4(&RouterParams::of(&depop), &tech);
    let t_torus = min_cycle_time_fo4(&RouterParams::of(&torus), &tech);
    assert!(t_depop < 0.75 * t_torus);
    let s_depop = saturation_throughput(&depop, Pattern::UniformRandom, 5);
    let s_torus = saturation_throughput(&torus, Pattern::UniformRandom, 5);
    assert!(s_depop > s_torus * 0.9);
}

#[test]
fn fairness_improves_with_ruche() {
    // Figure 8's core claim: Ruche reduces per-tile latency variance vs
    // mesh (never reaching the torus's perfect symmetry).
    let dims = Dims::new(16, 16);
    let tb = Testbench::builder(Pattern::UniformRandom, 0.02)
        .quick()
        .measure(2_500) // enough samples per tile for stable means
        .build()
        .expect("testbench is valid");
    let spread = |cfg: &NetworkConfig| {
        let res = tb_run(cfg, &tb).expect("valid");
        let means: Vec<f64> = res
            .per_tile_latency
            .iter()
            .filter(|a| a.count() > 0)
            .map(|a| a.mean())
            .collect();
        let avg = means.iter().sum::<f64>() / means.len() as f64;
        let var = means.iter().map(|m| (m - avg) * (m - avg)).sum::<f64>() / means.len() as f64;
        (avg, var.sqrt())
    };
    let (mesh_mean, mesh_sd) = spread(&NetworkConfig::mesh(dims));
    let (_, torus_sd) = spread(&NetworkConfig::torus(dims));
    let (r3_mean, r3_sd) = spread(&NetworkConfig::full_ruche(
        dims,
        3,
        CrossbarScheme::FullyPopulated,
    ));
    assert!(
        r3_sd < mesh_sd * 0.65,
        "ruche3 sd {r3_sd} vs mesh {mesh_sd}"
    );
    assert!(torus_sd < mesh_sd * 0.65, "torus is near-symmetric");
    assert!(r3_mean < mesh_mean);
}

#[test]
fn manycore_jacobi_exposes_folded_torus_pathology() {
    // §4.6: Jacobi's nearest-neighbor scratchpad access makes half-torus
    // *slower than mesh*, while Half Ruche speeds it up.
    let dims = Dims::new(16, 8);
    let w = Workload::build(Benchmark::Jacobi, DatasetId::Default, dims);
    let cyc = |net: NetworkConfig| run(&SystemConfig::new(net), &w).unwrap().cycles;
    let mesh = cyc(NetworkConfig::mesh(dims));
    let torus = cyc(NetworkConfig::half_torus(dims));
    let ruche = cyc(NetworkConfig::half_ruche(
        dims,
        2,
        CrossbarScheme::Depopulated,
    ));
    assert!(torus > mesh, "half-torus {torus} slower than mesh {mesh}");
    assert!(ruche < mesh, "ruche2 {ruche} faster than mesh {mesh}");
}

#[test]
fn manycore_energy_story_matches_figure13() {
    // Half-torus spends more total energy than mesh (router energy), while
    // ruche2-depop spends less; core energy is identical. BFS is the
    // stall-dominated case where the latency reduction pays off clearly.
    let dims = Dims::new(16, 8);
    let w = Workload::build(Benchmark::Bfs, DatasetId::Graph(GraphId::Os), dims);
    let e = |net: NetworkConfig| run(&SystemConfig::new(net), &w).unwrap().energy;
    let mesh = e(NetworkConfig::mesh(dims));
    let torus = e(NetworkConfig::half_torus(dims));
    let ruche = e(NetworkConfig::half_ruche(
        dims,
        2,
        CrossbarScheme::Depopulated,
    ));
    assert_eq!(mesh.core_pj, torus.core_pj);
    assert_eq!(mesh.core_pj, ruche.core_pj);
    assert!(torus.router_pj > mesh.router_pj * 1.3);
    assert!(torus.total_pj() > mesh.total_pj());
    // At 16×8 the ruche total is at worst a wash with mesh (the clear win
    // appears at 32×16 — Figure 13 / EXPERIMENTS.md); it always beats the
    // half-torus and never inflates router energy.
    assert!(ruche.total_pj() < torus.total_pj());
    assert!(ruche.total_pj() <= mesh.total_pj() * 1.05);
    assert!(ruche.router_pj < mesh.router_pj);
}

#[test]
fn remote_load_latency_split_is_consistent() {
    let dims = Dims::new(16, 8);
    let w = Workload::build(Benchmark::PageRank, DatasetId::Graph(GraphId::Os), dims);
    let r = run(
        &SystemConfig::new(NetworkConfig::half_ruche(
            dims,
            3,
            CrossbarScheme::FullyPopulated,
        )),
        &w,
    )
    .unwrap();
    let lat = &r.load_latency;
    assert!(lat.total.count() > 1000);
    assert!(
        (lat.intrinsic.mean() + lat.congestion.mean() - lat.total.mean()).abs() < 0.5,
        "split sums to total"
    );
    assert!(lat.intrinsic.mean() > 5.0);
}

#[test]
fn phys_energy_model_consistent_with_network_ports() {
    // Every port of every evaluated topology has a finite positive hop
    // energy, and long-range links carry wire energy.
    let dims = Dims::new(8, 8);
    for cfg in [
        NetworkConfig::mesh(dims),
        NetworkConfig::torus(dims),
        NetworkConfig::full_ruche(dims, 3, CrossbarScheme::Depopulated),
    ] {
        let m = EnergyModel::new(&cfg, Tech::n12());
        for d in cfg.ports() {
            let e = m.hop_energy_pj(d);
            assert!(e > 0.0 && e < 20.0, "{} {d}: {e}", cfg.label());
        }
    }
}

#[test]
fn tile_to_memory_saturation_tracks_compute_memory_ratio() {
    // §4.5: on 16×8 the tile-to-memory saturation approaches the 4:1
    // compute-to-memory bound (25%) once Ruche relieves the bisection:
    // mesh ~16-17%, ruche3 ~21%.
    let dims = Dims::new(16, 8);
    let mesh = saturation_throughput(
        &NetworkConfig::mesh(dims).with_edge_memory_ports(),
        Pattern::TileToMemory,
        9,
    );
    let ruche = saturation_throughput(
        &NetworkConfig::half_ruche(dims, 3, CrossbarScheme::FullyPopulated)
            .with_edge_memory_ports(),
        Pattern::TileToMemory,
        9,
    );
    assert!((0.12..0.21).contains(&mesh), "mesh {mesh}");
    assert!(ruche > mesh, "ruche {ruche} > mesh {mesh}");
    assert!(ruche < 0.27, "bounded by the compute:memory ratio: {ruche}");
}
