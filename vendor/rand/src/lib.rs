//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors the pieces of `rand` it actually uses: [`SmallRng`]
//! (xoshiro256++ seeded via SplitMix64, the same generator `rand` 0.8 uses
//! on 64-bit targets), the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, and
//! the uniform/Bernoulli sampling helpers (`gen`, `gen_range`, `gen_bool`,
//! `gen_ratio`). Streams are fully deterministic given a seed; nothing here
//! reads OS entropy.

#![warn(missing_docs)]

pub mod rngs;

pub use rngs::SmallRng;

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64 (the
    /// expansion `rand` 0.8 uses, so seeded streams are portable).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 with the standard increment and mixers.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, out) in z.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from the "standard" distribution
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), the float conversion rand uses.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types samplable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `high > low`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low < high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform draw from `[0, span)` by rejection (Lemire-style
/// threshold on the low word).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Reject draws from the final partial block.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = widening_mul(v, span);
        if lo <= zone {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                debug_assert!(low <= high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        if p >= 1.0 {
            return true;
        }
        // Compare against p scaled to 64 fractional bits.
        let threshold = (p * (1u128 << 64) as f64) as u64;
        self.next_u64() < threshold
    }

    /// Bernoulli draw with probability `numerator / denominator`.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or the ratio exceeds 1.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            denominator > 0 && numerator <= denominator,
            "gen_ratio: {numerator}/{denominator} not in [0, 1]"
        );
        if numerator == denominator {
            return true;
        }
        uniform_u64(self, denominator as u64) < numerator as u64
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u16 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..5);
            assert!(w < 5);
            let x: i32 = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_the_range_roughly_uniformly() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            counts[rng.gen_range(0..6usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((29_000..31_000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn gen_ratio_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((24_000..26_000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| rng.gen_ratio(5, 5)));
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn takes_dyn(rng: &mut (dyn RngCore + '_)) -> u16 {
            rng.gen_range(0..10)
        }
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(takes_dyn(&mut rng) < 10);
    }
}
