//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++, the algorithm
/// behind `rand` 0.8's `SmallRng` on 64-bit platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // An all-zero state would be a fixed point; nudge it (matches
        // xoshiro's guidance; unreachable via seed_from_u64).
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // Reference stream of xoshiro256++ from state [1, 2, 3, 4]
        // (Blackman & Vigna's test vector).
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = SmallRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
