//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace derives serde traits on config and stats types so that a
//! real serde can be dropped in when the build environment has registry
//! access; nothing in-tree performs serialization yet. These derives
//! accept the same attribute surface and expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
