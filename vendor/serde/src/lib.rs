//! Offline stub of the `serde` facade.
//!
//! Exposes the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros, so `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile without registry access.
//! No serialization machinery is provided — nothing in the workspace
//! serializes yet; swap in real serde when the environment has crates.io.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de> {}
