//! Offline stub of `criterion`, covering the API this workspace's
//! microbenchmarks use: `criterion_group!`/`criterion_main!`,
//! `Criterion::{default, sample_size, bench_function, benchmark_group}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and `black_box`.
//!
//! It actually measures — each benchmark runs `sample_size` timed samples
//! and prints mean wall-clock per iteration — but does no statistics,
//! warm-up tuning, or report generation. Swap in real criterion when the
//! build environment has crates.io access.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup (ignored by the stub's scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = 64u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = 4u64;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += iters;
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.criterion.sample_size, f);
        self
    }

    /// Finishes the group (no-op in the stub).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher::default();
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
    }
    if iters == 0 {
        println!("bench {name}: no iterations recorded");
    } else {
        let per = total.as_nanos() as f64 / iters as f64;
        println!("bench {name}: {per:.0} ns/iter ({iters} iters)");
    }
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grouped");
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn harness_runs_benchmarks() {
        let mut c = Criterion::default().sample_size(2);
        sample_bench(&mut c);
    }

    criterion_group!(name = named; config = Criterion::default().sample_size(1); targets = sample_bench);
    criterion_group!(simple, sample_bench);

    #[test]
    fn macro_groups_are_callable() {
        named();
        simple();
    }
}
