//! Offline stub of `proptest`, covering the subset this workspace uses.
//!
//! Real proptest shrinks failing inputs and persists regression seeds; this
//! stub only *samples*: each `proptest!` test runs its body over `cases`
//! deterministically-seeded random inputs (seeded from the test name, so
//! failures reproduce run-to-run). The strategy surface implemented:
//!
//! * integer ranges (`0u16..9`, `1u32..=60`) and `any::<T>()`,
//! * tuples of strategies (arity 1–6),
//! * [`Strategy::prop_map`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` (hard asserts
//!   here — no shrinking) and `prop_assume!` (skips the case),
//! * `ProptestConfig::with_cases`.
//!
//! `.proptest-regressions` files are ignored. Swap in real proptest when
//! the build environment has crates.io access.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // `RUCHE_PROPTEST_CASES` scales every property test at once:
        // interpreter-speed runs (Miri, TSan-instrumented CI) set it low,
        // a nightly soak can set it high. An explicit
        // `with_cases` in the test wins over the environment.
        let cases = std::env::var("RUCHE_PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The sampling source handed to strategies (deterministic per test).
#[derive(Debug)]
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// Creates a runner seeded from a test-name hash.
    pub fn new(seed: u64) -> Self {
        TestRunner {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// FNV-1a, used to derive a per-test seed from its name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of test inputs.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Samples one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.sample(runner))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a default "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.rng().gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> $t {
                runner.rng().gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> f64 {
        runner.rng().gen()
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(runner),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Asserts a condition inside a property body (hard assert in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
///
/// Expands to a `continue` targeting the case loop generated by
/// [`proptest!`], so it may only appear at statement level in a property
/// body (the only place this workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    // Internal `@cfg` arms come first: the public entry arm below is a
    // catch-all that would otherwise re-match (and re-wrap) internal
    // recursive calls forever.
    (@cfg ($cfg:expr) ) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // `$meta` includes the caller's `#[test]`, re-emitted verbatim on
        // the generated zero-argument test function.
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __runner =
                $crate::TestRunner::new($crate::fnv1a(concat!(module_path!(), "::", stringify!($name))));
            let __strategy = ($($strat,)*);
            for __case in 0..__config.cases {
                let ($($arg,)*) = $crate::Strategy::sample(&__strategy, &mut __runner);
                $body
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn sample_of<S: Strategy>(s: S) -> S::Value {
        let mut runner = crate::TestRunner::new(1);
        s.sample(&mut runner)
    }

    #[test]
    fn ranges_sample_in_bounds() {
        for _ in 0..100 {
            let v = sample_of(3u16..9);
            assert!((3..9).contains(&v));
            let w = sample_of(1u32..=60);
            assert!((1..=60).contains(&w));
        }
    }

    #[test]
    fn prop_map_applies() {
        let s = (2u16..4).prop_map(|v| v * 10);
        let v = sample_of(s);
        assert!(v == 20 || v == 30);
    }

    #[test]
    fn tuples_sample_elementwise() {
        let (a, b, c) = sample_of((0u8..2, any::<bool>(), 5usize..6));
        assert!(a < 2);
        let _: bool = b;
        assert_eq!(c, 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: runs, samples in bounds, supports assume.
        #[test]
        fn macro_generates_cases(x in 0u16..10, flip in any::<bool>()) {
            prop_assume!(x > 0);
            prop_assert!(x < 10);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, 100);
            let _ = flip;
        }
    }
}
