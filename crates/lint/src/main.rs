//! `ruche-lint` CLI: lints the workspace and exits non-zero on findings.
//!
//! ```text
//! cargo run -p ruche-lint            # human output
//! cargo run -p ruche-lint -- --json  # machine output (CI)
//! cargo run -p ruche-lint -- --root <path>   # lint another checkout
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let root = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(ruche_lint::workspace_root);
    if args.iter().any(|a| a == "--list") {
        for id in ruche_lint::rules::RULE_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let report = match ruche_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ruche-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "ruche-lint: {} file(s) scanned, {} finding(s)",
            report.files_scanned,
            report.findings.len()
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
