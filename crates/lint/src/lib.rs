//! `ruche-lint` — a dependency-free, token/line-level workspace linter
//! enforcing the repo's determinism and soundness invariants
//! (`cargo run -p ruche-lint`).
//!
//! `cargo clippy` checks general Rust hygiene; this linter checks the
//! *project-specific* contracts that keep artifacts byte-identical and the
//! concurrent step sound — things no generic linter knows about:
//!
//! * no `.unwrap()` in the simulator core ([`rules`]: `no-unwrap`);
//! * no wall-clock reads outside the bench binaries (`wall-clock`);
//! * every hash-container import justifies why its iteration order cannot
//!   leak into an artifact (`hash-order`);
//! * every `unsafe` carries its `// SAFETY:` proof obligation
//!   (`safety-comment`);
//! * every `#[deprecated]` shim is pinned to its replacement by
//!   `tests/deprecated_shims.rs` (`deprecated-shims`);
//! * the public API of the core crates is documented (`pub-doc`).
//!
//! Findings can be suppressed per site with a justified marker:
//! `// lint:allow(<rule>): <reason>` within three lines above the match —
//! the reason is mandatory, an unexplained allow does not count.
//!
//! The scanner ([`scan`]) strips comments and string/char literals and
//! tracks `#[cfg(test)]` regions, so rules match real code tokens only.
//! Everything is plain `std`; the linter must stay runnable in the
//! offline CI container and cheap enough for `repro --lint-only`
//! preflight.

pub mod rules;
pub mod scan;

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`rules::RULE_IDS`]).
    pub rule: &'static str,
    /// Workspace-relative file path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation with the fix direction.
    pub message: String,
}

impl Finding {
    /// Builds a finding; normalizes the path separator.
    pub fn new(rule: &'static str, file: &str, line: usize, message: impl Into<String>) -> Self {
        Finding {
            rule,
            file: file.replace('\\', "/"),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Result of linting a set of files.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// No findings?
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report as JSON (machine-readable CI output). Schema:
    /// `{"files_scanned": N, "findings": [{"rule", "file", "line",
    /// "message"}]}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(f.rule),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            s.push('\n');
            s.push_str("  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lints one file's contents as if it lived at workspace-relative `rel`.
/// The entry point the fixture tests use; [`lint_workspace`] calls it per
/// file. Does not apply the crate-level `deprecated-shims` rule (that one
/// needs the sibling test file; see [`rules::deprecated_shims`]).
pub fn lint_source(rel: &str, contents: &str) -> Vec<Finding> {
    rules::lint_lines(rel, &scan::scan(contents))
}

/// The workspace root, derived from this crate's manifest dir at compile
/// time (`crates/lint` → two levels up). Valid wherever the repo checkout
/// runs, which is all the linter supports.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

/// Lints the whole workspace under `root`: every `.rs` file in
/// `crates/*/src` and the root package's `src/`, skipping `vendor/`
/// (third-party stubs are not held to project rules). Findings come back
/// sorted by (file, line, rule) so output is stable.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut src_dirs: Vec<(PathBuf, PathBuf)> = Vec::new(); // (crate dir, src dir)
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            src_dirs.push((dir, src));
        }
    }
    // The root facade package.
    if root.join("src").is_dir() {
        src_dirs.push((root.to_path_buf(), root.join("src")));
    }

    for (crate_dir, src) in src_dirs {
        let shims = std::fs::read_to_string(crate_dir.join("tests/deprecated_shims.rs")).ok();
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let contents = std::fs::read_to_string(&path)?;
            let lines = scan::scan(&contents);
            report.findings.extend(rules::lint_lines(&rel, &lines));
            rules::deprecated_shims(&rel, &lines, shims.as_deref(), &mut report.findings);
            report.files_scanned += 1;
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_well_formed_when_empty_and_nonempty() {
        let mut r = Report {
            findings: vec![],
            files_scanned: 3,
        };
        assert!(r.to_json().contains("\"findings\": []"));
        r.findings
            .push(Finding::new("no-unwrap", "a/b.rs", 7, "msg \"quoted\""));
        let j = r.to_json();
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"line\": 7"));
    }

    #[test]
    fn workspace_root_contains_the_cargo_manifest() {
        assert!(workspace_root().join("Cargo.toml").is_file());
    }
}
