//! The lint rules. Each rule is a pure function from scanned lines (plus
//! the workspace-relative path) to findings; rule scoping by path prefix
//! and the `lint:allow(<rule>)` escape hatch live here too.
//!
//! Rules exist because each guards a determinism or soundness invariant
//! the repo's artifacts depend on (`docs/SOUNDNESS.md` has the full
//! rationale table):
//!
//! | rule | invariant |
//! |---|---|
//! | `no-unwrap` | the simulator core reports errors, it never aborts |
//! | `wall-clock` | artifacts are functions of inputs, never of time |
//! | `hash-order` | nothing iterates a hash container into an artifact |
//! | `safety-comment` | every `unsafe` carries its proof obligation |
//! | `deprecated-shims` | every shim stays pinned to its replacement |
//! | `pub-doc` | the public surface of the core crates is documented |

use crate::scan::Line;
use crate::Finding;

/// How many lines above a match the `lint:allow(<rule>)` marker may sit.
const ALLOW_WINDOW: usize = 3;

/// All rule ids, for `--list` and the fixture tests.
pub const RULE_IDS: [&str; 6] = [
    "no-unwrap",
    "wall-clock",
    "hash-order",
    "safety-comment",
    "deprecated-shims",
    "pub-doc",
];

/// Is a finding of `rule` at line index `idx` suppressed by a nearby
/// `lint:allow(<rule>): reason` marker? The marker must carry a reason
/// (the colon is mandatory) — an unexplained allow is itself a finding.
fn allowed(lines: &[Line], idx: usize, rule: &str) -> bool {
    let lo = idx.saturating_sub(ALLOW_WINDOW);
    let marker = format!("lint:allow({rule})");
    lines[lo..=idx].iter().any(|l| {
        l.comment
            .find(&marker)
            .is_some_and(|p| l.comment[p + marker.len()..].trim_start().starts_with(':'))
    })
}

/// Runs every rule that applies to `rel` (workspace-relative, `/`-separated)
/// over the scanned `lines`.
pub fn lint_lines(rel: &str, lines: &[Line]) -> Vec<Finding> {
    let mut out = Vec::new();
    if rel.starts_with("crates/noc/src") {
        no_unwrap(rel, lines, &mut out);
    }
    if !rel.starts_with("crates/bench/src/bin") {
        wall_clock(rel, lines, &mut out);
    }
    hash_order(rel, lines, &mut out);
    safety_comment(rel, lines, &mut out);
    if [
        "crates/noc/src",
        "crates/verify/src",
        "crates/telemetry/src",
    ]
    .iter()
    .any(|p| rel.starts_with(p))
    {
        pub_doc(rel, lines, &mut out);
    }
    out
}

/// `no-unwrap`: the simulator core (`crates/noc/src`) must never
/// `.unwrap()` outside tests — a malformed config or a protocol bug must
/// surface as an error or an `expect` with an invariant message, not as a
/// bare panic with no context.
fn no_unwrap(rel: &str, lines: &[Line], out: &mut Vec<Finding>) {
    for (i, l) in lines.iter().enumerate() {
        if l.in_test || !l.code.contains(".unwrap()") {
            continue;
        }
        if allowed(lines, i, "no-unwrap") {
            continue;
        }
        out.push(Finding::new(
            "no-unwrap",
            rel,
            i + 1,
            "`.unwrap()` in the simulator core: return an error or use \
             `expect(\"<invariant>\")` so a panic names what broke",
        ));
    }
}

/// `wall-clock`: nothing outside the benchmark binaries may read the wall
/// clock (`Instant`, `SystemTime`). Artifacts must be pure functions of
/// config + seed; a timestamp smuggled into a result breaks byte-identical
/// reproduction.
fn wall_clock(rel: &str, lines: &[Line], out: &mut Vec<Finding>) {
    for (i, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let hit = ["Instant", "SystemTime"]
            .iter()
            .find(|t| contains_token(&l.code, t));
        let Some(tok) = hit else { continue };
        if allowed(lines, i, "wall-clock") {
            continue;
        }
        out.push(Finding::new(
            "wall-clock",
            rel,
            i + 1,
            format!(
                "`{tok}` outside the bench binaries: artifacts must be \
                 functions of (config, seed), never of time"
            ),
        ));
    }
}

/// `hash-order`: importing `HashMap`/`HashSet` requires a justification
/// marker (`lint:allow(hash-order): <why iteration order cannot leak>`).
/// Hash iteration order is nondeterministic across std versions and
/// platforms; one `for (k, v) in map` feeding a results file silently
/// breaks byte-identical artifacts.
fn hash_order(rel: &str, lines: &[Line], out: &mut Vec<Finding>) {
    for (i, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let t = l.code.trim_start();
        if !t.starts_with("use ") || !(t.contains("HashMap") || t.contains("HashSet")) {
            continue;
        }
        if allowed(lines, i, "hash-order") {
            continue;
        }
        out.push(Finding::new(
            "hash-order",
            rel,
            i + 1,
            "hash container imported without a `lint:allow(hash-order): \
             <reason>` marker stating why its iteration order cannot reach \
             an artifact (or switch to BTreeMap/BTreeSet)",
        ));
    }
}

/// `safety-comment`: every `unsafe` keyword must carry a `// SAFETY:`
/// comment within the few lines above it stating the proof obligation.
/// Complements clippy's `undocumented_unsafe_blocks` (deny, workspace
/// lints) by also covering `unsafe impl` and `unsafe fn`.
fn safety_comment(rel: &str, lines: &[Line], out: &mut Vec<Finding>) {
    const WINDOW: usize = 8;
    for (i, l) in lines.iter().enumerate() {
        if !contains_token(&l.code, "unsafe") {
            continue;
        }
        let lo = i.saturating_sub(WINDOW);
        if lines[lo..=i].iter().any(|c| c.comment.contains("SAFETY:")) {
            continue;
        }
        if allowed(lines, i, "safety-comment") {
            continue;
        }
        out.push(Finding::new(
            "safety-comment",
            rel,
            i + 1,
            "`unsafe` without a nearby `// SAFETY:` comment stating the \
             proof obligation",
        ));
    }
}

/// `pub-doc`: public items of the core crates (`noc`, `verify`,
/// `telemetry`) must carry doc comments — these crates are the API the
/// paper-reproduction artifacts and downstream crates program against.
fn pub_doc(rel: &str, lines: &[Line], out: &mut Vec<Finding>) {
    const ITEMS: [&str; 10] = [
        "pub fn ",
        "pub const fn ",
        "pub unsafe fn ",
        "pub async fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub const ",
        "pub static ",
        "pub type ",
    ];
    let mut pending_doc = false;
    let mut attr_depth = 0i32;
    for (i, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let t = l.code.trim_start();
        let rc = l.raw.trim_start();
        if rc.starts_with("///") || rc.starts_with("/**") {
            pending_doc = true;
            continue;
        }
        if attr_depth > 0 {
            attr_depth += bracket_delta(&l.code);
            continue;
        }
        if t.starts_with("#[") {
            attr_depth += bracket_delta(&l.code);
            continue;
        }
        if t.is_empty() {
            // Blank or comment-only line: comments between the doc and the
            // item keep the doc pending; a fully blank line drops it.
            if l.raw.trim().is_empty() {
                pending_doc = false;
            }
            continue;
        }
        // Out-of-line `pub mod name;` is exempt: its docs live as the
        // `//!` header of the module file itself.
        let inline_mod = t.starts_with("pub mod ") && !t.trim_end().ends_with(';');
        let is_item = ITEMS.iter().any(|p| t.starts_with(p)) || inline_mod;
        if is_item && !pending_doc && !allowed(lines, i, "pub-doc") {
            out.push(Finding::new(
                "pub-doc",
                rel,
                i + 1,
                "undocumented public item in a core crate: add a `///` \
                 doc comment (what it is, when to use it)",
            ));
        }
        pending_doc = false;
    }
}

/// Net `[`/`]` balance of a line's code.
fn bracket_delta(code: &str) -> i32 {
    code.chars().fold(0, |d, c| match c {
        '[' => d + 1,
        ']' => d - 1,
        _ => d,
    })
}

/// Whole-word match: `pat` in `code` not embedded in a longer identifier.
fn contains_token(code: &str, pat: &str) -> bool {
    let mut start = 0;
    while let Some(p) = code[start..].find(pat) {
        let at = start + p;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[at + pat.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + pat.len();
    }
    false
}

/// `deprecated-shims`, a crate-level rule: every `#[deprecated]` item in a
/// crate's `src/` must be exercised by that crate's
/// `tests/deprecated_shims.rs` — the one test allowed to call shims, which
/// pins each to its replacement until removal.
pub fn deprecated_shims(
    rel: &str,
    lines: &[Line],
    shims_test: Option<&str>,
    out: &mut Vec<Finding>,
) {
    for (i, l) in lines.iter().enumerate() {
        if l.in_test || !l.code.trim_start().starts_with("#[deprecated") {
            continue;
        }
        // The deprecated item's name: first `fn`/`struct`/`enum`/`type`
        // name within the next few lines (multi-line attributes allowed).
        let name = lines[i..lines.len().min(i + 8)].iter().find_map(|n| {
            let t = n.code.trim_start();
            ["fn ", "struct ", "enum ", "type "].iter().find_map(|kw| {
                t.find(kw).map(|p| {
                    t[p + kw.len()..]
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect::<String>()
                })
            })
        });
        let Some(name) = name.filter(|n| !n.is_empty()) else {
            continue;
        };
        if allowed(lines, i, "deprecated-shims") {
            continue;
        }
        match shims_test {
            None => out.push(Finding::new(
                "deprecated-shims",
                rel,
                i + 1,
                format!(
                    "deprecated item `{name}` but the crate has no \
                     tests/deprecated_shims.rs pinning shims to their \
                     replacements"
                ),
            )),
            Some(text) if !contains_token(text, &name) => out.push(Finding::new(
                "deprecated-shims",
                rel,
                i + 1,
                format!(
                    "deprecated item `{name}` is not exercised by \
                     tests/deprecated_shims.rs — a shim nobody pins can \
                     silently diverge from its replacement"
                ),
            )),
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    #[test]
    fn allow_markers_require_a_reason() {
        let src = "// lint:allow(no-unwrap)\nlet x = y.unwrap();\n";
        let lines = scan(src);
        assert!(
            !allowed(&lines, 1, "no-unwrap"),
            "bare allow must not count"
        );
        let src = "// lint:allow(no-unwrap): startup only, config is static\nlet x = y.unwrap();\n";
        let lines = scan(src);
        assert!(allowed(&lines, 1, "no-unwrap"));
    }

    #[test]
    fn token_matching_is_word_bounded() {
        assert!(contains_token("let t = Instant::now();", "Instant"));
        assert!(!contains_token("let instantaneous = 3;", "Instant"));
        assert!(!contains_token("fn my_unsafe_helper()", "unsafe"));
        assert!(contains_token("unsafe impl Send for X {}", "unsafe"));
    }
}
