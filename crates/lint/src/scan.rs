//! Token/line-level Rust scanner: the dependency-free front end of
//! `ruche-lint`.
//!
//! Full parsing is neither available (no external crates) nor necessary —
//! every rule the linter enforces is decidable from three per-line facts:
//!
//! * `code`: the line with comments removed and the *contents* of string
//!   and char literals blanked out (so a pattern inside a string can never
//!   trigger a rule, and a `//` inside a string never eats the line);
//! * `comment`: the comment text of the line (doc comments included),
//!   where `SAFETY:` obligations and `lint:allow(...)` markers live;
//! * `in_test`: whether the line sits inside a `#[cfg(test)]` item, which
//!   most rules skip (test code may freely use wall clocks and `unwrap`).
//!
//! The scanner is deliberately conservative: nested block comments, raw
//! strings (`r"…"`, `r#"…"#`), byte strings, and multi-line literals are
//! handled; exotic token streams inside macros are treated as plain text,
//! which at worst makes the linter *stricter* than a full parser (a rule
//! match inside a macro body still counts — fine for this codebase).

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The raw line as read from disk (no trailing newline).
    pub raw: String,
    /// Code with comments stripped and literal contents blanked.
    pub code: String,
    /// Concatenated comment text of this line (line, block, and doc).
    pub comment: String,
    /// Inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// Lexer mode carried across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    /// Inside `/* … */`; Rust block comments nest, so track the depth.
    Block(u32),
    /// Inside a normal `"…"` string (may span lines via `\` continuation).
    Str,
    /// Inside a raw string with this many `#`s.
    RawStr(u32),
}

/// Scans full file contents into per-line records.
pub fn scan(contents: &str) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut mode = Mode::Code;
    for raw in contents.lines() {
        let (code, comment, next) = scan_line(raw, mode);
        mode = next;
        lines.push(Line {
            raw: raw.to_string(),
            code,
            comment,
            in_test: false,
        });
    }
    mark_cfg_test(&mut lines);
    lines
}

/// Scans one line starting in `mode`; returns (code, comment, end mode).
fn scan_line(raw: &str, mut mode: Mode) -> (String, String, Mode) {
    let b: Vec<char> = raw.chars().collect();
    let n = b.len();
    let mut code = String::new();
    let mut comment = String::new();
    let mut i = 0;
    while i < n {
        match mode {
            Mode::Block(depth) => {
                if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                    i += 2;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else {
                    comment.push(b[i]);
                    i += 1;
                }
            }
            Mode::Str => {
                if b[i] == '\\' {
                    i += 2; // skip the escaped char (possibly the quote)
                } else if b[i] == '"' {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if b[i] == '"' && closes_raw(&b, i + 1, hashes) {
                    code.push('"');
                    i += 1 + hashes as usize;
                    mode = Mode::Code;
                } else {
                    i += 1;
                }
            }
            Mode::Code => {
                let c = b[i];
                if c == '/' && i + 1 < n && b[i + 1] == '/' {
                    // Line comment (doc or not): the rest is comment text.
                    comment.push_str(&raw[char_offset(raw, i)..]);
                    i = n;
                } else if c == '/' && i + 1 < n && b[i + 1] == '*' {
                    mode = Mode::Block(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
                    let (hashes, skip) = raw_string_open(&b, i);
                    code.push('"');
                    mode = Mode::RawStr(hashes);
                    i += skip;
                } else if c == 'b' && i + 1 < n && b[i + 1] == '"' {
                    code.push('"');
                    mode = Mode::Str;
                    i += 2;
                } else if c == '\'' && is_char_literal(&b, i) {
                    // Blank the char literal (vs. a lifetime, kept as-is).
                    code.push('\'');
                    i += 1;
                    while i < n && b[i] != '\'' {
                        if b[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    if i < n {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    // Plain strings do not actually continue across lines without an
    // escape; treat an unterminated `"` at EOL as continuing (covers the
    // `\` continuation case; over-approximation is harmless for linting).
    (code, comment, mode)
}

/// Byte offset of char index `i` in `s`.
fn char_offset(s: &str, i: usize) -> usize {
    s.char_indices().nth(i).map(|(o, _)| o).unwrap_or(s.len())
}

/// Is `b[i]` the start of `r"`, `r#"`, `br"`, `rb"`, … ?
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    // Must not be part of a longer identifier (e.g. `for` ends in `r`).
    if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

/// Number of `#`s and total chars of the raw-string opener at `i`.
fn raw_string_open(b: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // the `"`
    (hashes, j - i)
}

/// Does position `i` (just past a `"`) close a raw string with `hashes` #s?
fn closes_raw(b: &[char], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| b.get(i + k) == Some(&'#'))
}

/// Is the `'` at `b[i]` a char literal (vs. a lifetime)? Char literals
/// always have a closing `'` within a few chars: `'x'`, `'\n'`, `'\u{…}'`.
fn is_char_literal(b: &[char], i: usize) -> bool {
    // A lifetime follows `<`, `&`, `,`, `:` etc. and is never closed by a
    // nearby quote. Look ahead for the closing quote.
    let mut j = i + 1;
    if j < b.len() && b[j] == '\\' {
        // Escaped: scan to the next quote (bounded — `\u{10FFFF}` worst case).
        let limit = (i + 12).min(b.len());
        j += 1;
        while j < limit {
            if b[j] == '\'' {
                return true;
            }
            j += 1;
        }
        return false;
    }
    j + 1 < b.len() && b[j] != '\'' && b[j + 1] == '\''
}

/// Marks lines inside `#[cfg(test)]` items. Brace-counted on the stripped
/// code, so braces in strings or comments cannot desynchronize it.
fn mark_cfg_test(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("cfg(test)") && lines[i].code.trim_start().starts_with("#[") {
            // Find the item's opening brace (or a `;` for `mod tests;`).
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            'outer: while j < lines.len() {
                for c in lines[j].code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        ';' if !opened && depth == 0 => break 'outer, // out-of-line module
                        _ => {}
                    }
                }
                lines[j].in_test = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped_from_code() {
        let lines = scan("let x = \"unwrap() inside\"; // .unwrap() trailing\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains(".unwrap() trailing"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\nstill comment .unwrap()\n*/ code\n";
        let lines = scan(src);
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert!(lines[2].code.is_empty());
        assert!(lines[2].comment.contains("unwrap"));
        assert_eq!(lines[3].code.trim(), "code");
    }

    #[test]
    fn raw_strings_do_not_leak_tokens() {
        let lines = scan("let p = r#\"no .unwrap() \" here\"#; foo();\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("foo()"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let lines = scan("fn f<'a>(x: &'a str) { let q = '\"'; let z = 'y'; }\n");
        assert!(lines[0].code.contains("<'a>"));
        assert!(lines[0].code.contains("&'a str"));
        // The quote char must not open a string that eats the rest.
        assert!(lines[0].code.contains("let z ="));
    }

    #[test]
    fn cfg_test_items_are_marked_to_their_closing_brace() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test && lines[2].in_test && lines[3].in_test && lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn out_of_line_test_module_marks_nothing_after_the_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let lines = scan(src);
        assert!(!lines[2].in_test);
    }
}
