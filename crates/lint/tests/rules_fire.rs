//! Negative-control tests for every lint rule: each fixture under
//! `tests/fixtures/` contains a deliberate violation and the rule must
//! fire on it — the same prove-the-checker-can-fail discipline as
//! `ruche-soundness`'s broken protocol variants. The final test pins the
//! real workspace at zero findings, which is what makes the rules
//! enforceable in CI at all.

use ruche_lint::rules::deprecated_shims;
use ruche_lint::scan::scan;
use ruche_lint::{lint_source, lint_workspace, workspace_root, Finding};

/// Findings of `rule` when `contents` is linted as if at `rel`.
fn fire(rel: &str, contents: &str, rule: &str) -> Vec<Finding> {
    lint_source(rel, contents)
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

#[test]
fn no_unwrap_fires_in_core_scope_only() {
    let src = include_str!("fixtures/unwrap.rs");
    let hits = fire("crates/noc/src/fixture.rs", src, "no-unwrap");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].line, 3);
    // The same code outside the simulator core is not this rule's business.
    assert!(fire("crates/bench/src/fixture.rs", src, "no-unwrap").is_empty());
}

#[test]
fn wall_clock_fires_everywhere_but_bench_binaries() {
    let src = include_str!("fixtures/wall_clock.rs");
    let hits = fire("crates/traffic/src/fixture.rs", src, "wall-clock");
    assert!(hits.len() >= 3, "Instant use + now + SystemTime: {hits:?}");
    assert!(
        fire("crates/bench/src/bin/fixture.rs", src, "wall-clock").is_empty(),
        "bench binaries measure wall time by design"
    );
}

#[test]
fn hash_order_fires_on_unjustified_imports() {
    let src = include_str!("fixtures/hash_order.rs");
    let hits = fire("crates/stats/src/fixture.rs", src, "hash-order");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].line, 2, "the `use` line is the anchor");
}

#[test]
fn safety_comment_fires_on_bare_unsafe_impl_and_block() {
    let src = include_str!("fixtures/safety.rs");
    let hits = fire("crates/noc/src/fixture.rs", src, "safety-comment");
    let lines: Vec<usize> = hits.iter().map(|f| f.line).collect();
    assert!(lines.contains(&5), "unsafe impl flagged: {lines:?}");
    assert!(lines.contains(&8), "unsafe block flagged: {lines:?}");
}

#[test]
fn pub_doc_fires_on_bare_items_and_spares_documented_ones() {
    let src = include_str!("fixtures/pub_doc.rs");
    let hits = fire("crates/noc/src/fixture.rs", src, "pub-doc");
    let lines: Vec<usize> = hits.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![2, 8], "Bare and AlsoBare only: {hits:?}");
    // Out of the core crates the rule does not apply.
    assert!(fire("crates/stats/src/fixture.rs", src, "pub-doc").is_empty());
}

#[test]
fn deprecated_shims_fires_without_a_pinning_test() {
    let lines = scan(include_str!("fixtures/deprecated.rs"));
    let rel = "crates/noc/src/fixture.rs";

    // No shims test at all: both items flagged.
    let mut out = Vec::new();
    deprecated_shims(rel, &lines, None, &mut out);
    assert_eq!(out.len(), 2, "{out:?}");

    // A shims test covering only one item: the other stays flagged.
    let mut out = Vec::new();
    deprecated_shims(rel, &lines, Some("fn t() { old_way(); }"), &mut out);
    assert_eq!(out.len(), 1, "{out:?}");
    assert!(out[0].message.contains("OldThing"));

    // Both names exercised (multi-line attribute form included): clean.
    let mut out = Vec::new();
    deprecated_shims(
        rel,
        &lines,
        Some("fn t() { old_way(); let _ = OldThing; }"),
        &mut out,
    );
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn every_escape_hatch_silences_its_rule() {
    // The clean fixture uses all of them: a justified lint:allow for
    // hash-order and no-unwrap, a SAFETY comment, doc comments, strings
    // containing rule patterns, and a cfg(test) module using Instant.
    let src = include_str!("fixtures/clean.rs");
    let hits = lint_source("crates/noc/src/clean.rs", src);
    assert!(hits.is_empty(), "expected clean, got: {hits:?}");
}

#[test]
fn bare_allow_markers_do_not_count() {
    let src = "// lint:allow(no-unwrap)\npub(crate) fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let hits = fire("crates/noc/src/fixture.rs", src, "no-unwrap");
    assert_eq!(hits.len(), 1, "an allow without a reason is not an allow");
}

#[test]
fn the_workspace_is_clean() {
    // THE enforcement test: zero findings across the real workspace. A
    // rule violation anywhere in crates/*/src fails the suite, not just
    // the ruche-lint CI job.
    let report = lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(report.files_scanned > 50, "scan saw the whole workspace");
    assert!(
        report.is_clean(),
        "ruche-lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
