// Fixture: an undocumented public item in a core crate must be flagged.
pub struct Bare;

/// Documented — must NOT be flagged.
pub fn fine() {}

#[derive(Debug)]
pub enum AlsoBare {
    A,
}
