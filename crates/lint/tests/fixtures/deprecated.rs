// Fixture: deprecated shims must be exercised by tests/deprecated_shims.rs.
/// Old entry point.
#[deprecated(since = "0.1.0", note = "use `new_way` instead")]
pub fn old_way() {}

/// Multi-line attribute form.
#[deprecated(
    since = "0.2.0",
    note = "use `Replacement` instead"
)]
pub struct OldThing;
