//! Fixture: every escape hatch in one file — all rules must stay silent.

// lint:allow(hash-order): counts are summed, never iterated into output.
use std::collections::HashMap;

/// Documented public item.
pub fn documented(m: &HashMap<u32, u32>) -> u32 {
    // The pattern ".unwrap()" inside a string or comment is not code.
    let s = "calling .unwrap() and Instant::now() in a string";
    let _ = s;
    m.values().sum()
}

/// Wrapper with a justified unsafe site.
pub fn read_first(xs: &[u8]) -> u8 {
    // SAFETY: caller guarantees `xs` is non-empty (checked by the only
    // call site in this fixture).
    unsafe { *xs.as_ptr() }
}

// lint:allow(no-unwrap): fixture demonstrates a justified unwrap site.
fn startup(x: Option<u8>) -> u8 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_use_clocks_and_unwrap() {
        let t = Instant::now();
        let _ = "x".parse::<u32>().unwrap_or(0);
        assert!(t.elapsed().as_nanos() < u128::MAX);
    }
}
