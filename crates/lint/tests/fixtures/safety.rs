// Fixture: `unsafe` without a SAFETY comment must be flagged — the block,
// the impl, and the fn forms alike.
struct Ptr(*mut u8);

unsafe impl Send for Ptr {}

fn read(p: &Ptr) -> u8 {
    unsafe { *p.0 }
}
