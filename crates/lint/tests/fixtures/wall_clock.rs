// Fixture: wall-clock reads outside the bench binaries must be flagged.
use std::time::Instant;

fn measure() -> u128 {
    let t = Instant::now();
    t.elapsed().as_nanos()
}

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
