// Fixture: `.unwrap()` in simulator-core code must be flagged.
pub fn parse(x: &str) -> u32 {
    x.parse().unwrap()
}
