//! Positive and negative tests for the pool-protocol model checker.
//!
//! Positive: the real protocol ([`EpochCore`]) passes exhaustively at
//! every bound of the standard grid, with deterministic schedule counts.
//! Negative: every deliberately broken variant in [`ruche_soundness::broken`]
//! is caught with a concrete failing-schedule witness — proving the
//! checker can actually fail, the same discipline `ruche-verify` applies
//! to its deadlock checker.

use ruche_soundness::{
    broken, check, standard_grid, Bound, CheckResult, EpochCore, Violation, DEFAULT_CAP,
};

/// Convenience: check the real protocol at `bound`.
fn check_real(bound: &Bound) -> CheckResult {
    check(EpochCore::new(), bound, DEFAULT_CAP)
}

#[test]
fn headline_bound_is_exhaustive_and_deterministic() {
    // The acceptance bound: 2 workers × 2 epochs × 2 tasks. The explored
    // schedule count must exceed 1000 and be identical across runs.
    let bound = Bound::new(2, 2, 2);
    let a = check_real(&bound);
    let b = check_real(&bound);
    assert_eq!(a, b, "exploration must be deterministic");
    match a {
        CheckResult::Pass(stats) => {
            assert!(
                stats.schedules > 1000,
                "expected > 1000 schedules, got {}",
                stats.schedules
            );
            assert!(
                stats.workers_participated,
                "the bound must exercise caller→worker handoff"
            );
        }
        other => panic!("expected pass, got {other:?}"),
    }
}

#[test]
fn schedule_counts_match_independent_enumeration() {
    // These exact counts were cross-validated against a non-memoized
    // brute-force enumeration of complete schedules (every path explored
    // individually). They pin both the thread-program shape and the
    // dynamic-programming combination: a change to either shows up here.
    for (bound, expect) in [
        (Bound::new(1, 1, 1), 144),
        (Bound::new(1, 2, 2), 188_616),
        (Bound::new(2, 1, 2), 1_210_810),
        (Bound::new(2, 1, 3), 11_113_810),
    ] {
        match check_real(&bound) {
            CheckResult::Pass(stats) => assert_eq!(
                stats.schedules, expect,
                "schedule count changed at {bound:?}"
            ),
            other => panic!("expected pass at {bound:?}, got {other:?}"),
        }
    }
}

#[test]
fn sleep_bound_schedule_counts_are_pinned() {
    // Deterministic-exploration pins for the skip/claim extension, taken
    // from the first verified run and cross-checked against the base
    // bounds: sleeping one slot strictly shrinks the schedule space
    // (105,426 < 188,616 at 1w-2e-2t; 80,412,431,770 < 158,373,817,810 at
    // 2w-2e-2t), because the skipped slot contributes no claim/finish
    // actions in its sleeping epoch. A drift here means the sleep/wake
    // thread program or the skip bookkeeping changed.
    for (bound, expect) in [
        (Bound::new(1, 2, 2).with_sleep(0, 1), 105_426),
        (Bound::new(2, 2, 2).with_sleep(0, 0), 80_412_431_770),
    ] {
        match check_real(&bound) {
            CheckResult::Pass(stats) => assert_eq!(
                stats.schedules, expect,
                "schedule count changed at {bound:?}"
            ),
            other => panic!("expected pass at {bound:?}, got {other:?}"),
        }
    }
}

#[test]
fn the_whole_standard_grid_passes() {
    for (label, bound) in standard_grid() {
        match check_real(&bound) {
            CheckResult::Pass(stats) => {
                assert!(stats.schedules > 0, "{label}: no schedules explored");
                assert!(
                    stats.workers_participated,
                    "{label}: workers never claimed a task (vacuous bound)"
                );
            }
            other => panic!("{label}: expected pass, got {other:?}"),
        }
    }
}

#[test]
fn panic_reraise_is_verified_in_every_interleaving() {
    // A panicking task in either epoch: the caller must observe the flag
    // at that epoch's barrier exactly once, and never at the other's.
    for (epoch, task) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
        let bound = Bound::new(2, 2, 2).with_panic(epoch, task);
        match check_real(&bound) {
            CheckResult::Pass(_) => {}
            other => panic!("panic at ({epoch},{task}): expected pass, got {other:?}"),
        }
    }
}

#[test]
fn zero_workers_collapse_to_a_single_serial_schedule() {
    match check_real(&Bound::new(0, 3, 3)) {
        CheckResult::Pass(stats) => {
            assert_eq!(stats.schedules, 1, "one thread, one schedule");
            assert!(!stats.workers_participated);
        }
        other => panic!("expected pass, got {other:?}"),
    }
}

/// Checks a broken variant at the headline bound and returns the failure.
fn expect_failure<P>(proto: P) -> ruche_soundness::Failure
where
    P: ruche_soundness::PoolProtocol + Clone + Eq + std::hash::Hash,
{
    match check(proto, &Bound::new(2, 2, 2), DEFAULT_CAP) {
        CheckResult::Fail(failure) => *failure,
        other => panic!("broken protocol not caught: {other:?}"),
    }
}

#[test]
fn wakeup_without_epoch_bump_yields_a_lost_wakeup_witness() {
    let failure = expect_failure(broken::NoEpochBump::default());
    assert!(
        matches!(failure.violation, Violation::LostWakeup { .. }),
        "expected LostWakeup, got {:?}",
        failure.violation
    );
    assert!(
        !failure.witness.steps.is_empty(),
        "a violation must come with its schedule"
    );
    // The witness replays the publish that failed to wake anyone.
    let rendered = failure.to_string();
    assert!(
        rendered.contains("publish epoch") && rendered.contains("lost wakeup"),
        "unexpected witness rendering:\n{rendered}"
    );
    // Witnesses are deterministic too.
    assert_eq!(failure, expect_failure(broken::NoEpochBump::default()));
}

#[test]
fn silent_shutdown_deadlocks_drop_join() {
    let failure = expect_failure(broken::SilentShutdown::default());
    let Violation::Deadlock { blocked } = &failure.violation else {
        panic!("expected Deadlock, got {:?}", failure.violation);
    };
    assert!(
        blocked
            .iter()
            .any(|(t, why)| *t == ruche_soundness::model::CALLER && why.contains("join")),
        "Drop's join must be among the blocked threads: {blocked:?}"
    );
}

#[test]
fn stuck_claim_cursor_is_a_double_claim() {
    let failure = expect_failure(broken::StuckCursor::default());
    assert!(
        matches!(failure.violation, Violation::DoubleClaim { task: 0, .. }),
        "expected DoubleClaim of task 0, got {:?}",
        failure.violation
    );
}

#[test]
fn forgotten_done_notification_hangs_the_barrier() {
    let failure = expect_failure(broken::ForgottenDoneNotify::default());
    let Violation::Deadlock { blocked } = &failure.violation else {
        panic!("expected Deadlock, got {:?}", failure.violation);
    };
    assert!(
        blocked
            .iter()
            .any(|(t, why)| *t == ruche_soundness::model::CALLER && why.contains("done")),
        "the caller must be stuck on the barrier: {blocked:?}"
    );
}

#[test]
fn torn_epoch_read_spins_forever() {
    let failure = expect_failure(broken::TornEpochRead::default());
    assert!(
        matches!(failure.violation, Violation::Livelock { .. }),
        "expected Livelock, got {:?}",
        failure.violation
    );
}

#[test]
fn lost_credit_wake_strands_the_sleeping_shard() {
    // Slot 1 sleeps through epoch 0 and must be re-armed for epoch 1; the
    // broken variant drops the re-arm, so epoch 1 (0-based) retires with
    // slot 1 never claimed — the mail staged for a sleeping shard would
    // silently never be applied.
    let bound = Bound::new(2, 2, 2).with_sleep(0, 1);
    let failure = match check(broken::LostCreditWake::default(), &bound, DEFAULT_CAP) {
        CheckResult::Fail(failure) => *failure,
        other => panic!("lost credit wake not caught: {other:?}"),
    };
    assert!(
        matches!(failure.violation, Violation::LostTask { epoch: 1, task: 1 }),
        "expected LostTask at epoch 1 slot 1, got {:?}",
        failure.violation
    );
    assert!(
        !failure.witness.steps.is_empty(),
        "a violation must come with its schedule"
    );
    let rendered = failure.to_string();
    assert!(
        rendered.contains("lost task") && rendered.contains("sleep task slot 1"),
        "the witness must replay the un-re-armed sleep:\n{rendered}"
    );
    // The same bound passes with the genuine protocol: the violation is
    // the dropped wake, not the sleep itself.
    match check_real(&bound) {
        CheckResult::Pass(_) => {}
        other => panic!("real protocol failed the sleepy bound: {other:?}"),
    }
}
