//! The step-pool synchronization protocol as a pure state machine.
//!
//! [`StepPool`] parallelizes one simulation cycle by publishing an *epoch*
//! of tasks to a fixed set of parked worker threads. All of its
//! synchronization funnels through a single mutex-guarded state record;
//! this module extracts every transition of that record into [`EpochCore`]
//! so that exactly one implementation of the protocol exists:
//!
//! * the real pool (`crates/noc/src/pool.rs`) holds an `EpochCore` behind
//!   its mutex and drives it through the [`PoolProtocol`] trait, mapping
//!   each returned [`Signal`] onto a condvar `notify_all`;
//! * the model checker ([`crate::model`]) drives the *same* `EpochCore`
//!   from modeled threads and exhaustively enumerates the interleavings.
//!
//! A bug in the claiming logic therefore cannot hide in a divergence
//! between "the code" and "the model": they are the same code. Deliberately
//! broken protocol variants for negative tests live in [`crate::broken`].
//!
//! [`StepPool`]: ../../ruche_noc/pool/struct.StepPool.html

/// Which condvar a transition requires the caller to signal, *after* the
/// transition, while still holding (or having just released) the protocol
/// mutex.
///
/// The protocol has exactly two condvars: `start`, where workers park
/// between epochs, and `done`, where the publishing caller parks until the
/// epoch's unfinished count reaches zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// No wakeup required.
    None,
    /// `notify_all` the workers' `start` condvar.
    Start,
    /// `notify_all` the caller's `done` condvar.
    Done,
}

/// Outcome of a task-claim attempt ([`PoolProtocol::try_claim`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// The caller now owns task `i` of the current epoch and must run it,
    /// then report [`PoolProtocol::finish_task`].
    Task(usize),
    /// No unclaimed task remains in the current epoch (or no epoch is
    /// published); stop claiming.
    Drained,
}

/// What a worker evaluating its park guard must do next
/// ([`PoolProtocol::worker_wake`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// Nothing new: wait on the `start` condvar and re-evaluate when
    /// notified.
    Park,
    /// Shutdown was requested: exit the worker loop (the thread
    /// terminates, unblocking the pool's `Drop` join).
    Exit,
    /// A new epoch is published: record it as seen and start claiming
    /// tasks.
    Run(u64),
}

/// A consistent observation of the protocol state, taken under the mutex.
/// Used by the model checker's invariant assertions; the real pool never
/// needs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observed {
    /// Epochs published so far.
    pub epoch: u64,
    /// Whether an epoch is currently published (its job is installed).
    pub has_job: bool,
    /// Task count of the current epoch.
    pub n_tasks: usize,
    /// Next unclaimed task index (`>= n_tasks` means drained).
    pub next: usize,
    /// Tasks claimed or unclaimed but not yet finished this epoch.
    pub unfinished: usize,
    /// Bitmask of task slots skipped this epoch (snapshotted from the
    /// persistent sleep set at publish time). Skipped slots are never
    /// claimed and never counted toward the barrier.
    pub skip: u32,
    /// Whether shutdown was requested.
    pub shutdown: bool,
}

/// The transitions of the step-pool protocol. Every method must be called
/// with the protocol mutex held; the returned [`Signal`] tells the caller
/// which condvar to notify.
///
/// The trait exists so the model checker can swap in deliberately broken
/// variants ([`crate::broken`]) and prove that the checker *would* catch
/// each class of bug; production code always uses [`EpochCore`].
pub trait PoolProtocol {
    /// Caller: publishes a new epoch of `n_tasks` tasks. Requires the
    /// previous epoch to be fully retired ([`Self::end_epoch`]).
    fn publish(&mut self, n_tasks: usize) -> Signal;

    /// Caller or worker: claims the next unclaimed, **non-skipped** task
    /// of the current epoch, if any. A claimed index is owned exclusively
    /// by the claimant until it reports [`Self::finish_task`]; a slot in
    /// the epoch's skip set is never handed out.
    fn try_claim(&mut self) -> Claim;

    /// Caller, between epochs: marks task slot `i` asleep. The *next*
    /// [`Self::publish`] snapshots the sleep set into the epoch's skip
    /// mask: the slot contributes zero work and is skipped at claim time.
    /// Idempotent. Only the low 32 slots are sleepable (the real pool's
    /// shard count is capped at 32).
    fn sleep_task(&mut self, i: usize);

    /// Caller, between epochs: re-arms a sleeping task slot so the next
    /// [`Self::publish`] includes it again — the *wake-on-credit* edge of
    /// the per-shard stepping scheme. Idempotent; waking an awake slot is
    /// a no-op. Losing this transition strands the slot outside every
    /// future epoch ([`crate::broken::LostCreditWake`]).
    fn wake_task(&mut self, i: usize);

    /// Caller or worker: reports a claimed task finished; `panicked`
    /// records whether the task body unwound (the caller re-raises once,
    /// after the barrier).
    fn finish_task(&mut self, panicked: bool) -> Signal;

    /// Caller: the epoch-barrier predicate — `true` once every task of the
    /// current epoch has finished. The caller waits on `done` while this
    /// is `false`.
    fn epoch_done(&self) -> bool;

    /// Caller: retires the finished epoch (drops the published job) and
    /// returns — clearing — whether any of its tasks panicked.
    fn end_epoch(&mut self) -> bool;

    /// Caller (`Drop`): requests shutdown. Workers observe it via
    /// [`Self::worker_wake`] and exit.
    fn begin_shutdown(&mut self) -> Signal;

    /// Worker: evaluates the park guard against the last epoch this worker
    /// observed (`seen`).
    fn worker_wake(&self, seen: u64) -> Wake;

    /// A consistent snapshot for invariant checking (model checker only).
    fn observe(&self) -> Observed;
}

/// The one true implementation of the step-pool protocol: a plain record
/// of the epoch counter, the claim cursor, and the barrier count, with no
/// interior mutability — the owner (the real pool's mutex, or the model
/// checker) provides exclusion.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct EpochCore {
    /// Bumped once per published epoch; workers wake when it moves past
    /// the value they last saw.
    epoch: u64,
    /// Whether an epoch is currently published.
    has_job: bool,
    /// Task count of the current epoch.
    n_tasks: usize,
    /// Next unclaimed task index.
    next: usize,
    /// Tasks claimed or unclaimed but not yet finished this epoch.
    unfinished: usize,
    /// Set when a task panicked; cleared and reported by
    /// [`EpochCore::end_epoch`].
    panicked: bool,
    /// Persistent sleep set: slots marked by [`EpochCore::sleep_task`] and
    /// cleared by [`EpochCore::wake_task`], both between epochs. Survives
    /// across epochs until explicitly re-armed.
    asleep: u32,
    /// The sleep set as snapshotted by the current epoch's publish,
    /// restricted to slots below its task count. Claim and barrier
    /// decisions use this frozen copy, so mid-epoch sleep/wake calls (the
    /// real pool forbids them) could never tear an epoch.
    skip: u32,
    /// Set once by [`EpochCore::begin_shutdown`]; never cleared.
    shutdown: bool,
}

/// Bitmask of the task slots below `n` (all 32 slots for `n >= 32` —
/// tasks beyond slot 31 exist but are never sleepable).
fn mask_below(n: usize) -> u32 {
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

impl EpochCore {
    /// A fresh protocol state: nothing published, nothing claimed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the epoch counter — only for building the deliberately
    /// broken variants in [`crate::broken`].
    pub(crate) fn set_epoch_for_test(&mut self, epoch: u64) {
        self.epoch = epoch;
    }
}

impl PoolProtocol for EpochCore {
    fn publish(&mut self, n_tasks: usize) -> Signal {
        debug_assert!(!self.has_job, "previous epoch not retired");
        debug_assert_eq!(self.unfinished, 0, "previous epoch still running");
        self.epoch += 1;
        self.has_job = true;
        self.n_tasks = n_tasks;
        self.next = 0;
        // Freeze the sleep set for this epoch: skipped slots never reach a
        // claimant and never count toward the barrier, so a fully-skipped
        // publish opens its barrier immediately.
        self.skip = self.asleep & mask_below(n_tasks);
        self.unfinished = n_tasks - self.skip.count_ones() as usize;
        Signal::Start
    }

    fn try_claim(&mut self) -> Claim {
        // Advance the cursor past skipped slots — this is the claim-time
        // half of the skip/claim transition: sleeping shards cost each
        // claimant at most a mask test, never a task.
        while self.next < self.n_tasks && self.next < 32 && self.skip & (1 << self.next) != 0 {
            self.next += 1;
        }
        if self.next >= self.n_tasks {
            return Claim::Drained;
        }
        let i = self.next;
        self.next += 1;
        Claim::Task(i)
    }

    fn sleep_task(&mut self, i: usize) {
        debug_assert!(i < 32, "sleepable task slots are capped at 32");
        debug_assert!(!self.has_job, "sleep set changes only between epochs");
        self.asleep |= 1 << i;
    }

    fn wake_task(&mut self, i: usize) {
        debug_assert!(i < 32, "sleepable task slots are capped at 32");
        debug_assert!(!self.has_job, "sleep set changes only between epochs");
        self.asleep &= !(1u32 << i);
    }

    fn finish_task(&mut self, panicked: bool) -> Signal {
        if panicked {
            self.panicked = true;
        }
        debug_assert!(self.unfinished > 0, "finish without a claimed task");
        self.unfinished = self.unfinished.saturating_sub(1);
        if self.unfinished == 0 {
            Signal::Done
        } else {
            Signal::None
        }
    }

    fn epoch_done(&self) -> bool {
        self.unfinished == 0
    }

    fn end_epoch(&mut self) -> bool {
        self.has_job = false;
        std::mem::take(&mut self.panicked)
    }

    fn begin_shutdown(&mut self) -> Signal {
        self.shutdown = true;
        Signal::Start
    }

    fn worker_wake(&self, seen: u64) -> Wake {
        if self.shutdown {
            Wake::Exit
        } else if self.epoch == seen {
            Wake::Park
        } else {
            Wake::Run(self.epoch)
        }
    }

    fn observe(&self) -> Observed {
        Observed {
            epoch: self.epoch,
            has_job: self.has_job,
            n_tasks: self.n_tasks,
            next: self.next,
            unfinished: self.unfinished,
            skip: self.skip,
            shutdown: self.shutdown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_epoch_walks_the_happy_path() {
        let mut p = EpochCore::new();
        assert_eq!(p.worker_wake(0), Wake::Park);
        assert_eq!(p.publish(2), Signal::Start);
        assert_eq!(p.worker_wake(0), Wake::Run(1));
        assert_eq!(p.try_claim(), Claim::Task(0));
        assert_eq!(p.try_claim(), Claim::Task(1));
        assert_eq!(p.try_claim(), Claim::Drained);
        assert_eq!(p.finish_task(false), Signal::None);
        assert!(!p.epoch_done());
        assert_eq!(p.finish_task(false), Signal::Done);
        assert!(p.epoch_done());
        assert!(!p.end_epoch());
        assert_eq!(p.worker_wake(1), Wake::Park);
    }

    #[test]
    fn panic_flag_is_latched_and_cleared_per_epoch() {
        let mut p = EpochCore::new();
        p.publish(2);
        p.try_claim();
        p.try_claim();
        p.finish_task(true);
        p.finish_task(false);
        assert!(p.end_epoch(), "panic reported at the barrier");
        p.publish(1);
        p.try_claim();
        p.finish_task(false);
        assert!(!p.end_epoch(), "panic flag does not leak across epochs");
    }

    #[test]
    fn shutdown_wins_over_a_new_epoch() {
        let mut p = EpochCore::new();
        p.publish(1);
        p.try_claim();
        p.finish_task(false);
        p.end_epoch();
        assert_eq!(p.begin_shutdown(), Signal::Start);
        // Even a worker that has not seen the last epoch exits.
        assert_eq!(p.worker_wake(0), Wake::Exit);
    }

    #[test]
    fn sleeping_slots_are_skipped_at_claim_time_and_at_the_barrier() {
        let mut p = EpochCore::new();
        p.sleep_task(1);
        assert_eq!(p.publish(3), Signal::Start);
        assert_eq!(p.observe().skip, 0b010, "slot 1 frozen into the epoch");
        // The cursor hands out 0 then jumps over the sleeping slot to 2.
        assert_eq!(p.try_claim(), Claim::Task(0));
        assert_eq!(p.try_claim(), Claim::Task(2));
        assert_eq!(p.try_claim(), Claim::Drained);
        // The barrier counts only the two published tasks.
        assert_eq!(p.finish_task(false), Signal::None);
        assert_eq!(p.finish_task(false), Signal::Done);
        assert!(!p.end_epoch());
    }

    #[test]
    fn wake_task_rearms_the_slot_for_the_next_publish() {
        let mut p = EpochCore::new();
        p.sleep_task(0);
        p.publish(2);
        assert_eq!(p.try_claim(), Claim::Task(1));
        assert_eq!(p.try_claim(), Claim::Drained);
        p.finish_task(false);
        assert!(!p.end_epoch());
        // The wake-on-credit edge: slot 0 re-enters the next epoch.
        p.wake_task(0);
        p.publish(2);
        assert_eq!(p.observe().skip, 0);
        assert_eq!(p.try_claim(), Claim::Task(0));
        assert_eq!(p.try_claim(), Claim::Task(1));
    }

    #[test]
    fn a_fully_skipped_epoch_opens_its_barrier_immediately() {
        let mut p = EpochCore::new();
        p.sleep_task(0);
        p.sleep_task(1);
        p.publish(2);
        assert!(p.epoch_done(), "no publishable work, barrier already open");
        assert_eq!(p.try_claim(), Claim::Drained);
        assert!(!p.end_epoch());
    }

    #[test]
    fn sleep_and_wake_are_idempotent_and_slot_local() {
        let mut p = EpochCore::new();
        p.sleep_task(2);
        p.sleep_task(2);
        p.wake_task(5); // waking an awake slot is a no-op
        p.publish(4);
        assert_eq!(p.observe().skip, 0b100);
        for expect in [Claim::Task(0), Claim::Task(1), Claim::Task(3)] {
            assert_eq!(p.try_claim(), expect);
        }
        assert_eq!(p.try_claim(), Claim::Drained);
    }

    #[test]
    fn sleep_set_only_masks_slots_below_the_task_count() {
        let mut p = EpochCore::new();
        p.sleep_task(3);
        // A 2-task epoch is unaffected by slot 3's sleep bit...
        p.publish(2);
        assert_eq!(p.observe().skip, 0);
        assert_eq!(p.observe().unfinished, 2);
        p.try_claim();
        p.try_claim();
        p.finish_task(false);
        p.finish_task(false);
        p.end_epoch();
        // ...but the bit persists and bites a wider epoch later.
        p.publish(4);
        assert_eq!(p.observe().skip, 0b1000);
        assert_eq!(p.observe().unfinished, 3);
    }

    #[test]
    fn claims_are_sequential_and_bounded() {
        let mut p = EpochCore::new();
        p.publish(3);
        let claims: Vec<Claim> = (0..5).map(|_| p.try_claim()).collect();
        assert_eq!(
            claims,
            vec![
                Claim::Task(0),
                Claim::Task(1),
                Claim::Task(2),
                Claim::Drained,
                Claim::Drained
            ]
        );
    }
}
