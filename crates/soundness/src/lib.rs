//! `ruche-soundness` — concurrency-soundness analysis for the step engine.
//!
//! PR 5 made `Network::step` the repo's first genuinely concurrent hot
//! path: a persistent epoch/condvar worker pool (`crates/noc/src/pool.rs`)
//! with lifetime-erased job pointers and hand-split disjoint `&mut` shard
//! bands. Its byte-identical-at-any-thread-count guarantee rests on the
//! pool's synchronization protocol being airtight. This crate proves the
//! protocol by **exhaustive analysis** instead of by sampling, the same
//! move `ruche-verify` made for deadlock freedom (static
//! channel-dependency-graph proof instead of simulation):
//!
//! * [`protocol`] — the pool's epoch/condvar protocol extracted into a
//!   pure state machine ([`protocol::EpochCore`]). The real pool drives
//!   this exact type behind its mutex, so the modeled protocol and the
//!   shipped protocol cannot drift apart.
//! * [`model`] — a bounded-exhaustive "mini-loom" scheduler that
//!   DFS-enumerates *every* interleaving of the caller and worker threads
//!   at a configurable [`model::Bound`] and asserts no lost wakeups, no
//!   double-claimed task index, barrier/panic integrity, and that `Drop`
//!   always joins. Failures come with a replayable schedule
//!   ([`model::Witness`]).
//! * [`broken`] — deliberately sabotaged protocol variants (lost epoch
//!   bump, silent shutdown, stuck claim cursor, …) proving the checker
//!   actually catches each class of bug.
//!
//! Run the standard exploration grid with
//! `cargo run --release -p ruche-soundness --bin soundness_check`.
//! The full protocol description, bounds, and guarantees live in
//! `docs/SOUNDNESS.md`.

pub mod broken;
pub mod model;
pub mod protocol;
mod witness;

pub use model::{check, Bound, CheckResult, Failure, Stats, Violation, Witness};
pub use protocol::{Claim, EpochCore, PoolProtocol, Signal, Wake};

/// The standard exploration grid: the bounds CI checks on every run.
///
/// Each entry is `(label, bound)`. The grid covers 1–4 workers, 1–3
/// epochs, 1–3 tasks, panic-unwind shapes, and sleep/wake shapes (a task
/// slot skipped for one epoch and re-armed for the next — the per-shard
/// sleep protocol of `docs/PARALLELISM.md`); the headline bound
/// (2 workers × 2 epochs × 2 tasks) must explore well over 1000 schedules
/// (asserted by `tests/model_checker.rs`, which also pins the exact
/// schedule counts of the small bounds to values cross-validated against
/// an independent non-memoized path enumeration).
pub fn standard_grid() -> Vec<(&'static str, Bound)> {
    vec![
        ("1w-1e-1t", Bound::new(1, 1, 1)),
        ("1w-2e-2t", Bound::new(1, 2, 2)),
        ("2w-1e-2t", Bound::new(2, 1, 2)),
        ("2w-2e-2t", Bound::new(2, 2, 2)),
        ("2w-1e-3t", Bound::new(2, 1, 3)),
        ("3w-1e-2t", Bound::new(3, 1, 2)),
        ("3w-2e-2t", Bound::new(3, 2, 2)),
        ("4w-2e-2t", Bound::new(4, 2, 2)),
        ("2w-3e-3t", Bound::new(2, 3, 3)),
        ("4w-3e-3t", Bound::new(4, 3, 3)),
        ("2w-2e-2t-panic", Bound::new(2, 2, 2).with_panic(0, 1)),
        ("3w-2e-2t-panic", Bound::new(3, 2, 2).with_panic(1, 0)),
        ("1w-2e-2t-sleep", Bound::new(1, 2, 2).with_sleep(0, 1)),
        ("2w-2e-2t-sleep", Bound::new(2, 2, 2).with_sleep(0, 0)),
        ("2w-3e-3t-sleep", Bound::new(2, 3, 3).with_sleep(1, 2)),
        (
            "2w-2e-2t-sleep-panic",
            Bound::new(2, 2, 2).with_sleep(0, 1).with_panic(0, 0),
        ),
    ]
}

/// Default distinct-state cap for [`standard_grid`] runs: large enough
/// that hitting it means the bound outgrew exhaustiveness (or the memo
/// would outgrow memory), not that the protocol regressed.
pub const DEFAULT_CAP: u64 = 20_000_000;
