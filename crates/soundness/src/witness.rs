//! Human-readable rendering of violations and failing-schedule witnesses,
//! mirroring the counterexample formatting of `ruche-verify`: a violation
//! is never just an assertion, it is a replayable schedule.

use crate::model::{Event, Failure, Violation, Witness, CALLER};
use std::fmt;

/// Thread name as printed in witnesses.
fn thread_name(t: usize) -> String {
    if t == CALLER {
        "caller".into()
    } else {
        format!("worker-{t}")
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Publish { epoch, tasks } => {
                write!(
                    f,
                    "publish epoch {} ({tasks} task(s)), notify(start)",
                    epoch + 1
                )
            }
            Event::Sleep { task } => {
                write!(f, "sleep task slot {task} (next publish skips it)")
            }
            Event::Rearm { task } => {
                write!(f, "re-arm task slot {task} (wake-on-credit)")
            }
            Event::Claim { task } => write!(f, "claim task {task}"),
            Event::Drained => write!(f, "claim: drained"),
            Event::Finish {
                task,
                panicked,
                last,
            } => {
                write!(f, "finish task {task}")?;
                if *panicked {
                    write!(f, " (panicked)")?;
                }
                if *last {
                    write!(f, ", barrier opens, notify(done)")?;
                }
                Ok(())
            }
            Event::CallerBlocked => write!(f, "barrier closed, wait(done)"),
            Event::Retire { epoch, panicked } => {
                write!(f, "retire epoch {}", epoch + 1)?;
                if *panicked {
                    write!(f, ", re-raise task panic")?;
                }
                Ok(())
            }
            Event::Shutdown => write!(f, "request shutdown, notify(start)"),
            Event::Join => write!(f, "join workers (Drop complete)"),
            Event::Park => write!(f, "guard holds, wait(start)"),
            Event::Wake { epoch } => write!(f, "wake: run epoch {epoch}"),
            Event::Exit => write!(f, "observe shutdown, exit"),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::LostWakeup { thread, unclaimed } => write!(
                f,
                "lost wakeup: {} parked while the published epoch still had \
                 {unclaimed} unclaimed task(s)",
                thread_name(*thread)
            ),
            Violation::DoubleClaim { thread, task } => write!(
                f,
                "double claim: {} claimed task {task}, which was already \
                 claimed this epoch (overlapping &mut parts)",
                thread_name(*thread)
            ),
            Violation::ClaimOutOfRange { thread, task } => write!(
                f,
                "claim out of range: {} claimed task {task} outside the \
                 published epoch (torn or stale epoch state)",
                thread_name(*thread)
            ),
            Violation::ClaimedSleeping { thread, task } => write!(
                f,
                "claimed sleeping: {} was handed task {task}, which this \
                 epoch's skip set says is asleep (the skip mask leaked a \
                 sleeping shard)",
                thread_name(*thread)
            ),
            Violation::LostTask { epoch, task } => write!(
                f,
                "lost task: epoch {} retired although task {task} was never \
                 claimed",
                epoch + 1
            ),
            Violation::PanicMisreported {
                epoch,
                expected,
                got,
            } => write!(
                f,
                "panic misreported at the epoch-{} barrier: expected \
                 panicked={expected}, observed panicked={got}",
                epoch + 1
            ),
            Violation::Deadlock { blocked } => {
                write!(f, "deadlock: no thread runnable;")?;
                for (t, why) in blocked {
                    write!(f, "\n    {} {}", thread_name(*t), why)?;
                }
                Ok(())
            }
            Violation::Livelock { steps } => write!(
                f,
                "livelock: schedule exceeded the {steps}-step budget without \
                 terminating (a thread is spinning)"
            ),
        }
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  failing schedule ({} step(s)):", self.steps.len())?;
        for (k, (t, ev)) in self.steps.iter().enumerate() {
            writeln!(f, "  {:>4}. {:<9} {ev}", k + 1, thread_name(*t))?;
        }
        Ok(())
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "VIOLATION: {}", self.violation)?;
        write!(f, "{}", self.witness)?;
        write!(
            f,
            "  ({} clean state(s) fully explored before this schedule)",
            self.states_before
        )
    }
}
