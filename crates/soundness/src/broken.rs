//! Deliberately broken protocol variants.
//!
//! Each variant wraps [`EpochCore`] and sabotages exactly one transition,
//! modeling a realistic implementation slip. The negative tests in
//! `tests/model_checker.rs` prove that the model checker catches every one
//! of them with a concrete failing-schedule witness — the same "the
//! verifier must be able to fail" discipline `ruche-verify` applies to its
//! deadlock checker (a dateline-disabled torus must yield a cycle
//! witness).

use crate::protocol::{Claim, EpochCore, Observed, PoolProtocol, Signal, Wake};

/// Forwards every [`PoolProtocol`] method to `self.0` except the ones the
/// variant overrides.
macro_rules! delegate_rest {
    ($($method:ident),*) => {
        $(delegate_rest!(@one $method);)*
    };
    (@one publish) => {
        fn publish(&mut self, n_tasks: usize) -> Signal { self.0.publish(n_tasks) }
    };
    (@one try_claim) => {
        fn try_claim(&mut self) -> Claim { self.0.try_claim() }
    };
    (@one sleep_task) => {
        fn sleep_task(&mut self, i: usize) { self.0.sleep_task(i) }
    };
    (@one wake_task) => {
        fn wake_task(&mut self, i: usize) { self.0.wake_task(i) }
    };
    (@one finish_task) => {
        fn finish_task(&mut self, panicked: bool) -> Signal { self.0.finish_task(panicked) }
    };
    (@one epoch_done) => {
        fn epoch_done(&self) -> bool { self.0.epoch_done() }
    };
    (@one end_epoch) => {
        fn end_epoch(&mut self) -> bool { self.0.end_epoch() }
    };
    (@one begin_shutdown) => {
        fn begin_shutdown(&mut self) -> Signal { self.0.begin_shutdown() }
    };
    (@one worker_wake) => {
        fn worker_wake(&self, seen: u64) -> Wake { self.0.worker_wake(seen) }
    };
    (@one observe) => {
        fn observe(&self) -> Observed { self.0.observe() }
    };
}

/// Publishes a job **without bumping the epoch counter**: parked workers
/// are notified, re-evaluate their guard, see an unchanged epoch, and park
/// again while the job still has unclaimed tasks — the textbook lost
/// wakeup. Caught as [`Violation::LostWakeup`].
///
/// [`Violation::LostWakeup`]: crate::model::Violation::LostWakeup
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct NoEpochBump(pub EpochCore);

impl PoolProtocol for NoEpochBump {
    fn publish(&mut self, n_tasks: usize) -> Signal {
        // Replays `EpochCore::publish` minus the `epoch += 1`, by
        // publishing on a scratch copy and keeping its epoch unchanged.
        let before = self.0.observe().epoch;
        let sig = self.0.publish(n_tasks);
        self.0.set_epoch_for_test(before);
        sig
    }
    delegate_rest!(
        try_claim,
        finish_task,
        epoch_done,
        end_epoch,
        begin_shutdown,
        worker_wake,
        sleep_task,
        wake_task,
        observe
    );
}

/// Requests shutdown **without notifying the `start` condvar**: parked
/// workers never observe the flag, `Drop`'s join blocks forever. Caught as
/// [`Violation::Deadlock`] with every worker parked on `start`.
///
/// [`Violation::Deadlock`]: crate::model::Violation::Deadlock
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct SilentShutdown(pub EpochCore);

impl PoolProtocol for SilentShutdown {
    fn begin_shutdown(&mut self) -> Signal {
        let _ = self.0.begin_shutdown();
        Signal::None
    }
    delegate_rest!(
        publish,
        try_claim,
        finish_task,
        epoch_done,
        end_epoch,
        worker_wake,
        sleep_task,
        wake_task,
        observe
    );
}

/// Claims a task **without advancing the cursor**: two threads (or one
/// thread twice) receive the same task index, i.e. overlapping `&mut`
/// parts — exactly the aliasing the real pool's `SAFETY` comments rule
/// out. Caught as [`Violation::DoubleClaim`].
///
/// [`Violation::DoubleClaim`]: crate::model::Violation::DoubleClaim
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct StuckCursor(pub EpochCore);

impl PoolProtocol for StuckCursor {
    fn try_claim(&mut self) -> Claim {
        let obs = self.0.observe();
        if obs.next >= obs.n_tasks {
            return Claim::Drained;
        }
        // Hand out the index but "forget" `next += 1`.
        Claim::Task(obs.next)
    }
    delegate_rest!(
        publish,
        finish_task,
        epoch_done,
        end_epoch,
        begin_shutdown,
        worker_wake,
        sleep_task,
        wake_task,
        observe
    );
}

/// Finishes the last task of an epoch **without signaling `done`**: the
/// caller blocks on the barrier forever while the workers park. Caught as
/// [`Violation::Deadlock`] with the caller blocked on `done`.
///
/// [`Violation::Deadlock`]: crate::model::Violation::Deadlock
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ForgottenDoneNotify(pub EpochCore);

impl PoolProtocol for ForgottenDoneNotify {
    fn finish_task(&mut self, panicked: bool) -> Signal {
        let _ = self.0.finish_task(panicked);
        Signal::None
    }
    delegate_rest!(
        publish,
        try_claim,
        epoch_done,
        end_epoch,
        begin_shutdown,
        worker_wake,
        sleep_task,
        wake_task,
        observe
    );
}

/// A worker guard that observes the epoch counter **torn** (one increment
/// ahead of the published value, as a non-atomic read could): the worker
/// records a `seen` the pool will never publish and spins between claim
/// and park without ever blocking. Caught as [`Violation::Livelock`].
///
/// [`Violation::Livelock`]: crate::model::Violation::Livelock
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct TornEpochRead(pub EpochCore);

impl PoolProtocol for TornEpochRead {
    fn worker_wake(&self, seen: u64) -> Wake {
        match self.0.worker_wake(seen) {
            Wake::Run(epoch) => Wake::Run(epoch + 1),
            other => other,
        }
    }
    delegate_rest!(
        publish,
        try_claim,
        finish_task,
        epoch_done,
        end_epoch,
        begin_shutdown,
        sleep_task,
        wake_task,
        observe
    );
}

/// Loses the **wake-on-credit edge**: `wake_task` is a no-op, so a shard
/// slot put to sleep for one epoch is never re-armed — the next epoch's
/// publish still skips it and the mail staged for it is never applied. The
/// bound's expected-skip bookkeeping sees the slot unclaimed in the epoch
/// that should have run it. Caught as [`Violation::LostTask`] at a bound
/// with a sleep spec (e.g. `Bound::new(2, 2, 2).with_sleep(0, 1)`).
///
/// [`Violation::LostTask`]: crate::model::Violation::LostTask
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct LostCreditWake(pub EpochCore);

impl PoolProtocol for LostCreditWake {
    fn wake_task(&mut self, _i: usize) {
        // The credit arrived, the destination shard's re-arm was dropped.
    }
    delegate_rest!(
        publish,
        try_claim,
        finish_task,
        epoch_done,
        end_epoch,
        begin_shutdown,
        worker_wake,
        sleep_task,
        observe
    );
}
