//! A bounded-exhaustive model checker ("mini-loom") for the pool protocol.
//!
//! The checker models the threads of the real pool — one publishing
//! *caller* and `workers` pooled *workers* — as explicit state machines
//! whose only shared state is a [`PoolProtocol`] value plus two modeled
//! condvars. Every mutex critical section of the real pool becomes one
//! **atomic action**; because the mutex serializes critical sections, the
//! set of observable behaviors is exactly the set of orderings of those
//! actions, and the checker DFS-enumerates *all* of them up to the
//! configured [`Bound`]. Condvars are modeled Mesa-style and **without
//! spurious wakeups** — a thread leaves a wait set only when notified, so a
//! forgotten notification cannot be masked by a lucky spurious wakeup and
//! instead surfaces as a deadlock or lost-wakeup violation.
//!
//! On every explored schedule the checker asserts:
//!
//! * **no double claim** — each task index of an epoch is claimed at most
//!   once, and every claim names a task of the currently published epoch;
//! * **no lost wakeup** — a worker never parks while the published epoch
//!   still has unclaimed tasks, and the caller never blocks on a finished
//!   barrier;
//! * **barrier integrity** — when the caller retires an epoch, every task
//!   was claimed and finished, and the panic flag it observes is exactly
//!   "some task of *this* epoch panicked" (re-raised once, never lost,
//!   never duplicated);
//! * **drop always joins** — every schedule ends with all workers exited
//!   and the caller's join completed; a schedule with blocked threads and
//!   no runnable one is a deadlock, reported with a full schedule witness;
//! * **bounded progress** — a schedule exceeding the step budget for its
//!   bound is reported as a livelock (e.g. a worker spinning on a torn
//!   epoch read).
//!
//! A failing schedule is reported as a [`Witness`]: the exact interleaving
//! of atomic actions that reaches the violation, in the same
//! counterexample-first spirit as `ruche-verify`'s channel-dependency cycle
//! witnesses.

use crate::protocol::{Claim, PoolProtocol, Signal, Wake};
// lint:allow(hash-order): memo keys are only inserted and looked up, never
// iterated — exploration order is the deterministic DFS order, and every
// reported statistic is a sum/max over the full state space.
use std::collections::HashMap;
use std::hash::Hash;

/// Caller thread id in witnesses and invariant reports.
pub const CALLER: usize = 0;

/// Upper limit on modeled threads (1 caller + workers).
pub const MAX_MODEL_THREADS: usize = 6;

/// Upper limit on tasks per modeled epoch (claim bookkeeping is a bitmask).
pub const MAX_MODEL_TASKS: usize = 16;

/// Exploration bound: the modeled pool shape and workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bound {
    /// Pooled worker threads (the caller participates too, as in the real
    /// pool). At most [`MAX_MODEL_THREADS`]` - 1`.
    pub workers: usize,
    /// Epochs the caller publishes before requesting shutdown.
    pub epochs: usize,
    /// Tasks per epoch. At most [`MAX_MODEL_TASKS`].
    pub tasks: usize,
    /// Make task `(epoch, task)` panic, to model the unwind path
    /// (`0`-based epoch index).
    pub panic_task: Option<(usize, usize)>,
    /// Model the per-shard sleep/wake cycle: the caller puts task slot
    /// `task` to sleep before publishing epoch `epoch` (so that epoch
    /// skips it) and re-arms it before epoch `epoch + 1` (the
    /// wake-on-credit edge). Requires `epoch + 1 < epochs` so both the
    /// skip and the re-arm are exercised.
    pub sleep_wake: Option<(usize, usize)>,
}

impl Bound {
    /// A bound with no panicking task.
    pub fn new(workers: usize, epochs: usize, tasks: usize) -> Self {
        Bound {
            workers,
            epochs,
            tasks,
            panic_task: None,
            sleep_wake: None,
        }
    }

    /// The same bound with task `(epoch, task)` panicking.
    pub fn with_panic(mut self, epoch: usize, task: usize) -> Self {
        self.panic_task = Some((epoch, task));
        self
    }

    /// The same bound with task slot `task` sleeping through epoch
    /// `epoch` and re-armed for `epoch + 1`.
    pub fn with_sleep(mut self, epoch: usize, task: usize) -> Self {
        self.sleep_wake = Some((epoch, task));
        self
    }

    /// Generous per-schedule step budget; exceeding it means a modeled
    /// thread is spinning (livelock).
    fn max_steps(&self) -> usize {
        64 + 8 * (1 + self.workers) * (self.epochs + 1) * (self.tasks + 2)
    }
}

/// One atomic action of a modeled thread — one mutex critical section of
/// the real pool. Kept `Copy`-small: the DFS records millions of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Caller published an epoch and notified `start`.
    Publish { epoch: usize, tasks: usize },
    /// Caller put task slot `task` to sleep (next publish skips it).
    Sleep { task: usize },
    /// Caller re-armed sleeping task slot `task` (the wake-on-credit
    /// edge: the next publish includes it again).
    Rearm { task: usize },
    /// A thread claimed task `task` of the current epoch.
    Claim { task: usize },
    /// A thread found the current epoch drained.
    Drained,
    /// A thread finished task `task`; `last` means the barrier opened and
    /// `done` was notified.
    Finish {
        task: usize,
        panicked: bool,
        last: bool,
    },
    /// Caller found the barrier still closed and blocked on `done`.
    CallerBlocked,
    /// Caller retired the epoch, observing the panic flag.
    Retire { epoch: usize, panicked: bool },
    /// Caller requested shutdown and notified `start`.
    Shutdown,
    /// Caller joined all exited workers (the `Drop` join).
    Join,
    /// Worker parked on `start`.
    Park,
    /// Worker observed a new epoch and started claiming.
    Wake { epoch: u64 },
    /// Worker observed shutdown and exited.
    Exit,
}

/// A protocol-invariant violation found on some schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A worker parked while the published epoch still had unclaimed
    /// tasks: the wakeup that should have reached it was lost.
    LostWakeup { thread: usize, unclaimed: usize },
    /// A task index was claimed twice within one epoch.
    DoubleClaim { thread: usize, task: usize },
    /// A claim named a task outside the published epoch (torn or stale
    /// epoch state).
    ClaimOutOfRange { thread: usize, task: usize },
    /// A claim handed out a task slot the bound says is asleep this
    /// epoch: the skip mask leaked a sleeping shard to a claimant.
    ClaimedSleeping { thread: usize, task: usize },
    /// The caller retired an epoch in which some task was never claimed.
    LostTask { epoch: usize, task: usize },
    /// The panic flag at the barrier did not match the epoch's tasks
    /// (a panic was lost, duplicated, or leaked across epochs).
    PanicMisreported {
        epoch: usize,
        expected: bool,
        got: bool,
    },
    /// No thread was runnable but some had not exited.
    Deadlock { blocked: Vec<(usize, String)> },
    /// A schedule exceeded the step budget for its bound.
    Livelock { steps: usize },
}

/// The failing schedule: every atomic action from the initial state to the
/// violation, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// `(thread, action)` pairs; thread [`CALLER`] is the caller.
    pub steps: Vec<(usize, Event)>,
}

/// A found violation plus the schedule that reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// What invariant broke.
    pub violation: Violation,
    /// The interleaving that breaks it.
    pub witness: Witness,
    /// Distinct model states fully explored before the failing schedule.
    pub states_before: u64,
}

/// Exploration statistics for a passing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Complete schedules explored, every one satisfying all invariants
    /// (exact; saturates at `u64::MAX`). Schedules that pass through a
    /// shared intermediate state are all counted — the explorer visits
    /// each *state* once and combines counts by dynamic programming.
    pub schedules: u64,
    /// Distinct model states visited (the actual exploration work).
    pub states: u64,
    /// Longest schedule, in atomic actions.
    pub max_depth: usize,
    /// Whether any schedule had a *worker* (not the caller) claim a task —
    /// a vacuity check that the bound actually exercises handoff.
    pub workers_participated: bool,
}

/// Model-checking outcome at a [`Bound`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// Every interleaving satisfied every invariant.
    Pass(Stats),
    /// Some interleaving violated an invariant; here is the schedule.
    Fail(Box<Failure>),
    /// The distinct-state cap was hit before exploration finished; the
    /// bound is too large to be exhaustive under this cap.
    CapExceeded {
        /// The configured cap (distinct model states).
        cap: u64,
    },
}

/// Program counter of a modeled thread. One variant per blocking point /
/// atomic action of the real pool's caller and worker loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pc {
    /// Caller: put the bound's sleeping task slot to sleep, then publish
    /// epoch `e`.
    SleepShard { e: usize },
    /// Caller: re-arm the bound's sleeping task slot, then publish epoch
    /// `e`.
    WakeShard { e: usize },
    /// Caller: publish epoch `e` (0-based).
    Publish { e: usize },
    /// Caller: claim loop of epoch `e` (the caller participates).
    CallerClaim { e: usize },
    /// Caller: finish the claimed task.
    CallerFinish { e: usize, task: usize, panics: bool },
    /// Caller: barrier — retire the epoch once `epoch_done()`.
    WaitDone { e: usize },
    /// Caller: request shutdown (`Drop`).
    Shutdown,
    /// Caller: join workers (runnable only once all workers exited).
    Join,
    /// Worker: evaluate the park guard.
    Park,
    /// Worker: claim loop.
    WorkerClaim,
    /// Worker: finish the claimed task.
    WorkerFinish { task: usize, panics: bool },
    /// Thread terminated.
    Exited,
}

/// Full model state: protocol + thread PCs + condvar wait sets. Fixed-size
/// so cloning at every DFS branch is a memcpy plus `P::clone`, and
/// hashable so identical states reached along different schedules are
/// explored once (their schedule counts combine by dynamic programming).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ModelState<P> {
    proto: P,
    pcs: [Pc; MAX_MODEL_THREADS],
    /// Last epoch observed by each worker (index 0 unused).
    seen: [u64; MAX_MODEL_THREADS],
    /// Bitmask of threads parked on the `start` condvar.
    wait_start: u32,
    /// Bitmask of threads parked on the `done` condvar.
    wait_done: u32,
    /// Bitmask of tasks claimed in the current epoch.
    claimed: u32,
    /// Epochs published so far (current epoch index is `published - 1`).
    published: usize,
}

/// Exhaustively explores every interleaving of the pool protocol at
/// `bound`, starting from `proto`, stopping at the first violation or
/// after `cap` *distinct model states* (a memory guard — the schedule
/// count itself may be astronomically larger, since identical states
/// reached along different schedules are explored once and their schedule
/// counts combine by dynamic programming; the count saturates at
/// `u64::MAX`).
///
/// The exploration is deterministic: runnable threads are tried in
/// ascending id order, so the schedule count, the statistics, and any
/// witness are stable across runs. Memoization cannot mask a violation:
/// whether an action violates an invariant depends only on the state it
/// runs in, so a state whose subtree was once explored violation-free
/// stays violation-free however it is reached.
pub fn check<P: PoolProtocol + Clone + Eq + Hash>(
    proto: P,
    bound: &Bound,
    cap: u64,
) -> CheckResult {
    assert!(
        bound.workers < MAX_MODEL_THREADS,
        "at most {} workers",
        MAX_MODEL_THREADS - 1
    );
    assert!(
        bound.tasks <= MAX_MODEL_TASKS && bound.tasks >= 1,
        "1..={MAX_MODEL_TASKS} tasks"
    );
    assert!(bound.epochs >= 1, "at least one epoch");
    if let Some((e, t)) = bound.panic_task {
        assert!(e < bound.epochs && t < bound.tasks, "panic task in bound");
    }
    if let Some((e, t)) = bound.sleep_wake {
        assert!(
            e + 1 < bound.epochs,
            "sleep epoch needs a successor to re-arm into"
        );
        assert!(t < bound.tasks && t < 32, "sleeping task in bound");
        assert_ne!(
            bound.panic_task,
            Some((e, t)),
            "a skipped task never runs, so it cannot panic"
        );
    }
    let mut pcs = [Pc::Exited; MAX_MODEL_THREADS];
    pcs[CALLER] = pc_before_publish(bound, 0);
    for pc in pcs.iter_mut().take(bound.workers + 1).skip(1) {
        *pc = Pc::Park;
    }
    let state = ModelState {
        proto,
        pcs,
        seen: [0; MAX_MODEL_THREADS],
        wait_start: 0,
        wait_done: 0,
        claimed: 0,
        published: 0,
    };
    let mut ex = Explorer {
        bound: *bound,
        cap,
        n_threads: bound.workers + 1,
        max_steps: bound.max_steps(),
        trail: Vec::new(),
        memo: HashMap::new(),
    };
    match ex.dfs(&state) {
        Err(Interrupt::Violation(v)) => CheckResult::Fail(Box::new(Failure {
            violation: v,
            witness: Witness {
                steps: ex.trail.clone(),
            },
            states_before: ex.memo.len() as u64,
        })),
        Err(Interrupt::Cap) => CheckResult::CapExceeded { cap },
        Ok(sub) => CheckResult::Pass(Stats {
            schedules: sub.schedules,
            states: ex.memo.len() as u64,
            max_depth: sub.depth,
            workers_participated: sub.worker_claim,
        }),
    }
}

/// Why a DFS unwinds early.
enum Interrupt {
    /// Invariant violated; the explorer's trail is the witness.
    Violation(Violation),
    /// Distinct-state cap reached.
    Cap,
}

/// Memoized summary of the subtree below one model state.
#[derive(Debug, Clone, Copy)]
struct Sub {
    /// Complete schedules reachable from this state (saturating).
    schedules: u64,
    /// Longest schedule suffix from this state, in atomic actions.
    depth: usize,
    /// Whether any reachable schedule has a worker claim a task.
    worker_claim: bool,
}

struct Explorer<P> {
    bound: Bound,
    cap: u64,
    n_threads: usize,
    max_steps: usize,
    /// Actions of the schedule currently being explored (pushed on
    /// descend, popped on backtrack) — becomes the witness on violation.
    trail: Vec<(usize, Event)>,
    /// Subtree summaries of fully explored states. A memo hit means the
    /// state's entire subtree is violation-free; its counts fold in
    /// without re-exploration.
    memo: HashMap<ModelState<P>, Sub>,
}

impl<P: PoolProtocol + Clone + Eq + Hash> Explorer<P> {
    fn dfs(&mut self, st: &ModelState<P>) -> Result<Sub, Interrupt> {
        if let Some(&sub) = self.memo.get(st) {
            return Ok(sub);
        }
        let mut sub = Sub {
            schedules: 0,
            depth: 0,
            worker_claim: false,
        };
        let mut any_runnable = false;
        for t in 0..self.n_threads {
            if !runnable(st, t, self.n_threads) {
                continue;
            }
            any_runnable = true;
            if self.trail.len() >= self.max_steps {
                return Err(Interrupt::Violation(Violation::Livelock {
                    steps: self.trail.len(),
                }));
            }
            let mut next = st.clone();
            let ev = step(&mut next, t, &self.bound).map_err(Interrupt::Violation)?;
            self.trail.push((t, ev));
            let below = self.dfs(&next)?;
            self.trail.pop();
            sub.schedules = sub.schedules.saturating_add(below.schedules);
            sub.depth = sub.depth.max(1 + below.depth);
            sub.worker_claim |=
                below.worker_claim || (t != CALLER && matches!(ev, Event::Claim { .. }));
        }
        if !any_runnable {
            if st.pcs[..self.n_threads].iter().any(|&pc| pc != Pc::Exited) {
                let blocked = st.pcs[..self.n_threads]
                    .iter()
                    .enumerate()
                    .filter(|(_, &pc)| pc != Pc::Exited)
                    .map(|(t, &pc)| (t, describe_block(pc, st.wait_start, st.wait_done, t)))
                    .collect();
                return Err(Interrupt::Violation(Violation::Deadlock { blocked }));
            }
            // A complete, invariant-clean schedule ends here.
            sub.schedules = 1;
        }
        if self.memo.len() as u64 >= self.cap {
            return Err(Interrupt::Cap);
        }
        self.memo.insert(st.clone(), sub);
        Ok(sub)
    }
}

/// Whether thread `t` can take an atomic action now.
fn runnable<P>(st: &ModelState<P>, t: usize, n_threads: usize) -> bool {
    let bit = 1u32 << t;
    if st.pcs[t] == Pc::Exited || st.wait_start & bit != 0 || st.wait_done & bit != 0 {
        return false;
    }
    if st.pcs[t] == Pc::Join {
        // `join()` blocks until every worker thread has terminated.
        return st.pcs[1..n_threads].iter().all(|&pc| pc == Pc::Exited);
    }
    true
}

/// Applies `sig` to the modeled condvars: `notify_all` moves every waiter
/// back to runnable; each re-evaluates its guard in its own next action
/// (Mesa semantics).
fn notify<P>(st: &mut ModelState<P>, sig: Signal) {
    match sig {
        Signal::None => {}
        Signal::Start => st.wait_start = 0,
        Signal::Done => st.wait_done = 0,
    }
}

/// The caller PC that leads into publishing epoch `e`: a sleep or wake
/// action first when the bound's sleep spec touches this epoch.
fn pc_before_publish(bound: &Bound, e: usize) -> Pc {
    match bound.sleep_wake {
        Some((s, _)) if e == s => Pc::SleepShard { e },
        Some((s, _)) if e == s + 1 => Pc::WakeShard { e },
        _ => Pc::Publish { e },
    }
}

/// The task slots the *bound* (not the protocol — the protocol under test
/// may be lying) says must be skipped in epoch `epoch`. The invariant
/// checks compare the protocol's behavior against this independent
/// expectation.
fn expected_skip(bound: &Bound, epoch: usize) -> u32 {
    match bound.sleep_wake {
        Some((s, t)) if epoch == s => 1u32 << t,
        _ => 0,
    }
}

/// Records a claim and checks the claim invariants.
fn claim_task<P: PoolProtocol>(
    st: &mut ModelState<P>,
    t: usize,
    task: usize,
    bound: &Bound,
) -> Result<bool, Violation> {
    let obs = st.proto.observe();
    if !obs.has_job || task >= obs.n_tasks || task >= MAX_MODEL_TASKS {
        return Err(Violation::ClaimOutOfRange { thread: t, task });
    }
    let bit = 1u32 << task;
    if expected_skip(bound, st.published - 1) & bit != 0 {
        return Err(Violation::ClaimedSleeping { thread: t, task });
    }
    if st.claimed & bit != 0 {
        return Err(Violation::DoubleClaim { thread: t, task });
    }
    st.claimed |= bit;
    // Panics are tied to the *currently published* epoch: a worker whose
    // `seen` lags may legitimately claim tasks of the next epoch (job and
    // cursor are read under one lock), and the model mirrors that.
    Ok(bound.panic_task == Some((st.published - 1, task)))
}

/// Executes one atomic action of thread `t`.
fn step<P: PoolProtocol + Clone>(
    st: &mut ModelState<P>,
    t: usize,
    bound: &Bound,
) -> Result<Event, Violation> {
    let bit = 1u32 << t;
    match st.pcs[t] {
        Pc::SleepShard { e } => {
            let (_, task) = bound.sleep_wake.expect("SleepShard requires a sleep spec");
            st.proto.sleep_task(task);
            st.pcs[t] = Pc::Publish { e };
            Ok(Event::Sleep { task })
        }
        Pc::WakeShard { e } => {
            let (_, task) = bound.sleep_wake.expect("WakeShard requires a sleep spec");
            st.proto.wake_task(task);
            st.pcs[t] = Pc::Publish { e };
            Ok(Event::Rearm { task })
        }
        Pc::Publish { e } => {
            let sig = st.proto.publish(bound.tasks);
            st.claimed = 0;
            st.published += 1;
            notify(st, sig);
            st.pcs[t] = Pc::CallerClaim { e };
            Ok(Event::Publish {
                epoch: e,
                tasks: bound.tasks,
            })
        }
        Pc::CallerClaim { e } => match st.proto.try_claim() {
            Claim::Task(task) => {
                let panics = claim_task(st, t, task, bound)?;
                st.pcs[t] = Pc::CallerFinish { e, task, panics };
                Ok(Event::Claim { task })
            }
            Claim::Drained => {
                st.pcs[t] = Pc::WaitDone { e };
                Ok(Event::Drained)
            }
        },
        Pc::CallerFinish { e, task, panics } => {
            let sig = st.proto.finish_task(panics);
            let last = sig == Signal::Done;
            notify(st, sig);
            st.pcs[t] = Pc::CallerClaim { e };
            Ok(Event::Finish {
                task,
                panicked: panics,
                last,
            })
        }
        Pc::WaitDone { e } => {
            if st.proto.epoch_done() {
                // Barrier integrity: every non-skipped task of the epoch
                // was claimed (and, since the barrier opened, finished).
                // Skipped slots must stay unclaimed — a claim would have
                // already surfaced as `ClaimedSleeping`.
                let skip = expected_skip(bound, e);
                for task in 0..bound.tasks {
                    if skip & (1u32 << task) == 0 && st.claimed & (1u32 << task) == 0 {
                        return Err(Violation::LostTask { epoch: e, task });
                    }
                }
                let got = st.proto.end_epoch();
                let expected = bound.panic_task.is_some_and(|(pe, _)| pe == e);
                if got != expected {
                    return Err(Violation::PanicMisreported {
                        epoch: e,
                        expected,
                        got,
                    });
                }
                st.pcs[t] = if e + 1 < bound.epochs {
                    pc_before_publish(bound, e + 1)
                } else {
                    Pc::Shutdown
                };
                Ok(Event::Retire {
                    epoch: e,
                    panicked: got,
                })
            } else {
                st.wait_done |= bit;
                Ok(Event::CallerBlocked)
            }
        }
        Pc::Shutdown => {
            let sig = st.proto.begin_shutdown();
            notify(st, sig);
            st.pcs[t] = Pc::Join;
            Ok(Event::Shutdown)
        }
        Pc::Join => {
            st.pcs[t] = Pc::Exited;
            Ok(Event::Join)
        }
        Pc::Park => match st.proto.worker_wake(st.seen[t]) {
            Wake::Exit => {
                st.pcs[t] = Pc::Exited;
                Ok(Event::Exit)
            }
            Wake::Run(epoch) => {
                st.seen[t] = epoch;
                st.pcs[t] = Pc::WorkerClaim;
                Ok(Event::Wake { epoch })
            }
            Wake::Park => {
                let obs = st.proto.observe();
                // Unclaimed *claimable* work: slots the bound expects to
                // be skipped this epoch don't count — parking past a
                // sleeping shard is the whole point of the skip set.
                let skip = if st.published > 0 {
                    expected_skip(bound, st.published - 1)
                } else {
                    0
                };
                let unclaimed = (obs.next..obs.n_tasks)
                    .filter(|&i| i >= 32 || skip & (1u32 << i) == 0)
                    .count();
                if obs.has_job && unclaimed > 0 && !obs.shutdown {
                    // The epoch has unclaimed work, yet this worker is
                    // about to sleep with no future notification coming
                    // for it: the publish wakeup was lost.
                    return Err(Violation::LostWakeup {
                        thread: t,
                        unclaimed,
                    });
                }
                st.wait_start |= bit;
                Ok(Event::Park)
            }
        },
        Pc::WorkerClaim => match st.proto.try_claim() {
            Claim::Task(task) => {
                let panics = claim_task(st, t, task, bound)?;
                st.pcs[t] = Pc::WorkerFinish { task, panics };
                Ok(Event::Claim { task })
            }
            Claim::Drained => {
                st.pcs[t] = Pc::Park;
                Ok(Event::Drained)
            }
        },
        Pc::WorkerFinish { task, panics } => {
            let sig = st.proto.finish_task(panics);
            let last = sig == Signal::Done;
            notify(st, sig);
            st.pcs[t] = Pc::WorkerClaim;
            Ok(Event::Finish {
                task,
                panicked: panics,
                last,
            })
        }
        Pc::Exited => unreachable!("exited threads are not runnable"),
    }
}

/// Human description of why a thread is blocked, for deadlock reports.
fn describe_block(pc: Pc, wait_start: u32, wait_done: u32, t: usize) -> String {
    let bit = 1u32 << t;
    if wait_start & bit != 0 {
        return "parked on `start` (no notification will come)".into();
    }
    if wait_done & bit != 0 {
        return "blocked on `done` (barrier never opens)".into();
    }
    match pc {
        Pc::Join => "in `Drop::join`, waiting for workers that never exit".into(),
        other => format!("blocked at {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::EpochCore;

    #[test]
    fn tiny_bound_passes_and_counts_deterministically() {
        let bound = Bound::new(1, 1, 1);
        let a = check(EpochCore::new(), &bound, 1_000_000);
        let b = check(EpochCore::new(), &bound, 1_000_000);
        assert_eq!(a, b);
        match a {
            CheckResult::Pass(stats) => assert!(stats.schedules > 0),
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn caller_alone_completes_with_zero_workers() {
        let bound = Bound::new(0, 2, 2);
        match check(EpochCore::new(), &bound, 1_000_000) {
            CheckResult::Pass(stats) => {
                // One thread means exactly one schedule.
                assert_eq!(stats.schedules, 1);
                assert!(!stats.workers_participated);
            }
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn panic_task_is_reported_exactly_once() {
        let bound = Bound::new(1, 2, 2).with_panic(0, 1);
        match check(EpochCore::new(), &bound, 10_000_000) {
            CheckResult::Pass(_) => {}
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn sleep_wake_cycle_passes_and_still_exercises_handoff() {
        // Slot 1 sleeps through epoch 0 and is re-armed for epoch 1: every
        // interleaving must skip it exactly once and claim it exactly once.
        let bound = Bound::new(1, 2, 2).with_sleep(0, 1);
        match check(EpochCore::new(), &bound, 10_000_000) {
            CheckResult::Pass(stats) => {
                assert!(stats.schedules > 0);
                assert!(stats.workers_participated);
            }
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn sleep_composes_with_a_panic_in_the_awake_slot() {
        // Slot 0 panics in the epoch whose slot 1 is asleep: the barrier
        // must re-raise exactly once while skipping the sleeper.
        let bound = Bound::new(2, 2, 2).with_sleep(0, 1).with_panic(0, 0);
        match check(EpochCore::new(), &bound, DEFAULT_TEST_CAP) {
            CheckResult::Pass(_) => {}
            other => panic!("expected pass, got {other:?}"),
        }
    }

    const DEFAULT_TEST_CAP: u64 = 20_000_000;

    #[test]
    #[should_panic(expected = "sleep epoch needs a successor")]
    fn sleep_in_the_last_epoch_is_rejected() {
        // A sleep with no following epoch would leave the re-arm edge
        // untested — the bound constructor's contract forbids it.
        let _ = check(
            EpochCore::new(),
            &Bound::new(1, 1, 1).with_sleep(0, 0),
            1_000,
        );
    }
}
