//! Exhaustively model-checks the step-pool protocol over the standard
//! exploration grid:
//! `cargo run --release -p ruche-soundness --bin soundness_check`.
//!
//! Prints one line per bound with the explored-schedule count and exits
//! non-zero if any bound fails (or hits the schedule cap), printing the
//! failing-schedule witness — the analogue of `verify_net` for the
//! engine's concurrency protocol instead of the network's routing.
//!
//! `--negative` additionally runs the deliberately broken protocol
//! variants and prints their witnesses, demonstrating what a real
//! protocol regression would look like.

use ruche_soundness::{broken, check, standard_grid, Bound, CheckResult, EpochCore, DEFAULT_CAP};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let negative = args.iter().any(|a| a == "--negative");
    let mut failed = false;

    println!("pool-protocol model check (exhaustive up to each bound):");
    for (label, bound) in standard_grid() {
        match check(EpochCore::new(), &bound, DEFAULT_CAP) {
            CheckResult::Pass(stats) => {
                println!(
                    "  {label:<16} OK   {:>20} schedule(s) over {:>8} state(s), \
                     max depth {:>3}, workers participated: {}",
                    stats.schedules, stats.states, stats.max_depth, stats.workers_participated
                );
            }
            CheckResult::Fail(failure) => {
                failed = true;
                println!("  {label:<16} FAIL");
                println!("{failure}");
            }
            CheckResult::CapExceeded { cap } => {
                failed = true;
                println!("  {label:<16} CAP  exceeded {cap} schedules — bound too large");
            }
        }
    }

    if negative {
        println!("\nnegative controls (each broken variant must fail):");
        let headline = Bound::new(2, 2, 2);
        // The lost credit wake only bites at a bound that sleeps a slot
        // for one epoch and expects it re-armed for the next.
        let sleepy = Bound::new(2, 2, 2).with_sleep(0, 1);
        run_negative(
            "no-epoch-bump",
            broken::NoEpochBump::default(),
            &headline,
            &mut failed,
        );
        run_negative(
            "silent-shutdown",
            broken::SilentShutdown::default(),
            &headline,
            &mut failed,
        );
        run_negative(
            "stuck-cursor",
            broken::StuckCursor::default(),
            &headline,
            &mut failed,
        );
        run_negative(
            "forgotten-done-notify",
            broken::ForgottenDoneNotify::default(),
            &headline,
            &mut failed,
        );
        run_negative(
            "torn-epoch-read",
            broken::TornEpochRead::default(),
            &headline,
            &mut failed,
        );
        run_negative(
            "lost-credit-wake",
            broken::LostCreditWake::default(),
            &sleepy,
            &mut failed,
        );
    }

    if failed {
        std::process::exit(1);
    }
    println!("pool-protocol model check: all bounds exhaustively verified");
}

/// Checks one broken variant at `bound`; it *must* fail.
fn run_negative<P>(label: &str, proto: P, bound: &Bound, failed: &mut bool)
where
    P: ruche_soundness::PoolProtocol + Clone + Eq + std::hash::Hash,
{
    match check(proto, bound, DEFAULT_CAP) {
        CheckResult::Fail(failure) => {
            println!("  {label:<22} caught: {}", failure.violation);
        }
        other => {
            *failed = true;
            println!("  {label:<22} NOT CAUGHT ({other:?}) — the checker is broken");
        }
    }
}
