//! Behavioral tests of the execution-driven machine: bank serialization,
//! hotspot contention, barrier semantics, scalability, and trace
//! invariants across the workload suite.

use ruche_manycore::core_model::Op;
use ruche_manycore::prelude::*;
use ruche_noc::prelude::*;

fn mesh_sys(dims: Dims) -> SystemConfig {
    SystemConfig::new(NetworkConfig::mesh(dims))
}

fn manual(dims: Dims, programs: Vec<Vec<Op>>) -> Workload {
    assert_eq!(programs.len(), dims.count());
    Workload {
        name: "manual".into(),
        programs,
    }
}

#[test]
fn llc_bank_serializes_at_one_request_per_cycle() {
    // All tiles hammer one address -> one bank: completion time is bounded
    // below by the request count (bank throughput 1/cycle).
    let dims = Dims::new(8, 4);
    let per_tile = 20u64;
    let programs = vec![
        (0..per_tile)
            .map(|_| Op::Load(0x42))
            .chain([Op::WaitAll])
            .collect();
        dims.count()
    ];
    let res = run(&mesh_sys(dims), &manual(dims, programs)).unwrap();
    let total = per_tile * dims.count() as u64;
    assert!(
        res.cycles >= total,
        "bank-serialized: {} cycles for {total} same-bank requests",
        res.cycles
    );
}

#[test]
fn ipoly_spreading_beats_single_bank_hammering() {
    // Strided addresses spread across banks finish far faster than the
    // single-address hotspot above.
    let dims = Dims::new(8, 4);
    let per_tile = 20u64;
    let hot = vec![
        (0..per_tile)
            .map(|_| Op::Load(7))
            .chain([Op::WaitAll])
            .collect();
        dims.count()
    ];
    let spread: Vec<Vec<Op>> = (0..dims.count() as u64)
        .map(|t| {
            (0..per_tile)
                .map(|i| Op::Load(t * 1000 + i * 17))
                .chain([Op::WaitAll])
                .collect()
        })
        .collect();
    let hot_res = run(&mesh_sys(dims), &manual(dims, hot)).unwrap();
    let spread_res = run(&mesh_sys(dims), &manual(dims, spread)).unwrap();
    assert!(
        spread_res.cycles * 3 < hot_res.cycles,
        "spread {} vs hotspot {}",
        spread_res.cycles,
        hot_res.cycles
    );
}

#[test]
fn amo_hotspot_serializes_like_loads() {
    let dims = Dims::new(8, 4);
    let programs = vec![vec![Op::Amo(0), Op::WaitAll]; dims.count()];
    let res = run(&mesh_sys(dims), &manual(dims, programs)).unwrap();
    // 32 atomics through one bank: at least 32 cycles end to end.
    assert!(res.cycles >= 32);
    assert_eq!(res.load_latency.total.count(), 32);
}

#[test]
fn barrier_count_matches_across_tiles_in_all_workloads() {
    let dims = Dims::new(8, 4);
    for b in Benchmark::ALL {
        let ds = b.datasets()[0];
        let w = Workload::build(b, ds, dims);
        let counts: Vec<usize> = w
            .programs
            .iter()
            .map(|p| p.iter().filter(|o| matches!(o, Op::Barrier)).count())
            .collect();
        assert!(
            counts.windows(2).all(|x| x[0] == x[1]),
            "{}: unbalanced barriers {counts:?}",
            w.name
        );
    }
}

#[test]
fn every_workload_completes_on_every_half_ruche_config() {
    let dims = Dims::new(8, 4);
    let nets = [
        NetworkConfig::mesh(dims),
        NetworkConfig::half_torus(dims),
        NetworkConfig::half_ruche(dims, 2, CrossbarScheme::Depopulated),
        NetworkConfig::half_ruche(dims, 2, CrossbarScheme::FullyPopulated),
        NetworkConfig::half_ruche(dims, 3, CrossbarScheme::Depopulated),
        NetworkConfig::half_ruche(dims, 3, CrossbarScheme::FullyPopulated),
    ];
    for b in [Benchmark::Jacobi, Benchmark::Fft, Benchmark::SpGemm] {
        let ds = b.datasets()[0];
        let w = Workload::build(b, ds, dims);
        let mut instr = None;
        for net in &nets {
            let r = run(&SystemConfig::new(net.clone()), &w)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, net.label()));
            // The instruction count is a program property, not a network
            // property (execution-driven timing only).
            let expect = *instr.get_or_insert(r.instructions);
            assert_eq!(r.instructions, expect, "{} on {}", w.name, net.label());
        }
    }
}

#[test]
fn scalability_more_tiles_fewer_cycles() {
    // The same (fixed-size) SGEMM finishes faster on 4x the tiles — the
    // premise of Figure 11.
    let small = Dims::new(8, 4);
    let large = Dims::new(16, 8);
    let ws = Workload::build(Benchmark::Sgemm, DatasetId::Default, small);
    let wl = Workload::build(Benchmark::Sgemm, DatasetId::Default, large);
    let rs = run(&mesh_sys(small), &ws).unwrap();
    let rl = run(&mesh_sys(large), &wl).unwrap();
    let scal = rs.cycles as f64 / rl.cycles as f64;
    assert!(
        scal > 1.5 && scal <= 4.2,
        "4x tiles give {scal}x on a bisection-limited mesh"
    );
}

#[test]
fn stall_cycles_shrink_with_better_network() {
    let dims = Dims::new(16, 8);
    let w = Workload::build(Benchmark::PageRank, DatasetId::Graph(GraphId::Os), dims);
    let mesh = run(&mesh_sys(dims), &w).unwrap();
    let ruche = run(
        &SystemConfig::new(NetworkConfig::half_ruche(
            dims,
            3,
            CrossbarScheme::FullyPopulated,
        )),
        &w,
    )
    .unwrap();
    assert!(ruche.stall_cycles < mesh.stall_cycles);
    assert_eq!(ruche.mem_ops, mesh.mem_ops);
}

#[test]
fn loadtile_to_self_roundtrips() {
    let dims = Dims::new(4, 4);
    let mut programs = vec![vec![]; dims.count()];
    programs[5] = vec![Op::LoadTile(Coord::new(1, 1)), Op::WaitAll];
    let res = run(&mesh_sys(dims), &manual(dims, programs)).unwrap();
    assert_eq!(res.load_latency.total.count(), 1);
    assert!(res.cycles < 20, "self-loopback request: {}", res.cycles);
}

#[test]
fn llc_latency_hurts_latency_bound_workloads_most() {
    // Dependent-load chains (Barnes-Hut-style) see the LLC latency in full;
    // streaming loads hide most of it behind outstanding requests.
    let dims = Dims::new(8, 4);
    let chased: Vec<Vec<Op>> = vec![
        (0..40u64)
            .flat_map(|i| [Op::Load(i * 31), Op::WaitAll])
            .collect();
        dims.count()
    ];
    let streamed: Vec<Vec<Op>> = vec![
        (0..40u64)
            .map(|i| Op::Load(i * 31))
            .chain([Op::WaitAll])
            .collect();
        dims.count()
    ];
    let lat = |llc: u32, programs: &Vec<Vec<Op>>| {
        let mut sys = mesh_sys(dims);
        sys.llc_latency = llc;
        run(&sys, &manual(dims, programs.clone())).unwrap().cycles as f64
    };
    let chased_ratio = lat(20, &chased) / lat(2, &chased);
    let streamed_ratio = lat(20, &streamed) / lat(2, &streamed);
    assert!(
        chased_ratio > 1.3,
        "pointer chasing feels the LLC: {chased_ratio}"
    );
    assert!(
        chased_ratio > streamed_ratio,
        "streaming hides latency: {streamed_ratio} vs {chased_ratio}"
    );
}

#[test]
fn energy_components_are_additive_and_positive() {
    let dims = Dims::new(8, 4);
    let w = Workload::build(Benchmark::BarnesHut, DatasetId::Bh16K, dims);
    let r = run(
        &SystemConfig::new(NetworkConfig::half_ruche(
            dims,
            2,
            CrossbarScheme::Depopulated,
        )),
        &w,
    )
    .unwrap();
    let e = r.energy;
    assert!(e.core_pj > 0.0 && e.stall_pj > 0.0 && e.router_pj > 0.0);
    let sum = e.core_pj + e.stall_pj + e.router_pj + e.wire_pj;
    assert!((sum - e.total_pj()).abs() < 1e-6);
}

#[test]
fn workloads_have_meaningful_sizes() {
    // Guard against degenerate traces after refactors: every benchmark
    // issues a healthy number of memory operations on a 8x4 array.
    let dims = Dims::new(8, 4);
    for b in Benchmark::ALL {
        let w = Workload::build(b, b.datasets()[0], dims);
        let mem_ops: usize = w
            .programs
            .iter()
            .flatten()
            .filter(|o| matches!(o, Op::Load(_) | Op::Store(_) | Op::Amo(_) | Op::LoadTile(_)))
            .count();
        assert!(mem_ops > 1_000, "{}: only {mem_ops} memory ops", w.name);
    }
}

#[test]
fn xy_responses_are_legal_but_slower() {
    // The DOR-order ablation path: an X-Y response network needs the
    // bidirectional edge crossbar and must still complete every workload.
    let dims = Dims::new(8, 4);
    let w = Workload::build(Benchmark::Fft, DatasetId::Fft16K, dims);
    let mut sys = mesh_sys(dims);
    sys.resp_dor = ruche_noc::topology::DorOrder::XY;
    let xy = run(&sys, &w).unwrap();
    let yx = run(&mesh_sys(dims), &w).unwrap();
    assert_eq!(xy.mem_ops, yx.mem_ops);
    assert!(xy.cycles > 0 && yx.cycles > 0);
}
