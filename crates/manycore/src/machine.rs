//! The full-system, execution-driven manycore simulator.
//!
//! The machine couples three substrates per the paper's §4 arrangement:
//!
//! * a tile array of in-order cores ([`crate::core_model`]),
//! * LLC banks on the north/south edges reached through IPOLY address
//!   interleaving ([`crate::memsys`]),
//! * two physical NoCs — requests route X-Y, responses Y-X (the placement
//!   Abts et al. showed is best for all-to-edge traffic).
//!
//! Execution is fully cycle-accurate and closed-loop: congestion delays
//! responses, delayed responses stall cores, stalled cores stop injecting.
//! The run result carries the paper's Figure 10–13 metrics: runtime,
//! remote-load latency split into intrinsic and congestion components, and
//! the four-way energy breakdown.

use crate::core_model::{Core, CoreAction, CoreState, MemRequest};
use crate::kernels::Workload;
use crate::memsys::{BankMap, Ipoly};
use ruche_noc::packet::Flit;
use ruche_noc::prelude::*;
use ruche_noc::routing::walk_route_from;
use ruche_noc::topology::ConfigError;
use ruche_phys::{EnergyModel, Tech};
use ruche_stats::Accum;
use ruche_telemetry::{Prefixed, Probe};
use serde::{Deserialize, Serialize};
// lint:allow(hash-order): the intrinsic-latency memo is lookup-only; no
// machine statistic is derived by iterating it.
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Full-system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Base network configuration (topology, scheme, dimensions). The
    /// machine derives the request network (X-Y DOR) and response network
    /// (Y-X DOR) from it, both with edge memory ports.
    pub net: NetworkConfig,
    /// Maximum outstanding remote requests per core (latency-hiding
    /// capacity).
    pub max_outstanding: u32,
    /// Injection-queue depth before the core stalls on the NIC.
    pub nic_depth: usize,
    /// LLC bank access latency, cycles.
    pub llc_latency: u32,
    /// DOR order of the response network (the request network is always
    /// X-Y). The paper follows Abts et al. in using Y-X responses for
    /// all-to-edge traffic; set `XY` to measure what that choice buys
    /// (see the `ablations` bench).
    pub resp_dor: DorOrder,
    /// Hard cycle cap (deadlock/livelock guard).
    pub max_cycles: u64,
    /// Core dynamic energy per instruction, pJ.
    pub e_instr_pj: f64,
    /// Leakage + ungated clock energy per stalled/idle core-cycle, pJ.
    pub e_stall_pj: f64,
}

impl SystemConfig {
    /// Paper-default parameters on the given base network.
    pub fn new(net: NetworkConfig) -> Self {
        SystemConfig {
            net,
            // HammerBlade-class cores keep many word-level requests in
            // flight ("packets are sent and received every cycle in a
            // stream", §1); 16 slots makes streaming kernels
            // bandwidth-bound rather than latency-bound.
            max_outstanding: 16,
            nic_depth: 4,
            resp_dor: DorOrder::YX,
            llc_latency: 2,
            max_cycles: 10_000_000,
            e_instr_pj: 6.0,
            e_stall_pj: 0.8,
        }
    }
}

/// Errors from a machine run.
#[derive(Debug)]
pub enum MachineError {
    /// The network configuration is invalid.
    Config(ConfigError),
    /// The run did not complete within the cycle cap.
    CycleLimit {
        /// The configured cap.
        cycles: u64,
    },
    /// The workload's program count does not match the tile array.
    WorkloadShape {
        /// Programs provided.
        programs: usize,
        /// Tiles in the array.
        tiles: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Config(e) => write!(f, "invalid network config: {e}"),
            MachineError::CycleLimit { cycles } => {
                write!(f, "run exceeded the {cycles}-cycle cap")
            }
            MachineError::WorkloadShape { programs, tiles } => {
                write!(f, "workload has {programs} programs for {tiles} tiles")
            }
        }
    }
}

impl std::error::Error for MachineError {}

impl From<ConfigError> for MachineError {
    fn from(e: ConfigError) -> Self {
        MachineError::Config(e)
    }
}

/// Remote-load latency, split as in the paper's Figure 12.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencySplit {
    /// End-to-end latency (issue to response delivery).
    pub total: Accum,
    /// Zero-load component of each measured access (route hops + LLC
    /// latency + injection overheads).
    pub intrinsic: Accum,
    /// `total − intrinsic` per access (network stalls).
    pub congestion: Accum,
}

/// System energy, split as in the paper's Figure 13.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Core dynamic energy (instruction execution), pJ.
    pub core_pj: f64,
    /// Stall/idle leakage and ungated clocking, pJ.
    pub stall_pj: f64,
    /// NoC router dynamic energy, pJ.
    pub router_pj: f64,
    /// Long-range (Ruche / torus) wire energy, pJ.
    pub wire_pj: f64,
}

impl EnergyBreakdown {
    /// Total system energy, pJ.
    pub fn total_pj(&self) -> f64 {
        self.core_pj + self.stall_pj + self.router_pj + self.wire_pj
    }
}

/// Result of a completed run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Network label the run used.
    pub label: String,
    /// Total runtime in cycles.
    pub cycles: u64,
    /// Instructions executed across all cores.
    pub instructions: u64,
    /// Stall cycles across all cores (program not finished).
    pub stall_cycles: u64,
    /// Idle cycles across all cores (after completion).
    pub idle_cycles: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
    /// Remote-load latency split (loads, atomics, scratchpad loads).
    pub load_latency: LatencySplit,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqKind {
    Load,
    Store,
    Amo,
    LoadTile,
}

impl ReqKind {
    fn measured(self) -> bool {
        matches!(self, ReqKind::Load | ReqKind::Amo | ReqKind::LoadTile)
    }
}

/// Payload codec: | kind (2 bits) | origin (31 bits) | requester (31 bits) |
/// where origin is a bank id or (flagged) server-tile index.
fn encode_payload(kind: ReqKind, requester: u32) -> u64 {
    let k = match kind {
        ReqKind::Load => 0u64,
        ReqKind::Store => 1,
        ReqKind::Amo => 2,
        ReqKind::LoadTile => 3,
    };
    (k << 62) | requester as u64
}

fn decode_payload(p: u64) -> (ReqKind, u32) {
    let kind = match p >> 62 {
        0 => ReqKind::Load,
        1 => ReqKind::Store,
        2 => ReqKind::Amo,
        _ => ReqKind::LoadTile,
    };
    (kind, (p & 0x7FFF_FFFF) as u32)
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    ready: u64,
    requester: u32,
    birth: u64,
    kind: ReqKind,
}

/// Telemetry collected by a probed machine run ([`run_probed`]): the two
/// networks' link/FIFO counters plus per-core execution breakdowns.
#[derive(Debug, Clone)]
pub struct MachineTelemetry {
    /// Request-network (X-Y) counters.
    pub req: Box<NetTelemetry>,
    /// Response-network counters.
    pub resp: Box<NetTelemetry>,
    /// Final per-core counters, indexed by tile (row-major).
    pub cores: Vec<crate::core_model::CoreStats>,
}

impl MachineTelemetry {
    /// Pushes everything into `probe`: the request network under `req.`,
    /// the response network under `resp.`, and per-core counters as
    /// tile-indexed arrays under `core.`.
    pub fn export(&self, probe: &mut dyn Probe) {
        self.req.export(&mut Prefixed::new("req.", probe));
        self.resp.export(&mut Prefixed::new("resp.", probe));
        let mut scratch = vec![0u64; self.cores.len()];
        for (name, get) in [
            (
                "core.instructions",
                (|s: &crate::core_model::CoreStats| s.instructions)
                    as fn(&crate::core_model::CoreStats) -> u64,
            ),
            ("core.mem_ops", |s| s.mem_ops),
            ("core.idle_cycles", |s| s.idle_cycles),
            ("core.stall_barrier", |s| s.stall_barrier),
            ("core.stall_dependence", |s| s.stall_dependence),
            ("core.stall_nic", |s| s.stall_nic),
            ("core.stall_outstanding", |s| s.stall_outstanding),
        ] {
            for (slot, s) in scratch.iter_mut().zip(&self.cores) {
                *slot = get(s);
            }
            probe.scalars(name, &scratch);
        }
    }
}

/// Runs a workload to completion on the configured system.
///
/// # Errors
///
/// Returns [`MachineError`] for invalid configurations, workload/array
/// shape mismatches, or runs exceeding the cycle cap.
pub fn run(sys: &SystemConfig, workload: &Workload) -> Result<RunResult, MachineError> {
    run_inner(sys, workload, None).map(|(res, _)| res)
}

/// Like [`run`], with telemetry attached to both networks for the whole
/// run. `window` is the injection/ejection time-series bin width in
/// cycles. The simulated machine behaves identically to [`run`].
///
/// # Errors
///
/// Returns [`MachineError`] exactly as [`run`] does.
pub fn run_probed(
    sys: &SystemConfig,
    workload: &Workload,
    window: u64,
) -> Result<(RunResult, MachineTelemetry), MachineError> {
    run_inner(sys, workload, Some(window))
        .map(|(res, tel)| (res, tel.expect("telemetry was attached")))
}

fn run_inner(
    sys: &SystemConfig,
    workload: &Workload,
    telemetry_window: Option<u64>,
) -> Result<(RunResult, Option<MachineTelemetry>), MachineError> {
    let dims = sys.net.dims;
    let n_tiles = dims.count();
    if workload.programs.len() != n_tiles {
        return Err(MachineError::WorkloadShape {
            programs: workload.programs.len(),
            tiles: n_tiles,
        });
    }
    let mut req_cfg = sys.net.clone().with_edge_memory_ports();
    req_cfg.dor = DorOrder::XY;
    let mut resp_cfg = sys.net.clone().with_edge_memory_ports();
    resp_cfg.dor = sys.resp_dor;
    // A response network routed X-Y needs from-edge turns its DOR order
    // would not otherwise imply (see the DOR-order ablation).
    if sys.resp_dor == DorOrder::XY {
        resp_cfg.edge_bidirectional = true;
    }
    let mut req = Network::new(req_cfg.clone())?;
    let mut resp = Network::new(resp_cfg.clone())?;
    if let Some(window) = telemetry_window {
        req.attach_telemetry(window);
        resp.attach_telemetry(window);
    }

    let bankmap = BankMap { dims };
    let ipoly = Ipoly::new(bankmap.banks());
    let mut cores: Vec<Core> = workload
        .programs
        .iter()
        .map(|p| Core::new(p.clone(), sys.max_outstanding))
        .collect();
    let mut bank_q: Vec<VecDeque<Pending>> = vec![VecDeque::new(); bankmap.banks() as usize];
    let mut server_q: Vec<VecDeque<Pending>> = vec![VecDeque::new(); n_tiles];
    let mut intrinsic_cache: HashMap<u64, u32> = HashMap::new();
    let mut lat = LatencySplit::default();
    let mut next_id = 0u64;
    let mut cycle = 0u64;

    // Zero-load latency of a request/response round trip, memoized.
    let intrinsic_of = |requester: Coord,
                        origin_bank: Option<u32>,
                        origin_tile: Option<Coord>,
                        cache: &mut HashMap<u64, u32>|
     -> u32 {
        let key = (dims.index(requester) as u64) << 32
            | match (origin_bank, origin_tile) {
                (Some(b), None) => 1u64 << 31 | b as u64,
                (None, Some(t)) => dims.index(t) as u64,
                _ => unreachable!("exactly one origin"),
            };
        if let Some(&v) = cache.get(&key) {
            return v;
        }
        let v = match (origin_bank, origin_tile) {
            (Some(bank), None) => {
                let dest = bankmap.dest(bank);
                let fwd = walk_route_from(&req_cfg, requester, Dir::P, dest).len() as u32;
                let (entry_at, entry_dir) = ruche_noc::routing::edge_entry(
                    dims,
                    dest.edge.expect("bank dest is an edge"),
                    dest.coord.x,
                );
                let back = walk_route_from(&resp_cfg, entry_at, entry_dir, Dest::tile(requester))
                    .len() as u32;
                // +1 for the request's source-queue-to-FIFO injection
                // cycle (the response injects in the same cycle the bank
                // emits it).
                fwd + back + sys.llc_latency + 1
            }
            (None, Some(t)) => {
                let fwd = walk_route_from(&req_cfg, requester, Dir::P, Dest::tile(t)).len() as u32;
                let back =
                    walk_route_from(&resp_cfg, t, Dir::P, Dest::tile(requester)).len() as u32;
                fwd + back + 1 + 1
            }
            _ => unreachable!(),
        };
        cache.insert(key, v);
        v
    };

    let all_done = |cores: &[Core],
                    req: &Network,
                    resp: &Network,
                    bank_q: &[VecDeque<Pending>],
                    server_q: &[VecDeque<Pending>]| {
        cores.iter().all(|c| c.state() == CoreState::Done)
            && req.snapshot().is_idle()
            && resp.snapshot().is_idle()
            && bank_q.iter().all(VecDeque::is_empty)
            && server_q.iter().all(VecDeque::is_empty)
    };

    loop {
        if cycle >= sys.max_cycles {
            return Err(MachineError::CycleLimit {
                cycles: sys.max_cycles,
            });
        }

        // 1. LLC banks and scratchpad servers emit at most one response per
        //    cycle into the response network.
        for (bank, q) in bank_q.iter_mut().enumerate() {
            if q.front().is_some_and(|p| p.ready <= cycle) {
                let p = q.pop_front().expect("checked front");
                let dest_bank = bankmap.dest(bank as u32);
                let ep = if (bank as u32) < bankmap.banks() / 2 {
                    resp.north_endpoint(dest_bank.coord.x)
                } else {
                    resp.south_endpoint(dest_bank.coord.x)
                };
                let requester = dims.coord(p.requester as usize);
                let flit = Flit::single(dest_bank.coord, Dest::tile(requester), next_id, p.birth)
                    .with_payload(
                        encode_payload(p.kind, p.requester) | (1 << 32) | ((bank as u64) << 33),
                    );
                next_id += 1;
                resp.enqueue(ep, flit);
            }
        }
        for (tile, q) in server_q.iter_mut().enumerate() {
            if q.front().is_some_and(|p| p.ready <= cycle) {
                let p = q.pop_front().expect("checked front");
                let server = dims.coord(tile);
                let requester = dims.coord(p.requester as usize);
                let ep = resp.tile_endpoint(server);
                let flit = Flit::single(server, Dest::tile(requester), next_id, p.birth)
                    .with_payload(encode_payload(p.kind, p.requester) | ((tile as u64) << 33));
                next_id += 1;
                resp.enqueue(ep, flit);
            }
        }

        // 2. Step the request network; ejections land at banks or servers.
        let req_ejected = req.step().to_vec();
        for (ep, f) in req_ejected {
            let (kind, requester) = decode_payload(f.payload);
            let pending = Pending {
                ready: cycle + sys.llc_latency as u64,
                requester,
                birth: f.birth,
                kind,
            };
            match req.endpoint_kind(ep) {
                EndpointKind::NorthEdge(col) => bank_q[col as usize].push_back(pending),
                EndpointKind::SouthEdge(col) => {
                    bank_q[dims.cols as usize + col as usize].push_back(pending)
                }
                EndpointKind::Tile(c) => {
                    server_q[dims.index(c)].push_back(Pending {
                        ready: cycle + 1,
                        ..pending
                    });
                }
            }
        }

        // 3. Step the response network; deliveries wake the cores and are
        //    measured.
        let resp_ejected = resp.step().to_vec();
        for (ep, f) in resp_ejected {
            let EndpointKind::Tile(c) = resp.endpoint_kind(ep) else {
                unreachable!("responses terminate at tiles");
            };
            let idx = dims.index(c);
            cores[idx].on_response();
            let (kind, _) = decode_payload(f.payload);
            if kind.measured() {
                let total = (cycle - f.birth) as f64;
                let is_bank = f.payload & (1 << 32) != 0;
                let origin = (f.payload >> 33) as u32 & 0x00FF_FFFF;
                let intrinsic = if is_bank {
                    intrinsic_of(c, Some(origin), None, &mut intrinsic_cache)
                } else {
                    let t = dims.coord(origin as usize);
                    intrinsic_of(c, None, Some(t), &mut intrinsic_cache)
                } as f64;
                lat.total.add(total);
                lat.intrinsic.add(intrinsic);
                lat.congestion.add((total - intrinsic).max(0.0));
            }
        }

        // 4. Cores execute.
        #[allow(clippy::needless_range_loop)] // `idx` also derives coords and endpoints
        for idx in 0..n_tiles {
            let c = dims.coord(idx);
            let ep = req.tile_endpoint(c);
            let can_issue = req.source_len(ep) < sys.nic_depth;
            if let CoreAction::Issue(mreq) = cores[idx].tick(can_issue) {
                let (dest, kind) = match mreq {
                    MemRequest::Load(a) => (bankmap.dest(ipoly.bank(a)), ReqKind::Load),
                    MemRequest::Store(a) => (bankmap.dest(ipoly.bank(a)), ReqKind::Store),
                    MemRequest::Amo(a) => (bankmap.dest(ipoly.bank(a)), ReqKind::Amo),
                    MemRequest::LoadTile(t) => (Dest::tile(t), ReqKind::LoadTile),
                };
                let flit = Flit::single(c, dest, next_id, cycle)
                    .with_payload(encode_payload(kind, idx as u32));
                next_id += 1;
                req.enqueue(ep, flit);
            }
        }

        // 5. Barrier release: when no core is still running, wake everyone
        //    waiting.
        if cores.iter().any(|c| c.state() == CoreState::AtBarrier)
            && cores.iter().all(|c| c.state() != CoreState::Running)
        {
            for c in cores.iter_mut() {
                if c.state() == CoreState::AtBarrier {
                    c.release_barrier();
                }
            }
        }

        cycle += 1;
        if all_done(&cores, &req, &resp, &bank_q, &server_q) {
            break;
        }
    }

    // Aggregate statistics and energy.
    let instructions: u64 = cores.iter().map(|c| c.stats.instructions).sum();
    let stall_cycles: u64 = cores.iter().map(|c| c.stats.stall_cycles).sum();
    let idle_cycles: u64 = cores.iter().map(|c| c.stats.idle_cycles).sum();
    let mem_ops: u64 = cores.iter().map(|c| c.stats.mem_ops).sum();

    let tech = Tech::n12();
    let mut router_pj = 0.0;
    let mut wire_pj = 0.0;
    for (net, cfg) in [(&req, &req_cfg), (&resp, &resp_cfg)] {
        let model = EnergyModel::new(cfg, tech);
        for (_, dir, count) in net.link_loads().iter() {
            if count == 0 {
                continue;
            }
            router_pj += count as f64 * model.router_energy_pj(dir);
            wire_pj += count as f64 * model.link_energy_pj(dir);
        }
    }
    let energy = EnergyBreakdown {
        core_pj: instructions as f64 * sys.e_instr_pj,
        stall_pj: (stall_cycles + idle_cycles) as f64 * sys.e_stall_pj,
        router_pj,
        wire_pj,
    };

    let telemetry = telemetry_window.map(|_| MachineTelemetry {
        req: req.detach_telemetry().expect("attached above"),
        resp: resp.detach_telemetry().expect("attached above"),
        cores: cores.iter().map(|c| c.stats).collect(),
    });

    Ok((
        RunResult {
            label: sys.net.label(),
            cycles: cycle,
            instructions,
            stall_cycles,
            idle_cycles,
            mem_ops,
            load_latency: lat,
            energy,
        },
        telemetry,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_model::Op;
    use crate::kernels::{Benchmark, DatasetId, Workload};

    fn tiny_net() -> NetworkConfig {
        NetworkConfig::mesh(Dims::new(8, 4))
    }

    fn manual(programs: Vec<Vec<Op>>) -> Workload {
        Workload {
            name: "manual".into(),
            programs,
        }
    }

    #[test]
    fn payload_codec_roundtrip() {
        for kind in [
            ReqKind::Load,
            ReqKind::Store,
            ReqKind::Amo,
            ReqKind::LoadTile,
        ] {
            let p = encode_payload(kind, 12345);
            let (k, r) = decode_payload(p);
            assert_eq!(k, kind);
            assert_eq!(r, 12345);
        }
    }

    #[test]
    fn single_load_round_trip_latency_is_intrinsic() {
        let dims = Dims::new(8, 4);
        let mut programs = vec![vec![]; dims.count()];
        programs[0] = vec![Op::Load(42), Op::WaitAll];
        let res = run(&SystemConfig::new(tiny_net()), &manual(programs)).unwrap();
        assert_eq!(res.load_latency.total.count(), 1);
        // An uncontended load has zero congestion latency.
        assert_eq!(res.load_latency.congestion.mean(), 0.0);
        assert_eq!(
            res.load_latency.total.mean(),
            res.load_latency.intrinsic.mean()
        );
        assert!(res.cycles > 5 && res.cycles < 60, "cycles {}", res.cycles);
    }

    #[test]
    fn stores_and_amos_complete() {
        let dims = Dims::new(8, 4);
        let mut programs = vec![vec![]; dims.count()];
        programs[3] = vec![Op::Store(7), Op::Amo(9), Op::WaitAll, Op::Compute(2)];
        let res = run(&SystemConfig::new(tiny_net()), &manual(programs)).unwrap();
        assert_eq!(res.mem_ops, 2);
        // Only the AMO is measured as a load-like access.
        assert_eq!(res.load_latency.total.count(), 1);
    }

    #[test]
    fn tile_to_tile_scratchpad_loads_work() {
        let dims = Dims::new(8, 4);
        let mut programs = vec![vec![]; dims.count()];
        programs[0] = vec![Op::LoadTile(Coord::new(5, 2)), Op::WaitAll];
        let res = run(&SystemConfig::new(tiny_net()), &manual(programs)).unwrap();
        assert_eq!(res.load_latency.total.count(), 1);
        assert!(res.cycles < 60);
    }

    #[test]
    fn barriers_synchronize_all_cores() {
        let dims = Dims::new(8, 4);
        // One slow core; everyone else hits the barrier immediately. The
        // fast cores must wait for the slow one.
        let mut programs = vec![vec![Op::Barrier, Op::Compute(1)]; dims.count()];
        programs[0] = vec![Op::Compute(200), Op::Barrier, Op::Compute(1)];
        let res = run(&SystemConfig::new(tiny_net()), &manual(programs)).unwrap();
        assert!(res.cycles > 200, "cycles {}", res.cycles);
        assert!(res.stall_cycles > 30 * 190, "stalls {}", res.stall_cycles);
    }

    #[test]
    fn workload_shape_mismatch_errors() {
        let err = run(&SystemConfig::new(tiny_net()), &manual(vec![vec![]])).unwrap_err();
        assert!(matches!(err, MachineError::WorkloadShape { .. }));
    }

    #[test]
    fn cycle_cap_errors_instead_of_hanging() {
        let dims = Dims::new(8, 4);
        let mut sys = SystemConfig::new(tiny_net());
        sys.max_cycles = 50;
        let mut programs = vec![vec![]; dims.count()];
        programs[0] = vec![Op::Compute(10_000)];
        let err = run(&sys, &manual(programs)).unwrap_err();
        assert!(matches!(err, MachineError::CycleLimit { .. }));
    }

    #[test]
    fn jacobi_runs_end_to_end_on_mesh_and_ruche() {
        let w = Workload::build(Benchmark::Jacobi, DatasetId::Default, Dims::new(8, 4));
        let mesh = run(&SystemConfig::new(tiny_net()), &w).unwrap();
        let ruche = run(
            &SystemConfig::new(NetworkConfig::half_ruche(
                Dims::new(8, 4),
                2,
                CrossbarScheme::Depopulated,
            )),
            &w,
        )
        .unwrap();
        assert!(mesh.cycles > 0 && ruche.cycles > 0);
        assert!(mesh.instructions == ruche.instructions, "same work");
        assert!(mesh.energy.total_pj() > 0.0);
        assert_eq!(ruche.label, "half-ruche2-depop");
        // Jacobi's halo exchange is local-only, but its LLC slab streaming
        // rides the Ruche highway; mesh has no long wires at all.
        assert_eq!(mesh.energy.wire_pj, 0.0);
        assert!(ruche.energy.wire_pj > 0.0);
    }

    #[test]
    fn llc_streaming_uses_ruche_wires() {
        let dims = Dims::new(8, 4);
        let w = Workload::build(Benchmark::Sgemm, DatasetId::Default, dims);
        let mesh = run(&SystemConfig::new(NetworkConfig::mesh(dims)), &w).unwrap();
        let ruche = run(
            &SystemConfig::new(NetworkConfig::half_ruche(
                dims,
                2,
                CrossbarScheme::Depopulated,
            )),
            &w,
        )
        .unwrap();
        assert_eq!(mesh.energy.wire_pj, 0.0);
        assert!(ruche.energy.wire_pj > 0.0, "LLC traffic rides the highway");
    }

    #[test]
    fn congestion_latency_appears_under_load() {
        // Everyone streams to the LLC: horizontal bisection congests and
        // measured congestion latency becomes non-trivial.
        let dims = Dims::new(8, 4);
        let programs = vec![(0..200u64).map(Op::Load).chain([Op::WaitAll]).collect(); dims.count()];
        let res = run(&SystemConfig::new(tiny_net()), &manual(programs)).unwrap();
        assert!(res.load_latency.congestion.mean() > 1.0);
        assert!(res.load_latency.total.mean() > res.load_latency.intrinsic.mean());
    }

    #[test]
    fn deterministic_runs() {
        let w = Workload::build(Benchmark::Sgemm, DatasetId::Default, Dims::new(8, 4));
        let a = run(&SystemConfig::new(tiny_net()), &w).unwrap();
        let b = run(&SystemConfig::new(tiny_net()), &w).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stall_cycles, b.stall_cycles);
    }

    #[test]
    fn probed_run_simulates_identically_and_exports() {
        use ruche_telemetry::JsonProbe;
        let w = Workload::build(Benchmark::Jacobi, DatasetId::Default, Dims::new(8, 4));
        let sys = SystemConfig::new(tiny_net());
        let plain = run(&sys, &w).unwrap();
        let (probed, tel) = run_probed(&sys, &w, 64).unwrap();
        // Telemetry observes; it must not perturb the simulation.
        assert_eq!(plain.cycles, probed.cycles);
        assert_eq!(plain.stall_cycles, probed.stall_cycles);
        assert_eq!(plain.energy, probed.energy);

        assert_eq!(tel.req.cycles(), probed.cycles);
        assert_eq!(tel.cores.len(), 32);
        // Per-core causes partition each core's stall total.
        for s in &tel.cores {
            assert_eq!(s.stall_breakdown(), s.stall_cycles, "{s:?}");
        }
        // The request network moved traffic; the export nests both
        // networks and the core arrays under distinct prefixes.
        let mut p = JsonProbe::new();
        tel.export(&mut p);
        let blob = p.into_json();
        for key in [
            "req.cycles",
            "resp.cycles",
            "core.instructions",
            "core.stall_nic",
        ] {
            assert!(blob.contains(&format!("\"{key}\"")), "missing {key}");
        }
        // Byte-identical across identical probed runs.
        let (_, tel2) = run_probed(&sys, &w, 64).unwrap();
        let mut p2 = JsonProbe::new();
        tel2.export(&mut p2);
        assert_eq!(blob, p2.into_json());
    }
}
