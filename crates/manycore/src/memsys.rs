//! The edge memory system: LLC banks on the north/south array edges and
//! IPOLY pseudo-random address interleaving (Rau, ISCA '91).
//!
//! The paper's manycore hashes the address space across LLC banks with
//! IPOLY hashing, which "effectively balances the traffic" (§4.8). The
//! hash is polynomial modulus over GF(2): each address bit `i` contributes
//! `x^i mod P(x)` to the bank index, with `P` an irreducible polynomial of
//! degree `log2(banks)`.

use ruche_noc::geometry::Dims;
use ruche_noc::routing::Dest;
use serde::{Deserialize, Serialize};

/// Irreducible polynomials over GF(2) by degree (low bits; the implicit
/// leading term is handled in the reduction). Degrees 1..=10.
const IPOLY: [u32; 11] = [
    0b1,           // unused (degree 0)
    0b11,          // x + 1
    0b111,         // x^2 + x + 1
    0b1011,        // x^3 + x + 1
    0b10011,       // x^4 + x + 1
    0b100101,      // x^5 + x^2 + 1
    0b1000011,     // x^6 + x + 1
    0b10001001,    // x^7 + x^3 + 1
    0b100011101,   // x^8 + x^4 + x^3 + x^2 + 1
    0b1000010001,  // x^9 + x^4 + 1
    0b10000001001, // x^10 + x^3 + 1
];

/// IPOLY address-to-bank interleaver for `banks` LLC banks.
///
/// Non-power-of-two bank counts hash into the next power of two and fold
/// by modulus (a small imbalance documented in DESIGN.md; every paper
/// configuration has a power-of-two bank count).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipoly {
    banks: u32,
    degree: u32,
    /// `x^i mod P(x)` for each address bit `i`.
    powers: Vec<u32>,
}

impl Ipoly {
    /// Builds the interleaver for `banks` banks (up to 1024).
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or needs a polynomial degree above 10.
    pub fn new(banks: u32) -> Self {
        assert!(banks > 0, "need at least one bank");
        let degree = 32 - (banks - 1).leading_zeros().min(31);
        let degree = degree.max(1);
        assert!(
            degree <= 10,
            "bank count {banks} needs polynomial degree {degree} > 10"
        );
        let poly = IPOLY[degree as usize];
        // powers[i] = x^i mod P, computed iteratively.
        let mut powers = Vec::with_capacity(40);
        let mut cur = 1u32; // x^0
        for _ in 0..40 {
            powers.push(cur);
            cur <<= 1;
            if cur & (1 << degree) != 0 {
                cur ^= poly;
            }
        }
        Ipoly {
            banks,
            degree,
            powers,
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Bank index for a word address.
    pub fn bank(&self, addr: u64) -> u32 {
        let mut h = 0u32;
        let mut a = addr;
        let mut i = 0;
        while a != 0 && i < self.powers.len() {
            if a & 1 != 0 {
                h ^= self.powers[i];
            }
            a >>= 1;
            i += 1;
        }
        h % self.banks
    }
}

/// Maps LLC bank indices to edge endpoints: banks `0..cols` sit on the
/// north edge, `cols..2·cols` on the south edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankMap {
    /// Array dimensions.
    pub dims: Dims,
}

impl BankMap {
    /// Total banks (`2 × cols`).
    pub fn banks(&self) -> u32 {
        2 * self.dims.cols as u32
    }

    /// The routing destination of a bank.
    pub fn dest(&self, bank: u32) -> Dest {
        let cols = self.dims.cols as u32;
        debug_assert!(bank < self.banks());
        if bank < cols {
            Dest::north_edge(bank as u16)
        } else {
            Dest::south_edge((bank - cols) as u16, self.dims.rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruche_noc::routing::EdgePort;

    #[test]
    fn ipoly_covers_all_banks_evenly() {
        let h = Ipoly::new(32);
        let mut counts = [0u32; 32];
        for addr in 0..32_000u64 {
            counts[h.bank(addr) as usize] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        assert!(min > 0);
        assert!(
            (max - min) as f64 / (32_000.0 / 32.0) < 0.1,
            "balanced: {min}..{max}"
        );
    }

    #[test]
    fn ipoly_breaks_power_of_two_strides() {
        // The point of IPOLY over simple modulo: power-of-two strides still
        // spread across banks instead of camping on one.
        let h = Ipoly::new(16);
        for stride in [2u64, 4, 8, 16, 32, 64] {
            let mut banks: Vec<u32> = (0..64u64).map(|i| h.bank(i * stride)).collect();
            banks.sort_unstable();
            banks.dedup();
            assert!(
                banks.len() >= 8,
                "stride {stride} hits only {} banks",
                banks.len()
            );
        }
    }

    #[test]
    fn ipoly_is_deterministic_and_in_range() {
        let h = Ipoly::new(14); // non-power-of-two folds
        for addr in 0..10_000u64 {
            let b = h.bank(addr);
            assert!(b < 14);
            assert_eq!(b, h.bank(addr));
        }
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        Ipoly::new(0);
    }

    #[test]
    fn bank_map_splits_north_south() {
        let m = BankMap {
            dims: Dims::new(16, 8),
        };
        assert_eq!(m.banks(), 32);
        let north = m.dest(3);
        assert_eq!(north.edge, Some(EdgePort::North));
        assert_eq!(north.coord.x, 3);
        let south = m.dest(16 + 5);
        assert_eq!(south.edge, Some(EdgePort::South));
        assert_eq!(south.coord.x, 5);
        assert_eq!(south.coord.y, 7);
    }
}
