//! # ruche-manycore
//!
//! An execution-driven cellular-manycore simulator in the style of the
//! paper's HammerBlade substrate (§4.6): in-order cores with bounded
//! outstanding remote requests, LLC banks on the north/south edges with
//! IPOLY address interleaving, and two physical NoCs (requests X-Y,
//! responses Y-X) built on [`ruche_noc`].
//!
//! Workloads are the seven parallel benchmarks of the paper's Table 5,
//! modeled by their communication signatures on scaled datasets (see
//! DESIGN.md §1 and §4 for the substitution rationale).
//!
//! ```no_run
//! use ruche_manycore::prelude::*;
//! use ruche_noc::prelude::*;
//!
//! let dims = Dims::new(16, 8);
//! let workload = Workload::build(Benchmark::Jacobi, DatasetId::Default, dims);
//! let mesh = run(&SystemConfig::new(NetworkConfig::mesh(dims)), &workload)?;
//! let ruche = run(
//!     &SystemConfig::new(NetworkConfig::half_ruche(dims, 2, CrossbarScheme::Depopulated)),
//!     &workload,
//! )?;
//! println!("speedup: {:.2}x", mesh.cycles as f64 / ruche.cycles as f64);
//! # Ok::<(), ruche_manycore::machine::MachineError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod core_model;
pub mod graph;
pub mod kernels;
pub mod machine;
pub mod memsys;

/// Convenient re-exports of the most used types.
pub mod prelude {
    pub use crate::core_model::{Core, CoreAction, CoreState, CoreStats, Op};
    pub use crate::graph::{Csr, GraphId};
    pub use crate::kernels::{Benchmark, DatasetId, Workload};
    pub use crate::machine::{
        run, run_probed, EnergyBreakdown, LatencySplit, MachineError, MachineTelemetry, RunResult,
        SystemConfig,
    };
    pub use crate::memsys::{BankMap, Ipoly};
}
