//! The seven parallel workloads of Table 5, as per-tile operation streams.
//!
//! Each builder reproduces the benchmark's *communication signature* (see
//! DESIGN.md §4): what matters to the NoC is the mix of streaming vs
//! dependent accesses, the burstiness, the locality (neighbor scratchpad vs
//! LLC), the load balance across tiles, and serialization points — not the
//! arithmetic itself, which is abstracted into `Compute` cycles.
//!
//! Datasets are scaled ~4–100× from Table 5 (uniformly across all network
//! configurations, so relative speedups are preserved).

use crate::core_model::Op;
use crate::graph::{Csr, GraphId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ruche_noc::geometry::Dims;
use serde::{Deserialize, Serialize};

/// Address-space bases per logical array (word addresses; IPOLY spreads
/// them across banks).
mod base {
    pub const MATRIX_A: u64 = 0x0100_0000;
    pub const MATRIX_B: u64 = 0x0200_0000;
    pub const MATRIX_C: u64 = 0x0300_0000;
    pub const FFT_DATA: u64 = 0x0400_0000;
    pub const TREE: u64 = 0x0500_0000;
    pub const VISITED: u64 = 0x0600_0000;
    pub const RANK: u64 = 0x0700_0000;
    pub const RANK_NEW: u64 = 0x0800_0000;
    pub const COLS: u64 = 0x0900_0000;
    /// The SpGEMM dynamic-allocator variable — a single shared word, the
    /// paper's noted hotspot (§4.6).
    pub const ALLOC: u64 = 0x0A00_0000;
}

/// The paper's benchmarks (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// 3-D stencil over neighbor scratchpads.
    Jacobi,
    /// Blocked dense matrix multiply, LLC streaming.
    Sgemm,
    /// 2-D FFT with transpose phases.
    Fft,
    /// Barnes-Hut N-body tree walks (dependent loads).
    BarnesHut,
    /// Breadth-first search (frontier bursts, per-level barriers).
    Bfs,
    /// PageRank edge streaming.
    PageRank,
    /// Sparse GEMM: linked-list pointer chasing plus an atomic-allocator
    /// hotspot.
    SpGemm,
}

impl Benchmark {
    /// All benchmarks, Table 5 order.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::Jacobi,
        Benchmark::Sgemm,
        Benchmark::Fft,
        Benchmark::BarnesHut,
        Benchmark::Bfs,
        Benchmark::PageRank,
        Benchmark::SpGemm,
    ];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Jacobi => "jacobi",
            Benchmark::Sgemm => "sgemm",
            Benchmark::Fft => "fft",
            Benchmark::BarnesHut => "bh",
            Benchmark::Bfs => "bfs",
            Benchmark::PageRank => "pr",
            Benchmark::SpGemm => "spgemm",
        }
    }

    /// The Table 5 datasets for this benchmark (scaled).
    pub fn datasets(self) -> Vec<DatasetId> {
        match self {
            Benchmark::Jacobi | Benchmark::Sgemm => vec![DatasetId::Default],
            Benchmark::Fft => vec![DatasetId::Fft16K, DatasetId::Fft32K],
            Benchmark::BarnesHut => {
                vec![DatasetId::Bh16K, DatasetId::Bh32K, DatasetId::Bh64K]
            }
            Benchmark::Bfs => [
                GraphId::Os,
                GraphId::Ca,
                GraphId::Lj,
                GraphId::Hw,
                GraphId::Pk,
            ]
            .map(DatasetId::Graph)
            .to_vec(),
            Benchmark::PageRank => [GraphId::Os, GraphId::Lj, GraphId::Hw, GraphId::Pk]
                .map(DatasetId::Graph)
                .to_vec(),
            Benchmark::SpGemm => [GraphId::Ca, GraphId::Rc, GraphId::Us]
                .map(DatasetId::Graph)
                .to_vec(),
        }
    }
}

/// A dataset selector (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// The benchmark's single dataset (Jacobi grid / SGEMM matrices).
    Default,
    /// 16K-point FFT.
    Fft16K,
    /// 32K-point FFT.
    Fft32K,
    /// 16K bodies (scaled to 4K).
    Bh16K,
    /// 32K bodies (scaled to 8K).
    Bh32K,
    /// 64K bodies (scaled to 16K).
    Bh64K,
    /// A Table 5 graph.
    Graph(GraphId),
}

impl DatasetId {
    /// Report label.
    pub fn label(self) -> String {
        match self {
            DatasetId::Default => String::new(),
            DatasetId::Fft16K => "16K".into(),
            DatasetId::Fft32K => "32K".into(),
            DatasetId::Bh16K => "16K".into(),
            DatasetId::Bh32K => "32K".into(),
            DatasetId::Bh64K => "64K".into(),
            DatasetId::Graph(g) => g.label().into(),
        }
    }
}

/// A built workload: one operation stream per tile (row-major tile order).
#[derive(Debug, Clone)]
pub struct Workload {
    /// `bench(dataset)` label.
    pub name: String,
    /// Per-tile streams, indexed row-major.
    pub programs: Vec<Vec<Op>>,
}

impl Workload {
    /// The `bench(dataset)` label a build would produce, without building.
    pub fn build_name(bench: Benchmark, ds: DatasetId) -> String {
        let label = ds.label();
        if label.is_empty() {
            bench.name().to_string()
        } else {
            format!("{}({})", bench.name(), label)
        }
    }

    /// Builds the workload for a benchmark/dataset on a tile array.
    ///
    /// # Panics
    ///
    /// Panics if the dataset does not belong to the benchmark.
    pub fn build(bench: Benchmark, ds: DatasetId, dims: Dims) -> Workload {
        let programs = match (bench, ds) {
            (Benchmark::Jacobi, DatasetId::Default) => jacobi(dims),
            (Benchmark::Sgemm, DatasetId::Default) => sgemm(dims),
            (Benchmark::Fft, DatasetId::Fft16K) => fft(dims, 16 * 1024),
            (Benchmark::Fft, DatasetId::Fft32K) => fft(dims, 32 * 1024),
            (Benchmark::BarnesHut, DatasetId::Bh16K) => barnes_hut(dims, 4 * 1024),
            (Benchmark::BarnesHut, DatasetId::Bh32K) => barnes_hut(dims, 8 * 1024),
            (Benchmark::BarnesHut, DatasetId::Bh64K) => barnes_hut(dims, 16 * 1024),
            (Benchmark::Bfs, DatasetId::Graph(g)) => bfs(dims, &g.build(), g),
            (Benchmark::PageRank, DatasetId::Graph(g)) => pagerank(dims, &g.build()),
            (Benchmark::SpGemm, DatasetId::Graph(g)) => spgemm(dims, &g.build()),
            (b, d) => panic!("dataset {d:?} does not belong to benchmark {b:?}"),
        };
        Workload {
            name: Self::build_name(bench, ds),
            programs,
        }
    }

    /// Total operations across all tiles.
    pub fn total_ops(&self) -> usize {
        self.programs.iter().map(Vec::len).sum()
    }
}

fn owner(v: u32, n_tiles: usize) -> usize {
    v as usize % n_tiles
}

/// Appends a barrier to every tile's stream.
fn barrier_all(programs: &mut [Vec<Op>]) {
    for p in programs.iter_mut() {
        p.push(Op::Barrier);
    }
}

/// Jacobi 3-D stencil (paper: 512×512×64 FP32, scaled). The grid is
/// block-partitioned onto the tile array; each iteration exchanges halo
/// words with the four *physically adjacent* tiles' scratchpads — the
/// access that makes folded torus pathological (§4.6) — then relaxes the
/// interior.
fn jacobi(dims: Dims) -> Vec<Vec<Op>> {
    // Fixed global grid (scaled from the paper's 512×512×64), block-
    // partitioned over however many tiles the array has — so Figure 11's
    // scalability measures strong scaling, as in the paper.
    let (nx, ny, nz) = (64u32, 32u32, 8u32);
    let bx = (nx / dims.cols as u32).max(1);
    let by = (ny / dims.rows as u32).max(1);
    let bz = nz;
    let cells = (bx * by * bz) as u64;
    let iterations = 4;
    let mut programs = vec![Vec::new(); dims.count()];
    for it in 0..iterations {
        for c in dims.iter() {
            let t = dims.index(c) as u64;
            let p = &mut programs[dims.index(c)];
            // The full grid does not fit in scratchpads (512×512×64 in the
            // paper): stream this iteration's block slab in from the LLC.
            for w in 0..cells / 2 {
                p.push(Op::Load(
                    base::FFT_DATA + t * cells + (it as u64 % 2) * cells / 2 + w,
                ));
                if w % 4 == 3 {
                    p.push(Op::Compute(1));
                }
            }
            // Halo exchange: one word per boundary cell per face, read from
            // the physically adjacent tile's scratchpad.
            for (dx, dy, words) in [
                (1i32, 0i32, by * bz),
                (-1, 0, by * bz),
                (0, 1, bx * bz),
                (0, -1, bx * bz),
            ] {
                if let Some(nb) = c.offset(dx, dy, dims) {
                    for w in 0..words {
                        p.push(Op::LoadTile(nb));
                        if w % 4 == 3 {
                            p.push(Op::Compute(1)); // overlap a little work
                        }
                    }
                }
            }
            p.push(Op::WaitAll);
            // Interior relaxation: ~1 cycle/cell, then write the slab back.
            p.push(Op::Compute(bx * by * bz));
            for w in 0..cells / 4 {
                p.push(Op::Store(base::FFT_DATA + t * cells + w));
            }
            p.push(Op::WaitAll);
        }
        barrier_all(&mut programs);
    }
    programs
}

/// Blocked SGEMM (paper: 512³ FP32, scaled to 128³ fixed across array
/// sizes so scalability is measured on the same problem). A and B panels
/// stream from the LLC; C accumulates locally.
fn sgemm(dims: Dims) -> Vec<Vec<Op>> {
    let n = 128u64;
    let kb = 4u64; // k-block
    let br = (n / dims.cols as u64).max(1); // C-block rows per tile
    let bc = (n / dims.rows as u64).max(1); // C-block cols per tile
    let mut programs = vec![Vec::new(); dims.count()];
    for c in dims.iter() {
        let p = &mut programs[dims.index(c)];
        let row0 = c.x as u64 * br;
        let col0 = c.y as u64 * bc;
        for k0 in (0..n).step_by(kb as usize) {
            // Stream the A and B panels for this k-block.
            for r in 0..br {
                for k in 0..kb {
                    p.push(Op::Load(base::MATRIX_A + (row0 + r) * n + k0 + k));
                }
            }
            for k in 0..kb {
                for cc in 0..bc {
                    p.push(Op::Load(base::MATRIX_B + (k0 + k) * n + col0 + cc));
                }
            }
            p.push(Op::WaitAll);
            // 2·br·bc·kb flops at ~2 flops/cycle.
            p.push(Op::Compute((br * bc * kb) as u32));
        }
        // Write back the C block.
        for r in 0..br {
            for cc in 0..bc {
                p.push(Op::Store(base::MATRIX_C + (row0 + r) * n + col0 + cc));
            }
        }
        p.push(Op::WaitAll);
    }
    barrier_all(&mut programs);
    programs
}

/// 2-D FFT (paper: 16K/32K points). Four phases of whole-array streaming
/// (row FFTs, transpose write/read, column FFTs) separated by barriers —
/// the sequential-stream workload that suffers most from bisection
/// congestion in 2-D mesh (Figure 12).
fn fft(dims: Dims, points: u64) -> Vec<Vec<Op>> {
    let n_tiles = dims.count() as u64;
    let per_tile = (points / n_tiles).max(1);
    let log_n = 64 - u64::leading_zeros(points.next_power_of_two()) as u64;
    let mut programs = vec![Vec::new(); dims.count()];
    for phase in 0..2u64 {
        for c in dims.iter() {
            let t = dims.index(c) as u64;
            let p = &mut programs[dims.index(c)];
            for w in 0..per_tile {
                // Phase 0 reads contiguous rows; phase 1 reads the
                // transpose (stride = per_tile · tiles / per_tile = tiles).
                let addr = if phase == 0 {
                    t * per_tile + w
                } else {
                    w * n_tiles + t
                };
                p.push(Op::Load(base::FFT_DATA + addr));
                if w % 2 == 1 {
                    p.push(Op::Compute(1));
                }
            }
            p.push(Op::WaitAll);
            // Butterflies: ~(points/tile) · log2(N) / 4 cycles.
            p.push(Op::Compute((per_tile * log_n / 4).max(1) as u32));
            for w in 0..per_tile {
                let addr = if phase == 0 {
                    t * per_tile + w
                } else {
                    w * n_tiles + t
                };
                p.push(Op::Store(base::FFT_DATA + addr));
            }
            p.push(Op::WaitAll);
        }
        barrier_all(&mut programs);
    }
    programs
}

/// Barnes-Hut (paper: 16K/32K/64K bodies, scaled 4×). Each body performs a
/// tree walk: a chain of *dependent* LLC loads — the latency-bound pattern
/// that benefits from intrinsic-latency reduction.
fn barnes_hut(dims: Dims, bodies: u64) -> Vec<Vec<Op>> {
    let n_tiles = dims.count() as u64;
    let per_tile = (bodies / n_tiles).max(1);
    let depth = 8;
    let tree_words = bodies * 2;
    let mut programs = vec![Vec::new(); dims.count()];
    for c in dims.iter() {
        let t = dims.index(c) as u64;
        let mut rng = SmallRng::seed_from_u64(0xB0D1E5 ^ t);
        let p = &mut programs[dims.index(c)];
        for _ in 0..per_tile {
            for _ in 0..depth {
                let node = rng.gen_range(0..tree_words);
                p.push(Op::Load(base::TREE + node));
                p.push(Op::WaitAll);
                p.push(Op::Compute(2));
            }
            p.push(Op::Compute(8)); // force accumulation
        }
    }
    barrier_all(&mut programs);
    programs
}

/// BFS. The real frontier schedule of the (synthetic) graph drives the
/// trace: per level, each vertex's owner scans its edges with a burst of
/// irregular LLC loads; a barrier separates levels. Social graphs give few
/// levels with huge, imbalanced frontiers; road graphs give hundreds of
/// tiny ones.
fn bfs(dims: Dims, g: &Csr, id: GraphId) -> Vec<Vec<Op>> {
    let n_tiles = dims.count();
    // Social graphs start at a hub (as Graph500 does); road graphs at a
    // central vertex. Fall back to the hub if the first pick lands in a
    // small disconnected island of the synthetic graph.
    let hub = (0..g.vertices() as u32)
        .max_by_key(|&v| g.degree(v))
        .unwrap_or(0);
    let root = if id.category() == "Social" {
        hub
    } else {
        (g.vertices() / 2) as u32
    };
    let mut levels = g.bfs_levels(root);
    let reached: usize = levels.iter().map(Vec::len).sum();
    if reached < g.vertices() / 2 {
        levels = g.bfs_levels(hub);
    }
    let mut programs = vec![Vec::new(); n_tiles];
    for level in levels {
        for &v in &level {
            let p = &mut programs[owner(v, n_tiles)];
            for (i, &u) in g.neighbors(v).iter().enumerate() {
                p.push(Op::Load(base::VISITED + u as u64));
                if i % 4 == 3 {
                    p.push(Op::Compute(1));
                }
            }
        }
        barrier_all(&mut programs);
    }
    programs
}

/// PageRank: one full iteration of edge streaming — every owner loads the
/// rank of each in-neighbor. The highest sustained irregular injection of
/// the suite on social graphs.
fn pagerank(dims: Dims, g: &Csr) -> Vec<Vec<Op>> {
    let n_tiles = dims.count();
    let mut programs = vec![Vec::new(); n_tiles];
    for v in 0..g.vertices() as u32 {
        let p = &mut programs[owner(v, n_tiles)];
        for &u in g.neighbors(v) {
            p.push(Op::Load(base::RANK + u as u64));
        }
        if g.degree(v) > 0 {
            p.push(Op::Compute(2));
            p.push(Op::Store(base::RANK_NEW + v as u64));
        }
    }
    barrier_all(&mut programs);
    programs
}

/// SpGEMM (linked-list formulation): pointer-chasing chains of dependent
/// loads per row-pair, plus a shared atomic allocator counter for output
/// node allocation — the hotspot that caps 32×16 US/RC speedups (§4.6).
/// Rows are sampled 4× to keep the latency-bound runtime tractable; the
/// sampling is uniform so every tile and network sees the same share.
fn spgemm(dims: Dims, g: &Csr) -> Vec<Vec<Op>> {
    let n_tiles = dims.count();
    let mut programs = vec![Vec::new(); n_tiles];
    for v in (0..g.vertices() as u32).step_by(4) {
        let p = &mut programs[owner(v, n_tiles)];
        let mut outputs = 0;
        for &k in g.neighbors(v).iter().take(4) {
            // Chase row k's linked list.
            for &u in g.neighbors(k).iter().take(6) {
                p.push(Op::Load(base::COLS + u as u64));
                p.push(Op::WaitAll);
                p.push(Op::Compute(1));
                outputs += 1;
            }
        }
        // Allocate output nodes from the shared free list.
        if outputs > 0 {
            p.push(Op::Amo(base::ALLOC));
            p.push(Op::WaitAll);
        }
    }
    barrier_all(&mut programs);
    programs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> Dims {
        Dims::new(8, 4)
    }

    #[test]
    fn every_benchmark_builds() {
        for b in Benchmark::ALL {
            let ds = b.datasets()[0];
            let w = Workload::build(b, ds, dims());
            assert_eq!(w.programs.len(), 32);
            assert!(w.total_ops() > 0, "{}", w.name);
        }
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn mismatched_dataset_panics() {
        Workload::build(Benchmark::Jacobi, DatasetId::Fft16K, dims());
    }

    #[test]
    fn jacobi_uses_adjacent_tiles_only() {
        let w = Workload::build(Benchmark::Jacobi, DatasetId::Default, dims());
        for (i, p) in w.programs.iter().enumerate() {
            let c = dims().coord(i);
            for op in p {
                if let Op::LoadTile(t) = op {
                    assert_eq!(c.manhattan(*t), 1, "tile {c} loads from {t}");
                }
            }
        }
    }

    #[test]
    fn sgemm_streams_from_llc() {
        let w = Workload::build(Benchmark::Sgemm, DatasetId::Default, dims());
        let loads = w.programs[0]
            .iter()
            .filter(|o| matches!(o, Op::Load(_)))
            .count();
        let stores = w.programs[0]
            .iter()
            .filter(|o| matches!(o, Op::Store(_)))
            .count();
        assert!(loads > 500, "streaming loads: {loads}");
        assert!(stores > 0);
    }

    #[test]
    fn bh_is_dependent_chains() {
        let w = Workload::build(Benchmark::BarnesHut, DatasetId::Bh16K, dims());
        let p = &w.programs[0];
        let loads = p.iter().filter(|o| matches!(o, Op::Load(_))).count();
        let waits = p.iter().filter(|o| matches!(o, Op::WaitAll)).count();
        assert!(waits >= loads, "every tree load is a dependence point");
    }

    #[test]
    fn bfs_has_balanced_barriers_and_real_imbalance() {
        let g = GraphId::Ca.build();
        let programs = bfs(dims(), &g, GraphId::Ca);
        let barrier_counts: Vec<usize> = programs
            .iter()
            .map(|p| p.iter().filter(|o| matches!(o, Op::Barrier)).count())
            .collect();
        assert!(barrier_counts.windows(2).all(|w| w[0] == w[1]));
        assert!(barrier_counts[0] > 50, "road graph has many levels");
    }

    #[test]
    fn spgemm_has_the_atomic_hotspot() {
        let w = Workload::build(Benchmark::SpGemm, DatasetId::Graph(GraphId::Ca), dims());
        let mut amo_addrs: Vec<u64> = w
            .programs
            .iter()
            .flatten()
            .filter_map(|o| match o {
                Op::Amo(a) => Some(*a),
                _ => None,
            })
            .collect();
        assert!(!amo_addrs.is_empty());
        amo_addrs.dedup();
        assert_eq!(amo_addrs.len(), 1, "all atomics hit one shared address");
    }

    #[test]
    fn fft_sizes_scale_ops() {
        let small = Workload::build(Benchmark::Fft, DatasetId::Fft16K, dims());
        let large = Workload::build(Benchmark::Fft, DatasetId::Fft32K, dims());
        assert!(large.total_ops() > small.total_ops());
    }

    #[test]
    fn workload_names_include_dataset() {
        let w = Workload::build(Benchmark::Bfs, DatasetId::Graph(GraphId::Os), dims());
        assert_eq!(w.name, "bfs(OS)");
        let j = Workload::build(Benchmark::Jacobi, DatasetId::Default, dims());
        assert_eq!(j.name, "jacobi");
    }

    #[test]
    fn datasets_match_table5() {
        assert_eq!(Benchmark::Fft.datasets().len(), 2);
        assert_eq!(Benchmark::BarnesHut.datasets().len(), 3);
        assert_eq!(Benchmark::Bfs.datasets().len(), 5);
        assert_eq!(Benchmark::SpGemm.datasets().len(), 3);
    }
}
