//! Synthetic graph generation and CSR storage.
//!
//! Substitutes for the UF Sparse Matrix Collection inputs of the paper's
//! Table 5 (see DESIGN.md §1): R-MAT power-law graphs stand in for the
//! social networks (LJ, HW, PK), perturbed 2-D lattices for the road
//! networks (CA, RC, US), and a 3-D finite-element mesh for `offshore`.
//! Sizes are scaled down ~100× uniformly; degree distribution, diameter
//! class, and locality structure — the properties that drive BFS/PageRank/
//! SpGEMM network behaviour — are preserved.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A directed graph in compressed-sparse-row form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from an edge list over `n` vertices; parallel edges
    /// and self-loops are kept (they exist in the real datasets too).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u32; n];
        for &(s, d) in edges {
            assert!((s as usize) < n && (d as usize) < n, "edge out of range");
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; edges.len()];
        for &(s, d) in edges {
            targets[cursor[s as usize] as usize] = d;
            cursor[s as usize] += 1;
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        (0..self.vertices() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Breadth-first levels from `root`: `levels[i]` is the frontier at
    /// depth `i`. Unreached vertices appear in no level.
    pub fn bfs_levels(&self, root: u32) -> Vec<Vec<u32>> {
        let n = self.vertices();
        let mut seen = vec![false; n];
        let mut levels = Vec::new();
        let mut frontier = vec![root];
        seen[root as usize] = true;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &u in self.neighbors(v) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        next.push(u);
                    }
                }
            }
            levels.push(std::mem::take(&mut frontier));
            frontier = next;
        }
        levels
    }
}

/// R-MAT generator (power-law "social network" graphs), symmetrized.
pub fn rmat(n_log2: u32, edges: usize, seed: u64) -> Csr {
    let n = 1usize << n_log2;
    let (a, b, c) = (0.57, 0.19, 0.19); // classic Graph500 parameters
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut list = Vec::with_capacity(edges * 2);
    for _ in 0..edges {
        let (mut x, mut y) = (0usize, 0usize);
        for bit in (0..n_log2).rev() {
            let r: f64 = rng.gen();
            let (dx, dy) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            x |= dx << bit;
            y |= dy << bit;
        }
        list.push((x as u32, y as u32));
        list.push((y as u32, x as u32));
    }
    Csr::from_edges(n, &list)
}

/// Road-network generator: a `w × h` lattice with 8-neighbor shortcuts
/// removed at random, yielding a low-degree, high-diameter, near-planar
/// graph like roadNet-CA / road-central / road-usa.
pub fn road(w: usize, h: usize, seed: u64) -> Csr {
    let n = w * h;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut list = Vec::with_capacity(n * 3);
    let id = |x: usize, y: usize| (y * w + x) as u32;
    for y in 0..h {
        for x in 0..w {
            // Grid edges, each kept with high probability (broken roads).
            if x + 1 < w && rng.gen_bool(0.92) {
                list.push((id(x, y), id(x + 1, y)));
                list.push((id(x + 1, y), id(x, y)));
            }
            if y + 1 < h && rng.gen_bool(0.92) {
                list.push((id(x, y), id(x, y + 1)));
                list.push((id(x, y + 1), id(x, y)));
            }
            // Occasional diagonal (intersections/ramps).
            if x + 1 < w && y + 1 < h && rng.gen_bool(0.08) {
                list.push((id(x, y), id(x + 1, y + 1)));
                list.push((id(x + 1, y + 1), id(x, y)));
            }
        }
    }
    Csr::from_edges(n, &list)
}

/// Finite-element mesh generator (`offshore`-like): a 3-D structured grid
/// where each interior cell connects to its 3-D stencil neighborhood,
/// giving a uniform degree around 16.
pub fn fem(nx: usize, ny: usize, nz: usize, seed: u64) -> Csr {
    let n = nx * ny * nz;
    let mut rng = SmallRng::seed_from_u64(seed);
    let id = |x: usize, y: usize, z: usize| (z * ny * nx + y * nx + x) as u32;
    let mut list = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                for (dx, dy, dz) in [
                    (1, 0, 0),
                    (0, 1, 0),
                    (0, 0, 1),
                    (1, 1, 0),
                    (1, 0, 1),
                    (0, 1, 1),
                    (1, 1, 1),
                    (1, -1i64, 0),
                ] {
                    let (x2, y2, z2) = (x as i64 + dx as i64, y as i64 + dy, z as i64 + dz as i64);
                    if x2 < 0 || y2 < 0 || z2 < 0 {
                        continue;
                    }
                    let (x2, y2, z2) = (x2 as usize, y2 as usize, z2 as usize);
                    if x2 >= nx || y2 >= ny || z2 >= nz {
                        continue;
                    }
                    if rng.gen_bool(0.95) {
                        list.push((id(x, y, z), id(x2, y2, z2)));
                        list.push((id(x2, y2, z2), id(x, y, z)));
                    }
                }
            }
        }
    }
    Csr::from_edges(n, &list)
}

/// The graph datasets of Table 5 (scaled ~100×; see DESIGN.md §1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphId {
    /// `offshore` — scientific FEM mesh.
    Os,
    /// `roadNet-CA`.
    Ca,
    /// `road-central`.
    Rc,
    /// `road-usa`.
    Us,
    /// `ljournal-2008`.
    Lj,
    /// `hollywood-2009`.
    Hw,
    /// `soc-Pokec`.
    Pk,
}

impl GraphId {
    /// All graphs in Table 5 order.
    pub const ALL: [GraphId; 7] = [
        GraphId::Os,
        GraphId::Ca,
        GraphId::Rc,
        GraphId::Us,
        GraphId::Lj,
        GraphId::Hw,
        GraphId::Pk,
    ];

    /// The paper's two-letter label.
    pub fn label(self) -> &'static str {
        match self {
            GraphId::Os => "OS",
            GraphId::Ca => "CA",
            GraphId::Rc => "RC",
            GraphId::Us => "US",
            GraphId::Lj => "LJ",
            GraphId::Hw => "HW",
            GraphId::Pk => "PK",
        }
    }

    /// Dataset category (drives the generator used).
    pub fn category(self) -> &'static str {
        match self {
            GraphId::Os => "Scientific",
            GraphId::Ca | GraphId::Rc | GraphId::Us => "Road",
            GraphId::Lj | GraphId::Hw | GraphId::Pk => "Social",
        }
    }

    /// Generates the (scaled) graph.
    pub fn build(self) -> Csr {
        match self {
            // offshore: 260K/4.2M → 2.7K nodes, ~40K edges, degree ~16.
            GraphId::Os => fem(15, 15, 12, 11),
            // roadNet-CA: 1.9M/5.5M → 19K nodes, ~55K edges.
            GraphId::Ca => road(160, 120, 12),
            // road-central: 14.1M/33.8M → 141K nodes, ~340K edges.
            GraphId::Rc => road(430, 330, 13),
            // road-usa: 23.9M/57.7M → 239K nodes, ~580K edges.
            GraphId::Us => road(560, 430, 14),
            // ljournal-2008: 5.3M/79M → 64K nodes, ~790K edges.
            GraphId::Lj => rmat(16, 395_000, 15),
            // hollywood-2009: 1.1M/113.9M → 16K nodes, ~1.14M edges (dense).
            GraphId::Hw => rmat(14, 570_000, 16),
            // soc-Pokec: 1.6M/30.6M → 16K nodes, ~306K edges.
            GraphId::Pk => rmat(14, 153_000, 17),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_roundtrip() {
        let g = Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (3, 0)]);
        assert_eq!(g.vertices(), 4);
        assert_eq!(g.edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        Csr::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn bfs_levels_on_path() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let levels = g.bfs_levels(0);
        assert_eq!(levels, vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn rmat_is_power_law_ish() {
        let g = rmat(12, 40_000, 1);
        assert_eq!(g.vertices(), 4096);
        assert_eq!(g.edges(), 80_000);
        // Heavy-tailed: max degree far above the mean.
        let mean = g.edges() as f64 / g.vertices() as f64;
        assert!(
            g.max_degree() as f64 > 10.0 * mean,
            "max {}",
            g.max_degree()
        );
        // And BFS from a hub reaches most of the graph in few levels.
        let hub = (0..4096u32).max_by_key(|&v| g.degree(v)).unwrap();
        let levels = g.bfs_levels(hub);
        assert!(levels.len() < 10, "social diameter small: {}", levels.len());
    }

    #[test]
    fn road_is_low_degree_high_diameter() {
        let g = road(60, 40, 2);
        assert_eq!(g.vertices(), 2400);
        let mean = g.edges() as f64 / g.vertices() as f64;
        assert!(mean < 5.0, "mean degree {mean}");
        assert!(g.max_degree() <= 10);
        let levels = g.bfs_levels(0);
        assert!(levels.len() > 50, "road diameter large: {}", levels.len());
    }

    #[test]
    fn fem_degree_is_uniform_mid_teens() {
        let g = fem(10, 10, 8, 3);
        let mean = g.edges() as f64 / g.vertices() as f64;
        assert!((10.0..18.0).contains(&mean), "mean degree {mean}");
        assert!(g.max_degree() <= 16);
    }

    #[test]
    fn table5_registry_builds_and_categorizes() {
        for id in GraphId::ALL {
            match id.category() {
                "Road" => {
                    let g = id.build();
                    assert!(g.edges() as f64 / g.vertices() as f64 <= 5.0, "{:?}", id);
                }
                "Social" => {
                    // Social graphs are generated lazily in other tests
                    // (they are the big ones); here just check labels.
                    assert!(matches!(id.label(), "LJ" | "HW" | "PK"));
                }
                "Scientific" => {
                    let g = id.build();
                    assert!(g.edges() as f64 / g.vertices() as f64 >= 10.0);
                }
                other => panic!("unknown category {other}"),
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(rmat(10, 1000, 7), rmat(10, 1000, 7));
        assert_eq!(road(20, 20, 7), road(20, 20, 7));
        assert_eq!(fem(5, 5, 5, 7), fem(5, 5, 5, 7));
    }
}
