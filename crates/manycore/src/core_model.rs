//! The abstract in-order core model.
//!
//! Each tile runs a pre-built operation stream. The core issues remote
//! loads/stores/atomics non-blocking up to a bounded number of outstanding
//! requests, stalls at explicit dependence points (`WaitAll`), and
//! synchronizes at barriers. This preserves the paper's execution-driven
//! feedback loop (§4.6): network congestion delays responses, delayed
//! responses stall the core, and a stalled core stops injecting — unlike a
//! trace-driven replay.

use ruche_noc::geometry::Coord;
use serde::{Deserialize, Serialize};

/// One operation in a tile's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// `n` cycles of local computation (issues one instruction per cycle).
    Compute(u32),
    /// Non-blocking remote load from the LLC at a word address.
    Load(u64),
    /// Remote store to the LLC (acknowledged; counts as outstanding until
    /// the ack returns).
    Store(u64),
    /// Atomic read-modify-write at the LLC (round trip).
    Amo(u64),
    /// Remote load from another tile's scratchpad.
    LoadTile(Coord),
    /// Wait until every outstanding request has returned (a dependence
    /// point — used for pointer chasing and halo exchanges).
    WaitAll,
    /// Global barrier across all cores.
    Barrier,
}

/// A memory request the core asks the machine to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRequest {
    /// LLC load at an address.
    Load(u64),
    /// LLC store.
    Store(u64),
    /// LLC atomic.
    Amo(u64),
    /// Scratchpad load from a tile.
    LoadTile(Coord),
}

/// What the core did this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreAction {
    /// Program finished (idle; leaks stall energy).
    Idle,
    /// Executed an instruction locally.
    Busy,
    /// Issued a memory request (also an executed instruction).
    Issue(MemRequest),
    /// Could not make progress (waiting on responses, barrier, or NIC
    /// back-pressure).
    Stall,
}

/// Execution state of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Executing its stream.
    Running,
    /// Arrived at a barrier, waiting for release.
    AtBarrier,
    /// Stream exhausted and all requests returned.
    Done,
}

/// Per-core counters.
///
/// `stall_cycles` is the total; the four `stall_*` cause counters
/// partition it exactly (see [`CoreStats::stall_breakdown`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Instructions executed (compute cycles + issued memory operations).
    pub instructions: u64,
    /// Cycles stalled while the program still had work.
    pub stall_cycles: u64,
    /// Cycles idle after completion.
    pub idle_cycles: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
    /// Stall cycles spent waiting at a barrier for release.
    pub stall_barrier: u64,
    /// Stall cycles spent waiting for outstanding responses at a
    /// dependence point (`WaitAll`, barrier entry, end-of-program drain).
    pub stall_dependence: u64,
    /// Stall cycles spent blocked on NIC back-pressure (injection queue
    /// full) while a memory operation was ready to issue.
    pub stall_nic: u64,
    /// Stall cycles spent with all outstanding-request slots occupied
    /// while a memory operation was ready to issue.
    pub stall_outstanding: u64,
}

impl CoreStats {
    /// Sum of the per-cause stall counters; always equals `stall_cycles`.
    pub fn stall_breakdown(&self) -> u64 {
        self.stall_barrier + self.stall_dependence + self.stall_nic + self.stall_outstanding
    }
}

/// An in-order core executing one operation stream.
#[derive(Debug, Clone)]
pub struct Core {
    ops: Vec<Op>,
    pc: usize,
    compute_left: u32,
    outstanding: u32,
    max_outstanding: u32,
    state: CoreState,
    /// Counters, updated by [`Core::tick`].
    pub stats: CoreStats,
}

impl Core {
    /// Creates a core over an operation stream.
    ///
    /// # Panics
    ///
    /// Panics if `max_outstanding` is zero.
    pub fn new(ops: Vec<Op>, max_outstanding: u32) -> Self {
        assert!(max_outstanding > 0, "need at least one outstanding slot");
        Core {
            ops,
            pc: 0,
            compute_left: 0,
            outstanding: 0,
            max_outstanding,
            state: CoreState::Running,
            stats: CoreStats::default(),
        }
    }

    /// Current execution state.
    pub fn state(&self) -> CoreState {
        self.state
    }

    /// Requests in flight.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// Delivers a response to this core.
    ///
    /// # Panics
    ///
    /// Panics if no request is outstanding.
    pub fn on_response(&mut self) {
        assert!(self.outstanding > 0, "response without a request");
        self.outstanding -= 1;
    }

    /// Releases the core from a barrier.
    pub fn release_barrier(&mut self) {
        debug_assert_eq!(self.state, CoreState::AtBarrier);
        self.state = CoreState::Running;
    }

    /// Advances the core one cycle. `can_issue` reflects NIC back-pressure
    /// (space in the tile's injection queue).
    pub fn tick(&mut self, can_issue: bool) -> CoreAction {
        match self.state {
            CoreState::Done => {
                self.stats.idle_cycles += 1;
                return CoreAction::Idle;
            }
            CoreState::AtBarrier => {
                self.stats.stall_cycles += 1;
                self.stats.stall_barrier += 1;
                return CoreAction::Stall;
            }
            CoreState::Running => {}
        }
        if self.compute_left > 0 {
            self.compute_left -= 1;
            self.stats.instructions += 1;
            return CoreAction::Busy;
        }
        let Some(&op) = self.ops.get(self.pc) else {
            if self.outstanding == 0 {
                self.state = CoreState::Done;
                self.stats.idle_cycles += 1;
                return CoreAction::Idle;
            }
            self.stats.stall_cycles += 1;
            self.stats.stall_dependence += 1;
            return CoreAction::Stall;
        };
        match op {
            Op::Compute(n) => {
                self.compute_left = n.saturating_sub(1);
                self.pc += 1;
                self.stats.instructions += 1;
                CoreAction::Busy
            }
            Op::WaitAll => {
                if self.outstanding == 0 {
                    self.pc += 1;
                    self.stats.instructions += 1;
                    CoreAction::Busy
                } else {
                    self.stats.stall_cycles += 1;
                    self.stats.stall_dependence += 1;
                    CoreAction::Stall
                }
            }
            Op::Barrier => {
                self.stats.stall_cycles += 1;
                if self.outstanding == 0 {
                    self.pc += 1;
                    self.state = CoreState::AtBarrier;
                    self.stats.stall_barrier += 1;
                } else {
                    // Cannot enter the barrier until every outstanding
                    // request has returned — a dependence stall, not a
                    // barrier-wait one.
                    self.stats.stall_dependence += 1;
                }
                CoreAction::Stall
            }
            Op::Load(_) | Op::Store(_) | Op::Amo(_) | Op::LoadTile(_) => {
                if !can_issue {
                    self.stats.stall_cycles += 1;
                    self.stats.stall_nic += 1;
                    return CoreAction::Stall;
                }
                if self.outstanding >= self.max_outstanding {
                    self.stats.stall_cycles += 1;
                    self.stats.stall_outstanding += 1;
                    return CoreAction::Stall;
                }
                self.outstanding += 1;
                self.pc += 1;
                self.stats.instructions += 1;
                self.stats.mem_ops += 1;
                CoreAction::Issue(match op {
                    Op::Load(a) => MemRequest::Load(a),
                    Op::Store(a) => MemRequest::Store(a),
                    Op::Amo(a) => MemRequest::Amo(a),
                    Op::LoadTile(t) => MemRequest::LoadTile(t),
                    _ => unreachable!(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_alone(ops: Vec<Op>, max_out: u32, respond_after: u64) -> (u64, CoreStats) {
        // Standalone harness: responses arrive `respond_after` cycles after
        // issue; NIC always free.
        let mut core = Core::new(ops, max_out);
        let mut pending: Vec<u64> = vec![];
        let mut cycle = 0u64;
        while core.state() != CoreState::Done {
            pending.retain(|&due| {
                if due <= cycle {
                    core.on_response();
                    false
                } else {
                    true
                }
            });
            if core.state() == CoreState::AtBarrier {
                core.release_barrier(); // single-core "all arrived"
            }
            if let CoreAction::Issue(_) = core.tick(true) {
                pending.push(cycle + respond_after);
            }
            cycle += 1;
            assert!(cycle < 100_000, "runaway core");
        }
        (cycle, core.stats)
    }

    #[test]
    fn compute_takes_n_cycles() {
        let (cycles, stats) = run_alone(vec![Op::Compute(10)], 4, 1);
        assert_eq!(stats.instructions, 10);
        assert_eq!(cycles, 11); // 10 compute + 1 done-detection cycle
        assert_eq!(stats.stall_cycles, 0);
    }

    #[test]
    fn loads_overlap_up_to_limit() {
        // 4 loads with latency 10 and 4 outstanding slots: issue
        // back-to-back, total ≈ 4 + 10, not 4 × 10.
        let ops = vec![
            Op::Load(0),
            Op::Load(1),
            Op::Load(2),
            Op::Load(3),
            Op::WaitAll,
        ];
        let (cycles, stats) = run_alone(ops, 4, 10);
        assert!(cycles < 20, "overlapped: {cycles}");
        assert_eq!(stats.mem_ops, 4);
    }

    #[test]
    fn outstanding_limit_throttles() {
        let ops: Vec<Op> = (0..8).map(Op::Load).chain([Op::WaitAll]).collect();
        let (fast, _) = run_alone(ops.clone(), 8, 10);
        let (slow, stats) = run_alone(ops, 1, 10);
        assert!(slow > 2 * fast, "serialized {slow} vs overlapped {fast}");
        assert!(stats.stall_cycles > 0);
    }

    #[test]
    fn wait_all_blocks_until_responses() {
        let ops = vec![Op::Load(0), Op::WaitAll, Op::Compute(1)];
        let (cycles, stats) = run_alone(ops, 4, 20);
        assert!(cycles > 20);
        assert!(stats.stall_cycles >= 18);
    }

    #[test]
    fn nic_backpressure_stalls() {
        let mut core = Core::new(vec![Op::Load(0)], 4);
        assert_eq!(core.tick(false), CoreAction::Stall);
        assert_eq!(core.stats.stall_nic, 1);
        assert!(matches!(
            core.tick(true),
            CoreAction::Issue(MemRequest::Load(0))
        ));
    }

    #[test]
    fn stall_causes_partition_total_stalls() {
        // Exercise all four causes: outstanding-slot exhaustion, WaitAll
        // dependence, barrier entry + wait, and NIC back-pressure.
        let ops: Vec<Op> = (0..4)
            .map(Op::Load)
            .chain([Op::WaitAll, Op::Barrier, Op::Load(9), Op::WaitAll])
            .collect();
        let mut core = Core::new(ops, 1);
        let mut pending: Vec<u64> = vec![];
        let mut cycle = 0u64;
        while core.state() != CoreState::Done {
            pending.retain(|&due| {
                if due <= cycle {
                    core.on_response();
                    false
                } else {
                    true
                }
            });
            if core.state() == CoreState::AtBarrier && cycle.is_multiple_of(7) {
                core.release_barrier(); // delayed release forces barrier waits
            }
            // Starve the NIC every third cycle.
            if let CoreAction::Issue(_) = core.tick(!cycle.is_multiple_of(3)) {
                pending.push(cycle + 5);
            }
            cycle += 1;
            assert!(cycle < 100_000, "runaway core");
        }
        let s = core.stats;
        assert_eq!(s.stall_breakdown(), s.stall_cycles, "{s:?}");
        assert!(s.stall_outstanding > 0, "{s:?}");
        assert!(s.stall_dependence > 0, "{s:?}");
        assert!(s.stall_barrier > 0, "{s:?}");
        assert!(s.stall_nic > 0, "{s:?}");
    }

    #[test]
    fn barrier_waits_for_outstanding_then_release() {
        let mut core = Core::new(vec![Op::Load(7), Op::Barrier, Op::Compute(1)], 4);
        assert!(matches!(core.tick(true), CoreAction::Issue(_)));
        // Barrier cannot be entered with a request in flight.
        assert_eq!(core.tick(true), CoreAction::Stall);
        core.on_response();
        assert_eq!(core.tick(true), CoreAction::Stall);
        assert_eq!(core.state(), CoreState::AtBarrier);
        core.release_barrier();
        assert_eq!(core.tick(true), CoreAction::Busy);
    }

    #[test]
    fn done_core_idles() {
        let mut core = Core::new(vec![], 1);
        assert_eq!(core.tick(true), CoreAction::Idle);
        assert_eq!(core.state(), CoreState::Done);
        assert_eq!(core.tick(true), CoreAction::Idle);
        assert_eq!(core.stats.idle_cycles, 2);
    }

    #[test]
    #[should_panic(expected = "response without a request")]
    fn spurious_response_panics() {
        Core::new(vec![], 1).on_response();
    }

    #[test]
    fn store_and_amo_issue() {
        let mut core = Core::new(
            vec![Op::Store(1), Op::Amo(2), Op::LoadTile(Coord::new(1, 1))],
            8,
        );
        assert!(matches!(
            core.tick(true),
            CoreAction::Issue(MemRequest::Store(1))
        ));
        assert!(matches!(
            core.tick(true),
            CoreAction::Issue(MemRequest::Amo(2))
        ));
        assert!(matches!(
            core.tick(true),
            CoreAction::Issue(MemRequest::LoadTile(_))
        ));
        assert_eq!(core.outstanding(), 3);
    }
}
