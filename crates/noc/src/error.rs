//! One error type for the workspace: every layer's typed error converts
//! into [`Error`] via `From`, so binaries can use `?` end to end instead
//! of pattern-matching per-crate enums.
//!
//! Downstream crates (e.g. `ruche-traffic`) fold their own error enums in
//! through [`Error::other`], which boxes any `std::error::Error`.

use crate::fault::FaultError;
use crate::routing::RouteError;
use crate::topology::ConfigError;
use std::fmt;

/// The workspace-wide error: a typed union of every layer's failure mode.
///
/// # Examples
///
/// ```
/// use ruche_noc::prelude::*;
///
/// fn build(dims: Dims) -> Result<Network, ruche_noc::Error> {
///     let cfg = NetworkConfig::builder(dims, TopologyKind::Mesh).build()?;
///     Ok(Network::new(cfg)?)
/// }
/// assert!(build(Dims::new(4, 4)).is_ok());
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A network configuration failed validation.
    Config(ConfigError),
    /// Routing failed (fell off the array, exceeded the hop bound, or a
    /// faulted destination is unreachable).
    Route(RouteError),
    /// A fault model does not fit its configuration.
    Fault(FaultError),
    /// An error from a downstream layer (traffic patterns, testbenches),
    /// folded in via [`Error::other`].
    Other(Box<dyn std::error::Error + Send + Sync + 'static>),
}

impl Error {
    /// Wraps any error from a downstream layer.
    pub fn other(err: impl std::error::Error + Send + Sync + 'static) -> Self {
        Error::Other(Box::new(err))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => write!(f, "config: {e}"),
            Error::Route(e) => write!(f, "route: {e}"),
            Error::Fault(e) => write!(f, "fault: {e}"),
            Error::Other(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            Error::Route(e) => Some(e),
            Error::Fault(e) => Some(e),
            Error::Other(e) => Some(e.as_ref()),
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<RouteError> for Error {
    fn from(e: RouteError) -> Self {
        Error::Route(e)
    }
}

impl From<FaultError> for Error {
    fn from(e: FaultError) -> Self {
        Error::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Coord;

    #[test]
    fn conversions_and_sources_line_up() {
        let c: Error = ConfigError::ZeroFifoDepth.into();
        let r: Error = RouteError::HopLimit { limit: 3 }.into();
        let f: Error = FaultError::NoSuchRouter {
            at: Coord::new(9, 9),
        }
        .into();
        for e in [&c, &r, &f] {
            assert!(std::error::Error::source(e).is_some());
            assert!(!e.to_string().is_empty());
        }
        assert!(matches!(c, Error::Config(_)));
        assert!(matches!(r, Error::Route(_)));
        assert!(matches!(f, Error::Fault(_)));
    }

    #[test]
    fn other_boxes_and_displays_transparently() {
        let inner = ConfigError::SingleTile;
        let e = Error::other(inner.clone());
        assert_eq!(e.to_string(), inner.to_string());
        assert!(matches!(e, Error::Other(_)));
    }
}
