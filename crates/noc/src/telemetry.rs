//! Optional per-link, per-VC instrumentation for [`Network`].
//!
//! A [`NetTelemetry`] is attached to a network with
//! [`Network::attach_telemetry`] and, once attached, accumulates:
//!
//! * per-(node, output port, VC) **traversal** counts and **blocked-cycle**
//!   counts attributed to a [`BlockCause`] (no downstream credit vs. lost
//!   arbitration),
//! * per-(node, input port, VC) **FIFO occupancy** histograms, sampled at
//!   the end of every cycle,
//! * network-wide **injection / ejection time series** over a fixed cycle
//!   window.
//!
//! With no telemetry attached the simulator's hot loop does no extra work
//! beyond one `Option` check per cycle and performs no heap allocation
//! (enforced by `tests/zero_alloc.rs`).
//!
//! ## Engine independence
//!
//! Every counter in here is part of the byte-identity contract: the
//! numbers must not depend on the step engine's knobs. Under a sharded
//! step (`step_threads > 1`) the phases log blocked/traversal events into
//! per-shard buffers that the coordinator replays into this sink in shard
//! order — exactly the order the serial engine would have recorded — and
//! a shard that sleeps through a cycle (no buffered flit in its band)
//! logs nothing, which is precisely what the serial engine records for
//! those routers. Under the event wheel (`StepMode::EventDriven` /
//! `Auto`), only provably empty cycles are skipped, so no counter or
//! occupancy sample is lost: fast-forwarded spans contribute the same
//! zeros they would have contributed cycle by cycle. `tests/
//! step_mode_determinism.rs` asserts the full telemetry export is
//! identical across every (step mode × step threads) point.
//!
//! Counter semantics are specified in `docs/OBSERVABILITY.md`; the short
//! version: *traversed* is at most 1 per (link, VC) per cycle, while
//! *blocked* counts one per **requesting flit head** per cycle per cause,
//! so a contested output can accumulate several blocked counts in one
//! cycle. Idle time is derived: `cycles - traversed - (blocked > 0 cycles)`
//! is not tracked separately; use [`LinkVcStats::idle`] for the
//! conservative `cycles - traversed` form.
//!
//! [`Network`]: crate::sim::Network
//! [`Network::attach_telemetry`]: crate::sim::Network::attach_telemetry

use crate::geometry::Dir;
use ruche_telemetry::{Histogram, Probe, TimeSeries};

/// Why a requesting flit head failed to traverse its output this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockCause {
    /// The downstream buffer had no space (wormhole ready-valid-and) or the
    /// output VC held no credit (VC router ready-then-valid).
    NoCredit,
    /// The output (or output VC) was available but another input won the
    /// arbitration, or an in-progress packet held the port lock / VC.
    LostArbitration,
}

/// Traversal and stall counters for one (node, output port, VC) link slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkVcStats {
    /// Flits forwarded through this output VC.
    pub traversed: u64,
    /// Requesting-head cycles lost to missing downstream credit/space.
    pub blocked_no_credit: u64,
    /// Requesting-head cycles lost to arbitration (including port locks and
    /// VC ownership by another packet).
    pub blocked_lost_arb: u64,
}

impl LinkVcStats {
    /// Total blocked counts, either cause.
    pub fn blocked(&self) -> u64 {
        self.blocked_no_credit + self.blocked_lost_arb
    }

    /// Cycles this link VC moved nothing, out of `cycles` observed.
    ///
    /// A link forwards at most one flit per cycle, so this is exactly the
    /// observed cycle count minus the traversal count.
    pub fn idle(&self, cycles: u64) -> u64 {
        cycles.saturating_sub(self.traversed)
    }
}

/// Per-link / per-FIFO counters accumulated while attached to a
/// [`Network`](crate::sim::Network).
///
/// Indexing convention throughout: link and FIFO slots are flattened as
/// `(node * ports + port) * max_vcs + vc`, matching the simulator's
/// internal layout.
#[derive(Debug, Clone)]
pub struct NetTelemetry {
    ports: Vec<Dir>,
    n_nodes: usize,
    max_vcs: usize,
    /// Cycles observed since attach.
    cycles: u64,
    /// Per-(node, out port, vc) counters.
    links: Vec<LinkVcStats>,
    /// Per-(node, in port, vc) input-FIFO occupancy, sampled each cycle.
    occupancy: Vec<Histogram>,
    injected: TimeSeries,
    ejected: TimeSeries,
}

impl NetTelemetry {
    /// Creates empty telemetry for a network with the given shape.
    ///
    /// `fifo_depth` bounds the occupancy histograms (unit buckets
    /// `0..=depth`); `window` is the injection/ejection series bin width in
    /// cycles.
    pub fn new(
        ports: &[Dir],
        n_nodes: usize,
        max_vcs: usize,
        fifo_depth: usize,
        window: u64,
    ) -> Self {
        let slots = n_nodes * ports.len() * max_vcs;
        NetTelemetry {
            ports: ports.to_vec(),
            n_nodes,
            max_vcs,
            cycles: 0,
            links: vec![LinkVcStats::default(); slots],
            occupancy: vec![Histogram::zero_to(fifo_depth as u64); slots],
            injected: TimeSeries::new(window),
            ejected: TimeSeries::new(window),
        }
    }

    #[inline]
    fn slot(&self, node: usize, port: usize, vc: usize) -> usize {
        (node * self.ports.len() + port) * self.max_vcs + vc
    }

    /// Counts one flit forwarded through (node, out port, vc).
    #[inline]
    pub fn record_traversal(&mut self, node: usize, port: usize, vc: usize) {
        let s = self.slot(node, port, vc);
        self.links[s].traversed += 1;
    }

    /// Counts one requesting head blocked at (node, out port, vc).
    #[inline]
    pub fn record_blocked(&mut self, node: usize, port: usize, vc: usize, cause: BlockCause) {
        let s = self.slot(node, port, vc);
        match cause {
            BlockCause::NoCredit => self.links[s].blocked_no_credit += 1,
            BlockCause::LostArbitration => self.links[s].blocked_lost_arb += 1,
        }
    }

    /// Samples the length of the (node, in port, vc) input FIFO.
    #[inline]
    pub fn record_occupancy(&mut self, node: usize, port: usize, vc: usize, len: u64) {
        let s = self.slot(node, port, vc);
        self.occupancy[s].record(len);
    }

    /// Closes one observed cycle: network-wide injection/ejection counts
    /// for it, then advance the cycle index.
    #[inline]
    pub fn record_cycle(&mut self, injected: u64, ejected: u64) {
        self.injected.record(self.cycles, injected);
        self.ejected.record(self.cycles, ejected);
        self.cycles += 1;
    }

    /// Samples the (node, in port, vc) input FIFO at length `len` for `n`
    /// consecutive cycles in one call — the bulk form of `n` repeated
    /// [`record_occupancy`](NetTelemetry::record_occupancy) calls, used by
    /// event-driven fast-forward to account for skipped idle spans.
    #[inline]
    pub fn record_occupancy_n(&mut self, node: usize, port: usize, vc: usize, len: u64, n: u64) {
        let s = self.slot(node, port, vc);
        self.occupancy[s].record_n(len, n);
    }

    /// Closes `n` consecutive cycles that injected and ejected nothing —
    /// the bulk form of `n` `record_cycle(0, 0)` calls. The
    /// injection/ejection series gain the same (possibly zero-filled) bins
    /// repeated per-cycle recording would have produced, so exports stay
    /// byte-identical whether an idle span was stepped or skipped.
    #[inline]
    pub fn record_idle_cycles(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.injected.record(self.cycles + n - 1, 0);
        self.ejected.record(self.cycles + n - 1, 0);
        self.cycles += n;
    }

    /// Router port directions, in port-index order.
    pub fn ports(&self) -> &[Dir] {
        &self.ports
    }

    /// Nodes observed.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// VC stride of the link/FIFO slot layout.
    pub fn max_vcs(&self) -> usize {
        self.max_vcs
    }

    /// Cycles observed since attach.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Counters for one (node, out port, vc) link slot.
    pub fn link(&self, node: usize, port: usize, vc: usize) -> LinkVcStats {
        self.links[self.slot(node, port, vc)]
    }

    /// Flits forwarded through (node, out port), summed over VCs.
    pub fn traversed(&self, node: usize, port: usize) -> u64 {
        (0..self.max_vcs)
            .map(|v| self.link(node, port, v).traversed)
            .sum()
    }

    /// Blocked counts at (node, out port), summed over VCs and causes.
    pub fn blocked(&self, node: usize, port: usize) -> u64 {
        (0..self.max_vcs)
            .map(|v| self.link(node, port, v).blocked())
            .sum()
    }

    /// Occupancy histogram of the (node, in port, vc) input FIFO.
    pub fn occupancy(&self, node: usize, port: usize, vc: usize) -> &Histogram {
        &self.occupancy[self.slot(node, port, vc)]
    }

    /// Network-wide injection series.
    pub fn injected(&self) -> &TimeSeries {
        &self.injected
    }

    /// Network-wide ejection series.
    pub fn ejected(&self) -> &TimeSeries {
        &self.ejected
    }

    /// Pushes every counter into `probe`.
    ///
    /// Per-link counters are exported as per-node arrays named
    /// `link.<DIR>.vc<v>.<counter>` (index = node, row-major), occupancy
    /// histograms merged across nodes as `occupancy.<DIR>.vc<v>`, plus the
    /// `inject.flits` / `eject.flits` series and the `cycles` scalar. All
    /// names and orderings are deterministic.
    pub fn export(&self, probe: &mut dyn Probe) {
        probe.scalar("cycles", self.cycles);
        probe.scalar("nodes", self.n_nodes as u64);
        let mut scratch = vec![0u64; self.n_nodes];
        for (pi, dir) in self.ports.iter().enumerate() {
            for v in 0..self.max_vcs {
                let mut any_occ = false;
                let mut merged: Option<Histogram> = None;
                for node in 0..self.n_nodes {
                    let h = self.occupancy(node, pi, v);
                    any_occ |= !h.is_empty();
                    match merged.as_mut() {
                        Some(m) => m.merge(h),
                        None => merged = Some(h.clone()),
                    }
                }
                if any_occ {
                    let name = format!("occupancy.{dir}.vc{v}");
                    probe.histogram(&name, merged.as_ref().expect("nodes > 0"));
                }
                for (counter, get) in [
                    (
                        "traversed",
                        (|s: &LinkVcStats| s.traversed) as fn(&LinkVcStats) -> u64,
                    ),
                    ("blocked_no_credit", |s: &LinkVcStats| s.blocked_no_credit),
                    ("blocked_lost_arb", |s: &LinkVcStats| s.blocked_lost_arb),
                ] {
                    let mut any = false;
                    for (node, slot) in scratch.iter_mut().enumerate() {
                        let c = get(&self.link(node, pi, v));
                        *slot = c;
                        any |= c != 0;
                    }
                    if any {
                        let name = format!("link.{dir}.vc{v}.{counter}");
                        probe.scalars(&name, &scratch);
                    }
                }
            }
        }
        probe.series("inject.flits", &self.injected);
        probe.series("eject.flits", &self.ejected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruche_telemetry::JsonProbe;

    fn sample() -> NetTelemetry {
        let mut t = NetTelemetry::new(&[Dir::P, Dir::E], 2, 1, 2, 4);
        t.record_traversal(1, 1, 0);
        t.record_blocked(0, 1, 0, BlockCause::NoCredit);
        t.record_blocked(0, 1, 0, BlockCause::LostArbitration);
        t.record_occupancy(0, 0, 0, 2);
        t.record_cycle(1, 0);
        t.record_cycle(0, 1);
        t
    }

    #[test]
    fn counters_accumulate_per_slot() {
        let t = sample();
        assert_eq!(t.link(1, 1, 0).traversed, 1);
        assert_eq!(t.link(0, 1, 0).blocked_no_credit, 1);
        assert_eq!(t.link(0, 1, 0).blocked(), 2);
        assert_eq!(t.traversed(1, 1), 1);
        assert_eq!(t.blocked(0, 1), 2);
        assert_eq!(t.cycles(), 2);
        assert_eq!(t.link(1, 1, 0).idle(t.cycles()), 1);
        assert_eq!(t.occupancy(0, 0, 0).count(), 1);
        assert_eq!(t.injected().total(), 1);
        assert_eq!(t.ejected().total(), 1);
    }

    #[test]
    fn bulk_idle_recording_matches_per_cycle_recording() {
        // The event-driven fast path accounts for a skipped idle span with
        // one bulk call; the result must be indistinguishable — counter for
        // counter and byte for byte — from stepping the span.
        let mut stepped = NetTelemetry::new(&[Dir::P, Dir::E], 2, 1, 2, 4);
        let mut skipped = stepped.clone();
        let n = 11;
        for _ in 0..n {
            for node in 0..2 {
                for port in 0..2 {
                    stepped.record_occupancy(node, port, 0, 0);
                }
            }
            stepped.record_cycle(0, 0);
        }
        for node in 0..2 {
            for port in 0..2 {
                skipped.record_occupancy_n(node, port, 0, 0, n);
            }
        }
        skipped.record_idle_cycles(n);
        assert_eq!(stepped.cycles(), skipped.cycles());
        for node in 0..2 {
            for port in 0..2 {
                assert_eq!(
                    stepped.occupancy(node, port, 0),
                    skipped.occupancy(node, port, 0)
                );
            }
        }
        let blob = |t: &NetTelemetry| {
            let mut p = JsonProbe::new();
            t.export(&mut p);
            p.into_json()
        };
        assert_eq!(blob(&stepped), blob(&skipped), "exports must match");
        // Zero cycles is a no-op.
        skipped.record_idle_cycles(0);
        assert_eq!(stepped.cycles(), skipped.cycles());
    }

    #[test]
    fn export_is_deterministic_and_elides_empty_slots() {
        let blob = |t: &NetTelemetry| {
            let mut p = JsonProbe::new();
            t.export(&mut p);
            p.into_json()
        };
        let t = sample();
        let a = blob(&t);
        assert_eq!(a, blob(&t), "same counters, same bytes");
        assert!(a.contains("\"link.E.vc0.traversed\""), "{a}");
        assert!(a.contains("\"link.E.vc0.blocked_no_credit\""), "{a}");
        assert!(!a.contains("link.P.vc0.traversed"), "all-zero slots elided");
        assert!(a.contains("\"occupancy.P.vc0\""), "{a}");
        assert!(a.contains("\"cycles\": 2"), "{a}");
    }
}
