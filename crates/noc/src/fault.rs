//! Fault injection: dead links, dead routers, and fault-aware routing.
//!
//! A [`FaultModel`] is a deterministic, seedable specification of which
//! bidirectional links and which routers are dead. It generalizes the
//! paper's hand-picked depopulations (Fig. 9 removes every Ruche link the
//! depop scheme does not populate) into a first-class design axis: kill any
//! link or router set, reroute, and measure the degradation curve.
//!
//! ## Detour routing
//!
//! Faulted networks cannot use plain DOR: the DOR path may cross a dead
//! channel, and naive "detour on demand" schemes either livelock (two
//! routers bouncing a packet between them) or deadlock (the detour turns
//! complete a cycle in the channel-dependency graph). Instead, a faulted
//! [`Network`](crate::sim::Network) precomputes a per-destination route
//! table over the surviving channels under **up\*/down\* routing** (the
//! Autonet scheme):
//!
//! * each surviving connected component gets a breadth-first spanning
//!   order rooted at its lowest-index live router, ranking routers by
//!   `(BFS level, node index)`;
//! * a channel is *up* when it heads toward a lower rank, *down*
//!   otherwise, and every route takes zero or more up hops followed by
//!   zero or more down hops — never up after down.
//!
//! Up hops strictly decrease the rank and down hops strictly increase it,
//! and the model forbids the only mixing turn (down→up), so every channel
//! dependency chain is finite: the faulted channel-dependency graph is
//! acyclic by construction (`ruche-verify` re-checks this per
//! configuration with its SCC pass). Because any two routers in the same
//! component can always travel up to the component root and back down,
//! **every surviving pair is routable** — routes are hop-minimal *within
//! the turn model*, breaking ties in canonical port order, and exploit the
//! full channel diversity (a surviving Ruche hop counts as one hop, so
//! detours board the Ruche highways whenever that shortens the path).
//! [`RouteError::Unreachable`] therefore means the destination really is
//! partitioned away (or the only surviving path exceeds
//! [`NetworkConfig::max_route_hops`], which at the swept fault rates does
//! not bind) — routing never livelocks.
//!
//! Fault-aware routing assumes turns are implementable from any input
//! (i.e. a fully-populated crossbar); the depopulated-scheme turn
//! restrictions and the DOR-derived connectivity matrix do not apply to
//! detoured traffic. VC routers (torus) are not supported: their dateline
//! VC discipline is incompatible with detours, and [`FaultModel::validate`]
//! rejects the combination with a typed [`FaultError`].
//!
//! See `docs/RESILIENCE.md` for the full semantics and how the degradation
//! benchmarks read out of it.

use crate::geometry::{Coord, Dir};
use crate::routing::{Dest, EdgePort, RouteDecision, RouteError};
use crate::topology::NetworkConfig;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Errors produced by [`FaultModel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A dead-router coordinate lies outside the array.
    NoSuchRouter {
        /// The out-of-bounds coordinate.
        at: Coord,
    },
    /// A dead-link specification names a channel the topology does not
    /// have (including the P port, which cannot be killed — use
    /// [`FaultModel::kill_router`] to take a whole tile out).
    NoSuchLink {
        /// Router the link was specified at.
        at: Coord,
        /// The named output direction.
        out: Dir,
    },
    /// Fault injection is not supported on VC (torus) routers: the
    /// dateline VC discipline is incompatible with detour routing.
    VcRoutersUnsupported,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::NoSuchRouter { at } => {
                write!(f, "dead router {at} lies outside the array")
            }
            FaultError::NoSuchLink { at, out } => {
                write!(
                    f,
                    "dead link {at} via {out} names a channel that does not exist"
                )
            }
            FaultError::VcRoutersUnsupported => {
                write!(
                    f,
                    "fault injection is not supported on VC (torus) routers: \
                     dateline VC partitioning is incompatible with detour routing"
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A deterministic, seedable specification of dead links and dead routers.
///
/// Links are bidirectional: killing `(at, out)` kills both the `at → out`
/// channel and its reverse. Killing a router kills every channel attached
/// to it plus its injection/ejection endpoint. The default model is empty
/// (no faults) and leaves every network code path byte-identical to an
/// unfaulted build.
///
/// # Examples
///
/// ```
/// use ruche_noc::prelude::*;
///
/// let cfg = NetworkConfig::mesh(Dims::new(8, 8));
/// let faults = FaultModel::default()
///     .kill_link(Coord::new(3, 3), Dir::E)
///     .kill_router(Coord::new(5, 1));
/// faults.validate(&cfg)?;
/// assert!(!faults.is_empty());
/// # Ok::<(), ruche_noc::fault::FaultError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultModel {
    /// Dead bidirectional links, each named from one of its endpoints.
    /// Kept sorted and deduplicated so equal fault sets compare (and
    /// `Debug`-render, for cache keys) equal.
    dead_links: Vec<(Coord, Dir)>,
    /// Dead routers, sorted and deduplicated.
    dead_routers: Vec<Coord>,
}

impl FaultModel {
    /// An empty fault model (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Kills the bidirectional link at router `at` through output `out`
    /// (consuming-builder style).
    pub fn kill_link(mut self, at: Coord, out: Dir) -> Self {
        if !self.dead_links.contains(&(at, out)) {
            self.dead_links.push((at, out));
            self.dead_links.sort_unstable();
        }
        self
    }

    /// Kills router `at`: every attached channel and its endpoint
    /// (consuming-builder style).
    pub fn kill_router(mut self, at: Coord) -> Self {
        if !self.dead_routers.contains(&at) {
            self.dead_routers.push(at);
            self.dead_routers.sort_unstable();
        }
        self
    }

    /// Kills each link of `cfg` independently with probability `p`, drawn
    /// from a deterministic stream seeded by `seed`: the same
    /// `(cfg, p, seed)` triple always produces the same fault set.
    ///
    /// Links are enumerated once each, in canonical order (row-major
    /// router order; within a router, port order, counting each
    /// bidirectional link from its positive-displacement end and each edge
    /// channel at its owning router).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn random_links(cfg: &NetworkConfig, p: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "fault probability {p} must lie in [0, 1]"
        );
        let ports = cfg.ports();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut model = FaultModel::default();
        for c in cfg.dims.iter() {
            for &dir in &ports {
                if dir == Dir::P {
                    continue;
                }
                let (dx, dy) = dir.displacement(cfg.topology.ruche_factor().max(1));
                let canonical = if cfg.neighbor(c, dir).is_some() {
                    // Inter-router link: draw once, from the end whose
                    // output displacement is positive.
                    dx > 0 || dy > 0
                } else {
                    // Edge memory channel (owned by its edge router), or a
                    // tied-off direction (skipped).
                    edge_channel(cfg, c, dir)
                };
                if canonical && rng.gen_bool(p) {
                    model.dead_links.push((c, dir));
                }
            }
        }
        model.dead_links.sort_unstable();
        model
    }

    /// Whether the model contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.dead_links.is_empty() && self.dead_routers.is_empty()
    }

    /// The dead links, sorted, each named from one endpoint.
    pub fn dead_links(&self) -> &[(Coord, Dir)] {
        &self.dead_links
    }

    /// The dead routers, sorted.
    pub fn dead_routers(&self) -> &[Coord] {
        &self.dead_routers
    }

    /// Whether router `at` is dead.
    pub fn router_dead(&self, at: Coord) -> bool {
        self.dead_routers.binary_search(&at).is_ok()
    }

    /// Whether the output channel of router `at` through `out` is dead —
    /// because the link was killed (from either end) or because either
    /// endpoint router is dead.
    pub fn channel_dead(&self, cfg: &NetworkConfig, at: Coord, out: Dir) -> bool {
        if self.router_dead(at) {
            return true;
        }
        if out == Dir::P {
            return false;
        }
        if self.dead_links.binary_search(&(at, out)).is_ok() {
            return true;
        }
        match cfg.neighbor(at, out) {
            Some(nb) => {
                self.router_dead(nb) || self.dead_links.binary_search(&(nb, out.opposite())).is_ok()
            }
            None => false,
        }
    }

    /// Checks the fault set against a configuration: every dead link must
    /// name an existing channel, every dead router must lie inside the
    /// array, and the topology must use wormhole routers.
    ///
    /// # Errors
    ///
    /// Returns the [`FaultError`] for the first violated constraint.
    pub fn validate(&self, cfg: &NetworkConfig) -> Result<(), FaultError> {
        if self.is_empty() {
            return Ok(());
        }
        if cfg.is_vc_router() {
            return Err(FaultError::VcRoutersUnsupported);
        }
        for &at in &self.dead_routers {
            if !cfg.dims.contains(at) {
                return Err(FaultError::NoSuchRouter { at });
            }
        }
        for &(at, out) in &self.dead_links {
            let exists = out != Dir::P
                && cfg.dims.contains(at)
                && (cfg.neighbor(at, out).is_some() || edge_channel(cfg, at, out));
            if !exists {
                return Err(FaultError::NoSuchLink { at, out });
            }
        }
        Ok(())
    }
}

/// Whether `(at, out)` is an edge memory channel: an N output on row 0 or
/// an S output on the last row of a network with edge memory ports.
fn edge_channel(cfg: &NetworkConfig, at: Coord, out: Dir) -> bool {
    cfg.edge_memory_ports
        && ((out == Dir::N && at.y == 0) || (out == Dir::S && at.y == cfg.dims.rows - 1))
}

/// Routing phase while only up hops (toward lower rank) have been taken.
const PHASE_UP: usize = 0;
/// Phase after the first down hop; up hops are forbidden.
const PHASE_DOWN: usize = 1;

/// A precomputed per-destination route table over the surviving channels
/// of a faulted configuration.
///
/// Built once at [`Network::with_faults`](crate::sim::Network::with_faults)
/// construction (and by the `ruche-verify` faulted checker); lookups are
/// allocation-free. See the [module docs](self) for the routing model.
#[derive(Debug, Clone)]
pub struct RouteTable {
    cfg: NetworkConfig,
    faults: FaultModel,
    ports: Vec<Dir>,
    /// Next-hop port per (dest, node, phase), encoded `port index + 1`
    /// (`0` = unreachable). Indexed `(dest * n_nodes + node) * 2 + phase`.
    next: Vec<u8>,
    /// Whether each destination's own exit channel (and router) survives.
    goal_ok: Vec<bool>,
    /// Per-node BFS level in its surviving component (`u32::MAX` = dead);
    /// ranks routers as `(level, index)` for the up/down classification.
    level: Vec<u32>,
}

impl RouteTable {
    /// Builds the table for `cfg` under `faults`.
    ///
    /// # Errors
    ///
    /// Returns the [`FaultError`] from [`FaultModel::validate`] if the
    /// fault set does not fit the configuration.
    pub fn build(cfg: &NetworkConfig, faults: &FaultModel) -> Result<Self, FaultError> {
        faults.validate(cfg)?;
        let ports = cfg.ports();
        let dims = cfg.dims;
        let n = dims.count();
        let n_dests = cfg.endpoint_count();
        // Hop budget: `max_route_hops` counts the ejection traversal too,
        // so router-to-router hops get one less.
        let hop_limit = (cfg.max_route_hops() - 1) as u32;

        // Forward and reverse adjacency over surviving channels: for each
        // node, the (other end, output port at the *source*) channels.
        let mut fwd: Vec<Vec<(u32, u8)>> = vec![Vec::new(); n];
        let mut rev: Vec<Vec<(u32, u8)>> = vec![Vec::new(); n];
        for c in dims.iter() {
            let u = dims.index(c);
            for (op, &dir) in ports.iter().enumerate() {
                if dir == Dir::P || faults.channel_dead(cfg, c, dir) {
                    continue;
                }
                if let Some(nb) = cfg.neighbor(c, dir) {
                    fwd[u].push((dims.index(nb) as u32, op as u8));
                    rev[dims.index(nb)].push((u as u32, op as u8));
                }
            }
        }

        // Spanning order per surviving component: BFS from the lowest-index
        // live router, ranking routers by (level, index). Channels toward a
        // lower rank are "up", the rest "down".
        let mut level = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        for root in 0..n {
            if level[root] != u32::MAX || faults.router_dead(dims.coord(root)) {
                continue;
            }
            level[root] = 0;
            queue.push_back(root as u32);
            while let Some(u) = queue.pop_front() {
                for &(v, _) in &fwd[u as usize] {
                    if level[v as usize] == u32::MAX {
                        level[v as usize] = level[u as usize] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        let up = |u: usize, v: usize| (level[v], v) < (level[u], u);

        let mut next = vec![0u8; n_dests * n * 2];
        let mut goal_ok = vec![false; n_dests];
        let mut dist = vec![u32::MAX; n * 2];
        let mut queue = VecDeque::new();
        for di in 0..n_dests {
            let dest = dest_of_index(cfg, di);
            let g = dest.coord;
            // The destination must be able to eject: live router, and for
            // edge destinations a live edge channel.
            let exit_alive = !faults.router_dead(g)
                && match dest.edge {
                    None => true,
                    Some(_) => !faults.channel_dead(cfg, g, dest.exit_dir()),
                };
            goal_ok[di] = exit_alive;
            if !exit_alive {
                continue;
            }

            // Backward BFS over (node, phase) states from the goal.
            // Ejection is a sink channel, legal from either phase.
            dist.fill(u32::MAX);
            queue.clear();
            let gi = dims.index(g);
            for ph in [PHASE_UP, PHASE_DOWN] {
                dist[gi * 2 + ph] = 0;
                queue.push_back((gi * 2 + ph) as u32);
            }
            while let Some(state) = queue.pop_front() {
                let (v, ph_v) = ((state / 2) as usize, (state % 2) as usize);
                let d = dist[v * 2 + ph_v];
                if d >= hop_limit {
                    continue;
                }
                for &(u, _) in &rev[v] {
                    // Up hops require (and keep) the Up phase; down hops
                    // land in Down but may start in either phase.
                    let preds: &[usize] = if up(u as usize, v) {
                        if ph_v == PHASE_UP {
                            &[PHASE_UP]
                        } else {
                            &[]
                        }
                    } else if ph_v == PHASE_DOWN {
                        &[PHASE_UP, PHASE_DOWN]
                    } else {
                        &[]
                    };
                    for &ph_u in preds {
                        let slot = u as usize * 2 + ph_u;
                        if dist[slot] == u32::MAX {
                            dist[slot] = d + 1;
                            queue.push_back(slot as u32);
                        }
                    }
                }
            }

            // Forward next-hop fill: first canonical-order live output that
            // steps onto a distance-decreasing state.
            for c in dims.iter() {
                let u = dims.index(c);
                if u == gi {
                    continue; // at the destination: eject, no next hop
                }
                for ph in [PHASE_UP, PHASE_DOWN] {
                    let du = dist[u * 2 + ph];
                    if du == u32::MAX {
                        continue;
                    }
                    for &(v, op) in &fwd[u] {
                        let v = v as usize;
                        let ph_next = if up(u, v) {
                            if ph == PHASE_UP {
                                PHASE_UP
                            } else {
                                continue;
                            }
                        } else {
                            PHASE_DOWN
                        };
                        if dist[v * 2 + ph_next] == du - 1 {
                            next[(di * n + u) * 2 + ph] = op + 1;
                            break;
                        }
                    }
                    debug_assert_ne!(
                        next[(di * n + u) * 2 + ph],
                        0,
                        "BFS distance {du} at {c} has no distance-decreasing successor"
                    );
                }
            }
        }

        Ok(RouteTable {
            cfg: cfg.clone(),
            faults: faults.clone(),
            ports,
            next,
            goal_ok,
            level,
        })
    }

    /// The configuration the table was built for.
    pub fn cfg(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// The fault model the table was built under.
    pub fn faults(&self) -> &FaultModel {
        &self.faults
    }

    /// Whether travelling `from → to` is an up hop (toward a lower
    /// `(level, index)` rank).
    fn is_up(&self, from: Coord, to: Coord) -> bool {
        let (fu, tu) = (self.cfg.dims.index(from), self.cfg.dims.index(to));
        (self.level[tu], tu) < (self.level[fu], fu)
    }

    /// The routing phase of a packet at `here` that arrived through input
    /// port `in_dir`: source channels (injection at P, or entry from an
    /// edge endpoint) start in the Up phase; otherwise the arrival hop's
    /// up/down class decides (table routes never go up after down, so an
    /// up arrival implies the Up phase).
    fn phase_of(&self, here: Coord, in_dir: Dir) -> usize {
        match self.cfg.neighbor(here, in_dir) {
            _ if in_dir == Dir::P => PHASE_UP,
            None => PHASE_UP,
            Some(nb) if self.is_up(nb, here) => PHASE_UP,
            Some(_) => PHASE_DOWN,
        }
    }

    /// Route decision for a packet at router `here` (arrived through input
    /// `in_dir`) heading for `dest`, over the surviving channels.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::Unreachable`] when no surviving path within
    /// the hop bound leads from this state to `dest`.
    pub fn route(&self, here: Coord, in_dir: Dir, dest: Dest) -> Result<RouteDecision, RouteError> {
        let di = dest_index(&self.cfg, dest);
        let n = self.cfg.dims.count();
        if here == dest.coord {
            if self.goal_ok[di] {
                return Ok(RouteDecision {
                    out: dest.exit_dir(),
                    out_vc: 0,
                });
            }
            return Err(RouteError::Unreachable { dest });
        }
        let ph = self.phase_of(here, in_dir);
        let node = self.cfg.dims.index(here);
        match self.next[(di * n + node) * 2 + ph] {
            0 => Err(RouteError::Unreachable { dest }),
            p => Ok(RouteDecision {
                out: self.ports[(p - 1) as usize],
                out_vc: 0,
            }),
        }
    }

    /// Whether `dest` is reachable from `src` entered through `entry_dir`
    /// (P for tile injection, N/S for edge-endpoint entry).
    pub fn reachable(&self, src: Coord, entry_dir: Dir, dest: Dest) -> bool {
        !self.faults.router_dead(src) && self.route(src, entry_dir, dest).is_ok()
    }

    /// Fraction of ordered tile pairs (src ≠ dst, both routers alive at
    /// either end or not) that are still connected — the headline
    /// degradation metric.
    pub fn connected_pair_fraction(&self) -> f64 {
        let dims = self.cfg.dims;
        let mut ok = 0u64;
        let mut total = 0u64;
        for s in dims.iter() {
            for d in dims.iter() {
                if s == d {
                    continue;
                }
                total += 1;
                if self.reachable(s, Dir::P, Dest::tile(d)) {
                    ok += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            ok as f64 / total as f64
        }
    }
}

/// Destination index: tiles first (row-major node order), then north-edge
/// endpoints by column, then south-edge — the same layout as
/// [`EndpointId`](crate::sim::EndpointId).
fn dest_index(cfg: &NetworkConfig, dest: Dest) -> usize {
    let n = cfg.dims.count();
    match dest.edge {
        None => cfg.dims.index(dest.coord),
        Some(EdgePort::North) => n + dest.coord.x as usize,
        Some(EdgePort::South) => n + cfg.dims.cols as usize + dest.coord.x as usize,
    }
}

/// Inverse of [`dest_index`].
fn dest_of_index(cfg: &NetworkConfig, di: usize) -> Dest {
    let n = cfg.dims.count();
    let cols = cfg.dims.cols as usize;
    if di < n {
        Dest::tile(cfg.dims.coord(di))
    } else if di < n + cols {
        Dest::north_edge((di - n) as u16)
    } else {
        Dest::south_edge((di - n - cols) as u16, cfg.dims.rows)
    }
}

/// Walks a table route from `src` (entered through `entry_dir`) to `dest`,
/// returning every (router, output) traversal including the ejection —
/// the faulted analogue of [`try_walk_route_from`]
/// (crate::routing::try_walk_route_from), used by the `ruche-verify`
/// faulted checker and the property tests.
///
/// # Errors
///
/// Returns [`RouteError::Unreachable`] for partitioned pairs,
/// [`RouteError::LeftArray`] / [`RouteError::HopLimit`] only on a table
/// bug (the construction makes them impossible).
pub fn try_walk_table_route(
    table: &RouteTable,
    src: Coord,
    entry_dir: Dir,
    dest: Dest,
) -> Result<Vec<(Coord, Dir)>, RouteError> {
    let cfg = table.cfg();
    let mut here = src;
    let mut in_dir = entry_dir;
    let mut path = Vec::new();
    let limit = cfg.max_route_hops();
    loop {
        let dec = table.route(here, in_dir, dest)?;
        path.push((here, dec.out));
        if here == dest.coord && dec.out == dest.exit_dir() {
            break;
        }
        here = cfg.neighbor(here, dec.out).ok_or(RouteError::LeftArray {
            at: here,
            out: dec.out,
        })?;
        in_dir = dec.out.opposite();
        if path.len() > limit {
            return Err(RouteError::HopLimit { limit });
        }
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dims;
    use crate::topology::CrossbarScheme;

    #[test]
    fn default_is_empty_and_valid_everywhere() {
        let f = FaultModel::default();
        assert!(f.is_empty());
        for cfg in [
            NetworkConfig::mesh(Dims::new(4, 4)),
            NetworkConfig::torus(Dims::new(4, 4)),
        ] {
            assert_eq!(f.validate(&cfg), Ok(()));
        }
    }

    #[test]
    fn builders_sort_and_dedup() {
        let f = FaultModel::default()
            .kill_link(Coord::new(3, 1), Dir::E)
            .kill_link(Coord::new(0, 0), Dir::S)
            .kill_link(Coord::new(3, 1), Dir::E)
            .kill_router(Coord::new(2, 2))
            .kill_router(Coord::new(1, 1))
            .kill_router(Coord::new(2, 2));
        assert_eq!(
            f.dead_links(),
            &[(Coord::new(0, 0), Dir::S), (Coord::new(3, 1), Dir::E)]
        );
        assert_eq!(f.dead_routers(), &[Coord::new(1, 1), Coord::new(2, 2)]);
    }

    #[test]
    fn validation_rejects_bad_faults() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 4));
        let f = FaultModel::default().kill_router(Coord::new(9, 9));
        assert!(matches!(
            f.validate(&cfg),
            Err(FaultError::NoSuchRouter { .. })
        ));
        // Off-edge link, P port, and Ruche link on a mesh all fail.
        for (at, out) in [
            (Coord::new(0, 0), Dir::N),
            (Coord::new(1, 1), Dir::P),
            (Coord::new(1, 1), Dir::RE),
        ] {
            let f = FaultModel::default().kill_link(at, out);
            assert!(
                matches!(f.validate(&cfg), Err(FaultError::NoSuchLink { .. })),
                "{at} {out}"
            );
        }
        // Torus rejects any fault.
        let torus = NetworkConfig::torus(Dims::new(4, 4));
        let f = FaultModel::default().kill_router(Coord::new(1, 1));
        assert_eq!(f.validate(&torus), Err(FaultError::VcRoutersUnsupported));
        // Edge channels are killable when edge ports exist.
        let edged = NetworkConfig::mesh(Dims::new(4, 4)).with_edge_memory_ports();
        let f = FaultModel::default().kill_link(Coord::new(2, 0), Dir::N);
        assert_eq!(f.validate(&edged), Ok(()));
    }

    #[test]
    fn channel_dead_is_bidirectional() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 4));
        let f = FaultModel::default().kill_link(Coord::new(1, 1), Dir::E);
        assert!(f.channel_dead(&cfg, Coord::new(1, 1), Dir::E));
        assert!(f.channel_dead(&cfg, Coord::new(2, 1), Dir::W));
        assert!(!f.channel_dead(&cfg, Coord::new(1, 1), Dir::W));
        let f = FaultModel::default().kill_router(Coord::new(1, 1));
        assert!(f.channel_dead(&cfg, Coord::new(1, 1), Dir::S));
        assert!(f.channel_dead(&cfg, Coord::new(0, 1), Dir::E));
        assert!(f.channel_dead(&cfg, Coord::new(1, 1), Dir::P));
    }

    #[test]
    fn random_links_is_deterministic_and_scales_with_p() {
        let cfg = NetworkConfig::mesh(Dims::new(8, 8));
        let a = FaultModel::random_links(&cfg, 0.1, 42);
        let b = FaultModel::random_links(&cfg, 0.1, 42);
        assert_eq!(a, b);
        let c = FaultModel::random_links(&cfg, 0.1, 43);
        assert_ne!(a, c, "different seeds should differ on an 8x8 mesh");
        assert!(FaultModel::random_links(&cfg, 0.0, 42).is_empty());
        let dense = FaultModel::random_links(&cfg, 0.9, 42);
        assert!(dense.dead_links().len() > a.dead_links().len());
        for f in [&a, &c, &dense] {
            assert_eq!(f.validate(&cfg), Ok(()));
        }
    }

    #[test]
    fn unfaulted_table_routes_every_pair() {
        let cfg = NetworkConfig::mesh(Dims::new(5, 4));
        let table =
            RouteTable::build(&cfg, &FaultModel::default()).expect("empty fault model is valid");
        assert_eq!(table.connected_pair_fraction(), 1.0);
        for s in cfg.dims.iter() {
            for d in cfg.dims.iter() {
                let path = try_walk_table_route(&table, s, Dir::P, Dest::tile(d))
                    .expect("unfaulted pair routes");
                // Hop-minimal on an unfaulted mesh: manhattan + ejection.
                assert_eq!(path.len() as u32, s.manhattan(d) + 1, "{s}->{d}");
            }
        }
    }

    #[test]
    fn detour_routes_around_a_dead_link() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 1));
        // Kill the only direct link between (1,0) and (2,0) on a 4x1 line:
        // the row is cut, halves unreachable from each other.
        let f = FaultModel::default().kill_link(Coord::new(1, 0), Dir::E);
        let table = RouteTable::build(&cfg, &f).expect("fault model is valid for cfg");
        let err = table
            .route(Coord::new(0, 0), Dir::P, Dest::tile(Coord::new(3, 0)))
            .unwrap_err();
        assert!(matches!(err, RouteError::Unreachable { .. }));

        // On a 4x2 grid the same cut detours through the second row.
        let cfg = NetworkConfig::mesh(Dims::new(4, 2));
        let table = RouteTable::build(&cfg, &f).expect("fault model is valid for cfg");
        let path = try_walk_table_route(
            &table,
            Coord::new(0, 0),
            Dir::P,
            Dest::tile(Coord::new(3, 0)),
        )
        .expect("detour exists through the second row");
        assert_eq!(path.len(), 6, "3 E hops + S + N detour + eject: {path:?}");
        assert_eq!(table.connected_pair_fraction(), 1.0);
    }

    #[test]
    fn detours_use_ruche_diversity() {
        let cfg = NetworkConfig::full_ruche(Dims::new(8, 8), 2, CrossbarScheme::FullyPopulated);
        // Kill every local E/W link on row 0: X travel in row 0 must board
        // the Ruche highway.
        let mut f = FaultModel::default();
        for x in 0..7u16 {
            f = f.kill_link(Coord::new(x, 0), Dir::E);
        }
        let table = RouteTable::build(&cfg, &f).expect("fault model is valid for cfg");
        let path = try_walk_table_route(
            &table,
            Coord::new(0, 0),
            Dir::P,
            Dest::tile(Coord::new(4, 0)),
        )
        .expect("ruche channels bypass the dead row");
        assert!(
            path.iter().any(|&(_, d)| d.is_ruche()),
            "detour should ride a Ruche channel: {path:?}"
        );
        // RF=2 highway covers even distances without leaving the row.
        assert_eq!(path.len(), 3, "{path:?}");
    }

    #[test]
    fn dead_router_partitions_only_itself_on_a_mesh() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 4));
        let dead = Coord::new(1, 1);
        let f = FaultModel::default().kill_router(dead);
        let table = RouteTable::build(&cfg, &f).expect("fault model is valid for cfg");
        for s in cfg.dims.iter() {
            for d in cfg.dims.iter() {
                if s == d {
                    continue;
                }
                let reach = table.reachable(s, Dir::P, Dest::tile(d));
                assert_eq!(reach, s != dead && d != dead, "{s}->{d}");
            }
        }
    }

    #[test]
    fn edge_destinations_route_and_die_with_their_channel() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 4)).with_edge_memory_ports();
        let f = FaultModel::default().kill_link(Coord::new(2, 0), Dir::N);
        let table = RouteTable::build(&cfg, &f).expect("fault model is valid for cfg");
        // The killed edge channel partitions its endpoint...
        assert!(!table.reachable(Coord::new(0, 3), Dir::P, Dest::north_edge(2)));
        // ...but its neighbors still work, and entry from an edge endpoint
        // routes back into the array.
        let path = try_walk_table_route(&table, Coord::new(1, 0), Dir::P, Dest::north_edge(1))
            .expect("edge endpoint stays reachable");
        assert_eq!(
            path.last().expect("route is non-empty"),
            &(Coord::new(1, 0), Dir::N)
        );
        let back = try_walk_table_route(
            &table,
            Coord::new(3, 0),
            Dir::N,
            Dest::tile(Coord::new(0, 3)),
        )
        .expect("edge-entered packet routes to its tile");
        assert_eq!(back.last().expect("route is non-empty").1, Dir::P);
    }

    #[test]
    fn up_down_phase_is_monotone_along_every_route() {
        // The turn-model invariant behind deadlock freedom: once a route
        // takes a down hop (toward higher rank) it never goes up again.
        let cfg = NetworkConfig::mesh(Dims::new(6, 5));
        let f = FaultModel::random_links(&cfg, 0.15, 7);
        let table = RouteTable::build(&cfg, &f).expect("fault model is valid for cfg");
        assert!(!f.is_empty(), "seed should produce at least one fault");
        for s in cfg.dims.iter() {
            for d in cfg.dims.iter() {
                let Ok(path) = try_walk_table_route(&table, s, Dir::P, Dest::tile(d)) else {
                    continue;
                };
                let mut down = false;
                for &(at, out) in &path {
                    let Some(nb) = cfg.neighbor(at, out) else {
                        continue; // ejection / edge exit
                    };
                    if table.is_up(at, nb) {
                        assert!(!down, "{s}->{d} goes up after down at {at}: {path:?}");
                    } else {
                        down = true;
                    }
                }
            }
        }
    }
}
