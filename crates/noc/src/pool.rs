//! A persistent worker pool for the sharded step (see [`crate::shard`]).
//!
//! [`StepPool::run_parts`] distributes one mutable *part* per task index
//! over a fixed set of parked worker threads plus the calling thread, and
//! returns when every task has finished — one epoch. Workers park on a
//! condvar between epochs, so a pool owned by an idle [`Network`] costs
//! nothing, and no thread is ever spawned inside the cycle loop (the
//! steady-state step stays allocation-free per worker).
//!
//! Synchronization is a single mutex-guarded epoch counter: the caller
//! publishes a job and bumps the epoch, workers wake, claim task indices
//! from a shared cursor, and the caller blocks until the unfinished count
//! reaches zero. Which worker runs which task is scheduling-dependent, but
//! every task sees only its own part, so results never depend on the
//! assignment — the determinism argument lives in `docs/PARALLELISM.md`.
//!
//! Every protocol transition — epoch publish, task claiming, the barrier,
//! panic latching, shutdown — is implemented by
//! [`ruche_soundness::EpochCore`], a pure state machine this module drives
//! behind its mutex. The `ruche-soundness` model checker exhaustively
//! enumerates all thread interleavings of that *same* state machine and
//! proves no lost wakeups, no double-claimed task index, barrier/panic
//! integrity, and that `Drop` always joins (see `docs/SOUNDNESS.md`); the
//! protocol checked and the protocol shipped cannot drift apart.
//!
//! [`Network`]: crate::sim::Network

use ruche_soundness::{Claim, EpochCore, PoolProtocol, Signal, Wake};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Lifetime-erased pointer to the epoch's task closure. Only valid while
/// the publishing `run_parts` call is blocked waiting for the epoch to
/// finish; workers never hold it across epochs.
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the closure behind the pointer is `Sync` (shared calls are fine)
// and `run_parts` keeps its referent alive until every task completed.
unsafe impl Send for Job {}

/// The mutex-guarded pool state: the pure protocol record plus the one
/// impure ingredient the state machine cannot carry — the epoch's job
/// pointer. `job` is `Some` exactly while `core` has a published epoch.
struct State {
    core: EpochCore,
    job: Option<Job>,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between epochs.
    start: Condvar,
    /// The caller parks here until the epoch's unfinished count reaches
    /// zero.
    done: Condvar,
}

impl Shared {
    /// Applies a protocol [`Signal`] to the matching condvar, with the
    /// state lock still held (the pre-existing notify discipline).
    fn raise(&self, signal: Signal, _held: &MutexGuard<'_, State>) {
        match signal {
            Signal::None => {}
            Signal::Start => {
                self.start.notify_all();
            }
            Signal::Done => {
                self.done.notify_all();
            }
        }
    }
}

/// A fixed-size pool of persistent, parked worker threads driven by an
/// epoch counter (created once per [`Network`](crate::sim::Network), never
/// per cycle).
pub struct StepPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for StepPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Raw base pointer of the parts slice, shareable with workers.
struct PartsPtr<T>(*mut T);

// SAFETY: each task index is claimed exactly once per epoch, so distinct
// workers dereference disjoint elements; `T: Send` lets the element be
// mutated from another thread.
unsafe impl<T: Send> Send for PartsPtr<T> {}

// SAFETY: sharing `&PartsPtr` across threads only exposes the base
// pointer; disjointness of the elements actually dereferenced is the same
// claimed-exactly-once argument as for `Send` above.
unsafe impl<T: Send> Sync for PartsPtr<T> {}

impl StepPool {
    /// Spawns `workers` parked threads (the thread calling
    /// [`StepPool::run_parts`] participates too, so a pool serving `k`
    /// shards wants `k - 1` workers).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                core: EpochCore::new(),
                job: None,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("ruche-step".into())
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn step worker")
            })
            .collect();
        StepPool {
            shared,
            workers: handles,
        }
    }

    /// Number of pooled worker threads (excluding the caller).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f(i, &mut parts[i])` for every `i`, distributing indices over
    /// the pooled workers and the calling thread; returns once all parts
    /// are done (the epoch barrier).
    ///
    /// # Panics
    ///
    /// Panics (after the barrier, so no task is left running) if any task
    /// panicked. The panic is re-raised exactly once and the pool remains
    /// usable for further epochs.
    pub fn run_parts<T, F>(&self, parts: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        self.run_parts_masked(parts, 0, f);
    }

    /// Like [`StepPool::run_parts`], but every part whose bit is set in
    /// `skip_mask` sleeps through this epoch: it is never published to the
    /// pool, never claimed by any thread, and contributes nothing to the
    /// barrier — zero per-slot cost beyond one bit test at claim time.
    ///
    /// The mask is reconciled into the protocol's persistent sleep set
    /// under the publish lock ([`EpochCore::sleep_task`] /
    /// [`EpochCore::wake_task`]), so the caller owns the full sleep/wake
    /// decision each epoch: a bit set this epoch and cleared the next is
    /// exactly the *wake-on-credit* edge of `docs/PARALLELISM.md`. Bits at
    /// index ≥ 32 cannot be masked (the sleep set is a `u32`; the shard
    /// layer caps at `MAX_SHARDS = 32`). If the mask covers *every* part,
    /// the epoch is vacuous and no publish happens at all.
    pub fn run_parts_masked<T, F>(&self, parts: &mut [T], skip_mask: u32, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = parts.len();
        if n == 0 {
            return;
        }
        let live = if n >= 32 { u32::MAX } else { (1u32 << n) - 1 };
        if n <= 32 && skip_mask & live == live {
            // Every part is asleep: skip the publish entirely. The sleep
            // set is fully re-reconciled on the next non-vacuous call, so
            // leaving the protocol untouched here is safe.
            return;
        }
        let base = PartsPtr(parts.as_mut_ptr());
        let call = move |i: usize| {
            // Capture the whole `PartsPtr` wrapper (not its raw-pointer
            // field) so the closure stays `Sync` under disjoint capture.
            let base = &base;
            debug_assert!(i < n);
            // SAFETY: `i` is claimed exactly once per epoch (the
            // `EpochCore` cursor under the mutex; model-checked by
            // `ruche-soundness`), so this is the only live reference to
            // `parts[i]`.
            let part = unsafe { &mut *base.0.add(i) };
            f(i, part);
        };
        let erased: *const (dyn Fn(usize) + Sync) = &call;
        // SAFETY: lifetime erasure only. This function does not return (and
        // `call` / `f` / `parts` stay alive) until the epoch barrier opens,
        // i.e. until no worker can still dereference the pointer.
        let erased: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { std::mem::transmute(erased) };
        {
            let mut st = self.shared.state.lock().expect("step pool lock");
            // Reconcile the sleep set before the publish snapshots it.
            for i in 0..n.min(32) {
                if skip_mask & (1u32 << i) != 0 {
                    st.core.sleep_task(i);
                } else {
                    st.core.wake_task(i);
                }
            }
            let sig = st.core.publish(n);
            st.job = Some(Job(erased));
            self.shared.raise(sig, &st);
        }
        // Participate in the epoch, then wait out whatever the workers
        // still hold.
        run_tasks(&self.shared);
        let mut st = self.shared.state.lock().expect("step pool lock");
        while !st.core.epoch_done() {
            st = self.shared.done.wait(st).expect("step pool lock");
        }
        st.job = None;
        if st.core.end_epoch() {
            drop(st);
            panic!("a step-pool task panicked");
        }
    }
}

impl Drop for StepPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("step pool lock");
            let sig = st.core.begin_shutdown();
            self.shared.raise(sig, &st);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claims and runs tasks of the current epoch until none remain. Shared by
/// the workers and the publishing caller.
fn run_tasks(shared: &Shared) {
    loop {
        let (job, i) = {
            let mut st = shared.state.lock().expect("step pool lock");
            match st.core.try_claim() {
                Claim::Drained => return,
                // The job is read under the same lock as the claim, so a
                // claimed index always belongs to the currently published
                // epoch's job — even if this thread's view of the epoch
                // counter is stale.
                Claim::Task(i) => (st.job.as_ref().expect("job published with its tasks").0, i),
            }
        };
        // Catch panics so the epoch always completes and the barrier never
        // hangs; the caller re-raises after the last task finishes.
        // SAFETY: the job pointer is valid for the whole epoch (see
        // `run_parts`), and this task index was claimed exactly once.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*job)(i) }));
        let mut st = shared.state.lock().expect("step pool lock");
        let sig = st.core.finish_task(outcome.is_err());
        shared.raise(sig, &st);
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        {
            let mut st = shared.state.lock().expect("step pool lock");
            loop {
                match st.core.worker_wake(seen) {
                    Wake::Park => {
                        st = shared.start.wait(st).expect("step pool lock");
                    }
                    Wake::Exit => return,
                    Wake::Run(epoch) => {
                        seen = epoch;
                        break;
                    }
                }
            }
        }
        run_tasks(shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_part_runs_exactly_once() {
        let pool = StepPool::new(3);
        let mut parts: Vec<u64> = vec![0; 17];
        pool.run_parts(&mut parts, |i, p| *p += i as u64 + 1);
        let expect: Vec<u64> = (0..17).map(|i| i + 1).collect();
        assert_eq!(parts, expect);
    }

    #[test]
    fn epochs_reuse_the_same_workers() {
        let pool = StepPool::new(2);
        let mut parts = vec![0u32; 5];
        for _ in 0..100 {
            pool.run_parts(&mut parts, |_, p| *p += 1);
        }
        assert!(parts.iter().all(|&p| p == 100), "{parts:?}");
    }

    #[test]
    fn zero_workers_runs_on_the_caller() {
        let pool = StepPool::new(0);
        let mut parts = vec![false; 4];
        pool.run_parts(&mut parts, |_, p| *p = true);
        assert!(parts.iter().all(|&p| p));
    }

    #[test]
    fn empty_parts_is_a_no_op() {
        let pool = StepPool::new(2);
        let mut parts: Vec<u8> = vec![];
        pool.run_parts(&mut parts, |_, _| unreachable!("no tasks"));
    }

    #[test]
    fn masked_parts_sleep_through_the_epoch() {
        let pool = StepPool::new(3);
        let mut parts: Vec<u32> = vec![0; 8];
        // Sleep the even slots; only the odd ones may run.
        let mask = 0b0101_0101u32;
        pool.run_parts_masked(&mut parts, mask, |i, p| {
            assert!(i % 2 == 1, "slot {i} was asleep but ran");
            *p += 1;
        });
        for (i, &p) in parts.iter().enumerate() {
            assert_eq!(p, (i % 2) as u32, "slot {i}");
        }
    }

    #[test]
    fn a_fully_masked_epoch_is_vacuous() {
        let pool = StepPool::new(2);
        let mut parts = vec![0u8; 4];
        pool.run_parts_masked(&mut parts, 0b1111, |_, _| {
            unreachable!("every slot is asleep")
        });
        assert!(parts.iter().all(|&p| p == 0));
    }

    #[test]
    fn wake_on_credit_rearms_a_slot_for_the_next_epoch() {
        // Slot 2 sleeps one epoch, then its mask bit clears (the credit
        // arrived) and it must run again — the wake-on-credit edge.
        let pool = StepPool::new(2);
        let mut parts = vec![0u32; 5];
        pool.run_parts_masked(&mut parts, 1 << 2, |_, p| *p += 1);
        assert_eq!(parts, vec![1, 1, 0, 1, 1]);
        pool.run_parts_masked(&mut parts, 0, |_, p| *p += 1);
        assert_eq!(parts, vec![2, 2, 1, 2, 2]);
    }

    #[test]
    fn masks_vary_freely_across_epochs() {
        let pool = StepPool::new(3);
        let mut parts = vec![0u64; 12];
        for round in 0..32u32 {
            // A different sleep pattern every epoch.
            let mask = round.wrapping_mul(0x9e37_79b9) & 0x0fff;
            pool.run_parts_masked(&mut parts, mask, |_, p| *p += 1);
        }
        // Every slot ran exactly in the epochs its bit was clear.
        for (i, &p) in parts.iter().enumerate() {
            let expect = (0..32u32)
                .filter(|r| r.wrapping_mul(0x9e37_79b9) & 0x0fff & (1 << i) == 0)
                .count() as u64;
            assert_eq!(p, expect, "slot {i}");
        }
    }

    #[test]
    fn a_panic_in_a_live_slot_still_reraises_once() {
        let pool = StepPool::new(2);
        let mut parts = vec![0u8; 6];
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_parts_masked(&mut parts, 1 << 0, |i, _| assert!(i != 4, "boom"));
        }));
        assert!(res.is_err());
        // The pool survives, and the previously slept slot runs again.
        pool.run_parts_masked(&mut parts, 0, |_, p| *p = 7);
        assert!(parts.iter().all(|&p| p == 7));
    }

    #[test]
    fn task_panics_surface_after_the_barrier() {
        let pool = StepPool::new(2);
        let mut parts = vec![0u8; 6];
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_parts(&mut parts, |i, _| assert!(i != 3, "boom"));
        }));
        assert!(res.is_err());
        // The pool survives for further epochs.
        pool.run_parts(&mut parts, |_, p| *p = 9);
        assert!(parts.iter().all(|&p| p == 9));
    }
}
