//! The serializable configuration surface: JSON codecs for
//! [`NetworkConfig`] and [`FaultModel`].
//!
//! External clients of the sweep service cannot construct a Rust `Debug`
//! rendering, so every configuration a request can carry has an explicit,
//! versioned wire form built on the deterministic JSON model in
//! `ruche_telemetry::json`. Two properties are load-bearing:
//!
//! * **Canonical rendering.** [`NetworkConfig::to_wire`] always emits every
//!   field, in a fixed order, with floats in shortest-roundtrip form — so
//!   equal configurations render byte-identically and the rendering can
//!   serve as a cache key (`ruche_traffic::wire::SweepRequest` builds on
//!   it).
//! * **Performance knobs are not identity.** `step_threads` and
//!   `step_mode` never appear on the wire: results are byte-identical at
//!   any thread count and in any step mode, so two requests differing only
//!   in those knobs must be the same request (the same contract the
//!   `Debug`-based cache key upheld, now enforced structurally).
//!
//! Decoding is lenient where it is safe: optional fields fall back to the
//! paper's defaults, so a client can POST `{"dims":{"cols":8,"rows":8},
//! "topology":{"kind":"mesh"}}` and get the canonical 8×8 mesh. Decoding
//! never panics — every malformed shape comes back as a [`WireError`]
//! naming the offending field.

use crate::fault::FaultModel;
use crate::geometry::{Axes, Coord, Dims, Dir};
use crate::topology::{CrossbarScheme, DorOrder, NetworkConfig, TopologyKind};
use ruche_telemetry::json::Json;
use std::fmt;

/// Version of the configuration wire schema. Bump when a field is added,
/// removed, or re-interpreted; decoders reject unknown versions rather
/// than guessing.
pub const CONFIG_WIRE_VERSION: u64 = 1;

/// A structured decoding error: which field broke, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Dotted path of the offending field (e.g. `topology.rf`).
    pub field: String,
    /// What was wrong with it.
    pub reason: String,
}

impl WireError {
    /// Builds an error for `field`.
    pub fn new(field: impl Into<String>, reason: impl Into<String>) -> Self {
        WireError {
            field: field.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "field `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for WireError {}

/// Reads a `u64` field of an object, erroring with the field path.
pub fn get_u64(v: &Json, field: &str) -> Result<u64, WireError> {
    v.get(field)
        .ok_or_else(|| WireError::new(field, "missing"))?
        .as_u64()
        .ok_or_else(|| WireError::new(field, "expected an unsigned integer"))
}

/// Reads a number field of an object as `f64`, erroring with the field
/// path.
pub fn get_f64(v: &Json, field: &str) -> Result<f64, WireError> {
    v.get(field)
        .ok_or_else(|| WireError::new(field, "missing"))?
        .as_f64()
        .ok_or_else(|| WireError::new(field, "expected a number"))
}

/// Reads a boolean field of an object, erroring with the field path.
pub fn get_bool(v: &Json, field: &str) -> Result<bool, WireError> {
    v.get(field)
        .ok_or_else(|| WireError::new(field, "missing"))?
        .as_bool()
        .ok_or_else(|| WireError::new(field, "expected a boolean"))
}

/// Reads a string field of an object, erroring with the field path.
pub fn get_str<'a>(v: &'a Json, field: &str) -> Result<&'a str, WireError> {
    v.get(field)
        .ok_or_else(|| WireError::new(field, "missing"))?
        .as_str()
        .ok_or_else(|| WireError::new(field, "expected a string"))
}

/// Reads an optional `u64` field (missing ⇒ `None`, wrong type ⇒ error).
pub fn opt_u64(v: &Json, field: &str) -> Result<Option<u64>, WireError> {
    match v.get(field) {
        None => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| WireError::new(field, "expected an unsigned integer")),
    }
}

/// Reads an optional number field as `f64` (missing ⇒ `None`, wrong type
/// ⇒ error).
pub fn opt_f64(v: &Json, field: &str) -> Result<Option<f64>, WireError> {
    match v.get(field) {
        None => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| WireError::new(field, "expected a number")),
    }
}

/// Reads an optional boolean field (missing ⇒ `None`, wrong type ⇒ error).
pub fn opt_bool(v: &Json, field: &str) -> Result<Option<bool>, WireError> {
    match v.get(field) {
        None => Ok(None),
        Some(x) => x
            .as_bool()
            .map(Some)
            .ok_or_else(|| WireError::new(field, "expected a boolean")),
    }
}

/// Reads an optional string field (missing ⇒ `None`, wrong type ⇒ error).
pub fn opt_str<'a>(v: &'a Json, field: &str) -> Result<Option<&'a str>, WireError> {
    match v.get(field) {
        None => Ok(None),
        Some(x) => x
            .as_str()
            .map(Some)
            .ok_or_else(|| WireError::new(field, "expected a string")),
    }
}

/// Converts a `u64` into `u16`, erroring with the field path on overflow.
fn to_u16(n: u64, field: &str) -> Result<u16, WireError> {
    u16::try_from(n).map_err(|_| WireError::new(field, format!("{n} does not fit u16")))
}

/// Converts a `u64` into `u32`, erroring with the field path on overflow.
fn to_u32(n: u64, field: &str) -> Result<u32, WireError> {
    u32::try_from(n).map_err(|_| WireError::new(field, format!("{n} does not fit u32")))
}

impl Dims {
    /// The wire form: `{"cols":C,"rows":R}`.
    pub fn to_wire(self) -> Json {
        Json::Obj(vec![
            ("cols".into(), Json::U64(self.cols as u64)),
            ("rows".into(), Json::U64(self.rows as u64)),
        ])
    }

    /// Decodes the wire form of [`Dims::to_wire`].
    ///
    /// # Errors
    ///
    /// A [`WireError`] naming the missing or malformed field.
    pub fn from_wire(v: &Json) -> Result<Self, WireError> {
        Ok(Dims::new(
            to_u16(get_u64(v, "cols")?, "cols")?,
            to_u16(get_u64(v, "rows")?, "rows")?,
        ))
    }
}

impl Coord {
    /// The wire form: `{"x":X,"y":Y}`.
    pub fn to_wire(self) -> Json {
        Json::Obj(vec![
            ("x".into(), Json::U64(self.x as u64)),
            ("y".into(), Json::U64(self.y as u64)),
        ])
    }

    /// Decodes the wire form of [`Coord::to_wire`].
    ///
    /// # Errors
    ///
    /// A [`WireError`] naming the missing or malformed field.
    pub fn from_wire(v: &Json) -> Result<Self, WireError> {
        Ok(Coord::new(
            to_u16(get_u64(v, "x")?, "x")?,
            to_u16(get_u64(v, "y")?, "y")?,
        ))
    }
}

/// The wire spelling of an [`Axes`] value.
fn axes_name(a: Axes) -> &'static str {
    match a {
        Axes::X => "x",
        Axes::Y => "y",
        Axes::Both => "both",
    }
}

/// Parses an [`Axes`] wire spelling.
fn axes_from(s: &str, field: &str) -> Result<Axes, WireError> {
    match s {
        "x" => Ok(Axes::X),
        "y" => Ok(Axes::Y),
        "both" => Ok(Axes::Both),
        other => Err(WireError::new(
            field,
            format!("unknown axes {other:?}; expected x, y, or both"),
        )),
    }
}

impl TopologyKind {
    /// The wire form, e.g. `{"kind":"ruche","rf":2,"axes":"both"}`.
    pub fn to_wire(self) -> Json {
        match self {
            TopologyKind::Mesh => Json::Obj(vec![("kind".into(), Json::Str("mesh".into()))]),
            TopologyKind::MultiMesh => {
                Json::Obj(vec![("kind".into(), Json::Str("multi-mesh".into()))])
            }
            TopologyKind::Torus { axes } => Json::Obj(vec![
                ("kind".into(), Json::Str("torus".into())),
                ("axes".into(), Json::Str(axes_name(axes).into())),
            ]),
            TopologyKind::Ruche { rf, axes } => Json::Obj(vec![
                ("kind".into(), Json::Str("ruche".into())),
                ("rf".into(), Json::U64(rf as u64)),
                ("axes".into(), Json::Str(axes_name(axes).into())),
            ]),
        }
    }

    /// Decodes the wire form of [`TopologyKind::to_wire`]. `axes` defaults
    /// to `"both"` and `rf` to 1 when omitted.
    ///
    /// # Errors
    ///
    /// A [`WireError`] naming the missing or malformed field.
    pub fn from_wire(v: &Json) -> Result<Self, WireError> {
        let kind = opt_str(v, "kind")?.ok_or_else(|| WireError::new("topology.kind", "missing"))?;
        let axes = match opt_str(v, "axes")? {
            Some(s) => axes_from(s, "topology.axes")?,
            None => Axes::Both,
        };
        match kind {
            "mesh" => Ok(TopologyKind::Mesh),
            "multi-mesh" => Ok(TopologyKind::MultiMesh),
            "torus" => Ok(TopologyKind::Torus { axes }),
            "ruche" => {
                let rf = to_u16(opt_u64(v, "rf")?.unwrap_or(1), "topology.rf")?;
                Ok(TopologyKind::Ruche { rf, axes })
            }
            other => Err(WireError::new(
                "topology.kind",
                format!("unknown topology {other:?}; expected mesh, multi-mesh, torus, or ruche"),
            )),
        }
    }
}

impl NetworkConfig {
    /// The canonical wire form: every field, fixed order, version first.
    ///
    /// `step_threads` and `step_mode` are deliberately absent — they are
    /// pure performance knobs whose settings never change results, so they
    /// must not split cache keys (see the module docs).
    pub fn to_wire(&self) -> Json {
        Json::Obj(vec![
            ("config_version".into(), Json::U64(CONFIG_WIRE_VERSION)),
            ("dims".into(), self.dims.to_wire()),
            ("topology".into(), self.topology.to_wire()),
            (
                "scheme".into(),
                Json::Str(
                    match self.scheme {
                        CrossbarScheme::FullyPopulated => "pop",
                        CrossbarScheme::Depopulated => "depop",
                    }
                    .into(),
                ),
            ),
            (
                "dor".into(),
                Json::Str(
                    match self.dor {
                        DorOrder::XY => "xy",
                        DorOrder::YX => "yx",
                    }
                    .into(),
                ),
            ),
            ("fifo_depth".into(), Json::U64(self.fifo_depth as u64)),
            (
                "channel_width_bits".into(),
                Json::U64(self.channel_width_bits as u64),
            ),
            (
                "edge_memory_ports".into(),
                Json::Bool(self.edge_memory_ports),
            ),
            (
                "pipeline_stages".into(),
                Json::U64(self.pipeline_stages as u64),
            ),
            (
                "edge_bidirectional".into(),
                Json::Bool(self.edge_bidirectional),
            ),
        ])
    }

    /// Decodes the wire form of [`NetworkConfig::to_wire`].
    ///
    /// Required: `dims` and `topology`. Everything else falls back to the
    /// paper defaults, and an omitted `config_version` is read as the
    /// current one. The result is **unvalidated** — callers run
    /// [`NetworkConfig::validate`] (the service front door does) so that a
    /// decodable-but-illegal configuration still fails with a structured
    /// error rather than deep inside a sweep.
    ///
    /// # Errors
    ///
    /// A [`WireError`] naming the missing or malformed field, or an
    /// unsupported `config_version`.
    pub fn from_wire(v: &Json) -> Result<Self, WireError> {
        if !matches!(v, Json::Obj(_)) {
            return Err(WireError::new("config", "expected an object"));
        }
        let version = opt_u64(v, "config_version")?.unwrap_or(CONFIG_WIRE_VERSION);
        if version != CONFIG_WIRE_VERSION {
            return Err(WireError::new(
                "config_version",
                format!("unsupported version {version}; this build speaks {CONFIG_WIRE_VERSION}"),
            ));
        }
        let dims = Dims::from_wire(
            v.get("dims")
                .ok_or_else(|| WireError::new("dims", "missing"))?,
        )?;
        let topology = TopologyKind::from_wire(
            v.get("topology")
                .ok_or_else(|| WireError::new("topology", "missing"))?,
        )?;
        let mut cfg = NetworkConfig::new(dims, topology);
        if let Some(s) = opt_str(v, "scheme")? {
            cfg.scheme = match s {
                "pop" => CrossbarScheme::FullyPopulated,
                "depop" => CrossbarScheme::Depopulated,
                other => {
                    return Err(WireError::new(
                        "scheme",
                        format!("unknown scheme {other:?}; expected pop or depop"),
                    ))
                }
            };
        }
        if let Some(s) = opt_str(v, "dor")? {
            cfg.dor = match s {
                "xy" => DorOrder::XY,
                "yx" => DorOrder::YX,
                other => {
                    return Err(WireError::new(
                        "dor",
                        format!("unknown DOR order {other:?}; expected xy or yx"),
                    ))
                }
            };
        }
        if let Some(n) = opt_u64(v, "fifo_depth")? {
            cfg.fifo_depth = n as usize;
        }
        if let Some(n) = opt_u64(v, "channel_width_bits")? {
            cfg.channel_width_bits = to_u32(n, "channel_width_bits")?;
        }
        if let Some(b) = opt_bool(v, "edge_memory_ports")? {
            cfg.edge_memory_ports = b;
        }
        if let Some(n) = opt_u64(v, "pipeline_stages")? {
            cfg.pipeline_stages = to_u32(n, "pipeline_stages")?;
        }
        if let Some(b) = opt_bool(v, "edge_bidirectional")? {
            cfg.edge_bidirectional = b;
        }
        Ok(cfg)
    }
}

/// Parses a [`Dir`] wire spelling (the canonical short names, e.g. `RE`).
fn dir_from(s: &str, field: &str) -> Result<Dir, WireError> {
    Dir::ALL
        .into_iter()
        .find(|d| d.name() == s)
        .ok_or_else(|| WireError::new(field, format!("unknown direction {s:?}")))
}

impl FaultModel {
    /// The wire form: dead links as `{"x":..,"y":..,"dir":".."}` objects
    /// and dead routers as coordinates, both in the model's canonical
    /// sorted order.
    pub fn to_wire(&self) -> Json {
        Json::Obj(vec![
            (
                "dead_links".into(),
                Json::Arr(
                    self.dead_links()
                        .iter()
                        .map(|&(c, d)| {
                            Json::Obj(vec![
                                ("x".into(), Json::U64(c.x as u64)),
                                ("y".into(), Json::U64(c.y as u64)),
                                ("dir".into(), Json::Str(d.name().into())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "dead_routers".into(),
                Json::Arr(self.dead_routers().iter().map(|c| c.to_wire()).collect()),
            ),
        ])
    }

    /// Decodes the wire form of [`FaultModel::to_wire`]. Entries pass
    /// through the deduplicating builders, so the canonical sorted-order
    /// invariant holds regardless of input order.
    ///
    /// # Errors
    ///
    /// A [`WireError`] naming the missing or malformed field.
    pub fn from_wire(v: &Json) -> Result<Self, WireError> {
        let mut model = FaultModel::default();
        if let Some(links) = v.get("dead_links") {
            let links = links
                .as_arr()
                .ok_or_else(|| WireError::new("dead_links", "expected an array"))?;
            for l in links {
                let c = Coord::from_wire(l)
                    .map_err(|e| WireError::new(format!("dead_links.{}", e.field), e.reason))?;
                let d = opt_str(l, "dir")?
                    .ok_or_else(|| WireError::new("dead_links.dir", "missing"))?;
                model = model.kill_link(c, dir_from(d, "dead_links.dir")?);
            }
        }
        if let Some(routers) = v.get("dead_routers") {
            let routers = routers
                .as_arr()
                .ok_or_else(|| WireError::new("dead_routers", "expected an array"))?;
            for r in routers {
                let c = Coord::from_wire(r)
                    .map_err(|e| WireError::new(format!("dead_routers.{}", e.field), e.reason))?;
                model = model.kill_router(c);
            }
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruche_telemetry::json::parse;

    fn roundtrip(cfg: &NetworkConfig) {
        let wire = cfg.to_wire().render();
        let back = NetworkConfig::from_wire(&parse(&wire).expect("wire parses"))
            .unwrap_or_else(|e| panic!("{wire}: {e}"));
        assert_eq!(&back, cfg, "{wire}");
        // Canonical: re-rendering the decoded config is byte-identical.
        assert_eq!(back.to_wire().render(), wire);
    }

    #[test]
    fn every_topology_family_roundtrips() {
        let dims = Dims::new(16, 8);
        for cfg in [
            NetworkConfig::mesh(dims),
            NetworkConfig::multi_mesh(dims),
            NetworkConfig::torus(dims),
            NetworkConfig::half_torus(dims),
            NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated),
            NetworkConfig::full_ruche(dims, 3, CrossbarScheme::FullyPopulated),
            NetworkConfig::half_ruche(dims, 2, CrossbarScheme::Depopulated),
            NetworkConfig::ruche_one(dims),
            NetworkConfig::mesh(dims).with_edge_memory_ports(),
            NetworkConfig::torus(dims).with_pipeline_stages(2),
            NetworkConfig::mesh(dims).with_fifo_depth(4),
            NetworkConfig::mesh(dims).with_dor(DorOrder::YX),
        ] {
            roundtrip(&cfg);
        }
    }

    #[test]
    fn step_knobs_never_reach_the_wire() {
        let dims = Dims::new(8, 8);
        let plain = NetworkConfig::mesh(dims);
        let tuned = NetworkConfig::mesh(dims)
            .with_step_threads(8)
            .with_step_mode(crate::topology::StepMode::EventDriven);
        assert_eq!(
            plain.to_wire().render(),
            tuned.to_wire().render(),
            "performance knobs must not split wire identity"
        );
        let back = NetworkConfig::from_wire(&tuned.to_wire()).unwrap();
        assert_eq!(back.step_threads, 0);
        assert_eq!(back.step_mode, None);
    }

    #[test]
    fn minimal_request_decodes_with_paper_defaults() {
        let v = parse(r#"{"dims":{"cols":8,"rows":8},"topology":{"kind":"mesh"}}"#).unwrap();
        let cfg = NetworkConfig::from_wire(&v).unwrap();
        assert_eq!(cfg, NetworkConfig::mesh(Dims::new(8, 8)));
    }

    #[test]
    fn malformed_configs_name_the_field() {
        let cases = [
            (r#"{"topology":{"kind":"mesh"}}"#, "dims"),
            (r#"{"dims":{"cols":8},"topology":{"kind":"mesh"}}"#, "rows"),
            (
                r#"{"dims":{"cols":8,"rows":8},"topology":{"kind":"donut"}}"#,
                "topology.kind",
            ),
            (
                r#"{"dims":{"cols":8,"rows":8},"topology":{"kind":"ruche","rf":99999}}"#,
                "topology.rf",
            ),
            (
                r#"{"dims":{"cols":8,"rows":8},"topology":{"kind":"mesh"},"scheme":"half"}"#,
                "scheme",
            ),
            (
                r#"{"dims":{"cols":8,"rows":8},"topology":{"kind":"mesh"},"config_version":99}"#,
                "config_version",
            ),
            (
                r#"{"dims":{"cols":70000,"rows":8},"topology":{"kind":"mesh"}}"#,
                "cols",
            ),
        ];
        for (body, field) in cases {
            let v = parse(body).unwrap();
            let err = NetworkConfig::from_wire(&v).expect_err(body);
            assert_eq!(err.field, field, "{body}: {err}");
        }
    }

    #[test]
    fn fault_models_roundtrip_in_canonical_order() {
        let fm = FaultModel::default()
            .kill_link(Coord::new(3, 1), Dir::E)
            .kill_link(Coord::new(0, 0), Dir::RS)
            .kill_router(Coord::new(5, 5))
            .kill_router(Coord::new(1, 2));
        let wire = fm.to_wire().render();
        let back = FaultModel::from_wire(&parse(&wire).unwrap()).unwrap();
        assert_eq!(back, fm);
        assert_eq!(back.to_wire().render(), wire);
        // Input order does not matter: the builders re-canonicalize.
        let shuffled = parse(
            r#"{"dead_links":[{"x":3,"y":1,"dir":"E"},{"x":0,"y":0,"dir":"RS"}],
                "dead_routers":[{"x":5,"y":5},{"x":1,"y":2}]}"#,
        )
        .unwrap();
        assert_eq!(FaultModel::from_wire(&shuffled).unwrap(), fm);
        // Bad direction names are structured errors.
        let bad = parse(r#"{"dead_links":[{"x":1,"y":1,"dir":"Q"}]}"#).unwrap();
        assert_eq!(
            FaultModel::from_wire(&bad).unwrap_err().field,
            "dead_links.dir"
        );
    }

    #[test]
    fn empty_fault_model_roundtrips() {
        let fm = FaultModel::default();
        assert_eq!(
            FaultModel::from_wire(&fm.to_wire()).unwrap(),
            FaultModel::default()
        );
        assert!(FaultModel::from_wire(&parse("{}").unwrap())
            .unwrap()
            .is_empty());
    }
}
