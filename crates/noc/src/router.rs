//! Router microarchitectural state.
//!
//! Two router microarchitectures are modeled, matching §3.2:
//!
//! * **Wormhole routers** (mesh, multi-mesh, Ruche): minimally-buffered
//!   input FIFOs, one decentralized round-robin arbiter per output
//!   direction, ready-valid-and handshake (requests are generated
//!   independently of downstream readiness). Single cycle per hop.
//! * **VC routers** (torus): two virtual channels per ring-axis input with
//!   dateline partitioning, ready-then-valid request generation (requests
//!   depend on downstream credit availability), and a wavefront switch
//!   allocator with input-port speedup of one — which is what halves the
//!   peak crossbar bandwidth relative to a 2× multi-mesh (Figure 3).
//!
//! The per-cycle evaluation lives in [`crate::sim`]; this module holds the
//! buffer and flow-control state that persists between cycles. Arbiter and
//! allocator state (round-robin pointers, wavefront priority) lives in
//! [`crate::sim::Network`]-level arrays instead of here: the sharded plan
//! phase reads *all* routers immutably while mutating only shard-owned
//! arbiters, so the two must live in separate allocations.

use crate::fifo::Fifo;
use crate::geometry::{Coord, Dir};
use crate::packet::Flit;
use crate::topology::NetworkConfig;

/// Route assignment of an in-flight multi-flit packet: (output port index,
/// output VC).
pub type Assignment = (usize, u8);

/// One router input port: per-VC FIFOs plus the state needed to keep a
/// multi-flit packet on its head's path.
#[derive(Debug, Clone)]
pub struct InputPort {
    /// Per-VC flit FIFOs (wormhole ports have exactly one VC).
    pub vcs: Vec<Fifo<Flit>>,
    /// Per-VC route assignment for the packet in progress (set at head,
    /// cleared at tail).
    pub assigned: Vec<Option<Assignment>>,
}

impl InputPort {
    fn new(vcs: usize, depth: usize) -> Self {
        InputPort {
            vcs: (0..vcs).map(|_| Fifo::new(depth)).collect(),
            assigned: vec![None; vcs],
        }
    }

    /// Total flits buffered across VCs.
    pub fn occupancy(&self) -> usize {
        self.vcs.iter().map(Fifo::len).sum()
    }
}

/// One router output port: downstream credit state and path ownership.
#[derive(Debug, Clone)]
pub struct OutputPort {
    /// Credits per downstream VC (meaningful when `counted` is true).
    pub credits: Vec<u32>,
    /// Whether this output tracks credits (false for endpoint sinks, which
    /// always accept one flit per cycle).
    pub counted: bool,
    /// Wormhole path lock: input port that owns this output until its
    /// packet's tail passes.
    pub lock: Option<usize>,
    /// Per-output-VC ownership by (input port, input VC) for multi-flit
    /// packets (VC routers).
    pub vc_owner: Vec<Option<(usize, usize)>>,
}

impl OutputPort {
    fn new(downstream_vcs: usize, downstream_depth: usize, counted: bool) -> Self {
        OutputPort {
            credits: vec![downstream_depth as u32; downstream_vcs],
            counted,
            lock: None,
            vc_owner: vec![None; downstream_vcs],
        }
    }

    /// Whether a flit may be sent on `vc` right now (credit available, or
    /// the sink is uncounted).
    pub fn has_credit(&self, vc: usize) -> bool {
        !self.counted || self.credits[vc] > 0
    }
}

/// Per-router state: coordinate, input buffers, and output flow control.
#[derive(Debug, Clone)]
pub struct Router {
    /// Tile coordinate.
    pub coord: Coord,
    /// Input ports, indexed like [`NetworkConfig::ports`].
    pub inputs: Vec<InputPort>,
    /// Output ports, same indexing.
    pub outputs: Vec<OutputPort>,
}

impl Router {
    /// Builds a router for `cfg` at `coord`. `connected_out[p]` tells
    /// whether output `p` has a counted downstream FIFO (router link) as
    /// opposed to an endpoint sink or no link at all.
    pub fn new(cfg: &NetworkConfig, coord: Coord, ports: &[Dir], counted_out: &[bool]) -> Self {
        let inputs: Vec<InputPort> = ports
            .iter()
            .map(|&d| InputPort::new(cfg.vcs(d), cfg.fifo_depth))
            .collect();
        let outputs: Vec<OutputPort> = ports
            .iter()
            .zip(counted_out)
            .map(|(&d, &counted)| {
                // The downstream input port mirrors this output's direction
                // class, so its VC count matches this port's.
                OutputPort::new(cfg.vcs(d), cfg.fifo_depth, counted)
            })
            .collect();
        Router {
            coord,
            inputs,
            outputs,
        }
    }

    /// Total flits buffered in this router.
    pub fn occupancy(&self) -> usize {
        self.inputs.iter().map(InputPort::occupancy).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dims;

    #[test]
    fn wormhole_router_has_single_vc_inputs() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 4));
        let ports = cfg.ports();
        let r = Router::new(&cfg, Coord::new(1, 1), &ports, &vec![true; ports.len()]);
        assert_eq!(r.inputs.len(), 5);
        assert!(r.inputs.iter().all(|i| i.vcs.len() == 1));
        assert!(r.inputs.iter().all(|i| i.vcs[0].capacity() == 2));
        assert_eq!(r.occupancy(), 0);
    }

    #[test]
    fn torus_router_has_two_vcs_on_ring_ports() {
        let cfg = NetworkConfig::torus(Dims::new(4, 4));
        let ports = cfg.ports();
        let r = Router::new(&cfg, Coord::new(0, 0), &ports, &vec![true; ports.len()]);
        let vc_counts: Vec<usize> = r.inputs.iter().map(|i| i.vcs.len()).collect();
        // Port order: P, N, S, E, W.
        assert_eq!(vc_counts, vec![1, 2, 2, 2, 2]);
        // Output credits mirror the downstream VC structure.
        assert_eq!(r.outputs[1].credits, vec![2, 2]);
        assert_eq!(r.outputs[0].credits, vec![2]);
    }

    #[test]
    fn credits_gate_sends_when_counted() {
        let cfg = NetworkConfig::torus(Dims::new(4, 4));
        let ports = cfg.ports();
        let mut r = Router::new(&cfg, Coord::new(0, 0), &ports, &vec![true; ports.len()]);
        assert!(r.outputs[1].has_credit(0));
        r.outputs[1].credits[0] = 0;
        assert!(!r.outputs[1].has_credit(0));
        assert!(r.outputs[1].has_credit(1));
    }

    #[test]
    fn endpoint_sinks_are_uncounted() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 4));
        let ports = cfg.ports();
        let mut counted = vec![true; ports.len()];
        counted[0] = false; // P output ejects to the endpoint
        let mut r = Router::new(&cfg, Coord::new(0, 0), &ports, &counted);
        r.outputs[0].credits[0] = 0;
        assert!(r.outputs[0].has_credit(0), "uncounted sinks always accept");
    }
}
