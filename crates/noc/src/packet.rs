//! Flits and packets.
//!
//! The paper's network evaluation uses single-flit packets throughout
//! (§4.1); the simulator nevertheless supports multi-flit wormhole packets,
//! which the test suite uses to exercise path locking and VC ownership.

use crate::geometry::Coord;
use crate::routing::Dest;
use serde::{Deserialize, Serialize};

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// A complete single-flit packet (head and tail at once).
    HeadTail,
    /// First flit of a multi-flit packet.
    Head,
    /// Middle flit.
    Body,
    /// Last flit.
    Tail,
}

impl FlitKind {
    /// Whether this flit carries the route (head of packet).
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Whether this flit releases the path (end of packet).
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// A flow-control unit traversing the network.
///
/// Flits are small `Copy` values; the hot simulation loop moves them by
/// value through fixed-capacity FIFOs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Flit {
    /// Source tile.
    pub src: Coord,
    /// Destination (tile or edge memory endpoint).
    pub dest: Dest,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Packet identifier, unique per source (used for in-order checks and
    /// for matching manycore responses to requests).
    pub packet_id: u64,
    /// Cycle at which the packet was generated (enqueued at the source).
    pub birth: u64,
    /// Opaque payload for the attached system (e.g. manycore request ids).
    pub payload: u64,
}

impl Flit {
    /// Creates a single-flit packet.
    pub fn single(src: Coord, dest: Dest, packet_id: u64, birth: u64) -> Self {
        Flit {
            src,
            dest,
            kind: FlitKind::HeadTail,
            packet_id,
            birth,
            payload: 0,
        }
    }

    /// Creates the flits of a `len`-flit packet, in order.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn multi(src: Coord, dest: Dest, packet_id: u64, birth: u64, len: usize) -> Vec<Flit> {
        assert!(len > 0, "packet length must be at least 1");
        (0..len)
            .map(|i| Flit {
                src,
                dest,
                kind: match (i, len) {
                    (_, 1) => FlitKind::HeadTail,
                    (0, _) => FlitKind::Head,
                    (i, l) if i == l - 1 => FlitKind::Tail,
                    _ => FlitKind::Body,
                },
                packet_id,
                birth,
                payload: 0,
            })
            .collect()
    }

    /// Returns a copy with the given payload.
    pub fn with_payload(mut self, payload: u64) -> Self {
        self.payload = payload;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flit_is_head_and_tail() {
        let f = Flit::single(Coord::new(0, 0), Dest::tile(Coord::new(1, 1)), 7, 42);
        assert!(f.kind.is_head() && f.kind.is_tail());
        assert_eq!(f.birth, 42);
        assert_eq!(f.packet_id, 7);
    }

    #[test]
    fn multi_flit_kinds() {
        let flits = Flit::multi(Coord::new(0, 0), Dest::tile(Coord::new(1, 1)), 1, 0, 4);
        let kinds: Vec<_> = flits.iter().map(|f| f.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FlitKind::Head,
                FlitKind::Body,
                FlitKind::Body,
                FlitKind::Tail
            ]
        );
        let one = Flit::multi(Coord::new(0, 0), Dest::tile(Coord::new(1, 1)), 1, 0, 1);
        assert_eq!(one[0].kind, FlitKind::HeadTail);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_length_packet_panics() {
        Flit::multi(Coord::new(0, 0), Dest::tile(Coord::new(1, 1)), 1, 0, 0);
    }

    #[test]
    fn payload_roundtrip() {
        let f = Flit::single(Coord::new(0, 0), Dest::tile(Coord::new(1, 1)), 0, 0)
            .with_payload(0xdead_beef);
        assert_eq!(f.payload, 0xdead_beef);
    }
}
