//! The cycle-accurate network simulation engine.
//!
//! The engine advances the whole network one cycle at a time with a
//! two-phase (plan / commit) update, so every decision a router makes in
//! cycle *t* observes exactly the state at the start of cycle *t* — the
//! synchronous-RTL semantics the paper's evaluation is based on. Flits move
//! at one cycle per hop in all networks (§4.1).
//!
//! Wormhole routers (mesh, multi-mesh, Ruche) use ready-valid-and
//! handshakes: a request is raised regardless of downstream readiness, and
//! the round-robin arbiter's grant is qualified by the downstream FIFO
//! having space. VC routers (torus) use ready-then-valid with credit-based
//! flow control and a wavefront switch allocator; credits return with a
//! one-cycle latency, which the two-element FIFOs exactly cover.

use crate::arbiter::{RoundRobin, Wavefront};
use crate::crossbar::Connectivity;
use crate::error::Error;
use crate::fault::{FaultModel, RouteTable};
use crate::geometry::{Coord, Dir};
use crate::packet::Flit;
use crate::pool::StepPool;
use crate::router::Router;
use crate::routing::{compute_route, Dest};
use crate::shard::{Mail, ShardMap, ShardState, Transfer, MAX_SHARDS};
use crate::telemetry::{BlockCause, NetTelemetry};
use crate::topology::{ConfigError, NetworkConfig, StepMode};
use std::collections::VecDeque;
use std::sync::OnceLock;

/// A static-verification pass over a [`NetworkConfig`], returning a rendered
/// findings report on failure (see `ruche-verify`, which provides one).
pub type ConfigVerifier = fn(&NetworkConfig) -> Result<(), String>;

static DEBUG_VERIFIER: OnceLock<ConfigVerifier> = OnceLock::new();

/// Registers a verifier that [`Network::new`] runs on every configuration
/// in debug builds (`debug_assertions`), so each test and debug run is
/// statically checked for free. The first registration wins; returns
/// whether this call installed `f`.
///
/// The `noc` crate cannot depend on its own verifier (the checker lives in
/// `ruche-verify`, downstream of this crate), so the hook is injected:
/// call `ruche_verify::install_debug_hook()` once at harness start.
pub fn register_debug_verifier(f: ConfigVerifier) -> bool {
    DEBUG_VERIFIER.set(f).is_ok()
}

/// The registered debug-build config verifier, if any.
pub fn debug_verifier() -> Option<ConfigVerifier> {
    DEBUG_VERIFIER.get().copied()
}

/// Identifier of a traffic endpoint (tile processor port, or an edge
/// memory endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EndpointId(pub usize);

/// What an [`EndpointId`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointKind {
    /// The processor port of a tile.
    Tile(Coord),
    /// The memory endpoint north of column `col`.
    NorthEdge(u16),
    /// The memory endpoint south of column `col`.
    SouthEdge(u16),
}

/// Where an output channel leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkTarget {
    /// Another router's input port.
    Router { node: usize, port: usize },
    /// An endpoint sink (P ejection, or an edge memory endpoint).
    Endpoint(EndpointId),
    /// Tied off (array edge).
    None,
}

/// Aggregate motion counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Flits that have entered a router FIFO from a source queue.
    pub injected: u64,
    /// Flits delivered to endpoint sinks.
    pub ejected: u64,
}

/// A versioned, point-in-time view of the aggregate simulation state — the
/// one-stop replacement for the former per-counter probe methods.
///
/// The snapshot is `Copy` and computing it allocates nothing, so it is safe
/// to take every cycle inside a simulation driver loop.
///
/// # Examples
///
/// ```
/// use ruche_noc::prelude::*;
///
/// let net = Network::new(NetworkConfig::mesh(Dims::new(4, 4)))?;
/// let s = net.snapshot();
/// assert_eq!(s.version, NetSnapshot::VERSION);
/// assert!(s.is_idle());
/// # Ok::<(), ruche_noc::topology::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct NetSnapshot {
    /// Snapshot layout version ([`NetSnapshot::VERSION`]); bumped whenever
    /// a field changes meaning, so persisted consumers can detect skew.
    pub version: u32,
    /// Current cycle count.
    pub cycle: u64,
    /// Flits that have entered a router FIFO from a source queue.
    pub injected: u64,
    /// Flits delivered to endpoint sinks.
    pub ejected: u64,
    /// Flits currently buffered inside routers (or in pipeline transit).
    pub in_flight: usize,
    /// Flits waiting in endpoint source queues.
    pub queued: usize,
    /// Cycles elapsed since a flit last moved (deadlock watchdog).
    pub cycles_since_progress: u64,
}

impl NetSnapshot {
    /// The current snapshot layout version.
    pub const VERSION: u32 = 1;

    /// Whether the network holds no traffic at all (nothing buffered,
    /// nothing queued at sources).
    pub fn is_idle(&self) -> bool {
        self.in_flight == 0 && self.queued == 0
    }
}

/// A borrowed view of the per-(node, output port) flit traversal counters,
/// replacing the raw [`Network::traversals`] slice accessor.
///
/// # Examples
///
/// ```
/// use ruche_noc::prelude::*;
///
/// let net = Network::new(NetworkConfig::mesh(Dims::new(4, 4)))?;
/// let loads = net.link_loads();
/// let total: u64 = loads.iter().map(|(_, _, n)| n).sum();
/// assert_eq!(total, 0);
/// # Ok::<(), ruche_noc::topology::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LinkLoads<'a> {
    ports: &'a [Dir],
    counts: &'a [u64],
}

impl LinkLoads<'_> {
    /// The router port directions, in port-index order.
    pub fn ports(&self) -> &[Dir] {
        self.ports
    }

    /// Flits forwarded through (node, output port) so far.
    pub fn count(&self, node: usize, port: usize) -> u64 {
        self.counts[node * self.ports.len() + port]
    }

    /// The raw counters, indexed `node * ports().len() + port`.
    pub fn raw(&self) -> &[u64] {
        self.counts
    }

    /// Iterates `(node, direction, count)` over every output channel.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Dir, u64)> + '_ {
        let np = self.ports.len();
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &n)| (i / np, self.ports[i % np], n))
    }
}

/// A cycle-accurate network instance.
///
/// # Examples
///
/// ```
/// use ruche_noc::prelude::*;
///
/// let cfg = NetworkConfig::full_ruche(Dims::new(4, 4), 2, CrossbarScheme::FullyPopulated);
/// let mut net = Network::new(cfg)?;
/// let src = Coord::new(0, 0);
/// let dst = Coord::new(3, 3);
/// net.enqueue(net.tile_endpoint(src), Flit::single(src, Dest::tile(dst), 0, 0));
/// let mut delivered = None;
/// for _ in 0..32 {
///     if let Some(&(ep, flit)) = net.step().first() {
///         delivered = Some((ep, flit));
///         break;
///     }
/// }
/// let (ep, _) = delivered.expect("packet delivered");
/// assert_eq!(net.endpoint_kind(ep), EndpointKind::Tile(dst));
/// # Ok::<(), ruche_noc::topology::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct Network {
    cfg: NetworkConfig,
    ports: Vec<Dir>,
    conn: Connectivity,
    routers: Vec<Router>,
    out_links: Vec<LinkTarget>,
    upstream: Vec<Option<(usize, usize)>>,
    /// Per-endpoint unbounded source queue (open-loop injection model).
    sources: Vec<VecDeque<Flit>>,
    /// Per-endpoint injection entry point: (node, input port).
    entries: Vec<(usize, usize)>,
    ejected: Vec<(EndpointId, Flit)>,
    cycle: u64,
    stats: NetStats,
    in_flight: usize,
    last_progress: u64,
    /// Flit counts per (node, output port), for the energy model.
    traversals: Vec<u64>,
    /// Flits buffered per router (lets the planner skip idle routers).
    occupancy: Vec<u32>,
    /// Cached route decision for the current head of each (node, port, vc)
    /// FIFO, invalidated on dequeue — route compute runs once per head,
    /// not once per cycle it waits.
    route_cache: Vec<Option<(usize, u8)>>,
    max_vcs: usize,
    /// Flits in flight through extra pipeline stages, in arrival order:
    /// (arrival cycle, node, port, vc, flit). Empty when
    /// `pipeline_stages == 0`.
    in_transit: VecDeque<(u64, usize, usize, usize, Flit)>,
    /// Delayed ejections (pipelined networks).
    in_transit_eject: VecDeque<(u64, EndpointId, Flit)>,
    /// Flits bound for each (node, port, vc) FIFO but still in the
    /// pipeline; counted against downstream space by wormhole ready checks.
    pending_arrivals: Vec<u32>,
    /// Routers with at least one buffered flit, the only ones the planners
    /// visit. Kept sorted ascending (deterministic plan order); membership
    /// mirrored in `on_active`.
    active: Vec<u32>,
    on_active: Vec<bool>,
    /// Set when `active` gained members since its last sort.
    active_dirty: bool,
    /// Endpoints with a non-empty source queue, the only ones the injection
    /// planner visits. Same sorted-worklist discipline as `active`.
    active_src: Vec<u32>,
    on_active_src: Vec<bool>,
    active_src_dirty: bool,
    /// Endpoints planned to inject this cycle (reusable scratch; the cycle
    /// loop performs no heap allocation in steady state).
    scratch_inject: Vec<u32>,
    /// Wormhole round-robin arbiters, one per (node, output port). Lives
    /// outside [`Router`] so the plan phase can mutate shard-owned arbiter
    /// state while sharing all routers immutably. Empty for VC networks.
    out_rr: Vec<RoundRobin>,
    /// VC-router per-input VC selectors, one per (node, input port).
    /// Empty for wormhole networks.
    in_rr_vc: Vec<RoundRobin>,
    /// VC-router wavefront switch allocators, one per node. Empty for
    /// wormhole networks.
    sw_alloc: Vec<Wavefront>,
    /// Resolved clock-advance mode (config knob, else `RUCHE_STEP_MODE`,
    /// else cycle-accurate). Only consulted by span-advancing drivers
    /// ([`Network::run`], [`Network::fast_forward`]); `step` itself is
    /// mode-independent.
    step_mode: StepMode,
    /// Row-band partition of the grid (a single shard when serial).
    shard_map: ShardMap,
    /// Per-shard scratch and staging state (transfers, mailboxes,
    /// telemetry logs); one entry per shard, reused every cycle.
    shards: Vec<ShardState>,
    /// Persistent worker pool driving the shards (`None` when serial).
    pool: Option<StepPool>,
    /// Attached per-link instrumentation; `None` (the default) keeps the
    /// cycle loop allocation-free and branch-cheap.
    telemetry: Option<Box<NetTelemetry>>,
    /// Fault-aware route table; `None` (the unfaulted default) keeps
    /// routing on the exact DOR fast path.
    fault_plan: Option<Box<RouteTable>>,
}

impl Network {
    /// Builds the network for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`NetworkConfig::validate`] if the
    /// configuration is inconsistent.
    pub fn new(cfg: NetworkConfig) -> Result<Self, ConfigError> {
        Self::build(cfg, None)
    }

    /// Builds the network for `cfg` with `faults` injected: dead channels
    /// are tied off at construction and all routing goes through the
    /// fault-aware [`RouteTable`] (see [`crate::fault`]). An empty fault
    /// model takes the exact [`Network::new`] path — no table is built and
    /// behaviour is bit-identical to the unfaulted network.
    ///
    /// Flits must only be enqueued toward destinations that
    /// [`RouteTable::reachable`] confirms, and only at live endpoints
    /// ([`Network::endpoint_alive`]); the traffic layer enforces both.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`NetworkConfig::validate`] or the
    /// [`FaultError`](crate::fault::FaultError) from
    /// [`FaultModel::validate`], converted into the workspace [`Error`].
    pub fn with_faults(cfg: NetworkConfig, faults: &FaultModel) -> Result<Self, Error> {
        if faults.is_empty() {
            return Ok(Self::new(cfg)?);
        }
        cfg.validate()?;
        let table = RouteTable::build(&cfg, faults)?;
        Ok(Self::build(cfg, Some(Box::new(table)))?)
    }

    fn build(cfg: NetworkConfig, fault_plan: Option<Box<RouteTable>>) -> Result<Self, ConfigError> {
        cfg.validate()?;
        #[cfg(debug_assertions)]
        if let Some(verifier) = debug_verifier() {
            if let Err(report) = verifier(&cfg) {
                panic!(
                    "static network verification failed for {}:\n{report}",
                    cfg.label()
                );
            }
        }
        let ports = cfg.ports();
        let np = ports.len();
        let dims = cfg.dims;
        let n_nodes = dims.count();
        let conn = Connectivity::of(&cfg);

        let pidx = |d: Dir| {
            ports
                .iter()
                .position(|&p| p == d)
                .expect("every wired direction appears in the config's port list")
        };
        let n_eps = cfg.endpoint_count();
        let max_vcs = ports.iter().map(|&p| cfg.vcs(p)).max().unwrap_or(1);
        let mut out_links = vec![LinkTarget::None; n_nodes * np];
        let mut upstream = vec![None; n_nodes * np];
        let mut entries = vec![(usize::MAX, usize::MAX); n_eps];

        // Dead channels stay `LinkTarget::None` and dead endpoints keep
        // their `usize::MAX` entry sentinel; the fault route table never
        // steers traffic onto either.
        let channel_dead = |at: Coord, out: Dir| {
            fault_plan
                .as_ref()
                .is_some_and(|p| p.faults().channel_dead(&cfg, at, out))
        };
        for c in dims.iter() {
            let node = dims.index(c);
            for (op, &dir) in ports.iter().enumerate() {
                let slot = node * np + op;
                if dir == Dir::P {
                    if !channel_dead(c, dir) {
                        out_links[slot] = LinkTarget::Endpoint(EndpointId(node));
                        entries[node] = (node, pidx(Dir::P));
                    }
                    continue;
                }
                if channel_dead(c, dir) {
                    continue;
                }
                if let Some(nb) = cfg.neighbor(c, dir) {
                    let dn = dims.index(nb);
                    let dp = pidx(dir.opposite());
                    out_links[slot] = LinkTarget::Router { node: dn, port: dp };
                    upstream[dn * np + dp] = Some((node, op));
                } else if cfg.edge_memory_ports {
                    if dir == Dir::N && c.y == 0 {
                        let ep = EndpointId(n_nodes + c.x as usize);
                        out_links[slot] = LinkTarget::Endpoint(ep);
                        entries[ep.0] = (node, pidx(Dir::N));
                    } else if dir == Dir::S && c.y == dims.rows - 1 {
                        let ep = EndpointId(n_nodes + dims.cols as usize + c.x as usize);
                        out_links[slot] = LinkTarget::Endpoint(ep);
                        entries[ep.0] = (node, pidx(Dir::S));
                    }
                }
            }
        }

        let routers: Vec<Router> = dims
            .iter()
            .map(|c| {
                let node = dims.index(c);
                let counted: Vec<bool> = (0..np)
                    .map(|op| matches!(out_links[node * np + op], LinkTarget::Router { .. }))
                    .collect();
                Router::new(&cfg, c, &ports, &counted)
            })
            .collect();

        // Arbiter and allocator state lives in per-node arrays parallel to
        // `routers` (see `crate::router`): the plan phase mutates only the
        // shard-owned slices while reading every router immutably.
        let is_vc = cfg.is_vc_router();
        let out_rr: Vec<RoundRobin> = if is_vc {
            Vec::new()
        } else {
            vec![RoundRobin::new(np); n_nodes * np]
        };
        let in_rr_vc: Vec<RoundRobin> = if is_vc {
            (0..n_nodes)
                .flat_map(|_| ports.iter().map(|&p| RoundRobin::new(cfg.vcs(p))))
                .collect()
        } else {
            Vec::new()
        };
        let sw_alloc: Vec<Wavefront> = if is_vc {
            vec![Wavefront::new(np, np); n_nodes]
        } else {
            Vec::new()
        };

        let shard_map = ShardMap::new(dims, resolve_step_threads(cfg.step_threads));
        let k = shard_map.count();
        // Exact per-cycle mail bound between every ordered shard pair,
        // counted from the topology: at most one push per (node, out port)
        // crossing src→dst (one transfer per output per cycle) and at most
        // one credit per (node, in port) whose upstream feeder sits in dst
        // (one pop per input per cycle). Ruche channels wrap on tori, so no
        // adjacency between bands is assumed. Sizing both the outbox bucket
        // and the matching inbox slot to this bound makes the exchange's
        // swaps allocation-free forever.
        let mut mail_caps = vec![0usize; k * k];
        for node in 0..n_nodes {
            let s = shard_map.shard_of(node);
            for p in 0..np {
                if let LinkTarget::Router { node: dn, .. } = out_links[node * np + p] {
                    let d = shard_map.shard_of(dn);
                    if d != s {
                        mail_caps[s * k + d] += 1;
                    }
                }
                if let Some((un, _)) = upstream[node * np + p] {
                    let d = shard_map.shard_of(un);
                    if d != s {
                        mail_caps[s * k + d] += 1;
                    }
                }
            }
        }
        let shards: Vec<ShardState> = (0..k)
            .map(|s| {
                let outbox_caps = &mail_caps[s * k..(s + 1) * k];
                let inbox_caps: Vec<usize> = (0..k).map(|src| mail_caps[src * k + s]).collect();
                ShardState::new(shard_map.range(s), np, outbox_caps, &inbox_caps)
            })
            .collect();
        // The calling thread participates in every epoch, so a k-shard grid
        // wants k - 1 pooled workers. Created once, parked between cycles.
        let pool = (shards.len() > 1).then(|| StepPool::new(shards.len() - 1));

        Ok(Network {
            ports,
            conn,
            routers,
            out_links,
            upstream,
            sources: vec![VecDeque::new(); n_eps],
            entries,
            ejected: Vec::with_capacity(n_eps),
            cycle: 0,
            stats: NetStats::default(),
            in_flight: 0,
            last_progress: 0,
            traversals: vec![0; n_nodes * np],
            occupancy: vec![0; n_nodes],
            route_cache: vec![None; n_nodes * np * max_vcs],
            max_vcs,
            in_transit: VecDeque::new(),
            in_transit_eject: VecDeque::new(),
            pending_arrivals: vec![0; n_nodes * np * max_vcs],
            active: Vec::with_capacity(n_nodes),
            on_active: vec![false; n_nodes],
            active_dirty: false,
            active_src: Vec::with_capacity(n_eps),
            on_active_src: vec![false; n_eps],
            active_src_dirty: false,
            scratch_inject: Vec::with_capacity(n_eps),
            out_rr,
            in_rr_vc,
            sw_alloc,
            step_mode: resolve_step_mode(cfg.step_mode),
            shard_map,
            shards,
            pool,
            telemetry: None,
            fault_plan,
            cfg,
        })
    }

    /// Effective step parallelism: the number of shards stepped
    /// concurrently (1 = serial). Derived from the requested thread count —
    /// the `step_threads` config knob when non-zero, else the
    /// `RUCHE_STEP_THREADS` environment override — clamped by the grid's
    /// row count and [`MAX_SHARDS`] (see [`ShardMap::new`]).
    pub fn step_threads(&self) -> usize {
        self.shard_map.count()
    }

    /// Resolved clock-advance mode: the `step_mode` config knob when set,
    /// else the `RUCHE_STEP_MODE` environment override, else
    /// [`StepMode::CycleAccurate`]. Purely a performance trade —
    /// [`Network::step`] is mode-independent and results are byte-identical
    /// in every mode (see `docs/EVENTS.md`).
    pub fn step_mode(&self) -> StepMode {
        self.step_mode
    }

    /// Whether the network provably does nothing until new traffic is
    /// enqueued: no flit is buffered, in pipeline transit, or awaiting a
    /// delayed ejection, and every source queue is empty. Stepping a
    /// quiescent network any number of cycles moves no flit and returns no
    /// ejection — it only advances the clock.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight == 0 && self.active_src.is_empty()
    }

    /// The next cycle in which stepping can move a flit:
    ///
    /// * `Some(self.cycle())` while any router buffers a flit or any source
    ///   queue is non-empty — the very next step may do work;
    /// * `Some(t)` with `t > self.cycle()` when every flit in flight sits
    ///   in the hop pipeline (or a delayed ejection) arriving at cycle `t`
    ///   — every step before `t` is provably empty;
    /// * `None` when the network [`is_quiescent`](Network::is_quiescent) —
    ///   nothing will ever happen without a new [`Network::enqueue`].
    ///
    /// This is the wake-set introspection event-driven drivers use to jump
    /// the clock over dead spans (see [`Network::fast_forward`]). It always
    /// equals the minimum of [`Network::shard_next_event_cycle`] over all
    /// shards: every active router, queued source, and pipelined arrival
    /// belongs to exactly one row band.
    pub fn next_event_cycle(&self) -> Option<u64> {
        if !self.active.is_empty() || !self.active_src.is_empty() {
            return Some(self.cycle);
        }
        let transit = self.in_transit.front().map(|&(arrive, ..)| arrive);
        let eject = self.in_transit_eject.front().map(|&(arrive, ..)| arrive);
        match (transit, eject) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// The next cycle in which stepping can move a flit **inside shard
    /// `s`'s row band**: `Some(self.cycle())` while any band router
    /// buffers a flit or any band source queue is non-empty, `Some(t)`
    /// when the band's earliest pipelined arrival (hop or delayed
    /// ejection) lands at `t`, and `None` when the band is quiescent — the
    /// shard sleeps through every pool epoch until cross-band mail or a
    /// new enqueue re-arms it. The global [`Network::next_event_cycle`] is
    /// the minimum of this over all shards, which is what
    /// [`Network::fast_forward`] skips to.
    ///
    /// Introspection only (it scans the transit queues); the hot path
    /// derives the per-cycle awake mask from the sorted worklist split
    /// instead.
    pub fn shard_next_event_cycle(&self, s: usize) -> Option<u64> {
        let band = self.shard_map.range(s);
        let owns_ep = |ep: usize| {
            let node = self.entries[ep].0;
            node != usize::MAX && band.contains(&node)
        };
        if self.active.iter().any(|&n| band.contains(&(n as usize)))
            || self.active_src.iter().any(|&e| owns_ep(e as usize))
        {
            return Some(self.cycle);
        }
        let transit = self
            .in_transit
            .iter()
            .filter(|&&(_, node, ..)| band.contains(&node))
            .map(|&(arrive, ..)| arrive)
            .min();
        let eject = self
            .in_transit_eject
            .iter()
            .filter(|&&(_, ep, _)| owns_ep(ep.0))
            .map(|&(arrive, ..)| arrive)
            .min();
        match (transit, eject) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Advances the clock across a provably-empty span without simulating
    /// the skipped cycles, stopping at the earlier of `target` and
    /// [`Network::next_event_cycle`]; returns the new current cycle.
    ///
    /// The skip is exact, not approximate: a cycle is only skipped when
    /// stepping it could not move a flit, so counters, watchdog state,
    /// snapshots, and telemetry (idle occupancy samples and empty
    /// injection/ejection bins are recorded in bulk) end up byte-identical
    /// to stepping the span cycle by cycle. In
    /// [`StepMode::CycleAccurate`] this never skips, and in
    /// [`StepMode::Auto`] it engages only after a short idle streak; both
    /// then return the current cycle unchanged.
    pub fn fast_forward(&mut self, target: u64) -> u64 {
        let engaged = match self.step_mode {
            StepMode::CycleAccurate => false,
            StepMode::EventDriven => true,
            // Deterministic heuristic: probe for skippable spans only once
            // the watchdog shows a short idle streak, so saturated runs
            // never pay the quiescence checks. Pure wall-clock trade —
            // skipped spans are provably empty either way.
            StepMode::Auto => self.cycle - self.last_progress >= AUTO_IDLE_STREAK,
        };
        if !engaged {
            return self.cycle;
        }
        let to = match self.next_event_cycle() {
            Some(t) => t.min(target),
            None => target,
        };
        if to > self.cycle {
            self.skip_idle_span(to - self.cycle);
        }
        self.cycle
    }

    /// Bulk-records `n` provably-idle cycles and jumps the clock. Callers
    /// guarantee the span is empty (no buffered flit, no source queue, no
    /// pipeline arrival before `cycle + n`), which makes every per-cycle
    /// effect of stepping the span degenerate: all FIFOs sample occupancy
    /// 0, the injection/ejection series gain empty bins, the ejection
    /// buffer comes back empty, and `last_progress` stays put.
    fn skip_idle_span(&mut self, n: u64) {
        debug_assert!(self.active.is_empty() && self.active_src.is_empty());
        debug_assert!(self.next_event_cycle().is_none_or(|t| t >= self.cycle + n));
        self.ejected.clear();
        if let Some(t) = self.telemetry.as_deref_mut() {
            let np = self.ports.len();
            for node in 0..self.routers.len() {
                for ip in 0..np {
                    for (v, f) in self.routers[node].inputs[ip].vcs.iter().enumerate() {
                        debug_assert!(f.is_empty(), "idle span with a buffered flit");
                        t.record_occupancy_n(node, ip, v, f.len() as u64, n);
                    }
                }
            }
            t.record_idle_cycles(n);
        }
        self.cycle += n;
    }

    /// Puts `node` on the planners' worklist (no-op if already there).
    #[inline]
    fn mark_active(&mut self, node: usize) {
        if !self.on_active[node] {
            self.on_active[node] = true;
            self.active.push(node as u32);
            self.active_dirty = true;
        }
    }

    /// The network configuration.
    pub fn cfg(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// The injected fault model, when the network was built with
    /// [`Network::with_faults`] and a non-empty model.
    pub fn faults(&self) -> Option<&FaultModel> {
        self.fault_plan.as_ref().map(|p| p.faults())
    }

    /// The fault-aware route table, when faults are injected.
    pub fn route_table(&self) -> Option<&RouteTable> {
        self.fault_plan.as_deref()
    }

    /// Whether endpoint `ep` survives the injected faults (always true on
    /// an unfaulted network). Dead endpoints must not be enqueued at.
    pub fn endpoint_alive(&self, ep: EndpointId) -> bool {
        self.entries[ep.0].0 != usize::MAX
    }

    /// The derived crossbar connectivity.
    pub fn connectivity(&self) -> &Connectivity {
        &self.conn
    }

    /// The router port directions, in port-index order.
    pub fn ports(&self) -> &[Dir] {
        &self.ports
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// A point-in-time view of the aggregate simulation state: motion
    /// counters, buffered/queued flit counts, and the progress watchdog,
    /// in one versioned struct. Allocation-free.
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            version: NetSnapshot::VERSION,
            cycle: self.cycle,
            injected: self.stats.injected,
            ejected: self.stats.ejected,
            in_flight: self.in_flight,
            queued: self.sources.iter().map(VecDeque::len).sum(),
            cycles_since_progress: self.cycle - self.last_progress,
        }
    }

    /// Motion counters.
    #[deprecated(since = "0.1.0", note = "use `Network::snapshot()` instead")]
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Flits currently buffered inside routers.
    #[deprecated(since = "0.1.0", note = "use `Network::snapshot().in_flight` instead")]
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Flits waiting in endpoint source queues.
    #[deprecated(since = "0.1.0", note = "use `Network::snapshot().queued` instead")]
    pub fn queued(&self) -> usize {
        self.sources.iter().map(VecDeque::len).sum()
    }

    /// Cycles elapsed since a flit last moved (deadlock watchdog).
    #[deprecated(
        since = "0.1.0",
        note = "use `Network::snapshot().cycles_since_progress` instead"
    )]
    pub fn cycles_since_progress(&self) -> u64 {
        self.cycle - self.last_progress
    }

    /// The endpoint of a tile's processor port.
    pub fn tile_endpoint(&self, c: Coord) -> EndpointId {
        EndpointId(self.cfg.dims.index(c))
    }

    /// The endpoint north of column `col`.
    ///
    /// # Panics
    ///
    /// Panics unless the network was built with edge memory ports.
    pub fn north_endpoint(&self, col: u16) -> EndpointId {
        assert!(self.cfg.edge_memory_ports, "no edge endpoints configured");
        EndpointId(self.cfg.dims.count() + col as usize)
    }

    /// The endpoint south of column `col`.
    ///
    /// # Panics
    ///
    /// Panics unless the network was built with edge memory ports.
    pub fn south_endpoint(&self, col: u16) -> EndpointId {
        assert!(self.cfg.edge_memory_ports, "no edge endpoints configured");
        EndpointId(self.cfg.dims.count() + self.cfg.dims.cols as usize + col as usize)
    }

    /// What `ep` refers to.
    pub fn endpoint_kind(&self, ep: EndpointId) -> EndpointKind {
        let n = self.cfg.dims.count();
        let cols = self.cfg.dims.cols as usize;
        if ep.0 < n {
            EndpointKind::Tile(self.cfg.dims.coord(ep.0))
        } else if ep.0 < n + cols {
            EndpointKind::NorthEdge((ep.0 - n) as u16)
        } else {
            EndpointKind::SouthEdge((ep.0 - n - cols) as u16)
        }
    }

    /// Total endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.sources.len()
    }

    /// The [`Dest`] that routes a packet *to* endpoint `ep`.
    pub fn dest_of(&self, ep: EndpointId) -> Dest {
        match self.endpoint_kind(ep) {
            EndpointKind::Tile(c) => Dest::tile(c),
            EndpointKind::NorthEdge(col) => Dest::north_edge(col),
            EndpointKind::SouthEdge(col) => Dest::south_edge(col, self.cfg.dims.rows),
        }
    }

    /// Queues a flit at endpoint `ep`'s (unbounded) source queue.
    ///
    /// # Panics
    ///
    /// Panics if `ep` was killed by the injected fault model (see
    /// [`Network::endpoint_alive`]).
    pub fn enqueue(&mut self, ep: EndpointId, flit: Flit) {
        assert!(
            self.endpoint_alive(ep),
            "flit enqueued at dead endpoint {ep:?}; check Network::endpoint_alive first"
        );
        self.sources[ep.0].push_back(flit);
        if !self.on_active_src[ep.0] {
            self.on_active_src[ep.0] = true;
            self.active_src.push(ep.0 as u32);
            self.active_src_dirty = true;
        }
    }

    /// Number of flits waiting in `ep`'s source queue.
    pub fn source_len(&self, ep: EndpointId) -> usize {
        self.sources[ep.0].len()
    }

    /// Flit count forwarded through each (node, output port) so far,
    /// indexed `node * ports().len() + port`.
    #[deprecated(since = "0.1.0", note = "use `Network::link_loads()` instead")]
    pub fn traversals(&self) -> &[u64] {
        &self.traversals
    }

    /// The per-(node, output port) flit traversal counters.
    pub fn link_loads(&self) -> LinkLoads<'_> {
        LinkLoads {
            ports: &self.ports,
            counts: &self.traversals,
        }
    }

    /// Attaches fresh per-link telemetry (see [`NetTelemetry`]); injection
    /// and ejection time series use `window`-cycle bins. Replaces any
    /// previously attached instrument.
    pub fn attach_telemetry(&mut self, window: u64) {
        self.telemetry = Some(Box::new(NetTelemetry::new(
            &self.ports,
            self.cfg.dims.count(),
            self.max_vcs,
            self.cfg.fifo_depth,
            window,
        )));
    }

    /// Detaches and returns the accumulated telemetry, if any was attached.
    pub fn detach_telemetry(&mut self) -> Option<Box<NetTelemetry>> {
        self.telemetry.take()
    }

    /// The attached telemetry, if any.
    pub fn telemetry(&self) -> Option<&NetTelemetry> {
        self.telemetry.as_deref()
    }

    /// Advances one cycle; returns the flits ejected during it.
    pub fn step(&mut self) -> &[(EndpointId, Flit)] {
        self.ejected.clear();
        // Deliver flits whose extra pipeline stages have elapsed (no-op for
        // the paper's single-cycle routers).
        let mut arrived_any = false;
        while self
            .in_transit
            .front()
            .is_some_and(|&(arrive, ..)| arrive <= self.cycle)
        {
            let (_, node, port, vc, flit) = self.in_transit.pop_front().expect("checked front");
            let np = self.ports.len();
            self.pending_arrivals[(node * np + port) * self.max_vcs + vc] -= 1;
            self.routers[node].inputs[port].vcs[vc]
                .try_push(flit)
                .expect("pipeline arrivals have reserved space");
            self.occupancy[node] += 1;
            self.mark_active(node);
            arrived_any = true;
        }
        while self
            .in_transit_eject
            .front()
            .is_some_and(|&(arrive, ..)| arrive <= self.cycle)
        {
            let (_, ep, flit) = self.in_transit_eject.pop_front().expect("checked front");
            self.stats.ejected += 1;
            self.in_flight -= 1;
            self.ejected.push((ep, flit));
            arrived_any = true;
        }
        if arrived_any {
            self.last_progress = self.cycle;
        }
        // Worklists stay sorted ascending so the plan (and hence ejection)
        // order is identical to a full node scan.
        if self.active_dirty {
            self.active.sort_unstable();
            self.active_dirty = false;
        }
        if self.active_src_dirty {
            self.active_src.sort_unstable();
            self.active_src_dirty = false;
        }

        // Plan injections against cycle-start occupancy. Only endpoints
        // with queued flits are visited.
        self.scratch_inject.clear();
        let srcs = std::mem::take(&mut self.active_src);
        for &e in &srcs {
            let (node, ip) = self.entries[e as usize];
            let f = &self.routers[node].inputs[ip].vcs[0];
            if f.len() < f.capacity() {
                self.scratch_inject.push(e);
            }
        }
        self.active_src = srcs;

        // The instrument is moved out for the duration of the cycle so the
        // phases can borrow it mutably alongside `self`.
        let mut tel = self.telemetry.take();

        // Empty wake-set fast path: when no router buffers a flit there is
        // nothing to plan, commit, or drain, so both phases — and their two
        // pool barriers when sharded — are skipped outright. The phases are
        // exact no-ops over an empty worklist, so the skip is taken in
        // every step mode without changing any result.
        let progressed = if self.active.is_empty() {
            false
        } else {
            // Phase A: plan route/VC/switch grants shard-locally. Every
            // decision observes cycle-start state (routers are shared
            // immutably across shards; only shard-owned arbiter state
            // mutates), so the result is independent of shard count and
            // scheduling. Shards whose band holds no buffered flit sleep
            // through both pool epochs: the returned awake mask masks them
            // out of publish, so they are never claimed and cost nothing.
            let awake = self.plan_phase(tel.is_some());

            // Replay per-shard telemetry logs into the shared sink in shard
            // order — identical to the serial recording order. (Sleeping
            // shards logged nothing; their buffers are empty.)
            if let Some(t) = tel.as_deref_mut() {
                for st in &mut self.shards {
                    for &(node, port, vc, cause) in &st.blocked {
                        t.record_blocked(node as usize, port as usize, vc as usize, cause);
                    }
                    st.blocked.clear();
                    for tr in &st.transfers {
                        t.record_traversal(tr.node, tr.out_port, tr.out_vc);
                    }
                }
            }
            let progressed = self.shards.iter().any(|s| !s.transfers.is_empty());

            // Phase B: commit the planned traversals. Shard-local effects
            // apply directly; cross-shard pushes and credit returns are
            // staged per destination shard, exchanged by pointer swap, and
            // applied by each destination in canonical (source shard,
            // node, port, vc) order — mail into a sleeping shard is the
            // wake-on-credit edge that re-arms it for the next cycle.
            self.commit_phase(awake);
            let inboxes = self.exchange_mail();
            self.apply_inboxes(inboxes);
            self.drain_shards();
            progressed
        };

        // Commit injections.
        let planned = std::mem::take(&mut self.scratch_inject);
        let injected_any = !planned.is_empty();
        for &e in &planned {
            let (node, ip) = self.entries[e as usize];
            let flit = self.sources[e as usize]
                .pop_front()
                .expect("planned non-empty");
            self.routers[node].inputs[ip].vcs[0]
                .try_push(flit)
                .expect("space checked at cycle start");
            self.occupancy[node] += 1;
            self.mark_active(node);
            self.stats.injected += 1;
            self.in_flight += 1;
        }
        self.scratch_inject = planned;
        if progressed || injected_any {
            self.last_progress = self.cycle;
        }

        // Retire drained routers and sources from the worklists.
        let mut active = std::mem::take(&mut self.active);
        active.retain(|&n| {
            let keep = self.occupancy[n as usize] > 0;
            if !keep {
                self.on_active[n as usize] = false;
            }
            keep
        });
        self.active = active;
        let mut srcs = std::mem::take(&mut self.active_src);
        srcs.retain(|&e| {
            let keep = !self.sources[e as usize].is_empty();
            if !keep {
                self.on_active_src[e as usize] = false;
            }
            keep
        });
        self.active_src = srcs;

        // End-of-cycle telemetry: sample every input-FIFO occupancy and
        // close the cycle's injection/ejection bins.
        if let Some(t) = tel.as_deref_mut() {
            let np = self.ports.len();
            for node in 0..self.routers.len() {
                for ip in 0..np {
                    for (v, f) in self.routers[node].inputs[ip].vcs.iter().enumerate() {
                        t.record_occupancy(node, ip, v, f.len() as u64);
                    }
                }
            }
            t.record_cycle(self.scratch_inject.len() as u64, self.ejected.len() as u64);
        }
        self.telemetry = tel;

        self.cycle += 1;
        &self.ejected
    }

    /// Runs `n` cycles, discarding ejections (useful for draining). In the
    /// event-driven modes, provably-empty spans inside the window are
    /// fast-forwarded instead of stepped ([`Network::fast_forward`]); the
    /// end state is byte-identical either way.
    pub fn run(&mut self, n: u64) {
        let end = self.cycle + n;
        while self.cycle < end {
            if self.fast_forward(end) >= end {
                break;
            }
            self.step();
        }
    }

    /// Phase A: splits the sorted worklist and the arbiter arrays into
    /// per-shard chunks and plans each shard (in parallel when pooled).
    /// Planning reads all routers immutably and mutates only shard-owned
    /// state, so cross-shard credit observations are exactly the immutable
    /// cycle-start snapshot.
    ///
    /// Returns the **awake mask**: bit `s` set iff shard `s`'s slice of
    /// the worklist is non-empty. Sleeping shards are masked out of the
    /// pool epoch ([`StepPool::run_parts_masked`]) — zero plan work,
    /// skipped at claim time — and when a single shard is awake the plan
    /// runs inline on the caller with no pool epoch at all. Skipping a
    /// sleeping shard touches nothing the serial path would touch: plan
    /// only visits active nodes, and a shard with none mutates no arbiter,
    /// no cache, no scratch.
    fn plan_phase(&mut self, tel_on: bool) -> u32 {
        let Network {
            cfg,
            ports,
            conn,
            routers,
            out_links,
            upstream: _,
            pending_arrivals,
            occupancy,
            fault_plan,
            max_vcs,
            active,
            out_rr,
            in_rr_vc,
            sw_alloc,
            route_cache,
            shards,
            pool,
            ..
        } = self;
        let px = PlanShared {
            cfg,
            ports,
            conn,
            routers,
            out_links,
            pending_arrivals,
            occupancy,
            fault_plan: fault_plan.as_deref(),
            max_vcs: *max_vcs,
            tel: tel_on,
        };
        let np = px.ports.len();
        let is_vc = px.cfg.is_vc_router();
        let k = shards.len();
        if k == 1 {
            // Serial fast path: one shard owns everything, so hand it the
            // full slices directly instead of building the chunk table.
            shards[0].awake = true;
            let mut c = PlanChunk {
                active,
                out_rr,
                in_rr_vc,
                sw_alloc,
                route_cache,
                st: &mut shards[0],
            };
            if is_vc {
                plan_vc_shard(&px, &mut c);
            } else {
                plan_wormhole_shard(&px, &mut c);
            }
            return 1;
        }
        let mut awake_mask = 0u32;
        let mut chunks: [Option<PlanChunk>; MAX_SHARDS] = std::array::from_fn(|_| None);
        {
            let mut act: &[u32] = active;
            let mut orr: &mut [RoundRobin] = out_rr;
            let mut irr: &mut [RoundRobin] = in_rr_vc;
            let mut swa: &mut [Wavefront] = sw_alloc;
            let mut rc: &mut [Option<(usize, u8)>] = route_cache;
            for (s, st) in shards.iter_mut().enumerate() {
                let n = st.n_nodes;
                let hi = st.first_node + n;
                // The worklist is sorted ascending, so this shard's nodes
                // are the prefix below its upper bound. An empty slice
                // means the whole band is quiescent — the shard sleeps.
                let cut = act.partition_point(|&x| (x as usize) < hi);
                let (mine, rest) = act.split_at(cut);
                act = rest;
                st.awake = !mine.is_empty();
                if st.awake {
                    awake_mask |= 1 << s;
                }
                chunks[s] = Some(PlanChunk {
                    active: mine,
                    out_rr: split_prefix(&mut orr, if is_vc { 0 } else { n * np }),
                    in_rr_vc: split_prefix(&mut irr, if is_vc { n * np } else { 0 }),
                    sw_alloc: split_prefix(&mut swa, if is_vc { n } else { 0 }),
                    route_cache: split_prefix(&mut rc, n * np * px.max_vcs),
                    st,
                });
            }
            // Every per-node array must be consumed exactly: leftovers mean
            // some nodes belong to no shard (their state would silently
            // never be planned).
            debug_assert!(act.is_empty(), "{} active node(s) unassigned", act.len());
            debug_assert!(orr.is_empty() && irr.is_empty() && swa.is_empty());
            debug_assert!(rc.is_empty(), "route-cache tail unassigned");
        }
        debug_assert_ne!(awake_mask, 0, "step() skips the phases when idle");
        let run = |c: &mut PlanChunk<'_>| {
            if is_vc {
                plan_vc_shard(&px, c);
            } else {
                plan_wormhole_shard(&px, c);
            }
        };
        match pool {
            // A lone awake shard needs no epoch: run it inline on the
            // caller. (Which thread plans a shard never affects results.)
            Some(p) if awake_mask.count_ones() > 1 => {
                p.run_parts_masked(&mut chunks[..k], !awake_mask, |_, slot| {
                    run(slot.as_mut().expect("chunk built for every shard"));
                })
            }
            _ => {
                for (s, slot) in chunks.iter_mut().enumerate().take(k) {
                    if awake_mask & (1 << s) != 0 {
                        run(slot.as_mut().expect("chunk built for every shard"));
                    }
                }
            }
        }
        awake_mask
    }

    /// Phase B: commits every shard's planned transfers (in parallel when
    /// pooled). Shard-local mutations apply in place; effects that land in
    /// another shard (downstream pushes, upstream credit returns) are
    /// staged into per-destination outbox buckets for
    /// [`Network::exchange_mail`], and global-queue effects (pipeline
    /// transit, ejections) are staged per shard for
    /// [`Network::drain_shards`].
    ///
    /// `awake_mask` is [`Network::plan_phase`]'s return value: only awake
    /// shards can hold transfers, so sleeping shards are masked out of the
    /// epoch (and a lone awake shard commits inline on the caller).
    fn commit_phase(&mut self, awake_mask: u32) {
        let Network {
            cfg,
            ports,
            routers,
            out_links,
            upstream,
            occupancy,
            traversals,
            route_cache,
            on_active,
            max_vcs,
            cycle,
            shard_map,
            shards,
            pool,
            ..
        } = self;
        let cx = CommitShared {
            cfg,
            np: ports.len(),
            max_vcs: *max_vcs,
            out_links,
            upstream,
            shard_map,
            cycle: *cycle,
        };
        let np = cx.np;
        let k = shards.len();
        if k == 1 {
            // Serial fast path mirroring `plan_phase`.
            let mut c = CommitChunk {
                routers,
                occupancy,
                traversals,
                route_cache,
                on_active,
                st: &mut shards[0],
            };
            commit_shard(&cx, &mut c);
            return;
        }
        let mut chunks: [Option<CommitChunk>; MAX_SHARDS] = std::array::from_fn(|_| None);
        {
            let mut rts: &mut [Router] = routers;
            let mut occ: &mut [u32] = occupancy;
            let mut trv: &mut [u64] = traversals;
            let mut rc: &mut [Option<(usize, u8)>] = route_cache;
            let mut ona: &mut [bool] = on_active;
            for (s, st) in shards.iter_mut().enumerate() {
                let n = st.n_nodes;
                debug_assert!(
                    st.awake || st.transfers.is_empty(),
                    "sleeping shard {s} planned a transfer"
                );
                chunks[s] = Some(CommitChunk {
                    routers: split_prefix(&mut rts, n),
                    occupancy: split_prefix(&mut occ, n),
                    traversals: split_prefix(&mut trv, n * np),
                    route_cache: split_prefix(&mut rc, n * np * cx.max_vcs),
                    on_active: split_prefix(&mut ona, n),
                    st,
                });
            }
            // Mirror of the plan-phase check: a leftover band here would be
            // a shard of routers that never commits.
            debug_assert!(rts.is_empty(), "{} router(s) unassigned", rts.len());
            debug_assert!(occ.is_empty() && trv.is_empty() && ona.is_empty());
            debug_assert!(rc.is_empty(), "route-cache tail unassigned");
        }
        match pool {
            Some(p) if awake_mask.count_ones() > 1 => {
                p.run_parts_masked(&mut chunks[..k], !awake_mask, |_, slot| {
                    commit_shard(&cx, slot.as_mut().expect("chunk built for every shard"));
                })
            }
            _ => {
                for (s, slot) in chunks.iter_mut().enumerate().take(k) {
                    if awake_mask & (1 << s) != 0 {
                        commit_shard(&cx, slot.as_mut().expect("chunk built for every shard"));
                    }
                }
            }
        }
    }

    /// First drain pass: swaps every non-empty outbox bucket into the
    /// matching destination inbox slot — an `O(k²)` pointer exchange that
    /// moves no mail and allocates nothing (both sides were sized to the
    /// same cross-band link bound at build time). Returns the **inbox
    /// mask**: bit `d` set iff shard `d` received mail this cycle.
    fn exchange_mail(&mut self) -> u32 {
        let k = self.shards.len();
        if k == 1 {
            return 0;
        }
        let mut inbox_mask = 0u32;
        for s in 0..k {
            for d in 0..k {
                if s == d || self.shards[s].outbox[d].is_empty() {
                    debug_assert!(s != d || self.shards[s].outbox[d].is_empty());
                    continue;
                }
                let (src, dst) = shard_pair(&mut self.shards, s, d);
                debug_assert!(
                    dst.inbox[s].is_empty(),
                    "inbox slot {s}->{d} not drained last cycle"
                );
                std::mem::swap(&mut src.outbox[d], &mut dst.inbox[s]);
                inbox_mask |= 1 << d;
            }
        }
        inbox_mask
    }

    /// Second drain pass: each destination shard applies its own inbox —
    /// slots in ascending source-shard order, mail within a slot in staged
    /// (ascending source node) order. Flow control guarantees at most one
    /// push per destination (node, port, vc) slot and at most one credit
    /// per upstream output per cycle, so every applied effect lands in
    /// disjoint state and the application order across destinations cannot
    /// influence any result — which is what lets the destinations run as a
    /// masked pool epoch (sleeping and mail-less shards skipped; a lone
    /// destination applies inline on the caller).
    fn apply_inboxes(&mut self, inbox_mask: u32) {
        if inbox_mask == 0 {
            return;
        }
        let Network {
            cfg,
            routers,
            occupancy,
            on_active,
            shards,
            pool,
            ..
        } = self;
        let fifo_depth = cfg.fifo_depth;
        let k = shards.len();
        let mut chunks: [Option<ApplyChunk>; MAX_SHARDS] = std::array::from_fn(|_| None);
        {
            let mut rts: &mut [Router] = routers;
            let mut occ: &mut [u32] = occupancy;
            let mut ona: &mut [bool] = on_active;
            for (s, st) in shards.iter_mut().enumerate() {
                let n = st.n_nodes;
                chunks[s] = Some(ApplyChunk {
                    routers: split_prefix(&mut rts, n),
                    occupancy: split_prefix(&mut occ, n),
                    on_active: split_prefix(&mut ona, n),
                    st,
                });
            }
            debug_assert!(rts.is_empty() && occ.is_empty() && ona.is_empty());
        }
        match pool {
            Some(p) if inbox_mask.count_ones() > 1 => {
                p.run_parts_masked(&mut chunks[..k], !inbox_mask, |_, slot| {
                    apply_inbox(
                        fifo_depth,
                        slot.as_mut().expect("chunk built for every shard"),
                    );
                })
            }
            _ => {
                for (d, slot) in chunks.iter_mut().enumerate().take(k) {
                    if inbox_mask & (1 << d) != 0 {
                        apply_inbox(
                            fifo_depth,
                            slot.as_mut().expect("chunk built for every shard"),
                        );
                    }
                }
            }
        }
    }

    /// Applies every shard's staged global effects, in shard order. Shards
    /// hold ascending node ranges and each staged list is in
    /// ascending-node plan order, so this serial drain reproduces the
    /// serial commit order exactly — the canonical (node, port, vc) order
    /// that makes results byte-identical at any thread count.
    fn drain_shards(&mut self) {
        let np = self.ports.len();
        for s in 0..self.shards.len() {
            // Pipelined traversals and ejections enter the global queues in
            // shard order; arrival cycles are uniform within a cycle, so the
            // queues stay sorted by arrival.
            let mut transit = std::mem::take(&mut self.shards[s].staged_transit);
            for (arrive, dn, dp, vc, flit) in transit.drain(..) {
                self.pending_arrivals[(dn * np + dp) * self.max_vcs + vc] += 1;
                self.in_transit.push_back((arrive, dn, dp, vc, flit));
            }
            self.shards[s].staged_transit = transit;
            let mut ejects = std::mem::take(&mut self.shards[s].staged_eject);
            for e in ejects.drain(..) {
                self.in_transit_eject.push_back(e);
            }
            self.shards[s].staged_eject = ejects;

            // Same-cycle ejections, in canonical order.
            let n_ej = self.shards[s].ejected.len();
            self.stats.ejected += n_ej as u64;
            self.in_flight -= n_ej;
            let mut ej = std::mem::take(&mut self.shards[s].ejected);
            self.ejected.append(&mut ej);
            self.shards[s].ejected = ej;

            // Routers activated by in-shard pushes join the worklist (it
            // re-sorts at the next cycle start).
            let mut fresh = std::mem::take(&mut self.shards[s].newly_active);
            if !fresh.is_empty() {
                self.active.extend_from_slice(&fresh);
                self.active_dirty = true;
                fresh.clear();
            }
            self.shards[s].newly_active = fresh;
        }
    }
}

/// Idle streak (in cycles) after which [`StepMode::Auto`] starts probing
/// for skippable spans. Small enough to catch every meaningful dead span,
/// large enough that a loaded network never pays the checks.
const AUTO_IDLE_STREAK: u64 = 4;

/// Resolves the requested clock-advance mode: a set config knob wins;
/// otherwise the `RUCHE_STEP_MODE` environment variable (`cycle`, `event`,
/// or `auto`); otherwise cycle-accurate.
fn resolve_step_mode(knob: Option<StepMode>) -> StepMode {
    if let Some(mode) = knob {
        return mode;
    }
    std::env::var("RUCHE_STEP_MODE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(StepMode::CycleAccurate)
}

/// Resolves the requested step worker-thread count: a non-zero config knob
/// wins; otherwise the `RUCHE_STEP_THREADS` environment variable; otherwise
/// 1 (serial).
fn resolve_step_threads(knob: usize) -> usize {
    if knob > 0 {
        return knob;
    }
    std::env::var("RUCHE_STEP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Peels a `len`-element chunk off the front of `*rest`.
///
/// Chunking a per-node array into per-shard `&mut` bands this way is what
/// lets the pool's tasks mutate disjoint state without locks, so the
/// accounting must be airtight: a `len` beyond the remainder means the
/// per-shard size arithmetic diverged from the allocation.
fn split_prefix<'a, T>(rest: &mut &'a mut [T], len: usize) -> &'a mut [T] {
    debug_assert!(
        len <= rest.len(),
        "shard chunk wants {len} element(s) but only {} remain: per-shard \
         sizing diverged from the backing allocation",
        rest.len()
    );
    let (head, tail) = std::mem::take(rest).split_at_mut(len);
    *rest = tail;
    head
}

/// Read-only state every shard's plan pass shares. Routers are the
/// cycle-start snapshot: nothing mutates them until the commit phase, after
/// the plan barrier.
struct PlanShared<'a> {
    cfg: &'a NetworkConfig,
    ports: &'a [Dir],
    conn: &'a Connectivity,
    routers: &'a [Router],
    out_links: &'a [LinkTarget],
    pending_arrivals: &'a [u32],
    occupancy: &'a [u32],
    fault_plan: Option<&'a RouteTable>,
    max_vcs: usize,
    /// Whether telemetry is attached (log blocked events into the shard).
    tel: bool,
}

/// Mutable state one shard's plan pass owns: its slice of the sorted
/// worklist, its arbiters, its route-cache band, and its scratch.
struct PlanChunk<'a> {
    active: &'a [u32],
    out_rr: &'a mut [RoundRobin],
    in_rr_vc: &'a mut [RoundRobin],
    sw_alloc: &'a mut [Wavefront],
    route_cache: &'a mut [Option<(usize, u8)>],
    st: &'a mut ShardState,
}

/// Read-only state every shard's commit pass shares.
struct CommitShared<'a> {
    cfg: &'a NetworkConfig,
    np: usize,
    max_vcs: usize,
    out_links: &'a [LinkTarget],
    upstream: &'a [Option<(usize, usize)>],
    /// For routing cross-band mail to the destination's outbox bucket.
    shard_map: &'a ShardMap,
    cycle: u64,
}

/// Mutable state one shard's commit pass owns: its band of routers and the
/// per-node arrays parallel to them.
struct CommitChunk<'a> {
    routers: &'a mut [Router],
    occupancy: &'a mut [u32],
    traversals: &'a mut [u64],
    route_cache: &'a mut [Option<(usize, u8)>],
    on_active: &'a mut [bool],
    st: &'a mut ShardState,
}

/// Mutable state one destination shard's inbox application owns: its band
/// of routers, the activity arrays parallel to them, and its own inbox.
struct ApplyChunk<'a> {
    routers: &'a mut [Router],
    occupancy: &'a mut [u32],
    on_active: &'a mut [bool],
    st: &'a mut ShardState,
}

/// Disjoint `&mut` access to two distinct shards (for the mail exchange's
/// outbox-bucket / inbox-slot swap).
fn shard_pair(shards: &mut [ShardState], a: usize, b: usize) -> (&mut ShardState, &mut ShardState) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = shards.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = shards.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// Applies one destination shard's inbound mail: inbox slots in ascending
/// source-shard order, each drained in staged (ascending source node)
/// order. Pushes land in this band's FIFOs and may re-arm quiescent
/// routers (the wake-on-credit edge — the node joins `newly_active` and
/// the shard wakes next cycle); credits top up this band's output
/// counters. Flow control bounds the mail per (node, port, vc) slot to
/// one, so all effects are disjoint and order across destinations is
/// immaterial.
fn apply_inbox(fifo_depth: usize, c: &mut ApplyChunk<'_>) {
    let first = c.st.first_node;
    let ShardState {
        inbox,
        newly_active,
        ..
    } = &mut *c.st;
    for slot in inbox.iter_mut() {
        for mail in slot.drain(..) {
            match mail {
                Mail::Push {
                    node,
                    port,
                    vc,
                    flit,
                } => {
                    c.routers[node - first].inputs[port].vcs[vc]
                        .try_push(flit)
                        .expect("downstream space guaranteed by flow control");
                    c.occupancy[node - first] += 1;
                    if !c.on_active[node - first] {
                        c.on_active[node - first] = true;
                        newly_active.push(node as u32);
                    }
                }
                Mail::Credit { node, port, vc } => {
                    let out = &mut c.routers[node - first].outputs[port];
                    if out.counted {
                        out.credits[vc] += 1;
                        debug_assert!(out.credits[vc] as usize <= fifo_depth);
                    }
                }
            }
        }
    }
}

/// Route decision for the head of (node, ip, vc), memoized per head in the
/// shard's route-cache band (`first_node` rebases the slot).
#[inline]
fn head_route(
    px: &PlanShared<'_>,
    route_cache: &mut [Option<(usize, u8)>],
    first_node: usize,
    node: usize,
    ip: usize,
    vc: usize,
    f: &Flit,
) -> (usize, u8) {
    let np = px.ports.len();
    let slot = ((node - first_node) * np + ip) * px.max_vcs + vc;
    if let Some(d) = route_cache[slot] {
        return d;
    }
    let d = if f.kind.is_head() {
        let coord = px.routers[node].coord;
        let dec = if let Some(plan) = px.fault_plan {
            // Faulted network: all packets follow the deadlock-free
            // up*/down* table over the surviving channels.
            plan.route(coord, px.ports[ip], f.dest).expect(
                "flit routed toward an unreachable destination; \
                 callers must check RouteTable::reachable before enqueueing",
            )
        } else {
            let dec = compute_route(px.cfg, coord, px.ports[ip], vc as u8, f.dest);
            debug_assert!(
                px.conn.allows(px.ports[ip], dec.out),
                "illegal crossbar transition {} -> {} at {}",
                px.ports[ip],
                dec.out,
                coord
            );
            dec
        };
        let op = px
            .conn
            .port_index(dec.out)
            .expect("every routed direction appears in the connectivity port map");
        (op, dec.out_vc)
    } else {
        px.routers[node].inputs[ip].assigned[vc].expect("body flit has a path")
    };
    route_cache[slot] = Some(d);
    d
}

/// Wormhole plan over one shard: per-output round-robin arbitration
/// qualified by downstream FIFO space (ready-valid-and). Idle routers are
/// skipped; all decisions observe cycle-start state (commits happen after
/// the barrier), so the single pass is equivalent to the synchronous
/// two-phase update.
fn plan_wormhole_shard(px: &PlanShared<'_>, c: &mut PlanChunk<'_>) {
    let np = px.ports.len();
    let first = c.st.first_node;
    for &node in c.active {
        let node = node as usize;
        debug_assert!(px.occupancy[node] > 0, "idle router on the worklist");
        // Per-output request masks (bit = input port), from each input
        // head's memoized route decision.
        c.st.req_mask.fill(0);
        for ip in 0..np {
            if let Some(f) = px.routers[node].inputs[ip].vcs[0].head().copied() {
                let (op, _) = head_route(px, c.route_cache, first, node, ip, 0, &f);
                c.st.req_mask[op] |= 1 << ip;
            }
        }
        for op in 0..np {
            let reqs = c.st.req_mask[op];
            if reqs == 0 {
                continue;
            }
            let ready = match px.out_links[node * np + op] {
                LinkTarget::Router { node: dn, port: dp } => {
                    let f = &px.routers[dn].inputs[dp].vcs[0];
                    let pending = px.pending_arrivals[(dn * np + dp) * px.max_vcs] as usize;
                    f.len() + pending < f.capacity()
                }
                LinkTarget::Endpoint(_) => true,
                LinkTarget::None => false,
            };
            if !ready {
                if px.tel {
                    // The FIFO-space check above and the credit counter
                    // must agree, or NoCredit attribution silently lies.
                    debug_assert!(
                        !px.routers[node].outputs[op].has_credit(0),
                        "NoCredit stall recorded at node {node} port {op} \
                         while the output still holds credit"
                    );
                    for ip in 0..np {
                        if reqs & (1 << ip) != 0 {
                            c.st.blocked
                                .push((node as u32, op as u16, 0, BlockCause::NoCredit));
                        }
                    }
                }
                continue;
            }
            let lock = px.routers[node].outputs[op].lock;
            let winner = if let Some(owner) = lock {
                (reqs & (1 << owner) != 0).then_some(owner)
            } else {
                c.out_rr[(node - first) * np + op].pick_and_grant_mask(reqs)
            };
            if px.tel {
                // Output usable, but at most one requester proceeds;
                // when the lock owner is not requesting, all lose.
                let losers = match winner {
                    Some(w) => reqs & !(1 << w),
                    None => reqs,
                };
                for ip in 0..np {
                    if losers & (1 << ip) != 0 {
                        c.st.blocked
                            .push((node as u32, op as u16, 0, BlockCause::LostArbitration));
                    }
                }
            }
            if let Some(ip) = winner {
                c.st.transfers.push(Transfer {
                    node,
                    in_port: ip,
                    in_vc: 0,
                    out_port: op,
                    out_vc: 0,
                });
            }
        }
    }
}

/// VC-router plan over one shard: ready-then-valid requests (credit-gated),
/// one VC per input port, wavefront switch allocation. Idle routers are
/// skipped.
fn plan_vc_shard(px: &PlanShared<'_>, c: &mut PlanChunk<'_>) {
    let np = px.ports.len();
    let first = c.st.first_node;
    let mut valid = [false; 8];
    let mut decision = [None::<(usize, u8)>; 8];
    for &node in c.active {
        let node = node as usize;
        debug_assert!(px.occupancy[node] > 0, "idle router on the worklist");
        // Per-input request masks (bit = output port) for the wavefront
        // allocator.
        c.st.req_mask.fill(0);
        c.st.chosen.fill(None);
        #[allow(clippy::needless_range_loop)] // indexes several parallel arrays
        for ip in 0..np {
            let n_vcs = px.routers[node].inputs[ip].vcs.len();
            for v in 0..n_vcs {
                valid[v] = false;
                decision[v] = None;
                let Some(f) = px.routers[node].inputs[ip].vcs[v].head().copied() else {
                    continue;
                };
                let (op, out_vc) = head_route(px, c.route_cache, first, node, ip, v, &f);
                // Ready-then-valid: request only with credit in hand and
                // the output VC free (or owned by this packet).
                let out = &px.routers[node].outputs[op];
                let credit_ok = out.has_credit(out_vc as usize);
                let owner_ok = match out.vc_owner[out_vc as usize] {
                    None => f.kind.is_head(),
                    Some(owner) => owner == (ip, v),
                };
                if credit_ok && owner_ok {
                    valid[v] = true;
                    decision[v] = Some((op, out_vc));
                } else if px.tel {
                    let cause = if credit_ok {
                        // Output VC held by another packet: an
                        // arbitration-side loss, not a credit stall.
                        BlockCause::LostArbitration
                    } else {
                        debug_assert!(
                            !px.routers[node].outputs[op].has_credit(out_vc as usize),
                            "NoCredit stall recorded at node {node} port {op} \
                             vc {out_vc} while the output still holds credit"
                        );
                        BlockCause::NoCredit
                    };
                    c.st.blocked.push((node as u32, op as u16, out_vc, cause));
                }
            }
            if let Some(v) = c.in_rr_vc[(node - first) * np + ip].pick(&valid[..n_vcs]) {
                let (op, out_vc) = decision[v].expect("valid implies decision");
                c.st.chosen[ip] = Some((v, op, out_vc));
                c.st.req_mask[ip] |= 1 << op;
                if px.tel {
                    // Sibling VCs that were sendable but lost the
                    // per-input VC pick this cycle.
                    for (v2, &ok) in valid[..n_vcs].iter().enumerate() {
                        if ok && v2 != v {
                            let (op2, ovc2) = decision[v2].expect("valid implies decision");
                            c.st.blocked.push((
                                node as u32,
                                op2 as u16,
                                ovc2,
                                BlockCause::LostArbitration,
                            ));
                        }
                    }
                }
            }
        }
        {
            let st = &mut *c.st;
            c.sw_alloc[node - first].allocate_into(&st.req_mask, &mut st.grants);
        }
        for ip in 0..np {
            if let Some(op) = c.st.grants[ip] {
                let (v, op2, out_vc) = c.st.chosen[ip].expect("granted implies chosen");
                debug_assert_eq!(op, op2);
                c.in_rr_vc[(node - first) * np + ip].grant(v);
                c.st.transfers.push(Transfer {
                    node,
                    in_port: ip,
                    in_vc: v,
                    out_port: op,
                    out_vc: out_vc as usize,
                });
            } else if let Some((_, op, out_vc)) = c.st.chosen[ip] {
                // Chosen a VC and raised a request, but the wavefront
                // allocator granted the output to another input.
                if px.tel {
                    c.st.blocked.push((
                        node as u32,
                        op as u16,
                        out_vc,
                        BlockCause::LostArbitration,
                    ));
                }
            }
        }
    }
}

/// Commits one shard's planned transfers. Mutations that stay inside the
/// shard's node band apply directly; everything else is staged
/// (per-destination outbox buckets for cross-shard pushes/credits, staged
/// queues for pipeline transit and ejections) for the two-pass drain and
/// the coordinator's in-order merge. At most one transfer
/// exists per (node, input port) and per (node, output port), and upstream
/// links are injective, so concurrent shard commits touch disjoint state.
fn commit_shard(cx: &CommitShared<'_>, c: &mut CommitChunk<'_>) {
    let np = cx.np;
    let first = c.st.first_node;
    let last = first + c.st.n_nodes;
    let stages = cx.cfg.pipeline_stages;
    let transfers = std::mem::take(&mut c.st.transfers);
    for t in &transfers {
        let flit = c.routers[t.node - first].inputs[t.in_port].vcs[t.in_vc]
            .pop()
            .expect("planned transfer has a flit");
        c.occupancy[t.node - first] -= 1;
        c.route_cache[((t.node - first) * np + t.in_port) * cx.max_vcs + t.in_vc] = None;

        // Path bookkeeping.
        {
            let r = &mut c.routers[t.node - first];
            if flit.kind.is_head() && !flit.kind.is_tail() {
                r.outputs[t.out_port].lock = Some(t.in_port);
                r.outputs[t.out_port].vc_owner[t.out_vc] = Some((t.in_port, t.in_vc));
                r.inputs[t.in_port].assigned[t.in_vc] = Some((t.out_port, t.out_vc as u8));
            } else if flit.kind.is_tail() && !flit.kind.is_head() {
                r.outputs[t.out_port].lock = None;
                r.outputs[t.out_port].vc_owner[t.out_vc] = None;
                r.inputs[t.in_port].assigned[t.in_vc] = None;
            }
            if r.outputs[t.out_port].counted {
                let cdt = &mut r.outputs[t.out_port].credits[t.out_vc];
                debug_assert!(*cdt > 0, "send without credit");
                *cdt -= 1;
            }
        }

        // Credit return to whoever feeds this input (1-cycle latency falls
        // out of the two-phase update). Upstream routers outside the band
        // get their credit through the mailbox.
        if let Some((un, uo)) = cx.upstream[t.node * np + t.in_port] {
            if (first..last).contains(&un) {
                let out = &mut c.routers[un - first].outputs[uo];
                if out.counted {
                    out.credits[t.in_vc] += 1;
                    debug_assert!(out.credits[t.in_vc] as usize <= cx.cfg.fifo_depth);
                }
            } else {
                c.st.outbox[cx.shard_map.shard_of(un)].push(Mail::Credit {
                    node: un,
                    port: uo,
                    vc: t.in_vc,
                });
            }
        }

        c.traversals[(t.node - first) * np + t.out_port] += 1;
        match cx.out_links[t.node * np + t.out_port] {
            LinkTarget::Router { node: dn, port: dp } => {
                if stages == 0 {
                    if (first..last).contains(&dn) {
                        c.routers[dn - first].inputs[dp].vcs[t.out_vc]
                            .try_push(flit)
                            .expect("downstream space guaranteed by flow control");
                        c.occupancy[dn - first] += 1;
                        if !c.on_active[dn - first] {
                            c.on_active[dn - first] = true;
                            c.st.newly_active.push(dn as u32);
                        }
                    } else {
                        c.st.outbox[cx.shard_map.shard_of(dn)].push(Mail::Push {
                            node: dn,
                            port: dp,
                            vc: t.out_vc,
                            flit,
                        });
                    }
                } else {
                    // Extra pipeline stages: the flit becomes visible
                    // downstream `stages` cycles later than a single-cycle
                    // hop would make it. Staged so the coordinator appends
                    // to the global queue in canonical order.
                    c.st.staged_transit.push((
                        cx.cycle + 1 + stages as u64,
                        dn,
                        dp,
                        t.out_vc,
                        flit,
                    ));
                }
            }
            LinkTarget::Endpoint(ep) => {
                if stages == 0 {
                    c.st.ejected.push((ep, flit));
                } else {
                    // Baseline ejections are visible in the granting step
                    // itself, so the pipeline adds exactly `stages` here.
                    c.st.staged_eject.push((cx.cycle + stages as u64, ep, flit));
                }
            }
            LinkTarget::None => unreachable!("transfer into a tied-off link"),
        }
    }
    c.st.transfers = transfers;
    c.st.transfers.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Dims;
    use crate::topology::CrossbarScheme::{Depopulated, FullyPopulated};

    fn deliver_one(cfg: NetworkConfig, src: Coord, dst: Coord) -> (u64, Network) {
        let mut net = Network::new(cfg).expect("test config is valid");
        let ep = net.tile_endpoint(src);
        net.enqueue(ep, Flit::single(src, Dest::tile(dst), 1, 0));
        for _ in 0..200 {
            let out = net.step().to_vec();
            if let Some(&(e, f)) = out.first() {
                assert_eq!(net.endpoint_kind(e), EndpointKind::Tile(dst));
                assert_eq!(f.packet_id, 1);
                return (net.cycle(), net);
            }
        }
        panic!("packet not delivered");
    }

    #[test]
    fn zero_load_latency_is_hops_plus_injection() {
        // Injection takes one cycle (source queue -> P FIFO), then one
        // cycle per router traversal including ejection.
        let cfg = NetworkConfig::mesh(Dims::new(8, 8));
        let hops = crate::routing::route_hops(&cfg, Coord::new(0, 0), Coord::new(3, 2));
        let (cycles, _) = deliver_one(cfg, Coord::new(0, 0), Coord::new(3, 2));
        assert_eq!(cycles, hops as u64 + 1);
    }

    #[test]
    fn ruche_delivery_is_faster_than_mesh() {
        let dims = Dims::new(16, 16);
        let (mesh_t, _) = deliver_one(
            NetworkConfig::mesh(dims),
            Coord::new(0, 0),
            Coord::new(15, 15),
        );
        let (ruche_t, _) = deliver_one(
            NetworkConfig::full_ruche(dims, 3, FullyPopulated),
            Coord::new(0, 0),
            Coord::new(15, 15),
        );
        assert!(ruche_t < mesh_t, "ruche {ruche_t} < mesh {mesh_t}");
    }

    #[test]
    fn torus_delivers_across_the_wrap() {
        let (_, net) = deliver_one(
            NetworkConfig::torus(Dims::new(8, 8)),
            Coord::new(0, 0),
            Coord::new(1, 1),
        );
        assert_eq!(net.snapshot().ejected, 1);
    }

    #[test]
    fn back_to_back_stream_sustains_full_throughput() {
        // A single (src, dst) stream on an idle mesh moves 1 flit/cycle.
        let cfg = NetworkConfig::mesh(Dims::new(8, 1));
        let mut net = Network::new(cfg).expect("test config is valid");
        let src = Coord::new(0, 0);
        let dst = Coord::new(7, 0);
        let ep = net.tile_endpoint(src);
        let n = 50;
        for i in 0..n {
            net.enqueue(ep, Flit::single(src, Dest::tile(dst), i, 0));
        }
        let mut eject_cycles = vec![];
        for _ in 0..200 {
            let c = net.cycle();
            if !net.step().is_empty() {
                eject_cycles.push(c);
            }
            if eject_cycles.len() as u64 == n {
                break;
            }
        }
        assert_eq!(eject_cycles.len() as u64, n);
        // After the pipe fills, one ejection per cycle.
        let deltas: Vec<u64> = eject_cycles.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(deltas.iter().all(|&d| d == 1), "stream gaps: {deltas:?}");
    }

    #[test]
    fn in_order_delivery_per_pair() {
        let dims = Dims::new(8, 8);
        for cfg in [
            NetworkConfig::mesh(dims),
            NetworkConfig::torus(dims),
            NetworkConfig::full_ruche(dims, 2, Depopulated),
            NetworkConfig::multi_mesh(dims),
        ] {
            let mut net = Network::new(cfg).expect("test config is valid");
            let src = Coord::new(1, 6);
            let dst = Coord::new(6, 1);
            let ep = net.tile_endpoint(src);
            for i in 0..40 {
                net.enqueue(ep, Flit::single(src, Dest::tile(dst), i, 0));
            }
            let mut seen = vec![];
            for _ in 0..400 {
                for &(_, f) in net.step() {
                    seen.push(f.packet_id);
                }
            }
            let sorted: Vec<u64> = (0..40).collect();
            assert_eq!(seen, sorted, "{}", net.cfg().label());
        }
    }

    #[test]
    fn multi_flit_wormhole_packets_stay_contiguous() {
        let cfg = NetworkConfig::mesh(Dims::new(6, 6));
        let mut net = Network::new(cfg).expect("test config is valid");
        // Two sources target the same destination with 4-flit packets; the
        // wormhole lock must keep each packet's flits contiguous at the
        // ejection port.
        let dst = Coord::new(5, 5);
        for (pid, src) in [(1u64, Coord::new(0, 5)), (2, Coord::new(5, 0))] {
            let ep = net.tile_endpoint(src);
            for f in Flit::multi(src, Dest::tile(dst), pid, 0, 4) {
                net.enqueue(ep, f);
            }
        }
        let mut order = vec![];
        for _ in 0..100 {
            for &(_, f) in net.step() {
                order.push(f.packet_id);
            }
        }
        assert_eq!(order.len(), 8);
        // All flits of one packet before any of the other.
        let first = order[0];
        assert!(order[..4].iter().all(|&p| p == first), "{order:?}");
        assert!(order[4..].iter().all(|&p| p != first), "{order:?}");
    }

    #[test]
    fn multi_flit_torus_packets_stay_contiguous_per_vc() {
        let cfg = NetworkConfig::torus(Dims::new(5, 5));
        let mut net = Network::new(cfg).expect("test config is valid");
        let dst = Coord::new(3, 3);
        for (pid, src) in [(1u64, Coord::new(0, 3)), (2, Coord::new(3, 0))] {
            let ep = net.tile_endpoint(src);
            for f in Flit::multi(src, Dest::tile(dst), pid, 0, 3) {
                net.enqueue(ep, f);
            }
        }
        let mut order = vec![];
        for _ in 0..100 {
            for &(_, f) in net.step() {
                order.push(f.packet_id);
            }
        }
        assert_eq!(order.len(), 6);
        let first = order[0];
        assert!(order[..3].iter().all(|&p| p == first), "{order:?}");
    }

    #[test]
    fn edge_endpoints_send_and_receive() {
        // Requests ride an X-Y network to the edges; responses come back on
        // a separate Y-X network (the paper's manycore arrangement, §4).
        let src = Coord::new(2, 2);
        let mut req = Network::new(NetworkConfig::mesh(Dims::new(8, 4)).with_edge_memory_ports())
            .expect("test config is valid");
        req.enqueue(
            req.tile_endpoint(src),
            Flit::single(src, Dest::north_edge(5), 1, 0),
        );
        let mut resp = Network::new(
            NetworkConfig::mesh(Dims::new(8, 4))
                .with_edge_memory_ports()
                .with_dor(crate::topology::DorOrder::YX),
        )
        .expect("test config is valid");
        let north = resp.north_endpoint(5);
        resp.enqueue(north, Flit::single(Coord::new(5, 0), Dest::tile(src), 2, 0));
        let mut got = vec![];
        for _ in 0..50 {
            let a = req.step().to_vec();
            let b = resp.step().to_vec();
            for (e, f) in a {
                got.push((req.endpoint_kind(e), f.packet_id));
            }
            for (e, f) in b {
                got.push((resp.endpoint_kind(e), f.packet_id));
            }
        }
        assert!(got.contains(&(EndpointKind::NorthEdge(5), 1)), "{got:?}");
        assert!(got.contains(&(EndpointKind::Tile(src), 2)), "{got:?}");
    }

    #[test]
    fn flit_conservation_under_random_traffic() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let dims = Dims::new(8, 8);
        for cfg in [
            NetworkConfig::mesh(dims),
            NetworkConfig::torus(dims),
            NetworkConfig::half_torus(dims),
            NetworkConfig::ruche_one(dims),
            NetworkConfig::full_ruche(dims, 3, Depopulated),
            NetworkConfig::full_ruche(dims, 2, FullyPopulated),
        ] {
            let label = cfg.label();
            let mut net = Network::new(cfg).expect("test config is valid");
            let mut rng = SmallRng::seed_from_u64(7);
            let mut sent = 0u64;
            for cycle in 0..600u64 {
                if cycle < 300 {
                    for c in dims.iter() {
                        if rng.gen_bool(0.3) {
                            let dst = Coord::new(rng.gen_range(0..8), rng.gen_range(0..8));
                            let ep = net.tile_endpoint(c);
                            net.enqueue(ep, Flit::single(c, Dest::tile(dst), sent, cycle));
                            sent += 1;
                        }
                    }
                }
                net.step();
            }
            // Everything injected must eventually drain: no deadlock, no
            // loss, no duplication.
            let mut guard = 0;
            while net.snapshot().ejected < sent {
                net.step();
                guard += 1;
                assert!(guard < 20_000, "{label}: drain stalled");
            }
            let snap = net.snapshot();
            assert_eq!(snap.ejected, sent, "{label}");
            assert!(snap.is_idle(), "{label}: {snap:?}");
        }
    }

    #[test]
    fn traversal_counters_accumulate() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 1));
        let mut net = Network::new(cfg).expect("test config is valid");
        let src = Coord::new(0, 0);
        net.enqueue(
            net.tile_endpoint(src),
            Flit::single(src, Dest::tile(Coord::new(3, 0)), 0, 0),
        );
        net.run(20);
        let loads = net.link_loads();
        let total: u64 = loads.raw().iter().sum();
        // 3 E hops + 1 ejection.
        assert_eq!(total, 4);
        let east: u64 = loads
            .iter()
            .filter(|&(_, d, _)| d == Dir::E)
            .map(|(_, _, n)| n)
            .sum();
        assert_eq!(east, 3);
        assert_eq!(
            loads.count(
                0,
                loads
                    .ports()
                    .iter()
                    .position(|&d| d == Dir::E)
                    .expect("mesh has an E port")
            ),
            1
        );
    }

    #[test]
    fn pipelined_hops_add_latency() {
        // With one extra pipeline stage, zero-load latency becomes
        // (1 + stages) per hop.
        let dims = Dims::new(8, 1);
        let (t0, _) = deliver_one(
            NetworkConfig::mesh(dims),
            Coord::new(0, 0),
            Coord::new(7, 0),
        );
        let (t1, _) = deliver_one(
            NetworkConfig::mesh(dims).with_pipeline_stages(1),
            Coord::new(0, 0),
            Coord::new(7, 0),
        );
        // 8 router traversals: baseline 8 (+1 inject), pipelined 16 (+1).
        assert_eq!(t0, 9);
        assert_eq!(t1, 17);
    }

    #[test]
    fn pipelining_starves_credits_at_min_buffering() {
        // §3.2: pipelined routers lengthen the credit loop; two-element
        // FIFOs no longer cover it, so a back-to-back stream loses
        // throughput unless buffers deepen accordingly.
        let dims = Dims::new(8, 1);
        let throughput = |cfg: NetworkConfig| {
            let mut net = Network::new(cfg).expect("test config is valid");
            let src = Coord::new(0, 0);
            let dst = Coord::new(7, 0);
            let ep = net.tile_endpoint(src);
            for i in 0..100 {
                net.enqueue(ep, Flit::single(src, Dest::tile(dst), i, 0));
            }
            let mut cycles = 0u64;
            while net.snapshot().ejected < 100 {
                net.step();
                cycles += 1;
                assert!(cycles < 5_000);
            }
            100.0 / cycles as f64
        };
        let base = throughput(NetworkConfig::half_torus(dims));
        let piped = throughput(NetworkConfig::half_torus(dims).with_pipeline_stages(1));
        let piped_deep = throughput(
            NetworkConfig::half_torus(dims)
                .with_pipeline_stages(1)
                .with_fifo_depth(4),
        );
        assert!(piped < 0.8 * base, "starved: {piped} vs {base}");
        assert!(
            piped_deep > piped * 1.3,
            "deeper buffers hide the credit loop: {piped_deep} vs {piped}"
        );
    }

    #[test]
    fn pipelined_network_conserves_flits() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let dims = Dims::new(6, 6);
        for cfg in [
            NetworkConfig::mesh(dims).with_pipeline_stages(2),
            NetworkConfig::torus(dims).with_pipeline_stages(1),
        ] {
            let label = cfg.label();
            let mut net = Network::new(cfg).expect("test config is valid");
            let mut rng = SmallRng::seed_from_u64(3);
            let mut sent = 0u64;
            for cycle in 0..200u64 {
                for c in dims.iter() {
                    if rng.gen_bool(0.3) {
                        let d = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
                        let ep = net.tile_endpoint(c);
                        net.enqueue(ep, Flit::single(c, Dest::tile(d), sent, cycle));
                        sent += 1;
                    }
                }
                net.step();
            }
            let mut guard = 0;
            while net.snapshot().ejected < sent {
                net.step();
                guard += 1;
                assert!(guard < 30_000, "{label}: drain stalled");
            }
            assert_eq!(net.snapshot().in_flight, 0, "{label}");
        }
    }

    #[test]
    fn watchdog_reports_idle() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 4));
        let mut net = Network::new(cfg).expect("test config is valid");
        net.run(10);
        assert!(net.snapshot().cycles_since_progress >= 10);
    }
}
