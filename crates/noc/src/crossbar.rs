//! Crossbar connectivity matrices (Figure 5).
//!
//! The crossbar of a router only implements the (input → output)
//! connections its routing algorithm can ever exercise. Rather than
//! hand-maintaining the matrices, this module *derives* them from the
//! routing relation by enumerating routes on a probe network large enough
//! to exercise every transition — so the simulator, the area/energy models,
//! and the routing algorithm can never disagree.
//!
//! The derived matrices reproduce the paper's published counts: the
//! fully-populated Full Ruche crossbar has 45 connections and a maximum mux
//! of 9 inputs (at the P output); depopulation removes 16 connections,
//! shrinking the P output to 7 inputs and the RN/RS outputs by 5 each.

use crate::geometry::{Coord, Dims, Dir};
use crate::routing::{walk_route_from, Dest, EdgePort};
use crate::topology::{NetworkConfig, TopologyKind};
use serde::{Deserialize, Serialize};

/// A router crossbar connectivity matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connectivity {
    ports: Vec<Dir>,
    /// `allowed[out][in]`.
    allowed: Vec<Vec<bool>>,
}

impl Connectivity {
    /// Derives the connectivity for `cfg`'s router by route enumeration.
    ///
    /// The enumeration runs on a probe network of the same topology,
    /// crossbar scheme, and DOR order, sized large enough (relative to the
    /// Ruche factor) that every transition class appears; the result is the
    /// size-independent crossbar a tiled design would stamp out. Results
    /// are memoized per probe class, so repeated construction is cheap.
    pub fn of(cfg: &NetworkConfig) -> Self {
        // lint:allow(hash-order): per-probe-class memo, insert/lookup only.
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        static MEMO: OnceLock<Mutex<HashMap<String, Connectivity>>> = OnceLock::new();
        let probe = probe_config(cfg);
        let key = format!(
            "{:?}|{:?}|{:?}|{}|{}|{}",
            probe.topology,
            probe.scheme,
            probe.dor,
            probe.dims,
            probe.edge_memory_ports,
            probe.edge_bidirectional
        );
        let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = memo
            .lock()
            .expect("crossbar memo mutex is never poisoned")
            .get(&key)
        {
            return hit.clone();
        }
        let result = Self::derive(&probe);
        memo.lock()
            .expect("crossbar memo mutex is never poisoned")
            .insert(key, result.clone());
        result
    }

    /// Uncached enumeration over a probe network.
    fn derive(probe: &NetworkConfig) -> Self {
        let ports = probe.ports();
        let idx = |d: Dir| {
            ports
                .iter()
                .position(|&p| p == d)
                .expect("probed direction appears in the port list")
        };
        let mut allowed = vec![vec![false; ports.len()]; ports.len()];

        let mut record = |path: &[(Coord, Dir)], entry_dir: Dir| {
            let mut in_dir = entry_dir;
            for &(_, out) in path {
                allowed[idx(out)][idx(in_dir)] = true;
                in_dir = out.opposite();
            }
        };

        for s in probe.dims.iter() {
            for d in probe.dims.iter() {
                let path = walk_route_from(probe, s, Dir::P, Dest::tile(d));
                record(&path, Dir::P);
            }
        }
        if probe.edge_memory_ports {
            // Edge endpoints carry one traffic direction per network: the
            // request network (X-Y) routes *to* the edges, the response
            // network (Y-X) routes *from* them (§4). The crossbar only
            // implements the transitions its network's direction uses.
            for col in 0..probe.dims.cols {
                for (edge, entry) in [(EdgePort::North, Dir::N), (EdgePort::South, Dir::S)] {
                    let to_edge =
                        probe.edge_bidirectional || probe.dor == crate::topology::DorOrder::XY;
                    let from_edge =
                        probe.edge_bidirectional || probe.dor == crate::topology::DorOrder::YX;
                    if to_edge {
                        for s in probe.dims.iter() {
                            let dest = match edge {
                                EdgePort::North => Dest::north_edge(col),
                                EdgePort::South => Dest::south_edge(col, probe.dims.rows),
                            };
                            let path = walk_route_from(probe, s, Dir::P, dest);
                            record(&path, Dir::P);
                        }
                    }
                    if from_edge {
                        let (at, _) = crate::routing::edge_entry(probe.dims, edge, col);
                        for d in probe.dims.iter() {
                            let path = walk_route_from(probe, at, entry, Dest::tile(d));
                            record(&path, entry);
                        }
                    }
                }
            }
        }
        Connectivity { ports, allowed }
    }

    /// Router port list, canonical order.
    pub fn ports(&self) -> &[Dir] {
        &self.ports
    }

    /// Whether the crossbar connects `input` to `output`.
    pub fn allows(&self, input: Dir, output: Dir) -> bool {
        match (self.port_index(input), self.port_index(output)) {
            (Some(i), Some(o)) => self.allowed[o][i],
            _ => false,
        }
    }

    /// Index of `dir` in the port list.
    pub fn port_index(&self, dir: Dir) -> Option<usize> {
        self.ports.iter().position(|&p| p == dir)
    }

    /// Number of mux inputs feeding `output`.
    pub fn mux_inputs(&self, output: Dir) -> usize {
        self.port_index(output)
            .map(|o| self.allowed[o].iter().filter(|&&b| b).count())
            .unwrap_or(0)
    }

    /// Total crossbar connections (sum of mux inputs over outputs).
    pub fn connection_count(&self) -> usize {
        self.allowed
            .iter()
            .map(|row| row.iter().filter(|&&b| b).count())
            .sum()
    }

    /// The largest mux in the crossbar (sets the mux-tree depth on the
    /// critical path).
    pub fn max_mux_inputs(&self) -> usize {
        self.ports
            .iter()
            .map(|&o| self.mux_inputs(o))
            .max()
            .unwrap_or(0)
    }
}

/// A probe network large enough to exercise every routing transition.
///
/// The Ruche crossbar hardware is independent of the Ruche Factor (it is a
/// mesh router plus the Figure 5 additions), but small factors produce
/// degenerate routes — with `RF = 2` no route ever takes two consecutive
/// local hops in one dimension, so enumeration would miss the base mesh's
/// straight-through connections. The probe therefore routes with
/// `RF = max(rf, 3)` (Ruche-One keeps its own parity-routing relation).
fn probe_config(cfg: &NetworkConfig) -> NetworkConfig {
    let mut probe = cfg.clone();
    if let TopologyKind::Ruche { rf, axes } = probe.topology {
        if rf >= 2 {
            probe.topology = TopologyKind::Ruche {
                rf: rf.max(3),
                axes,
            };
        }
    }
    let rf = probe.topology.ruche_factor().max(1);
    let need = 4 * rf + 4;
    probe.dims = Dims::new(cfg.dims.cols.max(need), cfg.dims.rows.max(need));
    probe
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::CrossbarScheme::{Depopulated, FullyPopulated};

    fn dims() -> Dims {
        Dims::new(8, 8)
    }

    #[test]
    fn mesh_crossbar_matches_celerity() {
        // Minimal X-Y DOR mesh router (Figure 5's "o" marks): 17
        // connections including the P->P loopback.
        let c = Connectivity::of(&NetworkConfig::mesh(dims()));
        assert_eq!(c.connection_count(), 17);
        assert_eq!(c.mux_inputs(Dir::P), 5);
        assert_eq!(c.mux_inputs(Dir::N), 4);
        assert_eq!(c.mux_inputs(Dir::S), 4);
        assert_eq!(c.mux_inputs(Dir::E), 2);
        assert_eq!(c.mux_inputs(Dir::W), 2);
        assert!(c.allows(Dir::P, Dir::P), "loopback");
        assert!(c.allows(Dir::W, Dir::N), "X-to-Y turn");
        assert!(!c.allows(Dir::N, Dir::E), "no Y-to-X turn under X-Y DOR");
        assert!(!c.allows(Dir::E, Dir::E), "no u-turn");
    }

    #[test]
    fn full_ruche_pop_matches_figure5() {
        let c = Connectivity::of(&NetworkConfig::full_ruche(dims(), 3, FullyPopulated));
        assert_eq!(c.connection_count(), 45);
        assert_eq!(c.max_mux_inputs(), 9);
        assert_eq!(c.mux_inputs(Dir::P), 9);
        assert_eq!(c.mux_inputs(Dir::RN), 7);
        assert_eq!(c.mux_inputs(Dir::RS), 7);
        assert_eq!(c.mux_inputs(Dir::N), 6);
        assert_eq!(c.mux_inputs(Dir::S), 6);
        assert_eq!(c.mux_inputs(Dir::E), 3);
        assert_eq!(c.mux_inputs(Dir::RE), 2);
        // The fully-populated turns straight off the highway:
        assert!(c.allows(Dir::RW, Dir::RS));
        assert!(c.allows(Dir::RW, Dir::S));
        assert!(c.allows(Dir::RW, Dir::P));
    }

    #[test]
    fn full_ruche_depop_matches_figure5() {
        let c = Connectivity::of(&NetworkConfig::full_ruche(dims(), 3, Depopulated));
        // Depopulation removes 16 connections (Figure 5).
        assert_eq!(c.connection_count(), 45 - 16);
        assert_eq!(c.max_mux_inputs(), 7);
        assert_eq!(c.mux_inputs(Dir::P), 7);
        // "the depopulation reduces the number of mux inputs for RS and RN
        // by 5" (§4.3).
        assert_eq!(c.mux_inputs(Dir::RN), 2);
        assert_eq!(c.mux_inputs(Dir::RS), 2);
        // No turns or ejection off the Ruche links:
        assert!(!c.allows(Dir::RW, Dir::RS));
        assert!(!c.allows(Dir::RW, Dir::S));
        assert!(!c.allows(Dir::RW, Dir::P));
        // Getting off the highway stays legal:
        assert!(c.allows(Dir::RW, Dir::E));
        assert!(c.allows(Dir::RW, Dir::RE));
    }

    #[test]
    fn depop_is_subset_of_pop() {
        let pop = Connectivity::of(&NetworkConfig::full_ruche(dims(), 3, FullyPopulated));
        let depop = Connectivity::of(&NetworkConfig::full_ruche(dims(), 3, Depopulated));
        for &i in pop.ports() {
            for &o in pop.ports() {
                if depop.allows(i, o) {
                    assert!(pop.allows(i, o), "{i}->{o} in depop but not pop");
                }
            }
        }
    }

    #[test]
    fn ruche_factor_does_not_change_connectivity() {
        let rf2 = Connectivity::of(&NetworkConfig::full_ruche(dims(), 2, FullyPopulated));
        let rf3 = Connectivity::of(&NetworkConfig::full_ruche(dims(), 3, FullyPopulated));
        assert_eq!(rf2, rf3);
    }

    #[test]
    fn torus_port_level_crossbar_matches_mesh() {
        // §3.1 / Figure 3: the VC router keeps a mesh-sized crossbar; the
        // VCs multiplex onto the same ports.
        let c = Connectivity::of(&NetworkConfig::torus(dims()));
        assert_eq!(c.connection_count(), 17);
        assert_eq!(c.max_mux_inputs(), 5);
    }

    #[test]
    fn multimesh_crossbar_is_two_meshes_with_shared_p() {
        let c = Connectivity::of(&NetworkConfig::multi_mesh(dims()));
        // Two 12-connection mesh cores + 9 connections from/to the shared
        // P port (P drives 8 first-hop directions + loopback), with each
        // mesh ejecting into P.
        assert_eq!(c.mux_inputs(Dir::P), 9);
        assert_eq!(c.connection_count(), 33);
        assert!(c.allows(Dir::P, Dir::E2));
        assert!(c.allows(Dir::W2, Dir::N2));
        assert!(!c.allows(Dir::W2, Dir::N), "meshes never cross");
    }

    #[test]
    fn half_ruche_crossbar_has_seven_ports() {
        let c = Connectivity::of(&NetworkConfig::half_ruche(dims(), 2, Depopulated));
        assert_eq!(c.ports().len(), 7);
        assert!(c.mux_inputs(Dir::RE) > 0);
        assert_eq!(c.mux_inputs(Dir::RN), 0);
    }

    #[test]
    fn edge_ports_add_no_new_transition_classes() {
        let plain = Connectivity::of(&NetworkConfig::mesh(dims()));
        let edged = Connectivity::of(&NetworkConfig::mesh(dims()).with_edge_memory_ports());
        assert_eq!(plain, edged);
    }

    #[test]
    fn ruche_one_uses_pop_crossbar_subset() {
        let pop = Connectivity::of(&NetworkConfig::full_ruche(dims(), 2, FullyPopulated));
        let one = Connectivity::of(&NetworkConfig::ruche_one(dims()));
        for &i in one.ports() {
            for &o in one.ports() {
                if one.allows(i, o) {
                    assert!(pop.allows(i, o), "{i}->{o}");
                }
            }
        }
        // Parity routing never mixes planes mid-flight except at
        // turns within the same plane.
        assert!(!one.allows(Dir::RW, Dir::E));
        assert!(one.allows(Dir::RW, Dir::RE));
        assert!(one.allows(Dir::RW, Dir::RS));
    }
}
