//! Coordinates, array dimensions, and port directions.
//!
//! The coordinate system follows the paper's tiled-layout convention:
//! `x` grows eastward (columns), `y` grows southward (rows), and the tile at
//! `(0, 0)` sits in the north-west corner. Network sizes are written
//! *columns × rows* (e.g. the paper's `16×8` array has 16 columns and
//! 8 rows, with memory tiles attached to the northern and southern edges).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A tile coordinate inside a rectangular array.
///
/// # Examples
///
/// ```
/// use ruche_noc::geometry::{Coord, Dims};
///
/// let dims = Dims::new(16, 8);
/// let a = Coord::new(3, 2);
/// let b = Coord::new(9, 7);
/// assert_eq!(a.manhattan(b), 6 + 5);
/// assert!(dims.contains(a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column index (grows eastward).
    pub x: u16,
    /// Row index (grows southward).
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate from column `x` and row `y`.
    pub const fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan (L1) distance to `other`.
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// Signed per-axis offsets `(dx, dy)` from `self` to `other`.
    pub fn delta(self, other: Coord) -> (i32, i32) {
        (
            other.x as i32 - self.x as i32,
            other.y as i32 - self.y as i32,
        )
    }

    /// Returns the coordinate shifted by `(dx, dy)`, or `None` if the result
    /// would leave `dims`.
    pub fn offset(self, dx: i32, dy: i32, dims: Dims) -> Option<Coord> {
        let x = self.x as i32 + dx;
        let y = self.y as i32 + dy;
        if x < 0 || y < 0 || x >= dims.cols as i32 || y >= dims.rows as i32 {
            None
        } else {
            Some(Coord::new(x as u16, y as u16))
        }
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl From<(u16, u16)> for Coord {
    fn from((x, y): (u16, u16)) -> Self {
        Coord::new(x, y)
    }
}

/// Rectangular array dimensions, written *columns × rows* as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dims {
    /// Number of columns (network width, the first number in "16×8").
    pub cols: u16,
    /// Number of rows (network height, the second number in "16×8").
    pub rows: u16,
}

impl Dims {
    /// Creates dimensions for a `cols × rows` array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: u16, rows: u16) -> Self {
        assert!(cols > 0 && rows > 0, "dimensions must be non-zero");
        Dims { cols, rows }
    }

    /// Total number of tiles.
    pub fn count(self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Whether `c` lies inside the array.
    pub fn contains(self, c: Coord) -> bool {
        c.x < self.cols && c.y < self.rows
    }

    /// Linear node index of `c` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn index(self, c: Coord) -> usize {
        assert!(self.contains(c), "{c} out of bounds for {self}");
        c.y as usize * self.cols as usize + c.x as usize
    }

    /// Inverse of [`Dims::index`].
    pub fn coord(self, idx: usize) -> Coord {
        debug_assert!(idx < self.count());
        Coord::new(
            (idx % self.cols as usize) as u16,
            (idx / self.cols as usize) as u16,
        )
    }

    /// Iterates over all coordinates in row-major order.
    pub fn iter(self) -> impl Iterator<Item = Coord> {
        let (cols, rows) = (self.cols, self.rows);
        (0..rows).flat_map(move |y| (0..cols).map(move |x| Coord::new(x, y)))
    }
}

impl fmt::Display for Dims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.cols, self.rows)
    }
}

/// The two array axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Horizontal (east–west, along a row).
    X,
    /// Vertical (north–south, along a column).
    Y,
}

impl Axis {
    /// The other axis.
    pub fn other(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }
}

/// Which axes carry long-range (Ruche or torus wrap) channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axes {
    /// Horizontal only (the paper's *Half Ruche* / *half-torus*).
    X,
    /// Vertical only.
    Y,
    /// Both (the paper's *Full Ruche* / full 2-D torus).
    Both,
}

impl Axes {
    /// Whether `axis` is included.
    pub fn includes(self, axis: Axis) -> bool {
        matches!(
            (self, axis),
            (Axes::Both, _) | (Axes::X, Axis::X) | (Axes::Y, Axis::Y)
        )
    }
}

/// Router port directions.
///
/// Local mesh directions use compass names; Ruche directions are prefixed
/// with `R` (the paper's RE/RW/RS/RN). Multi-mesh uses a second set of local
/// directions (`N2`..`W2`) for its second parallel mesh.
///
/// Port naming convention: an *input* port is named after the neighbor the
/// link comes **from** (a packet travelling east arrives on the `W` input),
/// and an *output* port after the neighbor it goes **to** (the same packet
/// leaves through the `E` output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// Processor (injection/ejection) port.
    P,
    /// Local north.
    N,
    /// Local south.
    S,
    /// Local east.
    E,
    /// Local west.
    W,
    /// Ruche north (long-range, spans `RF` tiles).
    RN,
    /// Ruche south.
    RS,
    /// Ruche east.
    RE,
    /// Ruche west.
    RW,
    /// Second-mesh north (multi-mesh only).
    N2,
    /// Second-mesh south.
    S2,
    /// Second-mesh east.
    E2,
    /// Second-mesh west.
    W2,
}

impl Dir {
    /// All directions, in canonical order.
    pub const ALL: [Dir; 13] = [
        Dir::P,
        Dir::N,
        Dir::S,
        Dir::E,
        Dir::W,
        Dir::RN,
        Dir::RS,
        Dir::RE,
        Dir::RW,
        Dir::N2,
        Dir::S2,
        Dir::E2,
        Dir::W2,
    ];

    /// The axis this direction travels along (`None` for the P port).
    pub fn axis(self) -> Option<Axis> {
        match self {
            Dir::P => None,
            Dir::E | Dir::W | Dir::RE | Dir::RW | Dir::E2 | Dir::W2 => Some(Axis::X),
            Dir::N | Dir::S | Dir::RN | Dir::RS | Dir::N2 | Dir::S2 => Some(Axis::Y),
        }
    }

    /// Whether this is a long-range Ruche direction.
    pub fn is_ruche(self) -> bool {
        matches!(self, Dir::RN | Dir::RS | Dir::RE | Dir::RW)
    }

    /// Whether this is a second-mesh direction (multi-mesh).
    pub fn is_second_mesh(self) -> bool {
        matches!(self, Dir::N2 | Dir::S2 | Dir::E2 | Dir::W2)
    }

    /// The direction a link *to* this output arrives *from* at the far end.
    ///
    /// A flit leaving through `E` (or `RE`) arrives at the neighbor's `W`
    /// (or `RW`) input.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::P => Dir::P,
            Dir::N => Dir::S,
            Dir::S => Dir::N,
            Dir::E => Dir::W,
            Dir::W => Dir::E,
            Dir::RN => Dir::RS,
            Dir::RS => Dir::RN,
            Dir::RE => Dir::RW,
            Dir::RW => Dir::RE,
            Dir::N2 => Dir::S2,
            Dir::S2 => Dir::N2,
            Dir::E2 => Dir::W2,
            Dir::W2 => Dir::E2,
        }
    }

    /// Per-axis displacement `(dx, dy)` for a hop through this output, given
    /// the Ruche factor `rf` (ignored for local directions).
    pub fn displacement(self, rf: u16) -> (i32, i32) {
        let r = rf as i32;
        match self {
            Dir::P => (0, 0),
            Dir::N | Dir::N2 => (0, -1),
            Dir::S | Dir::S2 => (0, 1),
            Dir::E | Dir::E2 => (1, 0),
            Dir::W | Dir::W2 => (-1, 0),
            Dir::RN => (0, -r),
            Dir::RS => (0, r),
            Dir::RE => (r, 0),
            Dir::RW => (-r, 0),
        }
    }

    /// Short ASCII name (for reports and debugging).
    pub fn name(self) -> &'static str {
        match self {
            Dir::P => "P",
            Dir::N => "N",
            Dir::S => "S",
            Dir::E => "E",
            Dir::W => "W",
            Dir::RN => "RN",
            Dir::RS => "RS",
            Dir::RE => "RE",
            Dir::RW => "RW",
            Dir::N2 => "N2",
            Dir::S2 => "S2",
            Dir::E2 => "E2",
            Dir::W2 => "W2",
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 4)), 7);
        assert_eq!(Coord::new(5, 5).manhattan(Coord::new(5, 5)), 0);
        assert_eq!(Coord::new(7, 0).manhattan(Coord::new(0, 7)), 14);
    }

    #[test]
    fn delta_is_signed() {
        assert_eq!(Coord::new(3, 4).delta(Coord::new(1, 9)), (-2, 5));
    }

    #[test]
    fn offset_respects_bounds() {
        let dims = Dims::new(4, 4);
        assert_eq!(Coord::new(0, 0).offset(1, 1, dims), Some(Coord::new(1, 1)));
        assert_eq!(Coord::new(0, 0).offset(-1, 0, dims), None);
        assert_eq!(Coord::new(3, 3).offset(1, 0, dims), None);
        assert_eq!(Coord::new(3, 3).offset(0, 1, dims), None);
    }

    #[test]
    fn index_roundtrip() {
        let dims = Dims::new(16, 8);
        for (i, c) in dims.iter().enumerate() {
            assert_eq!(dims.index(c), i);
            assert_eq!(dims.coord(i), c);
        }
        assert_eq!(dims.count(), 128);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        Dims::new(4, 4).index(Coord::new(4, 0));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_panic() {
        Dims::new(0, 4);
    }

    #[test]
    fn opposite_is_involution() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn displacement_matches_axis() {
        for d in Dir::ALL {
            let (dx, dy) = d.displacement(3);
            match d.axis() {
                None => assert_eq!((dx, dy), (0, 0)),
                Some(Axis::X) => {
                    assert_ne!(dx, 0);
                    assert_eq!(dy, 0);
                }
                Some(Axis::Y) => {
                    assert_eq!(dx, 0);
                    assert_ne!(dy, 0);
                }
            }
        }
    }

    #[test]
    fn ruche_displacement_scales_with_rf() {
        assert_eq!(Dir::RE.displacement(3), (3, 0));
        assert_eq!(Dir::RW.displacement(2), (-2, 0));
        assert_eq!(Dir::RS.displacement(4), (0, 4));
        assert_eq!(Dir::RN.displacement(1), (0, -1));
    }

    #[test]
    fn opposite_preserves_ruche_and_mesh_class() {
        for d in Dir::ALL {
            assert_eq!(d.is_ruche(), d.opposite().is_ruche());
            assert_eq!(d.is_second_mesh(), d.opposite().is_second_mesh());
        }
    }

    #[test]
    fn axes_inclusion() {
        assert!(Axes::Both.includes(Axis::X));
        assert!(Axes::Both.includes(Axis::Y));
        assert!(Axes::X.includes(Axis::X));
        assert!(!Axes::X.includes(Axis::Y));
        assert!(Axes::Y.includes(Axis::Y));
        assert!(!Axes::Y.includes(Axis::X));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Coord::new(3, 4).to_string(), "(3,4)");
        assert_eq!(Dims::new(16, 8).to_string(), "16x8");
        assert_eq!(Dir::RE.to_string(), "RE");
    }
}
