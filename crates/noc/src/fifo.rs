//! Bounded FIFO queues modelling router input buffers.
//!
//! The paper's routers are minimally buffered with two-element FIFOs
//! (§3.2); torus routers use one such FIFO per virtual channel.

use std::collections::VecDeque;

/// A bounded FIFO with fixed capacity.
///
/// # Examples
///
/// ```
/// use ruche_noc::fifo::Fifo;
///
/// let mut f: Fifo<u32> = Fifo::new(2);
/// assert!(f.try_push(1).is_ok());
/// assert!(f.try_push(2).is_ok());
/// assert!(f.try_push(3).is_err());
/// assert_eq!(f.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> Fifo<T> {
    /// Creates an empty FIFO with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO holds no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// The element at the head, if any.
    pub fn head(&self) -> Option<&T> {
        self.items.front()
    }

    /// Pushes to the tail.
    ///
    /// # Errors
    ///
    /// Returns the element back if the FIFO is full.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Pops from the head.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Iterates from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_order() {
        let mut f = Fifo::new(3);
        f.try_push("a").expect("fifo has free space");
        f.try_push("b").expect("fifo has free space");
        assert_eq!(f.len(), 2);
        assert_eq!(f.head(), Some(&"a"));
        assert_eq!(f.pop(), Some("a"));
        assert_eq!(f.pop(), Some("b"));
        assert_eq!(f.pop(), None);
        assert!(f.is_empty());
    }

    #[test]
    fn full_rejects_and_returns_item() {
        let mut f = Fifo::new(1);
        f.try_push(10).expect("fifo has free space");
        assert!(f.is_full());
        assert_eq!(f.free(), 0);
        assert_eq!(f.try_push(11), Err(11));
        assert_eq!(f.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        Fifo::<u8>::new(0);
    }

    #[test]
    fn iter_is_head_to_tail() {
        let mut f = Fifo::new(4);
        for i in 0..3 {
            f.try_push(i).expect("fifo has free space");
        }
        assert_eq!(f.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
