//! # ruche-noc
//!
//! A cycle-accurate network-on-chip simulator reproducing the evaluation
//! substrate of *Evaluating Ruche Networks: Physically Scalable,
//! Cost-Effective, Bandwidth-Flexible NoCs* (Jung & Taylor, ISCA 2025).
//!
//! The crate models, at the flit level with RTL-faithful per-cycle
//! semantics:
//!
//! * **Topologies** — 2-D mesh, 2× multi-mesh, folded 2-D torus (full and
//!   half), and Ruche networks of any Ruche Factor (Full, Half, and
//!   Ruche-One), including the folded-torus physical layout and the
//!   bisection-bandwidth analytics of the paper's Table 4.
//! * **Routing** — X-Y / Y-X DOR, the Ruche modified DOR (*ruche-first* /
//!   *local-first*) in fully-populated and depopulated variants, torus ring
//!   routing with dateline VC partitioning, and the parity-balanced
//!   Ruche-One and multi-mesh plane selection.
//! * **Routers** — wormhole routers with two-element FIFOs and per-output
//!   round-robin arbiters (mesh/Ruche), and 2-VC torus routers with
//!   credit-based flow control and a wavefront switch allocator.
//! * **Crossbars** — connectivity matrices derived from the routing
//!   relation, matching the paper's Figure 5 counts exactly.
//!
//! ## Quick start
//!
//! ```
//! use ruche_noc::prelude::*;
//!
//! // An 8×8 Full Ruche network with Ruche Factor 2, depopulated crossbars.
//! let cfg = NetworkConfig::full_ruche(Dims::new(8, 8), 2, CrossbarScheme::Depopulated);
//! let mut net = Network::new(cfg)?;
//!
//! // Send one packet corner to corner and watch it arrive.
//! let (src, dst) = (Coord::new(0, 0), Coord::new(7, 7));
//! net.enqueue(net.tile_endpoint(src), Flit::single(src, Dest::tile(dst), 0, 0));
//! while net.snapshot().ejected == 0 {
//!     net.step();
//! }
//! assert!(net.cycle() < 20);
//! # Ok::<(), ruche_noc::topology::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arbiter;
pub mod crossbar;
pub mod error;
pub mod fault;
pub mod fifo;
pub mod geometry;
pub mod packet;
pub mod pool;
pub mod router;
pub mod routing;
pub mod shard;
pub mod sim;
pub mod telemetry;
pub mod topology;
pub mod wire;

pub use crate::error::Error;

/// Convenient re-exports of the most used types.
pub mod prelude {
    pub use crate::crossbar::Connectivity;
    pub use crate::error::Error;
    pub use crate::fault::{FaultError, FaultModel, RouteTable};
    pub use crate::geometry::{Axes, Axis, Coord, Dims, Dir};
    pub use crate::packet::{Flit, FlitKind};
    pub use crate::pool::StepPool;
    pub use crate::routing::{
        compute_route, mean_route_hops, route_hops, try_walk_route, walk_route, Dest, EdgePort,
        RouteDecision, RouteError,
    };
    pub use crate::shard::{ShardMap, MAX_SHARDS};
    pub use crate::sim::{EndpointId, EndpointKind, LinkLoads, NetSnapshot, NetStats, Network};
    pub use crate::telemetry::{BlockCause, LinkVcStats, NetTelemetry};
    pub use crate::topology::{
        CrossbarScheme, DorOrder, NetworkConfig, NetworkConfigBuilder, StepMode, SurveyTopology,
        TopologyKind,
    };
}
