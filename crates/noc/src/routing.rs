//! Routing algorithms for all simulated topologies.
//!
//! Everything here is *per-hop route compute*, exactly as an RTL router's
//! decode stage would do it: given the flit's destination, the input port it
//! arrived on, and (for torus) its current virtual channel, decide the output
//! port and output VC. No state is carried in the network; deterministic
//! routing plus FIFO channels gives in-order delivery per (source,
//! destination) pair.
//!
//! * **Mesh / multi-mesh** — dimension-ordered routing (DOR); multi-mesh
//!   picks mesh 0 when the Manhattan distance at injection is even, mesh 1
//!   otherwise (§4.2).
//! * **Folded torus** — DOR over the per-axis rings (shortest ring
//!   direction), with dateline VC partitioning for deadlock freedom
//!   (Dally & Seitz): packets start on VC 0 and switch to VC 1 when they
//!   cross the dateline edge of a ring.
//! * **Ruche** — the paper's modified DOR (§3.2, Figure 4): *ruche-first*
//!   in the first dimension (board a Ruche link immediately, ride it for the
//!   bulk of the distance, finish on local links), *local-first* in the
//!   second (local hops until the remaining distance is a multiple of the
//!   Ruche Factor, then Ruche links to the destination). The depopulated
//!   variant additionally forbids turning or ejecting straight off a Ruche
//!   link, which removes 16 crossbar connections (Figure 5) at the cost of
//!   extra local hops.
//! * **Ruche-One** (`RF = 1`, fully populated) — parity balancing: packets
//!   whose total Manhattan distance is even ride the Ruche (second) plane
//!   end-to-end, odd distances ride the local plane (§3.2).

use crate::geometry::{Axis, Coord, Dims, Dir};
use crate::topology::{fold_logical, CrossbarScheme, NetworkConfig, TopologyKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which edge of the array an edge-attached memory endpoint sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgePort {
    /// Beyond the N port of a row-0 router.
    North,
    /// Beyond the S port of a last-row router.
    South,
}

/// A packet destination: a tile, or a memory endpoint on the array edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dest {
    /// The router at which the packet leaves the network. For edge
    /// destinations this is the edge-adjacent router in the target column.
    pub coord: Coord,
    /// `None` to eject through the P port; otherwise exit through the N/S
    /// edge channel toward the memory endpoint.
    pub edge: Option<EdgePort>,
}

impl Dest {
    /// Destination at a tile's processor port.
    pub const fn tile(coord: Coord) -> Self {
        Dest { coord, edge: None }
    }

    /// Destination at the north-edge memory endpoint of column `col`.
    pub const fn north_edge(col: u16) -> Self {
        Dest {
            coord: Coord::new(col, 0),
            edge: Some(EdgePort::North),
        }
    }

    /// Destination at the south-edge memory endpoint of column `col`, for an
    /// array with `rows` rows.
    pub const fn south_edge(col: u16, rows: u16) -> Self {
        Dest {
            coord: Coord::new(col, rows - 1),
            edge: Some(EdgePort::South),
        }
    }

    /// The ejection direction at `self.coord`.
    pub fn exit_dir(self) -> Dir {
        match self.edge {
            None => Dir::P,
            Some(EdgePort::North) => Dir::N,
            Some(EdgePort::South) => Dir::S,
        }
    }
}

impl fmt::Display for Dest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.edge {
            None => write!(f, "{}", self.coord),
            Some(EdgePort::North) => write!(f, "N-edge[{}]", self.coord.x),
            Some(EdgePort::South) => write!(f, "S-edge[{}]", self.coord.x),
        }
    }
}

/// The output of per-hop route computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Output port to request.
    pub out: Dir,
    /// Virtual channel on the outgoing channel (always 0 for wormhole
    /// networks; dateline-partitioned for torus rings).
    pub out_vc: u8,
}

/// How a packet is currently travelling along an axis, derived from its
/// input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AxisClass {
    /// Riding a Ruche channel of this axis.
    Ruche,
    /// Riding a local channel of this axis.
    Local,
    /// Injection, or travelling along the other axis (i.e. turning).
    Other,
}

fn axis_class(in_dir: Dir, axis: Axis) -> AxisClass {
    match in_dir.axis() {
        Some(a) if a == axis => {
            if in_dir.is_ruche() {
                AxisClass::Ruche
            } else {
                AxisClass::Local
            }
        }
        _ => AxisClass::Other,
    }
}

/// Signed distance from `here` to `dest` along `axis` (mesh-style axes).
fn axis_dist(here: Coord, dest: Coord, axis: Axis) -> i32 {
    match axis {
        Axis::X => dest.x as i32 - here.x as i32,
        Axis::Y => dest.y as i32 - here.y as i32,
    }
}

/// Local direction for moving `sign` along `axis` (sign must be ±1).
fn local_dir(axis: Axis, sign: i32) -> Dir {
    match (axis, sign > 0) {
        (Axis::X, true) => Dir::E,
        (Axis::X, false) => Dir::W,
        (Axis::Y, true) => Dir::S,
        (Axis::Y, false) => Dir::N,
    }
}

/// Ruche direction for moving `sign` along `axis`.
fn ruche_dir(axis: Axis, sign: i32) -> Dir {
    match (axis, sign > 0) {
        (Axis::X, true) => Dir::RE,
        (Axis::X, false) => Dir::RW,
        (Axis::Y, true) => Dir::RS,
        (Axis::Y, false) => Dir::RN,
    }
}

/// Second-mesh direction for moving `sign` along `axis` (multi-mesh).
fn mesh2_dir(axis: Axis, sign: i32) -> Dir {
    match (axis, sign > 0) {
        (Axis::X, true) => Dir::E2,
        (Axis::X, false) => Dir::W2,
        (Axis::Y, true) => Dir::S2,
        (Axis::Y, false) => Dir::N2,
    }
}

/// Computes the output port (and output VC) for a flit at router `here`
/// that arrived through `in_dir` on VC `in_vc`, heading for `dest`.
///
/// This is the single route-compute function shared by the simulator, the
/// crossbar-connectivity generator, and the analytic hop counters, so the
/// three can never disagree.
///
/// # Panics
///
/// Panics (in debug builds) if the configuration routes a packet to a
/// non-existent link — that would be a routing-algorithm bug, and the test
/// suite property-checks against it.
pub fn compute_route(
    cfg: &NetworkConfig,
    here: Coord,
    in_dir: Dir,
    in_vc: u8,
    dest: Dest,
) -> RouteDecision {
    debug_assert!(cfg.dims.contains(here) && cfg.dims.contains(dest.coord));
    match cfg.topology {
        TopologyKind::Mesh => mesh_route(cfg, here, dest),
        TopologyKind::MultiMesh => multimesh_route(cfg, here, in_dir, dest),
        TopologyKind::Torus { .. } => torus_route(cfg, here, in_dir, in_vc, dest),
        TopologyKind::Ruche { rf: 1, .. } => ruche_one_route(cfg, here, in_dir, dest),
        TopologyKind::Ruche { rf, .. } => ruche_route(cfg, here, in_dir, dest, rf),
    }
}

fn eject(dest: Dest) -> RouteDecision {
    RouteDecision {
        out: dest.exit_dir(),
        out_vc: 0,
    }
}

fn mesh_route(cfg: &NetworkConfig, here: Coord, dest: Dest) -> RouteDecision {
    for axis in [cfg.dor.first(), cfg.dor.second()] {
        let d = axis_dist(here, dest.coord, axis);
        if d != 0 {
            return RouteDecision {
                out: local_dir(axis, d.signum()),
                out_vc: 0,
            };
        }
    }
    eject(dest)
}

fn multimesh_route(cfg: &NetworkConfig, here: Coord, in_dir: Dir, dest: Dest) -> RouteDecision {
    // Mesh selection: even Manhattan distance at injection rides mesh 0,
    // odd rides mesh 1 (§4.2). Mid-route flits stay on their mesh, which the
    // input port tells us.
    let second = if in_dir == Dir::P {
        here.manhattan(dest.coord) % 2 == 1
    } else {
        in_dir.is_second_mesh()
    };
    for axis in [cfg.dor.first(), cfg.dor.second()] {
        let d = axis_dist(here, dest.coord, axis);
        if d != 0 {
            let out = if second {
                mesh2_dir(axis, d.signum())
            } else {
                local_dir(axis, d.signum())
            };
            return RouteDecision { out, out_vc: 0 };
        }
    }
    eject(dest)
}

fn torus_route(
    cfg: &NetworkConfig,
    here: Coord,
    in_dir: Dir,
    in_vc: u8,
    dest: Dest,
) -> RouteDecision {
    for axis in [cfg.dor.first(), cfg.dor.second()] {
        if cfg.torus_axis(axis) {
            let k = cfg.extent(axis);
            let (hp, dp) = match axis {
                Axis::X => (here.x, dest.coord.x),
                Axis::Y => (here.y, dest.coord.y),
            };
            let lh = fold_logical(hp, k);
            let ld = fold_logical(dp, k);
            if lh != ld {
                let fwd = (ld + k - lh) % k; // hops in ring+ direction
                let bwd = k - fwd;
                let take_fwd = match fwd.cmp(&bwd) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    // Tie-break deterministically so delivery stays in
                    // order per (src, dst) pair.
                    std::cmp::Ordering::Equal => ld.is_multiple_of(2),
                };
                let out = if take_fwd {
                    local_dir(axis, 1) // ring+: E or S port
                } else {
                    local_dir(axis, -1) // ring-: W or N port
                };
                // Dateline: the wrap edge of each unidirectional ring. A hop
                // from logical k-1 to 0 (ring+) or 0 to k-1 (ring-) crosses
                // it; the crossing channel and everything after use VC 1.
                let crossing = if take_fwd { lh == k - 1 } else { lh == 0 };
                let same_ring = axis_class(in_dir, axis) != AxisClass::Other;
                let out_vc = if (same_ring && in_vc == 1) || crossing {
                    1
                } else {
                    0
                };
                return RouteDecision { out, out_vc };
            }
        } else {
            let d = axis_dist(here, dest.coord, axis);
            if d != 0 {
                return RouteDecision {
                    out: local_dir(axis, d.signum()),
                    out_vc: 0,
                };
            }
        }
    }
    eject(dest)
}

fn ruche_route(
    cfg: &NetworkConfig,
    here: Coord,
    in_dir: Dir,
    dest: Dest,
    rf: u16,
) -> RouteDecision {
    let rf_i = rf as i32;
    let axes = [cfg.dor.first(), cfg.dor.second()];
    for (i, &axis) in axes.iter().enumerate() {
        let d = axis_dist(here, dest.coord, axis);
        if d == 0 {
            continue;
        }
        let has_ruche = cfg.ruche_axis(axis);
        let use_ruche = if !has_ruche {
            false
        } else if i == 0 {
            // Ruche-first: board the highway immediately. Depopulated
            // routers must arrive at the turn (or ejection) column on a
            // local link, so they leave the highway one exit early.
            match cfg.scheme {
                CrossbarScheme::FullyPopulated => d.abs() >= rf_i,
                CrossbarScheme::Depopulated => d.abs() > rf_i,
            }
        } else {
            // Local-first: local hops until the remaining distance is a
            // multiple of RF, then ride Ruche links to the destination.
            match axis_class(in_dir, axis) {
                AxisClass::Ruche => true,
                AxisClass::Local => d.abs() % rf_i == 0,
                AxisClass::Other => match cfg.scheme {
                    // Fully-populated routers can turn (or inject) straight
                    // onto a Ruche link; depopulated must take a local hop.
                    CrossbarScheme::FullyPopulated => d.abs() % rf_i == 0,
                    CrossbarScheme::Depopulated => false,
                },
            }
        };
        let out = if use_ruche {
            ruche_dir(axis, d.signum())
        } else {
            local_dir(axis, d.signum())
        };
        return RouteDecision { out, out_vc: 0 };
    }
    // Ejection. Depopulated routers cannot eject from a *first-dimension*
    // Ruche input (no P connection in Figure 5); the ruche-first rule above
    // guarantees those packets leave the highway before their last X hop.
    // Second-dimension (local-first) Ruche inputs do connect to P: packets
    // ride them to exactly distance zero.
    debug_assert!(
        cfg.scheme == CrossbarScheme::FullyPopulated
            || !(in_dir.is_ruche() && in_dir.axis() == Some(cfg.dor.first())),
        "depopulated router asked to eject from a first-dimension ruche input at {here}"
    );
    eject(dest)
}

fn ruche_one_route(cfg: &NetworkConfig, here: Coord, in_dir: Dir, dest: Dest) -> RouteDecision {
    // Parity balancing (§3.2): even total distance rides the Ruche plane,
    // odd rides the local plane, decided at injection and then carried by
    // which plane the packet arrives on.
    let ruche_plane = if in_dir == Dir::P {
        here.manhattan(dest.coord).is_multiple_of(2)
    } else {
        in_dir.is_ruche()
    };
    for axis in [cfg.dor.first(), cfg.dor.second()] {
        let d = axis_dist(here, dest.coord, axis);
        if d != 0 {
            let out = if ruche_plane && cfg.ruche_axis(axis) {
                ruche_dir(axis, d.signum())
            } else {
                local_dir(axis, d.signum())
            };
            return RouteDecision { out, out_vc: 0 };
        }
    }
    eject(dest)
}

/// One step of a routed path: the router traversed and the output taken.
pub type PathStep = (Coord, Dir);

/// Why a route walk failed (see [`try_walk_route_from`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The routing function emitted an output with no link behind it.
    LeftArray {
        /// Router at which the route fell off.
        at: Coord,
        /// The unconnected output it requested.
        out: Dir,
    },
    /// The route did not reach its destination within the hop bound.
    HopLimit {
        /// The bound that was exceeded ([`NetworkConfig::max_route_hops`]).
        limit: usize,
    },
    /// No surviving path reaches the destination: faults have partitioned
    /// it away (see [`crate::fault`]).
    Unreachable {
        /// The partitioned destination.
        dest: Dest,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::LeftArray { at, out } => {
                write!(f, "route left the array at {at} via {out}")
            }
            RouteError::HopLimit { limit } => {
                write!(f, "route did not terminate within {limit} hops")
            }
            RouteError::Unreachable { dest } => {
                write!(f, "no surviving route reaches {dest:?}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Walks the full route of a packet from `src` to `dest`, returning every
/// (router, output port) traversal including the final ejection.
///
/// # Panics
///
/// Panics if the route does not terminate within
/// [`NetworkConfig::max_route_hops`] hops — which would be a routing bug
/// (the test suite property-checks this). Use [`try_walk_route`] for the
/// non-panicking variant the static verifier builds on.
pub fn walk_route(cfg: &NetworkConfig, src: Coord, dest: Dest) -> Vec<PathStep> {
    walk_route_from(cfg, src, Dir::P, dest)
}

/// Like [`walk_route`], but the packet enters the first router through
/// `entry_dir` instead of being injected at P — this is how packets from
/// edge memory endpoints enter the array (through the N/S edge channel).
///
/// # Panics
///
/// Panics if the route does not terminate (see [`walk_route`]).
pub fn walk_route_from(
    cfg: &NetworkConfig,
    src: Coord,
    entry_dir: Dir,
    dest: Dest,
) -> Vec<PathStep> {
    match try_walk_route_from(cfg, src, entry_dir, dest) {
        Ok(path) => path,
        Err(e) => panic!("route from {src} to {dest}: {e}"),
    }
}

/// Non-panicking [`walk_route`]: returns the path, or the reason the route
/// is broken. This is the walker the `ruche-verify` static checker drives.
pub fn try_walk_route(
    cfg: &NetworkConfig,
    src: Coord,
    dest: Dest,
) -> Result<Vec<PathStep>, RouteError> {
    try_walk_route_from(cfg, src, Dir::P, dest)
}

/// Non-panicking [`walk_route_from`].
///
/// # Errors
///
/// Returns [`RouteError::LeftArray`] if the routing function emits an
/// output with no link behind it, or [`RouteError::HopLimit`] if the walk
/// exceeds [`NetworkConfig::max_route_hops`] without ejecting.
pub fn try_walk_route_from(
    cfg: &NetworkConfig,
    src: Coord,
    entry_dir: Dir,
    dest: Dest,
) -> Result<Vec<PathStep>, RouteError> {
    let mut here = src;
    let mut in_dir = entry_dir;
    let mut vc = 0u8;
    let mut path = Vec::new();
    let limit = cfg.max_route_hops();
    loop {
        let dec = compute_route(cfg, here, in_dir, vc, dest);
        path.push((here, dec.out));
        if here == dest.coord && dec.out == dest.exit_dir() {
            let is_edge_exit = dest.edge.is_some();
            if dec.out == Dir::P || is_edge_exit {
                break;
            }
        }
        let next = cfg.neighbor(here, dec.out).ok_or(RouteError::LeftArray {
            at: here,
            out: dec.out,
        })?;
        in_dir = dec.out.opposite();
        vc = dec.out_vc;
        here = next;
        if path.len() > limit {
            return Err(RouteError::HopLimit { limit });
        }
    }
    Ok(path)
}

/// Number of router traversals (network hops, including the ejection
/// traversal) on the route from `src` to `dest`. This is the *intrinsic*
/// (zero-load) latency of the route in cycles, given one cycle per hop.
pub fn route_hops(cfg: &NetworkConfig, src: Coord, dst: Coord) -> u32 {
    walk_route(cfg, src, Dest::tile(dst)).len() as u32
}

/// Average route hop count over all (src ≠ dst) tile pairs — the network's
/// average zero-load router-traversal count.
pub fn mean_route_hops(cfg: &NetworkConfig) -> f64 {
    let mut total = 0u64;
    let mut n = 0u64;
    for s in cfg.dims.iter() {
        for d in cfg.dims.iter() {
            if s != d {
                total += route_hops(cfg, s, d) as u64;
                n += 1;
            }
        }
    }
    total as f64 / n as f64
}

/// Returns the source coordinate adjacent to an edge endpoint — i.e. where
/// packets *from* that endpoint enter the array — plus the input direction
/// they arrive on.
pub fn edge_entry(dims: Dims, edge: EdgePort, col: u16) -> (Coord, Dir) {
    match edge {
        EdgePort::North => (Coord::new(col, 0), Dir::N),
        EdgePort::South => (Coord::new(col, dims.rows - 1), Dir::S),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::CrossbarScheme::{Depopulated, FullyPopulated};

    fn hops(cfg: &NetworkConfig, s: (u16, u16), d: (u16, u16)) -> u32 {
        route_hops(cfg, Coord::new(s.0, s.1), Coord::new(d.0, d.1))
    }

    fn dirs(cfg: &NetworkConfig, s: (u16, u16), d: (u16, u16)) -> Vec<Dir> {
        walk_route(cfg, Coord::new(s.0, s.1), Dest::tile(Coord::new(d.0, d.1)))
            .into_iter()
            .map(|(_, dir)| dir)
            .collect()
    }

    #[test]
    fn mesh_xy_routes_x_then_y() {
        let cfg = NetworkConfig::mesh(Dims::new(8, 8));
        assert_eq!(
            dirs(&cfg, (0, 0), (2, 2)),
            vec![Dir::E, Dir::E, Dir::S, Dir::S, Dir::P]
        );
        assert_eq!(hops(&cfg, (0, 0), (7, 7)), 15);
        assert_eq!(hops(&cfg, (3, 3), (3, 3)), 1); // ejection only
    }

    #[test]
    fn mesh_yx_routes_y_then_x() {
        let cfg = NetworkConfig::mesh(Dims::new(8, 8)).with_dor(crate::topology::DorOrder::YX);
        assert_eq!(
            dirs(&cfg, (0, 0), (2, 2)),
            vec![Dir::S, Dir::S, Dir::E, Dir::E, Dir::P]
        );
    }

    #[test]
    fn multimesh_parity_selects_mesh() {
        let cfg = NetworkConfig::multi_mesh(Dims::new(8, 8));
        // Even distance -> mesh 0; odd -> mesh 1.
        assert_eq!(dirs(&cfg, (0, 0), (1, 1))[0], Dir::E);
        assert_eq!(dirs(&cfg, (0, 0), (1, 0))[0], Dir::E2);
        // Whole route stays on the selected mesh.
        for d in dirs(&cfg, (0, 0), (2, 1)).iter().take(3) {
            assert!(d.is_second_mesh(), "odd-distance route uses mesh 1: {d}");
        }
    }

    #[test]
    fn ruche_first_rides_highway_pop() {
        let cfg = NetworkConfig::full_ruche(Dims::new(16, 16), 3, FullyPopulated);
        // dx=7: RE,RE,E (ruche-first: 2 ruche + 1 local), then eject.
        assert_eq!(
            dirs(&cfg, (0, 0), (7, 0)),
            vec![Dir::RE, Dir::RE, Dir::E, Dir::P]
        );
        // dx=6 (multiple of RF): pop rides ruche all the way.
        assert_eq!(dirs(&cfg, (0, 0), (6, 0)), vec![Dir::RE, Dir::RE, Dir::P]);
    }

    #[test]
    fn ruche_first_depop_gets_off_early() {
        let cfg = NetworkConfig::full_ruche(Dims::new(16, 16), 3, Depopulated);
        // dx=6: depop must arrive on a local link: RE then 3 locals.
        assert_eq!(
            dirs(&cfg, (0, 0), (6, 0)),
            vec![Dir::RE, Dir::E, Dir::E, Dir::E, Dir::P]
        );
        // dx=3: all local (cannot ride one ruche hop straight to ejection).
        assert_eq!(
            dirs(&cfg, (0, 0), (3, 0)),
            vec![Dir::E, Dir::E, Dir::E, Dir::P]
        );
        // dx=7: two ruche hops then one local — depop pays extra hops only
        // when the distance is an exact multiple of RF.
        assert_eq!(hops(&cfg, (0, 0), (7, 0)), 4);
    }

    #[test]
    fn local_first_in_second_dimension() {
        let cfg = NetworkConfig::full_ruche(Dims::new(16, 16), 3, FullyPopulated);
        // Pure-Y dy=7: local-first: 1 local (7 mod 3), then 2 ruche.
        assert_eq!(
            dirs(&cfg, (0, 0), (0, 7)),
            vec![Dir::S, Dir::RS, Dir::RS, Dir::P]
        );
        // dy=6 from injection, pop: straight onto ruche.
        assert_eq!(dirs(&cfg, (0, 0), (0, 6)), vec![Dir::RS, Dir::RS, Dir::P]);
    }

    #[test]
    fn local_first_depop_boards_from_local_only() {
        let cfg = NetworkConfig::full_ruche(Dims::new(16, 16), 3, Depopulated);
        // dy=6 from injection, depop: 3 locals then 1 ruche.
        assert_eq!(
            dirs(&cfg, (0, 0), (0, 6)),
            vec![Dir::S, Dir::S, Dir::S, Dir::RS, Dir::P]
        );
        // Turning traffic: dx=1, dy=6: turn arrives on local X, must take a
        // local Y hop before boarding.
        assert_eq!(
            dirs(&cfg, (0, 0), (1, 6)),
            vec![Dir::E, Dir::S, Dir::S, Dir::S, Dir::RS, Dir::P]
        );
    }

    #[test]
    fn pop_turns_straight_off_the_highway() {
        let cfg = NetworkConfig::full_ruche(Dims::new(16, 16), 3, FullyPopulated);
        // dx=6, dy=6: RE,RE then directly RS,RS (turn from ruche input onto
        // ruche output — the fully-populated connection).
        assert_eq!(
            dirs(&cfg, (0, 0), (6, 6)),
            vec![Dir::RE, Dir::RE, Dir::RS, Dir::RS, Dir::P]
        );
    }

    #[test]
    fn depop_routes_are_distance_preserving() {
        // Depopulated routing is non-minimal in hops but never in distance:
        // total tiles traversed equals the Manhattan distance.
        let cfg = NetworkConfig::full_ruche(Dims::new(16, 16), 3, Depopulated);
        for s in [(0u16, 0u16), (5, 3), (12, 15)] {
            for d in [(9u16, 9u16), (15, 0), (3, 14), (6, 6)] {
                let src = Coord::new(s.0, s.1);
                let dst = Coord::new(d.0, d.1);
                let tiles: i32 = walk_route(&cfg, src, Dest::tile(dst))
                    .iter()
                    .map(|&(_, dir)| {
                        let (dx, dy) = dir.displacement(3);
                        dx.abs() + dy.abs()
                    })
                    .sum();
                assert_eq!(tiles as u32, src.manhattan(dst), "{src}->{dst}");
            }
        }
    }

    #[test]
    fn pop_routes_are_hop_minimal_per_axis() {
        let rf = 3i64;
        let cfg = NetworkConfig::full_ruche(Dims::new(16, 16), rf as u16, FullyPopulated);
        for s in [(0u16, 0u16), (7, 2), (15, 15)] {
            for d in [(4u16, 9u16), (15, 0), (0, 13)] {
                let src = Coord::new(s.0, s.1);
                let dst = Coord::new(d.0, d.1);
                let dx = (dst.x as i64 - src.x as i64).abs();
                let dy = (dst.y as i64 - src.y as i64).abs();
                let min_hops = dx / rf + dx % rf + dy / rf + dy % rf + 1;
                assert_eq!(hops(&cfg, s, d) as i64, min_hops, "{src}->{dst}");
            }
        }
    }

    #[test]
    fn ruche_one_parity_balancing() {
        let cfg = NetworkConfig::ruche_one(Dims::new(8, 8));
        // Even total distance: entire path on ruche plane.
        let path = dirs(&cfg, (1, 1), (3, 3));
        assert!(
            path[..path.len() - 1].iter().all(|d| d.is_ruche()),
            "{path:?}"
        );
        // Odd total distance: entire path on local plane.
        let path = dirs(&cfg, (1, 1), (3, 4));
        assert!(
            path[..path.len() - 1].iter().all(|d| !d.is_ruche()),
            "{path:?}"
        );
        // Hop count equals mesh hop count either way.
        assert_eq!(hops(&cfg, (0, 0), (5, 5)), 11);
    }

    #[test]
    fn torus_takes_shortest_ring_direction() {
        let cfg = NetworkConfig::torus(Dims::new(8, 8));
        // Logical ring distance between physical 0 (l=0) and physical 1
        // (l=7) is 1 going ring-: one hop.
        assert_eq!(hops(&cfg, (0, 0), (1, 0)), 2);
        // Physical 0 to physical 6 (l=3): 3 hops ring+.
        assert_eq!(hops(&cfg, (0, 0), (6, 0)), 4);
        // Torus diameter is half the mesh's: max ring hops = k/2 per axis.
        let mesh = NetworkConfig::mesh(Dims::new(8, 8));
        assert_eq!(cfg.diameter_hops(), 4 + 4 + 1);
        assert_eq!(mesh.diameter_hops(), 7 + 7 + 1);
    }

    #[test]
    fn torus_nearest_physical_tile_is_logically_far() {
        // The paper's Jacobi pathology (§4.6): folded torus skips every
        // other tile, so some physically-adjacent tiles are ~k/2 ring hops
        // apart, and it worsens with size.
        for k in [8u16, 16, 32] {
            let cfg = NetworkConfig::torus(Dims::new(k, k));
            let worst = (0..k - 1)
                .map(|x| hops(&cfg, (x, 0), (x + 1, 0)))
                .max()
                .expect("torus rings have at least one neighbor pair");
            assert!(
                worst >= (k / 2 - 1) as u32,
                "k={k}: worst neighbor distance {worst}"
            );
        }
    }

    #[test]
    fn torus_dateline_vc_switch() {
        let cfg = NetworkConfig::torus(Dims::new(8, 8));
        // A route that wraps: physical 6 is logical 3; physical 1 is
        // logical 7; ring+ distance 4 (tie -> bwd since ld odd... fwd=4
        // bwd=4, ld=7 odd -> ring-). Check some route crosses the dateline
        // and switches to VC 1, and VCs never go 1 -> 0 within a ring.
        let mut saw_vc1 = false;
        for s in 0..8u16 {
            for d in 0..8u16 {
                if s == d {
                    continue;
                }
                let src = Coord::new(s, 0);
                let dst = Dest::tile(Coord::new(d, 0));
                let mut here = src;
                let mut in_dir = Dir::P;
                let mut vc = 0u8;
                let mut prev_vc = 0u8;
                loop {
                    let dec = compute_route(&cfg, here, in_dir, vc, dst);
                    if dec.out == Dir::P {
                        break;
                    }
                    if in_dir != Dir::P {
                        assert!(dec.out_vc >= prev_vc, "VC went backwards in ring");
                    }
                    if dec.out_vc == 1 {
                        saw_vc1 = true;
                    }
                    prev_vc = dec.out_vc;
                    here = cfg
                        .neighbor(here, dec.out)
                        .expect("route decisions follow wired links");
                    in_dir = dec.out.opposite();
                    vc = dec.out_vc;
                }
            }
        }
        assert!(saw_vc1, "some X-ring route must cross the dateline");
    }

    #[test]
    fn half_torus_y_is_plain_mesh() {
        let cfg = NetworkConfig::half_torus(Dims::new(8, 8));
        // Pure-Y route: plain DOR, VC 0 everywhere.
        let path = walk_route(&cfg, Coord::new(3, 0), Dest::tile(Coord::new(3, 5)));
        assert_eq!(path.len(), 6);
        assert!(path.iter().take(5).all(|&(_, d)| d == Dir::S));
    }

    #[test]
    fn edge_destinations_route_to_the_edge() {
        let cfg = NetworkConfig::mesh(Dims::new(8, 4)).with_edge_memory_ports();
        let path = walk_route(&cfg, Coord::new(2, 2), Dest::north_edge(5));
        // X first to column 5, then Y to row 0, then exit N.
        assert_eq!(
            path.last().expect("route is non-empty"),
            &(Coord::new(5, 0), Dir::N)
        );
        assert_eq!(path.len(), 3 + 2 + 1);
        let path = walk_route(&cfg, Coord::new(2, 2), Dest::south_edge(2, 4));
        assert_eq!(
            path.last().expect("route is non-empty"),
            &(Coord::new(2, 3), Dir::S)
        );
    }

    #[test]
    fn edge_entry_positions() {
        let dims = Dims::new(8, 4);
        assert_eq!(
            edge_entry(dims, EdgePort::North, 3),
            (Coord::new(3, 0), Dir::N)
        );
        assert_eq!(
            edge_entry(dims, EdgePort::South, 3),
            (Coord::new(3, 3), Dir::S)
        );
    }

    #[test]
    fn half_ruche_yx_uses_local_first_on_x() {
        // Response-network pattern: YX order on a Half Ruche (X) network.
        let cfg = NetworkConfig::half_ruche(Dims::new(16, 8), 3, FullyPopulated)
            .with_dor(crate::topology::DorOrder::YX);
        // dy=2, dx=6: Y locals first, then X local-first: with pop, dx ≡ 0
        // (mod 3) boards ruche straight from the turn.
        assert_eq!(
            dirs(&cfg, (0, 0), (6, 2)),
            vec![Dir::S, Dir::S, Dir::RE, Dir::RE, Dir::P]
        );
    }

    #[test]
    fn all_pairs_terminate_on_every_topology() {
        let dims = Dims::new(7, 5); // non-power-of-two, rectangular
        let cfgs = vec![
            NetworkConfig::mesh(dims),
            NetworkConfig::multi_mesh(dims),
            NetworkConfig::torus(dims),
            NetworkConfig::half_torus(dims),
            NetworkConfig::ruche_one(dims),
            NetworkConfig::full_ruche(dims, 2, FullyPopulated),
            NetworkConfig::full_ruche(dims, 2, Depopulated),
            NetworkConfig::full_ruche(dims, 3, FullyPopulated),
            NetworkConfig::full_ruche(dims, 3, Depopulated),
            NetworkConfig::half_ruche(dims, 3, Depopulated),
        ];
        for cfg in cfgs {
            cfg.validate().expect("paper-grid config is valid");
            for s in dims.iter() {
                for d in dims.iter() {
                    let path = walk_route(&cfg, s, Dest::tile(d));
                    assert_eq!(
                        path.last().expect("route is non-empty").1,
                        Dir::P,
                        "{} {s}->{d}",
                        cfg.label()
                    );
                }
            }
        }
    }

    #[test]
    fn mean_hops_decrease_with_ruche_factor() {
        let dims = Dims::new(16, 16);
        let mesh = mean_route_hops(&NetworkConfig::mesh(dims));
        let r2 = mean_route_hops(&NetworkConfig::full_ruche(dims, 2, FullyPopulated));
        let r3 = mean_route_hops(&NetworkConfig::full_ruche(dims, 3, FullyPopulated));
        assert!(r2 < mesh, "ruche2 {r2} < mesh {mesh}");
        assert!(r3 < r2, "ruche3 {r3} < ruche2 {r2}");
    }
}
