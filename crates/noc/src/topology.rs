//! Network topologies, their port maps, link tables, and static analytics.
//!
//! The four simulated topology families are the ones the paper evaluates:
//!
//! * **2-D mesh** — the baseline.
//! * **2× multi-mesh** — two parallel meshes sharing injection (Figure 3a).
//! * **Folded 2-D torus** — full (both axes) or *half-torus* (X axis only).
//!   Folded torus links are modeled in *physical* coordinates: every ring
//!   link spans two tiles except at the fold ends, which is what makes
//!   physically-adjacent tiles logically distant (the paper's Jacobi
//!   pathology, §4.6).
//! * **Ruche networks** — mesh plus equidistant long-range channels of skip
//!   distance `RF` (the *Ruche Factor*) on one axis (*Half Ruche*) or both
//!   (*Full Ruche*). `RF = 1` is *Ruche-One*: two parallel meshes with
//!   parity-balanced routing (Figure 1f).

use crate::geometry::{Axes, Axis, Coord, Dims, Dir};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Topology family of a network instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Plain 2-D mesh.
    Mesh,
    /// Two parallel 2-D meshes; injections pick a mesh by Manhattan-distance
    /// parity (Figure 3a and §4.2).
    MultiMesh,
    /// Folded 2-D torus with wraparound rings on `axes`; deadlock freedom
    /// via 2 VCs and dateline partitioning (Dally & Seitz).
    Torus {
        /// Which axes carry torus rings (X only = the paper's half-torus).
        axes: Axes,
    },
    /// Ruche network: mesh plus long-range channels of skip `rf` on `axes`.
    Ruche {
        /// The Ruche Factor (skip distance of Ruche channels), ≥ 1.
        rf: u16,
        /// Which axes carry Ruche channels (X only = Half Ruche).
        axes: Axes,
    },
}

impl TopologyKind {
    /// Short configuration name used in reports (matches the paper's labels,
    /// modulo the crossbar scheme suffix added by [`NetworkConfig::label`]).
    pub fn name(self) -> String {
        match self {
            TopologyKind::Mesh => "mesh".to_string(),
            TopologyKind::MultiMesh => "multi-mesh".to_string(),
            TopologyKind::Torus { axes: Axes::Both } => "torus".to_string(),
            TopologyKind::Torus { .. } => "half-torus".to_string(),
            TopologyKind::Ruche {
                rf,
                axes: Axes::Both,
            } => format!("ruche{rf}"),
            TopologyKind::Ruche { rf, .. } => format!("half-ruche{rf}"),
        }
    }

    /// The Ruche Factor, or 0 for non-Ruche topologies.
    pub fn ruche_factor(self) -> u16 {
        match self {
            TopologyKind::Ruche { rf, .. } => rf,
            _ => 0,
        }
    }

    /// Axes that carry long-range channels (Ruche or torus wrap links).
    pub fn long_range_axes(self) -> Option<Axes> {
        match self {
            TopologyKind::Mesh | TopologyKind::MultiMesh => None,
            TopologyKind::Torus { axes } | TopologyKind::Ruche { axes, .. } => Some(axes),
        }
    }
}

/// Crossbar population scheme for Ruche routers (Figure 4/5).
///
/// Fully-populated routers allow direct turns from Ruche inputs into the
/// second dimension; depopulated routers force packets off the Ruche links
/// onto local links before turning (or ejecting), trading a little latency
/// for a 40% smaller crossbar (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrossbarScheme {
    /// All turns allowed straight off the Ruche links ("pop").
    FullyPopulated,
    /// Turns only from local links ("depop").
    Depopulated,
}

impl CrossbarScheme {
    /// The paper's short label.
    pub fn label(self) -> &'static str {
        match self {
            CrossbarScheme::FullyPopulated => "pop",
            CrossbarScheme::Depopulated => "depop",
        }
    }
}

/// Dimension-ordered-routing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DorOrder {
    /// Route X first, then Y (the paper's default; request traffic).
    XY,
    /// Route Y first, then X (response traffic in the manycore, §4).
    YX,
}

impl DorOrder {
    /// The first-routed axis.
    pub fn first(self) -> Axis {
        match self {
            DorOrder::XY => Axis::X,
            DorOrder::YX => Axis::Y,
        }
    }

    /// The second-routed axis.
    pub fn second(self) -> Axis {
        self.first().other()
    }
}

/// How the simulation clock advances between interesting cycles.
///
/// Every mode produces **byte-identical** results — snapshots, ejection
/// traces, link loads, telemetry exports, and repro artifacts never depend
/// on the step mode, which is why the knob is excluded from the config's
/// `Debug` rendering (the sweep-cache key). The modes only trade how much
/// wall-clock time provably-empty cycles cost (see `docs/EVENTS.md`):
///
/// * [`CycleAccurate`](StepMode::CycleAccurate) executes every cycle,
///   including quiescent ones — the reference engine.
/// * [`EventDriven`](StepMode::EventDriven) lets drivers fast-forward the
///   clock across spans in which the network provably does nothing
///   (`Network::next_event_cycle`), paying O(1) per span instead of O(span).
/// * [`Auto`](StepMode::Auto) behaves like `EventDriven` but only starts
///   probing for skippable spans after a short idle streak, so saturated
///   runs never pay the quiescence checks.
///
/// The mode composes freely with the `step_threads` knob: a sharded
/// network tracks per-shard activity, so under the event wheel each
/// shard's band contributes its own next-event cycle
/// (`Network::shard_next_event_cycle`) and the global skip horizon is
/// their minimum, while shards whose band is idle sleep through the
/// stepped cycles entirely (they are masked out of the worker-pool epochs
/// and woken by the first cross-band push or credit addressed to them).
/// Every point of the (mode × threads) grid is asserted byte-identical by
/// `tests/step_mode_determinism.rs` and benchmarked by `step_bench`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StepMode {
    /// Execute every cycle (the reference engine; the default).
    CycleAccurate,
    /// Fast-forward across provably quiescent spans.
    EventDriven,
    /// `EventDriven` gated behind a deterministic idle-streak heuristic.
    Auto,
}

impl StepMode {
    /// The spelling accepted by `RUCHE_STEP_MODE` / `--step-mode`.
    pub fn name(self) -> &'static str {
        match self {
            StepMode::CycleAccurate => "cycle",
            StepMode::EventDriven => "event",
            StepMode::Auto => "auto",
        }
    }
}

impl std::str::FromStr for StepMode {
    type Err = ParseStepModeError;

    /// Parses the CLI/environment spellings: `cycle` (or `cycle-accurate`),
    /// `event` (or `event-driven`), and `auto`, case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "cycle" | "cycle-accurate" => Ok(StepMode::CycleAccurate),
            "event" | "event-driven" => Ok(StepMode::EventDriven),
            "auto" => Ok(StepMode::Auto),
            _ => Err(ParseStepModeError {
                input: s.to_string(),
            }),
        }
    }
}

/// Error from parsing a [`StepMode`] spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStepModeError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseStepModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown step mode {:?}; expected cycle, event, or auto",
            self.input
        )
    }
}

impl std::error::Error for ParseStepModeError {}

/// Errors produced by [`NetworkConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Ruche factor of zero is meaningless.
    ZeroRucheFactor,
    /// Ruche-One (`rf == 1`) requires a fully-populated crossbar (§3.2).
    RucheOneNeedsFullyPopulated,
    /// The Ruche factor must leave room for at least one Ruche link.
    RucheFactorTooLarge {
        /// Offending axis.
        axis: Axis,
        /// Axis extent.
        extent: u16,
        /// Configured Ruche factor.
        rf: u16,
    },
    /// Torus rings need at least three nodes for the folded layout and
    /// dateline scheme to be meaningful.
    TorusRingTooShort {
        /// Offending axis.
        axis: Axis,
        /// Axis extent.
        extent: u16,
    },
    /// Edge memory ports require a mesh-like (non-wraparound) Y axis.
    EdgePortsNeedOpenYAxis,
    /// Input FIFOs must hold at least one flit.
    ZeroFifoDepth,
    /// A 1×1 array has no channels to route over; the analytics (mean
    /// hop counts, bisection ratios) are undefined on it. Degenerate
    /// *lines* (1×N / N×1) are supported; a single tile is not.
    SingleTile,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroRucheFactor => write!(f, "ruche factor must be at least 1"),
            ConfigError::RucheOneNeedsFullyPopulated => {
                write!(
                    f,
                    "ruche-one (RF = 1) works only on fully-populated routers"
                )
            }
            ConfigError::RucheFactorTooLarge { axis, extent, rf } => write!(
                f,
                "ruche factor {rf} leaves no links on {axis:?} axis of extent {extent}"
            ),
            ConfigError::TorusRingTooShort { axis, extent } => write!(
                f,
                "torus ring on {axis:?} axis needs at least 3 nodes, got {extent}"
            ),
            ConfigError::EdgePortsNeedOpenYAxis => {
                write!(f, "north/south edge ports require a non-wraparound Y axis")
            }
            ConfigError::ZeroFifoDepth => write!(f, "input FIFO depth must be at least 1"),
            ConfigError::SingleTile => {
                write!(f, "a network needs at least two tiles (got a 1x1 array)")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full static description of a network instance.
///
/// # Examples
///
/// ```
/// use ruche_noc::prelude::*;
///
/// let cfg = NetworkConfig::full_ruche(Dims::new(8, 8), 2, CrossbarScheme::Depopulated);
/// assert_eq!(cfg.label(), "ruche2-depop");
/// cfg.validate()?;
/// # Ok::<(), ruche_noc::topology::ConfigError>(())
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Array dimensions (columns × rows).
    pub dims: Dims,
    /// Topology family.
    pub topology: TopologyKind,
    /// Crossbar population scheme (meaningful for Ruche; others ignore it).
    pub scheme: CrossbarScheme,
    /// Dimension order for routing.
    pub dor: DorOrder,
    /// Input FIFO depth in flits (per VC for torus routers). The paper's
    /// default is minimally-buffered two-element FIFOs.
    pub fifo_depth: usize,
    /// Channel width in bits (used by the physical models; the flit-level
    /// simulator is width-agnostic).
    pub channel_width_bits: u32,
    /// Attach memory endpoints to the free N ports of row 0 and S ports of
    /// the last row (the paper's all-to-edge manycore arrangement, §4).
    pub edge_memory_ports: bool,
    /// Extra pipeline stages per hop (0 = the paper's single-cycle
    /// routers). §3.2 argues VC routers must pipeline to reach competitive
    /// cycle times, which hurts hop latency *and* throughput through the
    /// lengthened credit loop — set this on a torus configuration to
    /// reproduce that effect (see the `ablations` bench).
    pub pipeline_stages: u32,
    /// Implement edge-router crossbar turns for *both* traffic directions
    /// (to-edge and from-edge). By default each network's crossbar only
    /// carries the direction its DOR order implies (requests X-Y to the
    /// edges, responses Y-X from them, §4); a response network routed X-Y
    /// needs the extra turns — used by the DOR-order ablation.
    pub edge_bidirectional: bool,
    /// Worker threads for `Network::step` (0 = serial unless the
    /// `RUCHE_STEP_THREADS` environment variable overrides it). The grid is
    /// partitioned into that many contiguous row bands stepped in parallel;
    /// results are byte-identical at any thread count, so this knob is a
    /// pure performance trade and is deliberately **excluded** from the
    /// config's `Debug` rendering (which the sweep cache uses as its key).
    pub step_threads: usize,
    /// Clock-advance mode for `Network` drivers (`None` = defer to the
    /// `RUCHE_STEP_MODE` environment variable, falling back to
    /// [`StepMode::CycleAccurate`]). Like [`step_threads`]
    /// (NetworkConfig::step_threads), this is a pure performance knob —
    /// results are byte-identical in every mode — and is likewise
    /// **excluded** from the `Debug` rendering / sweep-cache key.
    pub step_mode: Option<StepMode>,
}

impl fmt::Debug for NetworkConfig {
    /// Matches the former derived rendering field-for-field but omits
    /// [`step_threads`](NetworkConfig::step_threads) and
    /// [`step_mode`](NetworkConfig::step_mode): results are byte-identical
    /// at any thread count and in any step mode, and `crates/bench` keys
    /// its result cache on this rendering, so configurations differing only
    /// in those knobs must share a key (and previously cached entries must
    /// stay valid).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetworkConfig")
            .field("dims", &self.dims)
            .field("topology", &self.topology)
            .field("scheme", &self.scheme)
            .field("dor", &self.dor)
            .field("fifo_depth", &self.fifo_depth)
            .field("channel_width_bits", &self.channel_width_bits)
            .field("edge_memory_ports", &self.edge_memory_ports)
            .field("pipeline_stages", &self.pipeline_stages)
            .field("edge_bidirectional", &self.edge_bidirectional)
            .finish()
    }
}

impl NetworkConfig {
    /// Default FIFO depth (two-element, §3.2).
    pub const DEFAULT_FIFO_DEPTH: usize = 2;
    /// Default channel width used throughout the paper's area study.
    pub const DEFAULT_CHANNEL_BITS: u32 = 128;

    /// Starts a [`NetworkConfigBuilder`] with paper defaults for a given
    /// topology. Prefer this over field twiddling: the builder's
    /// [`build`](NetworkConfigBuilder::build) validates eagerly, so a bad
    /// combination fails where it is written, not when a `Network` is
    /// constructed from it later.
    pub fn builder(dims: Dims, topology: TopologyKind) -> NetworkConfigBuilder {
        NetworkConfigBuilder {
            cfg: NetworkConfig {
                dims,
                topology,
                scheme: CrossbarScheme::Depopulated,
                dor: DorOrder::XY,
                fifo_depth: Self::DEFAULT_FIFO_DEPTH,
                channel_width_bits: Self::DEFAULT_CHANNEL_BITS,
                edge_memory_ports: false,
                pipeline_stages: 0,
                edge_bidirectional: false,
                step_threads: 0,
                step_mode: None,
            },
        }
    }

    /// Base configuration with paper defaults for a given topology.
    ///
    /// Infallible and unvalidated — [`NetworkConfig::validate`] (or the
    /// builder path) decides whether the combination is legal.
    pub fn new(dims: Dims, topology: TopologyKind) -> Self {
        Self::builder(dims, topology).build_unvalidated()
    }

    /// Plain 2-D mesh.
    pub fn mesh(dims: Dims) -> Self {
        Self::new(dims, TopologyKind::Mesh)
    }

    /// 2× multi-mesh.
    pub fn multi_mesh(dims: Dims) -> Self {
        Self::new(dims, TopologyKind::MultiMesh)
    }

    /// Full (both-axes) folded torus.
    pub fn torus(dims: Dims) -> Self {
        Self::new(dims, TopologyKind::Torus { axes: Axes::Both })
    }

    /// Half-torus: folded torus rings on the X axis only.
    pub fn half_torus(dims: Dims) -> Self {
        Self::new(dims, TopologyKind::Torus { axes: Axes::X })
    }

    /// Full Ruche with the given Ruche Factor and crossbar scheme.
    pub fn full_ruche(dims: Dims, rf: u16, scheme: CrossbarScheme) -> Self {
        Self::builder(
            dims,
            TopologyKind::Ruche {
                rf,
                axes: Axes::Both,
            },
        )
        .scheme(scheme)
        .build_unvalidated()
    }

    /// Half Ruche (X-axis Ruche channels) with the given factor and scheme.
    pub fn half_ruche(dims: Dims, rf: u16, scheme: CrossbarScheme) -> Self {
        Self::builder(dims, TopologyKind::Ruche { rf, axes: Axes::X })
            .scheme(scheme)
            .build_unvalidated()
    }

    /// Ruche-One: `RF = 1`, fully populated, parity-balanced routing.
    pub fn ruche_one(dims: Dims) -> Self {
        Self::full_ruche(dims, 1, CrossbarScheme::FullyPopulated)
    }

    /// Sets the DOR order (builder style).
    pub fn with_dor(self, dor: DorOrder) -> Self {
        NetworkConfigBuilder::from(self)
            .dor(dor)
            .build_unvalidated()
    }

    /// Enables edge memory endpoints (builder style).
    pub fn with_edge_memory_ports(self) -> Self {
        NetworkConfigBuilder::from(self)
            .edge_memory_ports(true)
            .build_unvalidated()
    }

    /// Sets the input FIFO depth (builder style).
    pub fn with_fifo_depth(self, depth: usize) -> Self {
        NetworkConfigBuilder::from(self)
            .fifo_depth(depth)
            .build_unvalidated()
    }

    /// Sets extra per-hop pipeline stages (builder style).
    pub fn with_pipeline_stages(self, stages: u32) -> Self {
        NetworkConfigBuilder::from(self)
            .pipeline_stages(stages)
            .build_unvalidated()
    }

    /// Sets the step worker-thread count (builder style).
    pub fn with_step_threads(self, threads: usize) -> Self {
        NetworkConfigBuilder::from(self)
            .step_threads(threads)
            .build_unvalidated()
    }

    /// Sets the clock-advance mode (builder style).
    pub fn with_step_mode(self, mode: StepMode) -> Self {
        NetworkConfigBuilder::from(self)
            .step_mode(mode)
            .build_unvalidated()
    }

    /// Report label in the paper's style, e.g. `ruche2-depop`, `torus`.
    pub fn label(&self) -> String {
        match self.topology {
            TopologyKind::Ruche { rf, .. } if rf > 1 => {
                format!("{}-{}", self.topology.name(), self.scheme.label())
            }
            TopologyKind::Ruche { .. } => format!("{}-pop", self.topology.name()),
            _ => self.topology.name(),
        }
    }

    /// Checks the configuration for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.fifo_depth == 0 {
            return Err(ConfigError::ZeroFifoDepth);
        }
        if self.dims.count() < 2 {
            return Err(ConfigError::SingleTile);
        }
        match self.topology {
            TopologyKind::Ruche { rf, axes } => {
                if rf == 0 {
                    return Err(ConfigError::ZeroRucheFactor);
                }
                if rf == 1 && self.scheme != CrossbarScheme::FullyPopulated {
                    return Err(ConfigError::RucheOneNeedsFullyPopulated);
                }
                for axis in [Axis::X, Axis::Y] {
                    if axes.includes(axis) {
                        let extent = self.extent(axis);
                        if rf >= extent {
                            return Err(ConfigError::RucheFactorTooLarge { axis, extent, rf });
                        }
                    }
                }
            }
            TopologyKind::Torus { axes } => {
                for axis in [Axis::X, Axis::Y] {
                    if axes.includes(axis) {
                        let extent = self.extent(axis);
                        if extent < 3 {
                            return Err(ConfigError::TorusRingTooShort { axis, extent });
                        }
                    }
                }
                if self.edge_memory_ports && axes.includes(Axis::Y) {
                    return Err(ConfigError::EdgePortsNeedOpenYAxis);
                }
            }
            TopologyKind::Mesh | TopologyKind::MultiMesh => {}
        }
        Ok(())
    }

    /// Array extent along `axis`.
    pub fn extent(&self, axis: Axis) -> u16 {
        match axis {
            Axis::X => self.dims.cols,
            Axis::Y => self.dims.rows,
        }
    }

    /// Whether `axis` has wraparound torus rings.
    pub fn torus_axis(&self, axis: Axis) -> bool {
        matches!(self.topology, TopologyKind::Torus { axes } if axes.includes(axis))
    }

    /// Whether `axis` carries Ruche channels.
    pub fn ruche_axis(&self, axis: Axis) -> bool {
        matches!(self.topology, TopologyKind::Ruche { axes, .. } if axes.includes(axis))
    }

    /// The router port directions for this topology, canonical order.
    ///
    /// Input and output port sets are identical (every channel is paired).
    pub fn ports(&self) -> Vec<Dir> {
        let mut ports = vec![Dir::P, Dir::N, Dir::S, Dir::E, Dir::W];
        match self.topology {
            TopologyKind::Mesh | TopologyKind::Torus { .. } => {}
            TopologyKind::MultiMesh => {
                ports.extend([Dir::N2, Dir::S2, Dir::E2, Dir::W2]);
            }
            TopologyKind::Ruche { axes, .. } => {
                if axes.includes(Axis::Y) {
                    ports.extend([Dir::RN, Dir::RS]);
                }
                if axes.includes(Axis::X) {
                    ports.extend([Dir::RE, Dir::RW]);
                }
            }
        }
        ports
    }

    /// Number of virtual channels on a given port.
    ///
    /// Torus routers carry 2 VCs (dateline partitioning) on ring-axis ports;
    /// every other port and every other router is wormhole (1 VC). This
    /// matches the paper's capacity accounting: a Full Ruche router and a
    /// 2-VC torus router hold the same total number of flit slots (§3.1).
    pub fn vcs(&self, port: Dir) -> usize {
        match (self.topology, port.axis()) {
            (TopologyKind::Torus { axes }, Some(axis)) if axes.includes(axis) => 2,
            _ => 1,
        }
    }

    /// Whether this network uses the VC-router microarchitecture.
    pub fn is_vc_router(&self) -> bool {
        matches!(self.topology, TopologyKind::Torus { .. })
    }

    /// The neighbor reached through output `dir` of router `at`, or `None`
    /// if that output is unconnected (array edge, or a direction this
    /// topology does not have).
    ///
    /// Folded-torus ring links are returned in physical coordinates: the
    /// ring successor of a node is two tiles away except at the fold ends.
    pub fn neighbor(&self, at: Coord, dir: Dir) -> Option<Coord> {
        let axis = dir.axis()?;
        match self.topology {
            TopologyKind::Torus { axes } if axes.includes(axis) && !dir.is_ruche() => {
                // Ring link in the folded layout. `E`/`S` step to the next
                // logical ring position, `W`/`N` to the previous.
                let extent = self.extent(axis);
                let pos = match axis {
                    Axis::X => at.x,
                    Axis::Y => at.y,
                };
                let l = fold_logical(pos, extent);
                let next = match dir {
                    Dir::E | Dir::S => (l + 1) % extent,
                    Dir::W | Dir::N => (l + extent - 1) % extent,
                    _ => return None,
                };
                let p = fold_physical(next, extent);
                Some(match axis {
                    Axis::X => Coord::new(p, at.y),
                    Axis::Y => Coord::new(at.x, p),
                })
            }
            TopologyKind::Ruche { rf, axes } => {
                if dir.is_second_mesh() {
                    return None;
                }
                if dir.is_ruche() && !axes.includes(axis) {
                    return None;
                }
                let (dx, dy) = dir.displacement(rf);
                at.offset(dx, dy, self.dims)
            }
            TopologyKind::MultiMesh => {
                if dir.is_ruche() {
                    return None;
                }
                let (dx, dy) = dir.displacement(0);
                at.offset(dx, dy, self.dims)
            }
            _ => {
                if dir.is_ruche() || dir.is_second_mesh() {
                    return None;
                }
                let (dx, dy) = dir.displacement(0);
                at.offset(dx, dy, self.dims)
            }
        }
    }

    /// Unidirectional channels crossing the vertical mid-cut (the
    /// *horizontal bisection bandwidth* of Table 4, in channels).
    pub fn horizontal_bisection_channels(&self) -> u32 {
        self.bisection_channels(Axis::X)
    }

    /// Unidirectional channels crossing the horizontal mid-cut.
    pub fn vertical_bisection_channels(&self) -> u32 {
        self.bisection_channels(Axis::Y)
    }

    /// Counts unidirectional channels that cross the mid-cut perpendicular
    /// to `axis`, by enumerating every link in the network.
    pub fn bisection_channels(&self, axis: Axis) -> u32 {
        let cut = self.extent(axis) / 2; // cut between `cut - 1` and `cut`
        let before = |c: Coord| match axis {
            Axis::X => c.x < cut,
            Axis::Y => c.y < cut,
        };
        let mut count = 0;
        for at in self.dims.iter() {
            for dir in self.ports() {
                if dir == Dir::P {
                    continue;
                }
                if let Some(to) = self.neighbor(at, dir) {
                    if before(at) != before(to) {
                        count += 1; // each (router, output) is one channel
                    }
                }
            }
        }
        count
    }

    /// Memory-tile bandwidth in channels: one channel per edge port per
    /// direction, i.e. `2 × cols` ports accepting one packet per cycle
    /// (Table 4's "Memory Tile BW" column counts one direction: `2 × cols`).
    pub fn memory_tile_bandwidth(&self) -> u32 {
        2 * self.dims.cols as u32
    }

    /// Endpoint count: one per tile, plus `2 × cols` edge memory endpoints
    /// when [`NetworkConfig::edge_memory_ports`] is set.
    pub fn endpoint_count(&self) -> usize {
        self.dims.count()
            + if self.edge_memory_ports {
                2 * self.dims.cols as usize
            } else {
                0
            }
    }

    /// Hard upper bound on the hop count of any legal route — the
    /// termination bound shared by [`crate::routing::walk_route`] and the
    /// static verifier's totality lint. Every topology's worst route
    /// (including depopulated Ruche detours and folded-torus rings) fits
    /// comfortably under `4 × (cols + rows) + 8`.
    pub fn max_route_hops(&self) -> usize {
        4 * (self.dims.cols as usize + self.dims.rows as usize) + 8
    }

    /// Network diameter in hops (maximum over all tile pairs of the routed
    /// hop count), computed from the routing relation.
    pub fn diameter_hops(&self) -> u32 {
        let mut max = 0;
        for s in self.dims.iter() {
            for d in self.dims.iter() {
                let hops = crate::routing::route_hops(self, s, d);
                max = max.max(hops);
            }
        }
        max
    }
}

/// Eagerly-validated builder for [`NetworkConfig`] — the single
/// construction path behind every named constructor and `with_*` shim.
///
/// [`build`](NetworkConfigBuilder::build) runs [`NetworkConfig::validate`]
/// (the same check [`crate::sim::Network::new`] and the `ruche-verify`
/// lints use), so an inconsistent configuration fails at the construction
/// site with a typed [`ConfigError`].
///
/// # Examples
///
/// ```
/// use ruche_noc::prelude::*;
/// use ruche_noc::geometry::Axes;
///
/// let cfg = NetworkConfig::builder(
///     Dims::new(16, 8),
///     TopologyKind::Ruche { rf: 2, axes: Axes::X },
/// )
/// .scheme(CrossbarScheme::Depopulated)
/// .edge_memory_ports(true)
/// .build()?;
/// assert_eq!(cfg.label(), "half-ruche2-depop");
///
/// // An illegal combination fails at build time, not when the Network is
/// // instantiated much later.
/// let err = NetworkConfig::builder(
///     Dims::new(4, 4),
///     TopologyKind::Ruche { rf: 9, axes: Axes::Both },
/// )
/// .build()
/// .unwrap_err();
/// assert!(matches!(err, ruche_noc::topology::ConfigError::RucheFactorTooLarge { .. }));
/// # Ok::<(), ruche_noc::topology::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetworkConfigBuilder {
    cfg: NetworkConfig,
}

impl NetworkConfigBuilder {
    /// Sets the crossbar population scheme.
    pub fn scheme(mut self, scheme: CrossbarScheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Sets the DOR order.
    pub fn dor(mut self, dor: DorOrder) -> Self {
        self.cfg.dor = dor;
        self
    }

    /// Sets the input FIFO depth in flits (per VC for torus routers).
    pub fn fifo_depth(mut self, depth: usize) -> Self {
        self.cfg.fifo_depth = depth;
        self
    }

    /// Sets the channel width in bits (physical models only).
    pub fn channel_width_bits(mut self, bits: u32) -> Self {
        self.cfg.channel_width_bits = bits;
        self
    }

    /// Attaches memory endpoints to the free N/S edge ports.
    pub fn edge_memory_ports(mut self, on: bool) -> Self {
        self.cfg.edge_memory_ports = on;
        self
    }

    /// Sets extra pipeline stages per hop.
    pub fn pipeline_stages(mut self, stages: u32) -> Self {
        self.cfg.pipeline_stages = stages;
        self
    }

    /// Implements edge-router crossbar turns for both traffic directions.
    pub fn edge_bidirectional(mut self, on: bool) -> Self {
        self.cfg.edge_bidirectional = on;
        self
    }

    /// Sets the worker-thread count for `Network::step` (0 = serial unless
    /// `RUCHE_STEP_THREADS` overrides it). Purely a performance knob —
    /// results are byte-identical at any value.
    pub fn step_threads(mut self, threads: usize) -> Self {
        self.cfg.step_threads = threads;
        self
    }

    /// Sets the clock-advance mode (`None` stays the default: defer to the
    /// `RUCHE_STEP_MODE` environment variable, falling back to
    /// cycle-accurate). Purely a performance knob — results are
    /// byte-identical in every mode.
    pub fn step_mode(mut self, mode: StepMode) -> Self {
        self.cfg.step_mode = Some(mode);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] for the first violated constraint, as
    /// [`NetworkConfig::validate`] would.
    pub fn build(self) -> Result<NetworkConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }

    /// Returns the configuration without validating — the escape hatch the
    /// infallible legacy constructors use, and useful in tests that
    /// deliberately build broken configurations.
    pub fn build_unvalidated(self) -> NetworkConfig {
        self.cfg
    }
}

impl From<NetworkConfig> for NetworkConfigBuilder {
    /// Reopens an existing configuration for further tweaking.
    fn from(cfg: NetworkConfig) -> Self {
        NetworkConfigBuilder { cfg }
    }
}

/// Maps a physical position to its logical ring index in a folded torus of
/// `k` nodes.
///
/// The fold lays the ring `0 → 1 → … → k-1 → 0` out physically as
/// `0, 2, 4, …, 5, 3, 1`, so all links span two tiles except the two at the
/// fold ends.
pub fn fold_logical(phys: u16, k: u16) -> u16 {
    debug_assert!(phys < k);
    if phys.is_multiple_of(2) {
        phys / 2
    } else {
        k - 1 - (phys - 1) / 2
    }
}

/// Inverse of [`fold_logical`].
pub fn fold_physical(logical: u16, k: u16) -> u16 {
    debug_assert!(logical < k);
    let half = k.div_ceil(2);
    if logical < half {
        2 * logical
    } else {
        2 * (k - 1 - logical) + 1
    }
}

/// Physical distance (in tile pitches) spanned by one hop through `dir`.
///
/// Used by the energy model: Ruche channels span `rf` tiles; folded torus
/// links span 2 tiles (1 at the fold ends, but the model uses the common
/// case); local links span 1.
pub fn link_span_tiles(cfg: &NetworkConfig, dir: Dir) -> f64 {
    match dir {
        Dir::P => 0.0,
        d if d.is_ruche() => cfg.topology.ruche_factor() as f64,
        d => {
            if let Some(axis) = d.axis() {
                if cfg.torus_axis(axis) {
                    return 2.0;
                }
            }
            1.0
        }
    }
}

/// Qualitative topology rows of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SurveyTopology {
    /// Ruche networks (this paper).
    Ruche,
    /// Folded 2-D torus.
    FoldedTorus,
    /// Plain 2-D mesh.
    Mesh,
    /// Multiple parallel meshes.
    MultiMesh,
    /// Flattened butterfly (Kim et al.).
    FlattenedButterfly,
    /// Multidrop express channels (Grot et al.).
    Mecs,
    /// Swizzle-switch high-radix crossbar fabric (Abeyratne et al.).
    SwizzleSwitch,
}

/// Physical-scalability criteria of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologyProperties {
    /// Every tile has an identical shape that can be stamped out.
    pub regular_tile_shape: bool,
    /// Wire routing between tiles is local and regular.
    pub regular_wire_routing: bool,
    /// Router radix independent of network size.
    pub constant_router_radix: bool,
    /// Implementable with a standard-cell automated CAD flow.
    pub standard_cell_based: bool,
    /// Supports non-power-of-two array sizes.
    pub non_power_of_2_tiling: bool,
    /// Provides long-range (express) links.
    pub long_range_links: bool,
    /// Link physical distance independent of network size.
    pub constant_link_distance: bool,
}

impl SurveyTopology {
    /// Table 1 row for this topology.
    pub fn properties(self) -> TopologyProperties {
        use SurveyTopology::*;
        let row = |a, b, c, d, e, f, g| TopologyProperties {
            regular_tile_shape: a,
            regular_wire_routing: b,
            constant_router_radix: c,
            standard_cell_based: d,
            non_power_of_2_tiling: e,
            long_range_links: f,
            constant_link_distance: g,
        };
        match self {
            Ruche => row(true, true, true, true, true, true, true),
            FoldedTorus => row(true, true, true, true, true, true, true),
            Mesh => row(true, true, true, true, true, false, true),
            MultiMesh => row(true, true, true, true, true, false, true),
            FlattenedButterfly => row(false, false, false, true, false, true, false),
            Mecs => row(false, false, false, true, true, true, false),
            SwizzleSwitch => row(false, false, false, false, true, true, false),
        }
    }

    /// All Table 1 rows in paper order.
    pub const ALL: [SurveyTopology; 7] = [
        SurveyTopology::Ruche,
        SurveyTopology::FoldedTorus,
        SurveyTopology::Mesh,
        SurveyTopology::MultiMesh,
        SurveyTopology::FlattenedButterfly,
        SurveyTopology::Mecs,
        SurveyTopology::SwizzleSwitch,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SurveyTopology::Ruche => "Ruche",
            SurveyTopology::FoldedTorus => "2-D Folded Torus",
            SurveyTopology::Mesh => "2-D Mesh",
            SurveyTopology::MultiMesh => "Multi-mesh",
            SurveyTopology::FlattenedButterfly => "Flattened Butterfly",
            SurveyTopology::Mecs => "MECS",
            SurveyTopology::SwizzleSwitch => "Swizzle-Switch",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_roundtrip_even_and_odd() {
        for k in [3u16, 4, 7, 8, 16, 17] {
            for p in 0..k {
                assert_eq!(fold_physical(fold_logical(p, k), k), p, "k={k} p={p}");
            }
        }
    }

    #[test]
    fn fold_layout_k8_matches_paper_figure() {
        // Ring order visits physical positions 0,2,4,6,7,5,3,1.
        let order: Vec<u16> = (0..8).map(|l| fold_physical(l, 8)).collect();
        assert_eq!(order, vec![0, 2, 4, 6, 7, 5, 3, 1]);
    }

    #[test]
    fn folded_torus_links_span_two_tiles_except_ends() {
        for k in [8u16, 16] {
            let mut spans = vec![];
            for l in 0..k {
                let a = fold_physical(l, k);
                let b = fold_physical((l + 1) % k, k);
                spans.push(a.abs_diff(b));
            }
            assert_eq!(
                spans.iter().filter(|&&s| s == 1).count(),
                2,
                "two fold ends"
            );
            assert!(
                spans.iter().all(|&s| s <= 2),
                "no link spans more than 2 tiles"
            );
        }
    }

    #[test]
    fn mesh_ports_and_neighbors() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 4));
        assert_eq!(cfg.ports(), vec![Dir::P, Dir::N, Dir::S, Dir::E, Dir::W]);
        assert_eq!(
            cfg.neighbor(Coord::new(1, 1), Dir::E),
            Some(Coord::new(2, 1))
        );
        assert_eq!(cfg.neighbor(Coord::new(0, 0), Dir::W), None);
        assert_eq!(cfg.neighbor(Coord::new(0, 0), Dir::N), None);
        assert_eq!(cfg.neighbor(Coord::new(1, 1), Dir::RE), None);
    }

    #[test]
    fn ruche_ports_depend_on_axes() {
        let full = NetworkConfig::full_ruche(Dims::new(8, 8), 3, CrossbarScheme::FullyPopulated);
        assert_eq!(full.ports().len(), 9);
        let half = NetworkConfig::half_ruche(Dims::new(8, 8), 3, CrossbarScheme::FullyPopulated);
        assert_eq!(half.ports().len(), 7);
        assert!(half.ports().contains(&Dir::RE));
        assert!(!half.ports().contains(&Dir::RN));
    }

    #[test]
    fn ruche_neighbor_skips_rf_tiles() {
        let cfg = NetworkConfig::full_ruche(Dims::new(8, 8), 3, CrossbarScheme::FullyPopulated);
        assert_eq!(
            cfg.neighbor(Coord::new(1, 2), Dir::RE),
            Some(Coord::new(4, 2))
        );
        assert_eq!(cfg.neighbor(Coord::new(6, 2), Dir::RE), None);
        assert_eq!(
            cfg.neighbor(Coord::new(4, 4), Dir::RN),
            Some(Coord::new(4, 1))
        );
    }

    #[test]
    fn torus_ring_neighbors_follow_fold() {
        let cfg = NetworkConfig::torus(Dims::new(8, 8));
        // Physical x=0 is logical 0; its ring successor is logical 1 =
        // physical 2; its predecessor is logical 7 = physical 1.
        assert_eq!(
            cfg.neighbor(Coord::new(0, 3), Dir::E),
            Some(Coord::new(2, 3))
        );
        assert_eq!(
            cfg.neighbor(Coord::new(0, 3), Dir::W),
            Some(Coord::new(1, 3))
        );
        // Every node has all four ring neighbors (no open edges).
        for c in cfg.dims.iter() {
            for d in [Dir::N, Dir::S, Dir::E, Dir::W] {
                assert!(cfg.neighbor(c, d).is_some(), "{c} {d}");
            }
        }
    }

    #[test]
    fn half_torus_is_open_vertically() {
        let cfg = NetworkConfig::half_torus(Dims::new(8, 4));
        assert!(cfg.neighbor(Coord::new(3, 0), Dir::N).is_none());
        assert!(cfg.neighbor(Coord::new(0, 1), Dir::W).is_some());
        assert_eq!(cfg.vcs(Dir::E), 2);
        assert_eq!(cfg.vcs(Dir::N), 1);
        assert_eq!(cfg.vcs(Dir::P), 1);
    }

    #[test]
    fn torus_vc_capacity_matches_full_ruche() {
        // §3.1: VC and Full Ruche routers have the same input FIFO capacity.
        let torus = NetworkConfig::torus(Dims::new(8, 8));
        let ruche = NetworkConfig::full_ruche(Dims::new(8, 8), 2, CrossbarScheme::FullyPopulated);
        let cap = |cfg: &NetworkConfig| -> usize {
            cfg.ports()
                .iter()
                .map(|&p| cfg.vcs(p) * cfg.fifo_depth)
                .sum()
        };
        assert_eq!(cap(&torus), cap(&ruche));
        // And half-torus matches half-ruche (the paper's §4.5 note).
        let ht = NetworkConfig::half_torus(Dims::new(16, 8));
        let hr = NetworkConfig::half_ruche(Dims::new(16, 8), 2, CrossbarScheme::Depopulated);
        assert_eq!(cap(&ht), cap(&hr));
    }

    #[test]
    fn table4_bisection_bandwidths() {
        // Table 4 rows: horizontal bisection channels (both directions).
        let cases: [(u16, u16, Option<u16>, u32, u32); 12] = [
            (16, 8, None, 16, 32),
            (16, 8, Some(2), 48, 32),
            (16, 8, Some(3), 64, 32),
            (32, 16, None, 32, 64),
            (32, 16, Some(2), 96, 64),
            (32, 16, Some(3), 128, 64),
            (64, 8, None, 16, 128),
            (64, 8, Some(2), 48, 128),
            (64, 8, Some(3), 64, 128),
            (32, 8, None, 16, 64),
            (32, 8, Some(2), 48, 64),
            (32, 8, Some(3), 64, 64),
        ];
        for (cols, rows, rf, bisect, mem) in cases {
            let cfg = match rf {
                None => NetworkConfig::mesh(Dims::new(cols, rows)),
                Some(rf) => NetworkConfig::half_ruche(
                    Dims::new(cols, rows),
                    rf,
                    CrossbarScheme::Depopulated,
                ),
            };
            assert_eq!(
                cfg.horizontal_bisection_channels(),
                bisect,
                "{}x{} rf={rf:?}",
                cols,
                rows
            );
            assert_eq!(cfg.memory_tile_bandwidth(), mem);
        }
    }

    #[test]
    fn torus_doubles_mesh_bisection() {
        let mesh = NetworkConfig::mesh(Dims::new(8, 8));
        let torus = NetworkConfig::torus(Dims::new(8, 8));
        assert_eq!(
            torus.horizontal_bisection_channels(),
            2 * mesh.horizontal_bisection_channels()
        );
        assert_eq!(
            torus.vertical_bisection_channels(),
            2 * mesh.vertical_bisection_channels()
        );
    }

    #[test]
    fn ruche_one_matches_torus_bisection() {
        // §4.1: ruche1-pop provides the same bisection bandwidth as torus.
        let r1 = NetworkConfig::ruche_one(Dims::new(8, 8));
        let torus = NetworkConfig::torus(Dims::new(8, 8));
        assert_eq!(
            r1.horizontal_bisection_channels(),
            torus.horizontal_bisection_channels()
        );
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = NetworkConfig::full_ruche(Dims::new(8, 8), 1, CrossbarScheme::Depopulated);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::RucheOneNeedsFullyPopulated)
        );
        cfg.scheme = CrossbarScheme::FullyPopulated;
        assert!(cfg.validate().is_ok());

        let cfg = NetworkConfig::full_ruche(Dims::new(4, 4), 4, CrossbarScheme::FullyPopulated);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::RucheFactorTooLarge { .. })
        ));

        let cfg = NetworkConfig::torus(Dims::new(2, 8));
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::TorusRingTooShort { .. })
        ));

        let cfg = NetworkConfig::torus(Dims::new(8, 8)).with_edge_memory_ports();
        assert_eq!(cfg.validate(), Err(ConfigError::EdgePortsNeedOpenYAxis));
        let cfg = NetworkConfig::half_torus(Dims::new(8, 8)).with_edge_memory_ports();
        assert!(cfg.validate().is_ok());

        let mut cfg = NetworkConfig::mesh(Dims::new(4, 4));
        cfg.fifo_depth = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroFifoDepth));
    }

    #[test]
    fn labels_match_paper_style() {
        let d = Dims::new(8, 8);
        assert_eq!(NetworkConfig::mesh(d).label(), "mesh");
        assert_eq!(NetworkConfig::torus(d).label(), "torus");
        assert_eq!(NetworkConfig::half_torus(d).label(), "half-torus");
        assert_eq!(NetworkConfig::multi_mesh(d).label(), "multi-mesh");
        assert_eq!(NetworkConfig::ruche_one(d).label(), "ruche1-pop");
        assert_eq!(
            NetworkConfig::full_ruche(d, 3, CrossbarScheme::Depopulated).label(),
            "ruche3-depop"
        );
        assert_eq!(
            NetworkConfig::half_ruche(d, 2, CrossbarScheme::FullyPopulated).label(),
            "half-ruche2-pop"
        );
    }

    #[test]
    fn table1_properties() {
        let ruche = SurveyTopology::Ruche.properties();
        assert!(ruche.long_range_links && ruche.constant_router_radix);
        let mesh = SurveyTopology::Mesh.properties();
        assert!(!mesh.long_range_links && mesh.constant_link_distance);
        let fb = SurveyTopology::FlattenedButterfly.properties();
        assert!(!fb.constant_router_radix && !fb.non_power_of_2_tiling);
        let mecs = SurveyTopology::Mecs.properties();
        assert!(mecs.non_power_of_2_tiling && !mecs.constant_link_distance);
    }

    #[test]
    fn link_spans_for_energy_model() {
        let ruche3 = NetworkConfig::full_ruche(Dims::new(8, 8), 3, CrossbarScheme::FullyPopulated);
        assert_eq!(link_span_tiles(&ruche3, Dir::RE), 3.0);
        assert_eq!(link_span_tiles(&ruche3, Dir::E), 1.0);
        let torus = NetworkConfig::torus(Dims::new(8, 8));
        assert_eq!(link_span_tiles(&torus, Dir::E), 2.0);
        let mesh = NetworkConfig::mesh(Dims::new(8, 8));
        assert_eq!(link_span_tiles(&mesh, Dir::E), 1.0);
        assert_eq!(link_span_tiles(&mesh, Dir::P), 0.0);
    }

    #[test]
    fn pipeline_stages_builder_and_default() {
        let cfg = NetworkConfig::torus(Dims::new(8, 8));
        assert_eq!(
            cfg.pipeline_stages, 0,
            "paper default: single cycle per hop"
        );
        let piped = cfg.with_pipeline_stages(2);
        assert_eq!(piped.pipeline_stages, 2);
        assert!(piped.validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let cfg = NetworkConfig::half_ruche(Dims::new(16, 8), 3, CrossbarScheme::FullyPopulated)
            .with_edge_memory_ports()
            .with_pipeline_stages(1)
            .with_fifo_depth(4)
            .with_dor(DorOrder::YX);
        assert!(cfg.edge_memory_ports);
        assert_eq!(cfg.pipeline_stages, 1);
        assert_eq!(cfg.fifo_depth, 4);
        assert_eq!(cfg.dor, DorOrder::YX);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builder_validates_eagerly() {
        // Every eager ConfigError is reachable from the builder.
        let b = |dims, topo| NetworkConfig::builder(dims, topo);
        let ruche = |rf| TopologyKind::Ruche {
            rf,
            axes: Axes::Both,
        };
        assert_eq!(
            b(Dims::new(8, 8), ruche(0)).build(),
            Err(ConfigError::ZeroRucheFactor)
        );
        assert_eq!(
            b(Dims::new(8, 8), ruche(1)).build(),
            Err(ConfigError::RucheOneNeedsFullyPopulated)
        );
        assert!(matches!(
            b(Dims::new(4, 4), ruche(4))
                .scheme(CrossbarScheme::FullyPopulated)
                .build(),
            Err(ConfigError::RucheFactorTooLarge { .. })
        ));
        assert!(matches!(
            b(Dims::new(2, 8), TopologyKind::Torus { axes: Axes::Both }).build(),
            Err(ConfigError::TorusRingTooShort { .. })
        ));
        assert_eq!(
            b(Dims::new(8, 8), TopologyKind::Torus { axes: Axes::Both })
                .edge_memory_ports(true)
                .build(),
            Err(ConfigError::EdgePortsNeedOpenYAxis)
        );
        assert_eq!(
            b(Dims::new(4, 4), TopologyKind::Mesh).fifo_depth(0).build(),
            Err(ConfigError::ZeroFifoDepth)
        );
        assert_eq!(
            b(Dims::new(1, 1), TopologyKind::Mesh).build(),
            Err(ConfigError::SingleTile)
        );
    }

    #[test]
    fn builder_and_shims_agree() {
        // The named constructors are shims over the builder: same output.
        let d = Dims::new(16, 8);
        let via_builder = NetworkConfig::builder(
            d,
            TopologyKind::Ruche {
                rf: 3,
                axes: Axes::X,
            },
        )
        .scheme(CrossbarScheme::FullyPopulated)
        .edge_memory_ports(true)
        .pipeline_stages(1)
        .fifo_depth(4)
        .dor(DorOrder::YX)
        .build()
        .expect("builder config is valid");
        let via_shims = NetworkConfig::half_ruche(d, 3, CrossbarScheme::FullyPopulated)
            .with_edge_memory_ports()
            .with_pipeline_stages(1)
            .with_fifo_depth(4)
            .with_dor(DorOrder::YX);
        assert_eq!(via_builder, via_shims);

        // Reopening an existing config and changing nothing is lossless.
        let round = NetworkConfigBuilder::from(via_builder.clone())
            .build()
            .expect("reopened config is valid");
        assert_eq!(round, via_builder);

        // All remaining builder knobs reach their fields.
        let cfg = NetworkConfig::builder(d, TopologyKind::Mesh)
            .channel_width_bits(64)
            .edge_bidirectional(true)
            .build()
            .expect("builder config is valid");
        assert_eq!(cfg.channel_width_bits, 64);
        assert!(cfg.edge_bidirectional);
    }

    #[test]
    fn step_threads_knob_reaches_the_field() {
        let cfg = NetworkConfig::mesh(Dims::new(8, 8));
        assert_eq!(cfg.step_threads, 0, "default is serial/env-controlled");
        assert_eq!(cfg.clone().with_step_threads(4).step_threads, 4);
        let built = NetworkConfig::builder(Dims::new(8, 8), TopologyKind::Mesh)
            .step_threads(2)
            .build()
            .expect("builder config is valid");
        assert_eq!(built.step_threads, 2);
    }

    #[test]
    fn step_mode_knob_reaches_the_field() {
        let cfg = NetworkConfig::mesh(Dims::new(8, 8));
        assert_eq!(cfg.step_mode, None, "default defers to the environment");
        assert_eq!(
            cfg.clone().with_step_mode(StepMode::EventDriven).step_mode,
            Some(StepMode::EventDriven)
        );
        let built = NetworkConfig::builder(Dims::new(8, 8), TopologyKind::Mesh)
            .step_mode(StepMode::Auto)
            .build()
            .expect("builder config is valid");
        assert_eq!(built.step_mode, Some(StepMode::Auto));
    }

    #[test]
    fn step_mode_parses_the_documented_spellings() {
        for (s, m) in [
            ("cycle", StepMode::CycleAccurate),
            ("cycle-accurate", StepMode::CycleAccurate),
            ("event", StepMode::EventDriven),
            ("Event-Driven", StepMode::EventDriven),
            (" auto ", StepMode::Auto),
        ] {
            assert_eq!(s.parse::<StepMode>(), Ok(m), "spelling {s:?}");
        }
        assert!("wheel".parse::<StepMode>().is_err());
        for m in [
            StepMode::CycleAccurate,
            StepMode::EventDriven,
            StepMode::Auto,
        ] {
            assert_eq!(m.name().parse::<StepMode>(), Ok(m), "name round-trips");
        }
    }

    #[test]
    fn debug_rendering_omits_step_threads() {
        // The Debug rendering is the sweep-cache key: it must not move when
        // only the thread count or step mode changes (results are
        // byte-identical), and it must keep the exact derived format so
        // previously written cache entries stay valid.
        let cfg = NetworkConfig::half_ruche(Dims::new(16, 8), 2, CrossbarScheme::Depopulated);
        let serial = format!("{cfg:?}");
        let threaded = format!("{:?}", cfg.clone().with_step_threads(4));
        assert_eq!(serial, threaded);
        let evented = format!("{:?}", cfg.clone().with_step_mode(StepMode::EventDriven));
        assert_eq!(serial, evented);
        assert!(!serial.contains("step_threads"));
        assert!(!serial.contains("step_mode"));
        assert_eq!(
            serial,
            "NetworkConfig { dims: Dims { cols: 16, rows: 8 }, \
             topology: Ruche { rf: 2, axes: X }, scheme: Depopulated, \
             dor: XY, fifo_depth: 2, channel_width_bits: 128, \
             edge_memory_ports: false, pipeline_stages: 0, \
             edge_bidirectional: false }"
        );
    }

    #[test]
    fn endpoint_count_includes_edges() {
        let cfg = NetworkConfig::mesh(Dims::new(16, 8)).with_edge_memory_ports();
        assert_eq!(cfg.endpoint_count(), 128 + 32);
        let cfg = NetworkConfig::mesh(Dims::new(16, 8));
        assert_eq!(cfg.endpoint_count(), 128);
    }
}
