//! Arbitration and allocation logic.
//!
//! Ruche/mesh routers use simple decentralized **round-robin arbiters**, one
//! per output direction (§3.2). Torus VC routers use an acyclic
//! **wavefront allocator** for switch allocation, which provides maximal
//! matching quality (Becker's implementation, §4.1) at the cost of a much
//! longer critical path — the source of the torus routers' cycle-time
//! disadvantage in Figure 7.

/// A round-robin arbiter over `n` requesters.
///
/// The most recently granted requester gets the lowest priority next time
/// (least-recently-granted order), which is what gives Ruche routers their
/// simple, fast, fair output arbitration.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n: usize,
    /// Index of the last granted requester; search starts after it.
    last: usize,
}

impl RoundRobin {
    /// Creates an arbiter for `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobin { n, last: n - 1 }
    }

    /// Picks the next requester in round-robin order among `requests`,
    /// without updating priority (combinational output).
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != n`.
    pub fn pick(&self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n);
        (1..=self.n)
            .map(|k| (self.last + k) % self.n)
            .find(|&i| requests[i])
    }

    /// Commits a grant, rotating the priority.
    pub fn grant(&mut self, winner: usize) {
        debug_assert!(winner < self.n);
        self.last = winner;
    }

    /// Picks and commits in one step.
    pub fn pick_and_grant(&mut self, requests: &[bool]) -> Option<usize> {
        let w = self.pick(requests)?;
        self.grant(w);
        Some(w)
    }

    /// [`Self::pick`] over a request bitmask (bit `i` = requester `i`),
    /// the allocation-free form the simulator's hot path uses.
    ///
    /// # Panics
    ///
    /// Debug-panics if the mask has bits at or above `n`, or `n > 32`.
    pub fn pick_mask(&self, mask: u32) -> Option<usize> {
        debug_assert!(self.n <= 32);
        debug_assert_eq!(mask >> (self.n - 1) >> 1, 0, "mask wider than arbiter");
        if mask == 0 {
            return None;
        }
        // Round-robin search from `last + 1`: first set bit at or above the
        // start, else wrap to the lowest set bit (all below the start).
        let start = (self.last + 1) % self.n;
        let high = mask >> start;
        if high != 0 {
            Some(start + high.trailing_zeros() as usize)
        } else {
            Some(mask.trailing_zeros() as usize)
        }
    }

    /// [`Self::pick_and_grant`] over a request bitmask.
    pub fn pick_and_grant_mask(&mut self, mask: u32) -> Option<usize> {
        let w = self.pick_mask(mask)?;
        self.grant(w);
        Some(w)
    }
}

/// An acyclic wavefront allocator over an `n_in × n_out` request matrix.
///
/// Produces a (heuristically maximal) matching: a set of (input, output)
/// grants such that no input or output appears twice and no request could be
/// added without conflict. The priority diagonal rotates every allocation to
/// provide fairness, mimicking the RTL implementation.
#[derive(Debug, Clone)]
pub struct Wavefront {
    n_in: usize,
    n_out: usize,
    priority: usize,
}

impl Wavefront {
    /// Creates an allocator for `n_in` inputs and `n_out` outputs.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(n_in: usize, n_out: usize) -> Self {
        assert!(
            n_in > 0 && n_out > 0,
            "allocator dimensions must be non-zero"
        );
        Wavefront {
            n_in,
            n_out,
            priority: 0,
        }
    }

    /// Allocates over `requests` (indexed `[input][output]`), returning the
    /// granted output per input. Rotates the priority diagonal.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match the allocator.
    pub fn allocate(&mut self, requests: &[Vec<bool>]) -> Vec<Option<usize>> {
        assert_eq!(requests.len(), self.n_in);
        let masks: Vec<u32> = requests
            .iter()
            .map(|row| {
                assert_eq!(row.len(), self.n_out);
                row.iter()
                    .enumerate()
                    .fold(0u32, |m, (o, &r)| m | ((r as u32) << o))
            })
            .collect();
        let mut grant_in = vec![None; self.n_in];
        self.allocate_into(&masks, &mut grant_in);
        grant_in
    }

    /// [`Self::allocate`] over per-input request bitmasks (bit `o` of
    /// `requests[i]` = input `i` requests output `o`), writing grants into
    /// a caller-owned buffer — the allocation-free form the simulator's hot
    /// path uses.
    ///
    /// # Panics
    ///
    /// Panics if `requests` or `grant_in` don't match the allocator shape;
    /// debug-panics if `n_out > 32`.
    pub fn allocate_into(&mut self, requests: &[u32], grant_in: &mut [Option<usize>]) {
        assert_eq!(requests.len(), self.n_in);
        assert_eq!(grant_in.len(), self.n_in);
        debug_assert!(self.n_out <= 32);
        let diag = self.n_in.max(self.n_out);
        grant_in.fill(None);
        let mut out_taken = 0u32;
        // Sweep wavefronts starting at the priority diagonal; within a
        // wavefront each (i, o) with i + o ≡ d (mod diag) is independent.
        for k in 0..diag {
            let d = (self.priority + k) % diag;
            for (i, g) in grant_in.iter_mut().enumerate() {
                if g.is_some() {
                    continue;
                }
                let o = (d + diag - i % diag) % diag;
                if o < self.n_out && requests[i] & (1 << o) != 0 && out_taken & (1 << o) == 0 {
                    *g = Some(o);
                    out_taken |= 1 << o;
                }
            }
        }
        self.priority = (self.priority + 1) % diag;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_fairly() {
        let mut rr = RoundRobin::new(3);
        let all = [true, true, true];
        let picks: Vec<_> = (0..6)
            .map(|_| {
                rr.pick_and_grant(&all)
                    .expect("a requesting input wins the grant")
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_idle() {
        let mut rr = RoundRobin::new(4);
        assert_eq!(rr.pick_and_grant(&[false, false, true, false]), Some(2));
        assert_eq!(rr.pick_and_grant(&[true, false, true, false]), Some(0));
        assert_eq!(rr.pick_and_grant(&[false, false, false, false]), None);
    }

    #[test]
    fn round_robin_least_recently_granted() {
        let mut rr = RoundRobin::new(2);
        assert_eq!(rr.pick_and_grant(&[true, true]), Some(0));
        // 0 was just granted: 1 now has priority.
        assert_eq!(rr.pick_and_grant(&[true, true]), Some(1));
        assert_eq!(rr.pick_and_grant(&[true, true]), Some(0));
    }

    #[test]
    fn pick_without_grant_is_stable() {
        let rr = RoundRobin::new(3);
        assert_eq!(rr.pick(&[true, true, true]), Some(0));
        assert_eq!(rr.pick(&[true, true, true]), Some(0));
    }

    #[test]
    fn wavefront_grants_are_a_matching() {
        let mut wf = Wavefront::new(5, 5);
        let requests: Vec<Vec<bool>> = vec![
            vec![true, true, false, false, false],
            vec![true, false, false, false, false],
            vec![false, true, true, false, false],
            vec![false, false, false, true, false],
            vec![false, false, false, true, true],
        ];
        for _ in 0..10 {
            let grants = wf.allocate(&requests);
            let mut seen = [false; 5];
            for (i, g) in grants.iter().enumerate() {
                if let Some(o) = *g {
                    assert!(requests[i][o], "grant only where requested");
                    assert!(!seen[o], "output granted twice");
                    seen[o] = true;
                }
            }
        }
    }

    #[test]
    fn wavefront_matching_is_maximal_on_diagonal() {
        let mut wf = Wavefront::new(4, 4);
        // Identity requests: all four must be granted.
        let requests: Vec<Vec<bool>> = (0..4).map(|i| (0..4).map(|o| o == i).collect()).collect();
        let grants = wf.allocate(&requests);
        assert!(grants.iter().all(|g| g.is_some()));
    }

    #[test]
    fn wavefront_full_matrix_grants_everyone() {
        // With all-true requests a maximal matching covers every input.
        let mut wf = Wavefront::new(5, 5);
        let requests = vec![vec![true; 5]; 5];
        let grants = wf.allocate(&requests);
        assert!(grants.iter().all(|g| g.is_some()));
        let mut outs: Vec<_> = grants.into_iter().flatten().collect();
        outs.sort_unstable();
        assert_eq!(outs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wavefront_rotates_priority() {
        let mut wf = Wavefront::new(2, 2);
        // Two inputs contending for output 0.
        let requests = vec![vec![true, false], vec![true, false]];
        let first = wf.allocate(&requests);
        let second = wf.allocate(&requests);
        let w1 = first
            .iter()
            .position(|g| g.is_some())
            .expect("contended output grants one winner");
        let w2 = second
            .iter()
            .position(|g| g.is_some())
            .expect("contended output grants one winner");
        assert_ne!(w1, w2, "contending inputs alternate");
    }

    #[test]
    fn wavefront_rectangular_shapes() {
        let mut wf = Wavefront::new(3, 5);
        let requests = vec![vec![true; 5]; 3];
        let grants = wf.allocate(&requests);
        assert_eq!(grants.iter().flatten().count(), 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_panic() {
        Wavefront::new(0, 3);
    }

    #[test]
    fn pick_mask_matches_pick() {
        for n in 1..=9usize {
            // Two arbiters stepped in lockstep over every request pattern.
            let mut a = RoundRobin::new(n);
            let mut b = RoundRobin::new(n);
            for mask in 0..(1u32 << n) {
                let bools: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
                assert_eq!(a.pick(&bools), b.pick_mask(mask), "n={n} mask={mask:b}");
                assert_eq!(a.pick_and_grant(&bools), b.pick_and_grant_mask(mask));
            }
        }
    }

    #[test]
    fn allocate_into_matches_allocate() {
        let mut a = Wavefront::new(5, 5);
        let mut b = Wavefront::new(5, 5);
        let mut grants = vec![None; 5];
        // A deterministic mix of request matrices, cycled to rotate priority.
        for round in 0u32..40 {
            let masks: Vec<u32> = (0..5)
                .map(|i| (round.wrapping_mul(31) >> i) & 0x1F)
                .collect();
            let bools: Vec<Vec<bool>> = masks
                .iter()
                .map(|&m| (0..5).map(|o| m & (1 << o) != 0).collect())
                .collect();
            let expect = a.allocate(&bools);
            b.allocate_into(&masks, &mut grants);
            assert_eq!(expect, grants, "round {round}");
        }
    }
}
