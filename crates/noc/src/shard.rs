//! Shard geometry and per-shard scratch state for the multi-threaded step.
//!
//! The router grid is cut into contiguous **row bands**. Node indices are
//! row-major ([`Dims::index`](crate::geometry::Dims::index)), so each band
//! is a contiguous node-index range and the sorted active worklist splits
//! into per-shard slices with a binary search. Ruche channels skip up to
//! `ruche_factor` columns but never rows, and row channels stay inside
//! their band, so a channel crosses at most as many shard boundaries as a
//! unit-hop column channel — remote effects in the commit phase (FIFO
//! pushes and credit returns into another band) are routed through
//! per-destination boundary **mailboxes** ([`Mail`]): each shard stages
//! into one outbox bucket per destination shard, the coordinator swaps
//! buckets into the destinations' inboxes (an `O(k²)` pointer exchange,
//! no copies), and each destination applies its own inbox in canonical
//! (source shard, node, port, vc) order — the two-pass drain. A shard
//! whose band holds no buffered flit is *asleep* for the cycle: it is
//! never published to the step pool, and staged mail into it is precisely
//! the wake-on-credit edge that re-arms it. See `docs/PARALLELISM.md` for
//! the full determinism argument.

use crate::geometry::Dims;
use crate::packet::Flit;
use crate::sim::EndpointId;
use crate::telemetry::BlockCause;
use std::ops::Range;

/// Hard cap on the shard count (and thus on useful `step_threads`). Keeps
/// per-cycle chunk descriptors on the stack.
pub const MAX_SHARDS: usize = 32;

/// Partition of a router grid into contiguous row bands.
///
/// The band count is `min(threads, rows, MAX_SHARDS)`, so every band holds
/// at least one full row. Degenerate single-column grids (1×N lines)
/// collapse to a single shard — banding a 1-wide line buys nothing and the
/// serial path is faster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// `count() + 1` node-index cut points; band `s` is `bounds[s]..bounds[s + 1]`.
    bounds: Vec<usize>,
}

impl ShardMap {
    /// Partitions `dims` into up to `threads` row bands.
    pub fn new(dims: Dims, threads: usize) -> Self {
        let rows = dims.rows as usize;
        let cols = dims.cols as usize;
        let k = if cols <= 1 {
            1
        } else {
            threads.max(1).min(rows).min(MAX_SHARDS)
        };
        let bounds: Vec<usize> = (0..=k).map(|s| (s * rows / k) * cols).collect();
        let map = ShardMap { bounds };
        map.debug_assert_well_formed(rows, cols);
        map
    }

    /// Structural invariants every partition must satisfy: bands start at
    /// node 0, end at the last node, are non-empty, never overlap, and cut
    /// only on row boundaries (a band owning half a row would let two
    /// shards plan the same router). Compiled out in release builds.
    fn debug_assert_well_formed(&self, rows: usize, cols: usize) {
        debug_assert_eq!(self.bounds[0], 0, "band 0 must start at node 0");
        debug_assert_eq!(
            *self.bounds.last().expect("bounds non-empty"),
            rows * cols,
            "the last band must end at the last node"
        );
        debug_assert!(
            rows * cols == 0 || self.bounds.windows(2).all(|w| w[0] < w[1]),
            "bands must be non-empty and non-overlapping: {:?}",
            self.bounds
        );
        debug_assert!(
            cols == 0 || self.bounds.iter().all(|b| b % cols == 0),
            "every cut must fall on a row boundary: {:?} (cols = {cols})",
            self.bounds
        );
    }

    /// Number of shards (at least 1).
    pub fn count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Node-index range owned by shard `s`.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: usize) -> usize {
        debug_assert!(node < *self.bounds.last().expect("bounds non-empty"));
        self.bounds.partition_point(|&b| b <= node) - 1
    }
}

/// A planned link traversal: move the flit at the head of
/// `(node, in_port, in_vc)` to downstream of `(node, out_port)` on `out_vc`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Transfer {
    pub node: usize,
    pub in_port: usize,
    pub in_vc: usize,
    pub out_port: usize,
    pub out_vc: usize,
}

/// A cross-shard side effect of the commit phase, staged into the
/// destination shard's outbox bucket and applied by the destination
/// itself after the exchange (in source-shard order, which equals
/// canonical node order).
#[derive(Debug, Clone)]
pub(crate) enum Mail {
    /// Push `flit` into input FIFO `(node, port, vc)` of a router in
    /// another shard.
    Push {
        node: usize,
        port: usize,
        vc: usize,
        flit: Flit,
    },
    /// Return one credit to output `(node, port, vc)` of a router in
    /// another shard.
    Credit { node: usize, port: usize, vc: usize },
}

/// Scratch and staging state owned by one shard. All buffers are reused
/// across cycles (cleared, never shrunk), preserving the allocation-free
/// steady state per worker.
#[derive(Debug)]
pub(crate) struct ShardState {
    /// First node index owned by this shard.
    pub first_node: usize,
    /// Number of nodes owned by this shard.
    pub n_nodes: usize,
    /// Whether this shard's band held any buffered flit at the start of
    /// the current cycle — its slice of the active worklist was non-empty.
    /// A shard that is not awake is skipped by both pool epochs (zero
    /// plan/commit work; never claimed) until staged mail re-arms it.
    pub awake: bool,
    /// Grants planned this cycle, in ascending node order.
    pub transfers: Vec<Transfer>,
    /// Per-output request bitmasks for the node being planned.
    pub req_mask: Vec<u32>,
    /// VC router: chosen (vc, out_port, out_vc) per input of the node
    /// being planned.
    pub chosen: Vec<Option<(usize, usize, u8)>>,
    /// VC router: switch-allocator grants for the node being planned.
    pub grants: Vec<Option<usize>>,
    /// Telemetry events `(node, port, vc, cause)` logged during the plan
    /// phase, replayed into the shared sink in shard order.
    pub blocked: Vec<(u32, u16, u8, BlockCause)>,
    /// Cross-shard pushes and credit returns, one bucket per destination
    /// shard (bucket `d` holds the mail bound for shard `d`; this shard's
    /// own bucket stays empty). Swapped wholesale into the destinations'
    /// [`inbox`](ShardState::inbox) slots by the coordinator's exchange.
    pub outbox: Vec<Vec<Mail>>,
    /// Inbound mail, one slot per source shard (slot `s` holds the mail
    /// shard `s` staged for this one). Applied by this shard itself in
    /// ascending source-shard order, then drained in place.
    pub inbox: Vec<Vec<Mail>>,
    /// Flits ejected to endpoints this cycle (zero pipeline stages).
    pub ejected: Vec<(EndpointId, Flit)>,
    /// Pipelined link traversals `(arrival, node, port, vc, flit)` bound
    /// for the global in-transit queue.
    pub staged_transit: Vec<(u64, usize, usize, usize, Flit)>,
    /// Pipelined ejections `(arrival, endpoint, flit)` bound for the global
    /// ejection-transit queue.
    pub staged_eject: Vec<(u64, EndpointId, Flit)>,
    /// In-shard routers activated by a committed push, merged into the
    /// global worklist by the coordinator.
    pub newly_active: Vec<u32>,
}

impl ShardState {
    /// Creates the state for the shard owning `range`, in a network with
    /// `np` ports per router. `outbox_caps[d]` / `inbox_caps[s]` are the
    /// exact per-cycle mail maxima toward destination shard `d` / from
    /// source shard `s`, counted from the topology's cross-band links at
    /// build time (see `Network::new`).
    pub fn new(
        range: Range<usize>,
        np: usize,
        outbox_caps: &[usize],
        inbox_caps: &[usize],
    ) -> Self {
        let n_nodes = range.len();
        // One transfer per (node, output port) is the per-cycle maximum;
        // every staging buffer below is bounded by it. Sizing them all to
        // that maximum up front keeps the steady-state step allocation-free
        // even when a late cycle first exercises a rare path (e.g. a burst
        // of boundary crossings). The mail buckets get the tighter
        // per-(src, dst) link-count bound: the exchange swaps a bucket with
        // the matching inbox slot, so both sides carry the same capacity
        // and the swap circulates allocations instead of making new ones.
        let cap = n_nodes * np;
        ShardState {
            first_node: range.start,
            n_nodes,
            awake: false,
            transfers: Vec::with_capacity(cap),
            req_mask: vec![0; np],
            chosen: vec![None; np],
            grants: vec![None; np],
            blocked: Vec::new(),
            outbox: outbox_caps.iter().map(|&c| Vec::with_capacity(c)).collect(),
            inbox: inbox_caps.iter().map(|&c| Vec::with_capacity(c)).collect(),
            ejected: Vec::with_capacity(n_nodes),
            staged_transit: Vec::with_capacity(cap),
            staged_eject: Vec::with_capacity(n_nodes),
            newly_active: Vec::with_capacity(n_nodes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cover_the_grid_contiguously() {
        let dims = Dims::new(6, 10);
        let map = ShardMap::new(dims, 4);
        assert_eq!(map.count(), 4);
        let mut next = 0;
        for s in 0..map.count() {
            let r = map.range(s);
            assert_eq!(r.start, next, "band {s} starts where band {} ended", s + 1);
            assert!(!r.is_empty(), "band {s} is empty");
            assert_eq!(r.start % dims.cols as usize, 0, "band {s} starts mid-row");
            next = r.end;
        }
        assert_eq!(next, dims.count());
    }

    #[test]
    fn shard_of_inverts_range() {
        let map = ShardMap::new(Dims::new(5, 9), 3);
        for s in 0..map.count() {
            for node in map.range(s) {
                assert_eq!(map.shard_of(node), s);
            }
        }
    }

    #[test]
    fn shard_count_clamps_to_rows() {
        assert_eq!(ShardMap::new(Dims::new(16, 3), 8).count(), 3);
        assert_eq!(ShardMap::new(Dims::new(16, 1), 8).count(), 1);
    }

    #[test]
    fn degenerate_lines_collapse_to_one_shard() {
        // 1×N (single column): banding a 1-wide line is pure overhead.
        assert_eq!(ShardMap::new(Dims::new(1, 64), 8).count(), 1);
        // N×1 (single row): clamped by the row count.
        assert_eq!(ShardMap::new(Dims::new(64, 1), 8).count(), 1);
    }

    #[test]
    fn rows_distribute_evenly() {
        let dims = Dims::new(4, 10);
        let map = ShardMap::new(dims, 3);
        let rows: Vec<usize> = (0..map.count())
            .map(|s| map.range(s).len() / dims.cols as usize)
            .collect();
        assert_eq!(rows.iter().sum::<usize>(), 10);
        assert!(rows.iter().all(|&r| (3..=4).contains(&r)), "{rows:?}");
    }

    #[test]
    fn zero_threads_means_one_shard() {
        assert_eq!(ShardMap::new(Dims::new(8, 8), 0).count(), 1);
    }

    #[test]
    fn shard_count_is_capped() {
        assert_eq!(ShardMap::new(Dims::new(2, 500), 500).count(), MAX_SHARDS);
    }

    #[test]
    fn more_threads_than_rows_never_makes_an_empty_band() {
        // rows < threads is the classic off-by-one trap: a naive
        // `rows / threads` split would hand some bands zero rows.
        for rows in 1..=6u16 {
            for threads in (rows as usize + 1)..=2 * MAX_SHARDS {
                let map = ShardMap::new(Dims::new(4, rows), threads);
                assert_eq!(map.count(), rows as usize, "rows={rows} threads={threads}");
                for s in 0..map.count() {
                    assert!(
                        !map.range(s).is_empty(),
                        "empty band {s} at rows={rows} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_partition_in_a_broad_sweep_is_well_formed() {
        // Exhaustive small sweep: every (rows, cols, threads) combination
        // must produce contiguous, row-aligned, non-empty bands that cover
        // the grid exactly once. (The constructor debug_asserts the same
        // invariants; this test keeps them checked in release runs too.)
        for rows in 1..=9u16 {
            for cols in 1..=5u16 {
                for threads in 0..=12usize {
                    let dims = Dims::new(cols, rows);
                    let map = ShardMap::new(dims, threads);
                    let mut next = 0;
                    for s in 0..map.count() {
                        let r = map.range(s);
                        assert_eq!(r.start, next, "gap before band {s} ({dims:?}, {threads})");
                        assert!(!r.is_empty(), "empty band {s} ({dims:?}, {threads})");
                        assert_eq!(
                            r.start % cols as usize,
                            0,
                            "band {s} cuts mid-row ({dims:?}, {threads})"
                        );
                        next = r.end;
                    }
                    assert_eq!(next, dims.count(), "partition must cover the grid");
                }
            }
        }
    }

    #[test]
    fn shard_of_agrees_with_range_at_every_boundary() {
        // Boundary nodes are where partition_point off-by-ones would bite:
        // the last node of band s and the first of band s+1.
        let map = ShardMap::new(Dims::new(7, 11), 4);
        for s in 0..map.count() {
            let r = map.range(s);
            assert_eq!(map.shard_of(r.start), s, "first node of band {s}");
            assert_eq!(map.shard_of(r.end - 1), s, "last node of band {s}");
        }
    }
}
