//! Behavioral tests of the network engine: arbitration fairness, VC
//! contention, backpressure, loopback, and per-direction accounting.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ruche_noc::packet::Flit;
use ruche_noc::prelude::*;

fn drain(net: &mut Network, expect: u64) -> Vec<(EndpointKind, Flit)> {
    let mut got = Vec::new();
    let mut guard = 0;
    while (got.len() as u64) < expect {
        let out = net.step().to_vec();
        for (ep, f) in out {
            got.push((net.endpoint_kind(ep), f));
        }
        guard += 1;
        assert!(guard < 50_000, "drain stalled at {}/{expect}", got.len());
    }
    got
}

#[test]
fn p_to_p_loopback_delivers() {
    // The crossbar has a P->P connection (Figure 5); a tile can send to
    // itself without touching any link.
    let cfg = NetworkConfig::mesh(Dims::new(4, 4));
    let mut net = Network::new(cfg).unwrap();
    let c = Coord::new(2, 2);
    net.enqueue(net.tile_endpoint(c), Flit::single(c, Dest::tile(c), 1, 0));
    let got = drain(&mut net, 1);
    assert_eq!(got[0].0, EndpointKind::Tile(c));
    assert!(net.cycle() <= 3, "loopback is immediate: {}", net.cycle());
    // No inter-router link was traversed: only the P output counts once.
    assert_eq!(net.link_loads().raw().iter().sum::<u64>(), 1);
}

#[test]
fn output_arbitration_is_fair_between_streams() {
    // Two streams merging into one column must share the contended output
    // roughly 50:50 under round-robin arbitration.
    let cfg = NetworkConfig::mesh(Dims::new(3, 3));
    let mut net = Network::new(cfg).unwrap();
    let a = Coord::new(0, 0);
    let b = Coord::new(2, 0);
    let dst = Coord::new(1, 2); // both turn south at (1,0)
    let n = 60u64;
    for i in 0..n {
        net.enqueue(net.tile_endpoint(a), Flit::single(a, Dest::tile(dst), i, 0));
        net.enqueue(
            net.tile_endpoint(b),
            Flit::single(b, Dest::tile(dst), 1000 + i, 0),
        );
    }
    let got = drain(&mut net, 2 * n);
    // Interleaving: within any window of 12 ejections, both sources appear.
    for w in got.windows(12) {
        let from_a = w.iter().filter(|(_, f)| f.src == a).count();
        assert!(
            (1..12).contains(&from_a),
            "round-robin interleaves the streams"
        );
    }
}

#[test]
fn torus_two_vcs_share_one_physical_channel() {
    // On a ring, dateline-crossing (VC1) and non-crossing (VC0) packets
    // multiplex over the same physical channels; both must make progress
    // and arrive in order per pair.
    let cfg = NetworkConfig::half_torus(Dims::new(8, 1));
    let mut net = Network::new(cfg).unwrap();
    let mut id = 0;
    // All-to-all on the ring: plenty of both VC classes.
    for sx in 0..8u16 {
        for dx in 0..8u16 {
            if sx != dx {
                let s = Coord::new(sx, 0);
                net.enqueue(
                    net.tile_endpoint(s),
                    Flit::single(s, Dest::tile(Coord::new(dx, 0)), id, 0),
                );
                id += 1;
            }
        }
    }
    let got = drain(&mut net, id);
    assert_eq!(got.len() as u64, id);
}

#[test]
fn wormhole_interleaving_never_splits_packets() {
    // Heavy multi-flit cross traffic: every delivered packet's flits are
    // contiguous at its ejection port.
    let cfg = NetworkConfig::full_ruche(Dims::new(6, 6), 2, CrossbarScheme::FullyPopulated);
    let mut net = Network::new(cfg).unwrap();
    let mut rng = SmallRng::seed_from_u64(99);
    let mut id = 0u64;
    for _ in 0..40 {
        let s = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
        let d = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
        if s == d {
            continue;
        }
        for f in Flit::multi(s, Dest::tile(d), id, 0, 3) {
            net.enqueue(net.tile_endpoint(s), f);
        }
        id += 1;
    }
    let got = drain(&mut net, id * 3);
    use std::collections::HashMap;
    let mut per_dest: HashMap<Coord, Vec<u64>> = HashMap::new();
    for (kind, f) in got {
        let EndpointKind::Tile(c) = kind else {
            unreachable!()
        };
        per_dest.entry(c).or_default().push(f.packet_id);
    }
    for (dest, ids) in per_dest {
        for chunk in ids.chunks(3) {
            assert!(
                chunk.iter().all(|&p| p == chunk[0]),
                "packet split at {dest}: {ids:?}"
            );
        }
    }
}

#[test]
fn edge_endpoint_accepts_one_flit_per_cycle() {
    // The memory edge channel is a single link: ejections at one edge
    // endpoint arrive at most once per cycle, which bounds memory-tile
    // bandwidth exactly as Table 4 assumes.
    let cfg = NetworkConfig::mesh(Dims::new(4, 4)).with_edge_memory_ports();
    let mut net = Network::new(cfg).unwrap();
    let mut id = 0;
    for y in 0..4u16 {
        for i in 0..10 {
            let s = Coord::new(0, y);
            net.enqueue(
                net.tile_endpoint(s),
                Flit::single(s, Dest::north_edge(0), id + i, 0),
            );
        }
        id += 10;
    }
    let mut eject_cycles = Vec::new();
    for _ in 0..400 {
        let c = net.cycle();
        let out = net.step().to_vec();
        for (ep, _) in out {
            assert_eq!(net.endpoint_kind(ep), EndpointKind::NorthEdge(0));
            eject_cycles.push(c);
        }
        if eject_cycles.len() == 40 {
            break;
        }
    }
    assert_eq!(eject_cycles.len(), 40);
    for w in eject_cycles.windows(2) {
        assert!(
            w[1] > w[0],
            "at most one ejection per cycle at an edge port"
        );
    }
}

#[test]
fn traversal_counters_split_by_direction() {
    // A pure-X ruche route counts RE traversals, local remainder, and the
    // ejection — nothing else.
    let cfg = NetworkConfig::full_ruche(Dims::new(16, 4), 3, CrossbarScheme::FullyPopulated);
    let mut net = Network::new(cfg).unwrap();
    let s = Coord::new(0, 1);
    net.enqueue(
        net.tile_endpoint(s),
        Flit::single(s, Dest::tile(Coord::new(7, 1)), 0, 0),
    );
    net.run(40);
    let mut by_dir = std::collections::HashMap::new();
    for (_, dir, n) in net.link_loads().iter() {
        if n > 0 {
            *by_dir.entry(dir).or_insert(0u64) += n;
        }
    }
    assert_eq!(by_dir.get(&Dir::RE), Some(&2)); // 7 = 2*3 + 1
    assert_eq!(by_dir.get(&Dir::E), Some(&1));
    assert_eq!(by_dir.get(&Dir::P), Some(&1));
    assert_eq!(by_dir.len(), 3);
}

#[test]
fn head_of_line_blocking_exists_in_wormhole() {
    // A blocked stream at the head of a FIFO delays an unrelated stream
    // behind it — wormhole routers have HoL blocking by design; this guards
    // against accidentally implementing virtual-output queueing.
    let dims = Dims::new(8, 2);
    let cfg = NetworkConfig::mesh(dims);
    let mut net = Network::new(cfg).unwrap();
    // Streams from (0,0): one to the far column (through the row), and a
    // competing flood from row 1 creating contention at column 6.
    let s = Coord::new(0, 0);
    let flood_dst = Coord::new(6, 1);
    let probe_dst = Coord::new(7, 0);
    for id in 0..30 {
        net.enqueue(
            net.tile_endpoint(s),
            Flit::single(s, Dest::tile(flood_dst), id, 0),
        );
    }
    net.enqueue(
        net.tile_endpoint(s),
        Flit::single(s, Dest::tile(probe_dst), 9999, 0),
    );
    let got = drain(&mut net, 31);
    // The probe packet left last from the same source FIFO: it cannot
    // overtake the flood (FIFO order at the source).
    assert_eq!(got.last().unwrap().1.packet_id, 9999);
}

#[test]
fn saturated_network_keeps_conserving_flits() {
    // Sustained overload: sources offer 1 packet/cycle/tile for a while;
    // the network must neither lose nor duplicate flits.
    let dims = Dims::new(6, 6);
    for cfg in [
        NetworkConfig::mesh(dims),
        NetworkConfig::torus(dims),
        NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated),
    ] {
        let mut net = Network::new(cfg).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut id = 0u64;
        for cycle in 0..150u64 {
            for c in dims.iter() {
                let d = Coord::new(rng.gen_range(0..6), rng.gen_range(0..6));
                if d != c {
                    net.enqueue(
                        net.tile_endpoint(c),
                        Flit::single(c, Dest::tile(d), id, cycle),
                    );
                    id += 1;
                }
            }
            net.step();
        }
        let remaining = id - net.snapshot().ejected;
        let _ = drain(&mut net, remaining);
        let snap = net.snapshot();
        assert_eq!(snap.injected, id);
        assert_eq!(snap.ejected, id);
        assert_eq!(snap.in_flight, 0);
    }
}
