//! `Network::step` performs no heap allocation in steady state.
//!
//! A counting wrapper around the system allocator tallies every allocation
//! in this test binary (which is why this lives alone in its own
//! integration-test file). After a warmup that grows all reusable scratch
//! buffers to their high-water marks, further cycles — including active
//! traffic — must allocate nothing.

// Counting host allocations is meaningless (and unsupported for a
// `#[global_allocator]`) under Miri's interpreted heap.
#![cfg(not(miri))]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ruche_noc::packet::Flit;
use ruche_noc::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Bumped at the start of every measured region. The counter is
/// process-global, and libtest spawns an OS thread per test even while the
/// [`SERIAL`] lock keeps their bodies from overlapping — and every freshly
/// spawned thread allocates at startup (its name `Box<str>`, the
/// stack-overflow handler's guard page bookkeeping) before any user code
/// runs. A thread whose *first* allocation lands inside the current region
/// is therefore harness spawn noise, not the simulator, and is excluded
/// until the next region begins. Pool workers are spawned in
/// `Network::new` during warmup, so their startup allocations stamp them
/// *before* the region starts and they stay fully counted.
static MEASURE_GEN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Generation in force when this thread first allocated; 0 = never.
    static BORN_GEN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn note_alloc() {
    let gen = MEASURE_GEN.load(Ordering::Relaxed);
    // `try_with` fails only during thread teardown; count those — a
    // steady-state sim thread is not tearing down.
    let born = BORN_GEN
        .try_with(|b| {
            if b.get() == 0 {
                b.set(gen);
            }
            b.get()
        })
        .unwrap_or(0);
    if born < gen {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    }
}

// SAFETY: pure pass-through to the `System` allocator plus a relaxed
// counter bump; every `GlobalAlloc` contract obligation is met by `System`
// itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        // SAFETY: forwarded verbatim; the caller upholds `alloc`'s layout
        // contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; `ptr` came from this allocator,
        // which is `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        // SAFETY: forwarded verbatim; `ptr` came from this allocator,
        // which is `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Marks the start of a measured region: threads spawned from here on
/// (i.e. by the test harness, since the network under test is already
/// built) are excluded from the count. See [`MEASURE_GEN`].
fn begin_measured_region() {
    MEASURE_GEN.fetch_add(1, Ordering::Relaxed);
}

/// The counter above is process-global, so two tests measuring
/// concurrently would see each other's allocations (the harness runs
/// tests on parallel threads by default). Every test in this binary holds
/// this lock across its measured region.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    // A poisoned lock just means another test failed; the counter itself
    // is still fine to use.
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Drives `net` under random traffic; flits are pre-generated so the
/// measured region contains only `enqueue` + `step`.
fn assert_steady_state_alloc_free(cfg: NetworkConfig, label: &str) {
    let _guard = serial();
    let dims = cfg.dims;
    let mut net = Network::new(cfg).unwrap();
    let mut rng = SmallRng::seed_from_u64(11);
    let mut traffic: Vec<Vec<(EndpointId, Flit)>> = Vec::new();
    let mut id = 0u64;
    for cycle in 0..600u64 {
        let mut batch = Vec::new();
        for c in dims.iter() {
            if rng.gen_bool(0.25) {
                let d = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
                batch.push((
                    net.tile_endpoint(c),
                    Flit::single(c, Dest::tile(d), id, cycle),
                ));
                id += 1;
            }
        }
        traffic.push(batch);
    }

    // Warmup: the first 300 cycles grow every scratch buffer, source queue,
    // and the ejection vector to their high-water marks.
    let mut batches = traffic.into_iter();
    for batch in batches.by_ref().take(300) {
        for &(ep, f) in &batch {
            net.enqueue(ep, f);
        }
        net.step();
    }

    // Measured region: every remaining step, under load and through the
    // drain. Enqueues stay outside the count — source queues are unbounded
    // by design and may still grow.
    begin_measured_region();
    let mut in_step = 0u64;
    for batch in batches {
        for &(ep, f) in &batch {
            net.enqueue(ep, f);
        }
        let before = allocations();
        net.step();
        in_step += allocations() - before;
    }
    while !net.snapshot().is_idle() {
        let before = allocations();
        net.step();
        in_step += allocations() - before;
        assert!(
            net.snapshot().cycles_since_progress < 20_000,
            "{label}: drain stalled"
        );
    }
    assert_eq!(
        in_step, 0,
        "{label}: {in_step} heap allocations inside steady-state `step` calls"
    );
}

#[test]
fn wormhole_step_is_allocation_free_in_steady_state() {
    let dims = Dims::new(8, 8);
    assert_steady_state_alloc_free(NetworkConfig::mesh(dims), "mesh");
    assert_steady_state_alloc_free(
        NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated),
        "ruche",
    );
}

#[test]
fn vc_step_is_allocation_free_in_steady_state() {
    assert_steady_state_alloc_free(NetworkConfig::torus(Dims::new(8, 8)), "torus");
}

// The sharded variants measure the whole process (the counting allocator is
// global), so worker-thread allocations would be caught too. Pool spawn and
// per-shard scratch growth land in the warmup.

#[test]
fn sharded_wormhole_step_is_allocation_free_in_steady_state() {
    let dims = Dims::new(8, 8);
    assert_steady_state_alloc_free(
        NetworkConfig::mesh(dims).with_step_threads(2),
        "sharded mesh",
    );
    assert_steady_state_alloc_free(
        NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated).with_step_threads(4),
        "sharded ruche",
    );
}

#[test]
fn sharded_vc_step_is_allocation_free_in_steady_state() {
    assert_steady_state_alloc_free(
        NetworkConfig::torus(Dims::new(8, 8)).with_step_threads(2),
        "sharded torus",
    );
}

/// The event wheel adds nothing to the steady-state allocation story:
/// driving a bursty workload through `step` + `fast_forward` — bursts,
/// drains, and skipped quiescent spans alike — allocates nothing once the
/// scratch buffers are warm.
#[test]
fn event_mode_fast_forward_is_allocation_free_in_steady_state() {
    assert_event_drive_alloc_free(NetworkConfig::mesh(Dims::new(8, 8)), "event mesh");
}

/// Event mode composed with sharding exercises every new drain path at
/// once — masked plan/commit epochs, the outbox/inbox pointer exchange,
/// the parallel inbox application, and wake-on-credit re-arms of slept
/// shards — and none of it may allocate once warm. The exchange relies on
/// the build-time per-(src, dst) mail capacities being exact; an
/// undercount shows up here as a bucket realloc.
#[test]
fn sharded_event_mode_is_allocation_free_in_steady_state() {
    assert_event_drive_alloc_free(
        NetworkConfig::mesh(Dims::new(8, 8))
            .with_step_mode(StepMode::EventDriven)
            .with_step_threads(4),
        "sharded event mesh",
    );
    assert_event_drive_alloc_free(
        NetworkConfig::torus(Dims::new(8, 8))
            .with_step_mode(StepMode::EventDriven)
            .with_step_threads(2),
        "sharded event torus",
    );
}

/// Drives `cfg` through the bursty event-wheel workload: bursts, drains,
/// and fast-forwarded quiescent spans, all measured after a ten-burst
/// warmup.
fn assert_event_drive_alloc_free(cfg: NetworkConfig, label: &str) {
    let _guard = serial();
    let dims = cfg.dims;
    let cfg = cfg.with_step_mode(StepMode::EventDriven);
    let mut net = Network::new(cfg).unwrap();
    let mut rng = SmallRng::seed_from_u64(11);
    let (bursts, period) = (40u64, 64u64);
    let horizon = bursts * period;
    let mut schedule: Vec<(u64, EndpointId, Flit)> = Vec::new();
    let mut id = 0u64;
    for b in 0..bursts {
        let cycle = b * period;
        for _ in 0..6 {
            let s = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
            let d = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
            schedule.push((
                cycle,
                net.tile_endpoint(s),
                Flit::single(s, Dest::tile(d), id, cycle),
            ));
            id += 1;
        }
    }

    // Warmup: the first ten bursts grow every scratch buffer; the rest of
    // the run — load, drain, and fast-forwarded spans — is measured.
    let warm_until = 10 * period;
    let mut next = 0usize;
    let mut measured = 0u64;
    let mut iters = 0u64;
    let mut region_open = false;
    while net.cycle() < horizon || !net.is_quiescent() {
        while schedule.get(next).is_some_and(|&(c, ..)| c == net.cycle()) {
            let (_, ep, f) = schedule[next];
            net.enqueue(ep, f);
            next += 1;
        }
        let measuring = net.cycle() >= warm_until;
        if measuring && !region_open {
            begin_measured_region();
            region_open = true;
        }
        let before = allocations();
        net.step();
        let wake = schedule.get(next).map_or(horizon, |&(c, ..)| c);
        net.fast_forward(wake.min(horizon));
        if measuring {
            measured += allocations() - before;
        }
        iters += 1;
        assert!(iters < 2 * horizon, "event drive stalled");
    }
    assert!(net.is_quiescent());
    assert_eq!(
        measured, 0,
        "{label}: {measured} heap allocations inside steady-state \
         step/fast_forward calls"
    );
}
