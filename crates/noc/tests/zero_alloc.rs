//! `Network::step` performs no heap allocation in steady state.
//!
//! A counting wrapper around the system allocator tallies every allocation
//! in this test binary (which is why this lives alone in its own
//! integration-test file). After a warmup that grows all reusable scratch
//! buffers to their high-water marks, further cycles — including active
//! traffic — must allocate nothing.

// Counting host allocations is meaningless (and unsupported for a
// `#[global_allocator]`) under Miri's interpreted heap.
#![cfg(not(miri))]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ruche_noc::packet::Flit;
use ruche_noc::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the `System` allocator plus a relaxed
// counter bump; every `GlobalAlloc` contract obligation is met by `System`
// itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; the caller upholds `alloc`'s layout
        // contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim; `ptr` came from this allocator,
        // which is `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim; `ptr` came from this allocator,
        // which is `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Drives `net` under random traffic; flits are pre-generated so the
/// measured region contains only `enqueue` + `step`.
fn assert_steady_state_alloc_free(cfg: NetworkConfig, label: &str) {
    let dims = cfg.dims;
    let mut net = Network::new(cfg).unwrap();
    let mut rng = SmallRng::seed_from_u64(11);
    let mut traffic: Vec<Vec<(EndpointId, Flit)>> = Vec::new();
    let mut id = 0u64;
    for cycle in 0..600u64 {
        let mut batch = Vec::new();
        for c in dims.iter() {
            if rng.gen_bool(0.25) {
                let d = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
                batch.push((
                    net.tile_endpoint(c),
                    Flit::single(c, Dest::tile(d), id, cycle),
                ));
                id += 1;
            }
        }
        traffic.push(batch);
    }

    // Warmup: the first 300 cycles grow every scratch buffer, source queue,
    // and the ejection vector to their high-water marks.
    let mut batches = traffic.into_iter();
    for batch in batches.by_ref().take(300) {
        for &(ep, f) in &batch {
            net.enqueue(ep, f);
        }
        net.step();
    }

    // Measured region: every remaining step, under load and through the
    // drain. Enqueues stay outside the count — source queues are unbounded
    // by design and may still grow.
    let mut in_step = 0u64;
    for batch in batches {
        for &(ep, f) in &batch {
            net.enqueue(ep, f);
        }
        let before = allocations();
        net.step();
        in_step += allocations() - before;
    }
    while !net.snapshot().is_idle() {
        let before = allocations();
        net.step();
        in_step += allocations() - before;
        assert!(
            net.snapshot().cycles_since_progress < 20_000,
            "{label}: drain stalled"
        );
    }
    assert_eq!(
        in_step, 0,
        "{label}: {in_step} heap allocations inside steady-state `step` calls"
    );
}

#[test]
fn wormhole_step_is_allocation_free_in_steady_state() {
    let dims = Dims::new(8, 8);
    assert_steady_state_alloc_free(NetworkConfig::mesh(dims), "mesh");
    assert_steady_state_alloc_free(
        NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated),
        "ruche",
    );
}

#[test]
fn vc_step_is_allocation_free_in_steady_state() {
    assert_steady_state_alloc_free(NetworkConfig::torus(Dims::new(8, 8)), "torus");
}

// The sharded variants measure the whole process (the counting allocator is
// global), so worker-thread allocations would be caught too. Pool spawn and
// per-shard scratch growth land in the warmup.

#[test]
fn sharded_wormhole_step_is_allocation_free_in_steady_state() {
    let dims = Dims::new(8, 8);
    assert_steady_state_alloc_free(
        NetworkConfig::mesh(dims).with_step_threads(2),
        "sharded mesh",
    );
    assert_steady_state_alloc_free(
        NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated).with_step_threads(4),
        "sharded ruche",
    );
}

#[test]
fn sharded_vc_step_is_allocation_free_in_steady_state() {
    assert_steady_state_alloc_free(
        NetworkConfig::torus(Dims::new(8, 8)).with_step_threads(2),
        "sharded torus",
    );
}

/// The event wheel adds nothing to the steady-state allocation story:
/// driving a bursty workload through `step` + `fast_forward` — bursts,
/// drains, and skipped quiescent spans alike — allocates nothing once the
/// scratch buffers are warm.
#[test]
fn event_mode_fast_forward_is_allocation_free_in_steady_state() {
    let dims = Dims::new(8, 8);
    let cfg = NetworkConfig::mesh(dims).with_step_mode(StepMode::EventDriven);
    let mut net = Network::new(cfg).unwrap();
    let mut rng = SmallRng::seed_from_u64(11);
    let (bursts, period) = (40u64, 64u64);
    let horizon = bursts * period;
    let mut schedule: Vec<(u64, EndpointId, Flit)> = Vec::new();
    let mut id = 0u64;
    for b in 0..bursts {
        let cycle = b * period;
        for _ in 0..6 {
            let s = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
            let d = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
            schedule.push((
                cycle,
                net.tile_endpoint(s),
                Flit::single(s, Dest::tile(d), id, cycle),
            ));
            id += 1;
        }
    }

    // Warmup: the first ten bursts grow every scratch buffer; the rest of
    // the run — load, drain, and fast-forwarded spans — is measured.
    let warm_until = 10 * period;
    let mut next = 0usize;
    let mut measured = 0u64;
    let mut iters = 0u64;
    while net.cycle() < horizon || !net.is_quiescent() {
        while schedule.get(next).is_some_and(|&(c, ..)| c == net.cycle()) {
            let (_, ep, f) = schedule[next];
            net.enqueue(ep, f);
            next += 1;
        }
        let measuring = net.cycle() >= warm_until;
        let before = allocations();
        net.step();
        let wake = schedule.get(next).map_or(horizon, |&(c, ..)| c);
        net.fast_forward(wake.min(horizon));
        if measuring {
            measured += allocations() - before;
        }
        iters += 1;
        assert!(iters < 2 * horizon, "event drive stalled");
    }
    assert!(net.is_quiescent());
    assert_eq!(
        measured, 0,
        "event wheel: {measured} heap allocations inside steady-state \
         step/fast_forward calls"
    );
}
