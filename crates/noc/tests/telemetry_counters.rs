//! Integration tests for the per-link telemetry instrument: counters
//! populate under traffic, traversal totals agree with the lifetime link
//! loads, contention shows up as attributed blocked cycles, and the
//! instrument detaches with its data intact.

use ruche_noc::packet::Flit;
use ruche_noc::prelude::*;
use ruche_telemetry::JsonProbe;

/// Drives uniform all-to-all-ish traffic: each tile sends to the tile
/// diagonally opposite, for `packets` rounds.
fn drive(net: &mut Network, dims: Dims, packets: u64) {
    let mut id = 0;
    for round in 0..packets {
        for c in dims.iter() {
            let d = Coord::new(dims.cols - 1 - c.x, dims.rows - 1 - c.y);
            if d != c {
                net.enqueue(
                    net.tile_endpoint(c),
                    Flit::single(c, Dest::tile(d), id, round),
                );
                id += 1;
            }
        }
        net.step();
    }
    let mut guard = 0;
    while !net.snapshot().is_idle() {
        net.step();
        guard += 1;
        assert!(guard < 50_000, "drain stalled");
    }
}

#[test]
fn traversals_match_link_loads_when_attached_from_birth() {
    let dims = Dims::new(4, 4);
    let mut net = Network::new(NetworkConfig::mesh(dims)).unwrap();
    net.attach_telemetry(32);
    drive(&mut net, dims, 8);

    let tel = net.telemetry().expect("attached");
    assert_eq!(tel.cycles(), net.cycle());
    // Telemetry was attached before the first step, so its per-slot
    // traversal counts must equal the network's lifetime counters.
    let loads = net.link_loads();
    let np = loads.ports().len();
    let lifetime: u64 = loads.raw().iter().sum();
    let mut observed = 0u64;
    for node in 0..tel.n_nodes() {
        for p in 0..np {
            observed += tel.traversed(node, p);
        }
    }
    assert!(lifetime > 0);
    assert_eq!(observed, lifetime);
    // Every flit delivered means every flit ejected through a P port; the
    // total traversal count is at least hops * packets.
    assert!(tel.injected().total() > 0);
    assert_eq!(tel.injected().total(), tel.ejected().total());
}

#[test]
fn contention_records_blocked_cycles_with_causes() {
    // Everyone hammers one corner: output ports on the paths toward (0,0)
    // are contested, so arbitration losses and credit stalls must appear.
    let dims = Dims::new(4, 4);
    let mut net = Network::new(NetworkConfig::mesh(dims)).unwrap();
    net.attach_telemetry(32);
    let sink = Coord::new(0, 0);
    let mut id = 0;
    for round in 0..32u64 {
        for c in dims.iter() {
            if c != sink {
                net.enqueue(
                    net.tile_endpoint(c),
                    Flit::single(c, Dest::tile(sink), id, round),
                );
                id += 1;
            }
        }
        net.step();
    }
    let mut guard = 0;
    while !net.snapshot().is_idle() {
        net.step();
        guard += 1;
        assert!(guard < 50_000, "drain stalled");
    }
    let tel = net.telemetry().unwrap();
    let mut blocked = 0u64;
    let mut lost_arb = 0u64;
    for node in 0..tel.n_nodes() {
        for p in 0..tel.ports().len() {
            blocked += tel.blocked(node, p);
            for v in 0..tel.max_vcs() {
                lost_arb += tel.link(node, p, v).blocked_lost_arb;
            }
        }
    }
    assert!(blocked > 0, "hotspot traffic must block somewhere");
    assert!(lost_arb > 0, "a contested output must lose arbitrations");
}

#[test]
fn vc_router_telemetry_covers_both_vcs() {
    // A torus uses the 2-VC dateline routers; ring-crossing traffic must
    // touch VC 1 as well as VC 0.
    let dims = Dims::new(6, 6);
    let mut net = Network::new(NetworkConfig::torus(dims)).unwrap();
    net.attach_telemetry(32);
    drive(&mut net, dims, 12);
    let tel = net.telemetry().unwrap();
    assert_eq!(tel.max_vcs(), 2);
    let per_vc: Vec<u64> = (0..2)
        .map(|v| {
            let mut sum = 0;
            for node in 0..tel.n_nodes() {
                for p in 0..tel.ports().len() {
                    sum += tel.link(node, p, v).traversed;
                }
            }
            sum
        })
        .collect();
    assert!(per_vc[0] > 0, "{per_vc:?}");
    assert!(per_vc[1] > 0, "dateline crossings ride VC 1: {per_vc:?}");
}

#[test]
fn occupancy_histograms_sample_every_cycle() {
    let dims = Dims::new(4, 4);
    let mut net = Network::new(NetworkConfig::mesh(dims)).unwrap();
    net.attach_telemetry(32);
    drive(&mut net, dims, 4);
    let tel = net.telemetry().unwrap();
    // Each input FIFO is sampled once per cycle.
    let h = tel.occupancy(0, 0, 0);
    assert_eq!(h.count(), tel.cycles());
    // Traffic flowed, so some FIFO somewhere held a flit at a sample point.
    let mut nonzero = false;
    for node in 0..tel.n_nodes() {
        for p in 0..tel.ports().len() {
            nonzero |= tel.occupancy(node, p, 0).sum() > 0;
        }
    }
    assert!(nonzero, "some sampled occupancy must be non-zero");
}

#[test]
fn detach_returns_data_and_leaves_network_uninstrumented() {
    let dims = Dims::new(4, 4);
    let mut net = Network::new(NetworkConfig::mesh(dims)).unwrap();
    net.attach_telemetry(16);
    drive(&mut net, dims, 4);
    let cycles_observed = net.telemetry().unwrap().cycles();
    let tel = net.detach_telemetry().expect("was attached");
    assert_eq!(tel.cycles(), cycles_observed);
    assert!(net.telemetry().is_none());
    assert!(net.detach_telemetry().is_none(), "second detach is empty");
    // The network keeps running fine without the instrument.
    drive(&mut net, dims, 2);
    // And the detached data exports.
    let mut p = JsonProbe::new();
    tel.export(&mut p);
    let blob = p.into_json();
    assert!(blob.contains("\"cycles\""), "{blob}");
    assert!(blob.contains("\"link.E.vc0.traversed\""), "{blob}");
}

#[test]
fn reattach_restarts_counters() {
    let dims = Dims::new(4, 4);
    let mut net = Network::new(NetworkConfig::mesh(dims)).unwrap();
    net.attach_telemetry(16);
    drive(&mut net, dims, 4);
    assert!(net.telemetry().unwrap().cycles() > 0);
    net.attach_telemetry(16); // replaces the instrument
    assert_eq!(net.telemetry().unwrap().cycles(), 0);
}
