//! Panic-path contract of [`ruche_noc::pool::StepPool`]: a task panic is
//! re-raised **exactly once**, at the caller's barrier, and never corrupts
//! the pool — further epochs work and `Drop` never deadlocks. These paths
//! are exactly the ones the `ruche-soundness` model checker explores with
//! `Bound::with_panic`; the tests here confirm the real condvar/unwind
//! machinery matches the modeled protocol.

use ruche_noc::pool::StepPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// Runs `f` on its own thread and asserts it finishes within `secs`
/// seconds — the watchdog that turns a deadlocked `Drop` into a test
/// failure instead of a hung suite.
fn finishes_within(secs: u64, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("deadlock: the pool operation never completed");
    handle.join().expect("watchdog thread");
}

#[test]
fn many_panicking_tasks_reraise_exactly_once() {
    let pool = StepPool::new(3);
    let mut parts = vec![0u8; 12];
    let unwound = AtomicUsize::new(0);
    let res = catch_unwind(AssertUnwindSafe(|| {
        pool.run_parts(&mut parts, |i, _| {
            if i % 2 == 0 {
                unwound.fetch_add(1, Ordering::SeqCst);
                panic!("task {i} panics");
            }
        });
    }));
    // Six tasks panicked, but the barrier surfaces one panic, once.
    assert!(res.is_err(), "the barrier must re-raise");
    assert_eq!(unwound.load(Ordering::SeqCst), 6, "every even task unwound");
}

#[test]
fn pool_stays_usable_after_a_panicked_epoch() {
    let pool = StepPool::new(2);
    let mut parts = vec![0u32; 8];
    for round in 0..3 {
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run_parts(&mut parts, |i, _| assert!(i != 5, "round {round}"));
        }));
        assert!(res.is_err(), "round {round} must re-raise");
        // The panic flag must not leak into the next (clean) epoch.
        pool.run_parts(&mut parts, |_, p| *p += 1);
    }
    assert!(parts.iter().all(|&p| p == 3), "{parts:?}");
}

#[test]
fn masked_epochs_survive_a_panic_and_masks_do_not_leak() {
    let pool = StepPool::new(3);
    let mut parts = vec![0u32; 8];
    // Panic in a live slot of a masked epoch: slept slots must not run,
    // the panic re-raises once at the barrier, and the next epoch honours
    // a *different* mask — neither the sleep set nor the panic flag may
    // leak across the unwind.
    let ran = AtomicUsize::new(0);
    let res = catch_unwind(AssertUnwindSafe(|| {
        pool.run_parts_masked(&mut parts, 0b0000_1111, |i, _| {
            ran.fetch_add(1, Ordering::SeqCst);
            assert!(i >= 4, "slept slot {i} must never run");
            assert!(i != 6, "live slot 6 panics");
        });
    }));
    assert!(res.is_err(), "the barrier must re-raise");
    assert_eq!(
        ran.load(Ordering::SeqCst),
        4,
        "only the four live slots ran"
    );
    // Clean epoch with the complementary mask.
    pool.run_parts_masked(&mut parts, 0b1111_0000, |i, p| {
        assert!(i < 4, "slot {i} slept this epoch");
        *p += 1;
    });
    assert_eq!(parts, [1, 1, 1, 1, 0, 0, 0, 0]);
}

#[test]
fn drop_after_a_panicked_masked_epoch_never_deadlocks() {
    finishes_within(30, || {
        let pool = StepPool::new(4);
        let mut parts = vec![(); 16];
        let res = catch_unwind(AssertUnwindSafe(|| {
            // Odd slots sleep; live (even) slots from 8 up panic.
            pool.run_parts_masked(&mut parts, 0b1010_1010_1010_1010, |i, _| {
                assert!(i % 2 == 0, "slept slot {i} must never run");
                assert!(i < 8, "late live tasks panic");
            });
        }));
        assert!(res.is_err());
        drop(pool); // must join all four workers
    });
}

#[test]
fn drop_after_a_panicked_epoch_never_deadlocks() {
    finishes_within(30, || {
        let pool = StepPool::new(4);
        let mut parts = vec![(); 16];
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.run_parts(&mut parts, |i, _| assert!(i < 2, "late tasks panic"));
        }));
        assert!(res.is_err());
        drop(pool); // must join all four workers
    });
}

#[test]
fn drop_of_an_idle_pool_never_deadlocks() {
    finishes_within(30, || {
        // No epoch was ever published: workers are parked on `start` with
        // `seen == epoch == 0`; shutdown alone must wake and exit them.
        drop(StepPool::new(4));
    });
}

#[test]
fn serial_path_panics_propagate_directly() {
    // With zero workers every task runs on the caller; the panic still
    // surfaces after the (trivial) barrier and the pool still survives.
    let pool = StepPool::new(0);
    let mut parts = vec![0u8; 4];
    let res = catch_unwind(AssertUnwindSafe(|| {
        pool.run_parts(&mut parts, |i, _| assert!(i != 2));
    }));
    assert!(res.is_err());
    pool.run_parts(&mut parts, |_, p| *p = 7);
    assert!(parts.iter().all(|&p| p == 7));
}

#[test]
fn panic_in_the_first_task_of_the_first_epoch() {
    // The earliest possible unwind: before any worker necessarily woke.
    let pool = StepPool::new(2);
    let mut parts = vec![(); 1];
    let res = catch_unwind(AssertUnwindSafe(|| {
        pool.run_parts(&mut parts, |_, _| panic!("immediately"));
    }));
    assert!(res.is_err());
    let mut more = vec![0u8; 6];
    pool.run_parts(&mut more, |_, p| *p = 1);
    assert!(more.iter().all(|&p| p == 1));
}
