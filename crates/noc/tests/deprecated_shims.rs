//! The deprecated probe methods are kept for one release as thin shims
//! over [`Network::snapshot`] / [`Network::link_loads`]. This test is the
//! only place allowed to call them: it pins down that each shim agrees
//! with its replacement until the shims are removed.

#![allow(deprecated)]

use ruche_noc::packet::Flit;
use ruche_noc::prelude::*;

#[test]
fn shims_agree_with_snapshot_and_link_loads() {
    let dims = Dims::new(4, 4);
    let mut net = Network::new(NetworkConfig::mesh(dims)).unwrap();
    let mut id = 0;
    for round in 0..20u64 {
        for c in dims.iter() {
            let d = Coord::new(dims.cols - 1 - c.x, dims.rows - 1 - c.y);
            if d != c {
                net.enqueue(
                    net.tile_endpoint(c),
                    Flit::single(c, Dest::tile(d), id, round),
                );
                id += 1;
            }
        }
        net.step();

        // Mid-flight, every shim matches the snapshot taken in the same
        // cycle.
        let s = net.snapshot();
        assert_eq!(s.version, NetSnapshot::VERSION);
        assert_eq!(net.in_flight(), s.in_flight);
        assert_eq!(net.queued(), s.queued);
        assert_eq!(net.cycles_since_progress(), s.cycles_since_progress);
        let stats = net.stats();
        assert_eq!(stats.injected, s.injected);
        assert_eq!(stats.ejected, s.ejected);
    }

    let mut guard = 0;
    while !net.snapshot().is_idle() {
        net.step();
        guard += 1;
        assert!(guard < 50_000, "drain stalled");
    }

    // The raw traversal slice and the structured link loads are two views
    // of the same counters.
    let flat: Vec<u64> = net.traversals().to_vec();
    let loads = net.link_loads();
    assert_eq!(loads.raw(), &flat[..]);
    let np = loads.ports().len();
    for (i, &n) in flat.iter().enumerate() {
        assert_eq!(loads.count(i / np, i % np), n);
    }
    let from_iter: u64 = loads.iter().map(|(_, _, n)| n).sum();
    assert_eq!(from_iter, flat.iter().sum::<u64>());
}
