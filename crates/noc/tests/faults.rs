//! End-to-end behaviour of fault-injected networks: detoured delivery
//! through the cycle-accurate engine, partition surfacing, and the
//! property that faulted routing terminates for every pair — reaching the
//! destination within the hop bound or reporting `Unreachable`, never
//! livelocking.

// Whole-network property sweeps are minutes-per-case at interpreter speed;
// the Miri job covers the pool/shard concurrency subset instead.
#![cfg(not(miri))]

use proptest::prelude::*;
use ruche_noc::fault::try_walk_table_route;
use ruche_noc::packet::Flit;
use ruche_noc::prelude::*;

/// Drives `net` until idle, panicking if progress stalls (which would mean
/// a routing livelock or deadlock).
fn drain(net: &mut Network) -> Vec<(EndpointId, Flit)> {
    let mut out = Vec::new();
    while !net.snapshot().is_idle() {
        out.extend(net.step().iter().copied());
        assert!(
            net.snapshot().cycles_since_progress < 10_000,
            "network stalled at cycle {}",
            net.cycle()
        );
    }
    out
}

#[test]
fn faulted_mesh_delivers_every_reachable_pair() {
    let dims = Dims::new(6, 6);
    let cfg = NetworkConfig::mesh(dims);
    let faults = FaultModel::random_links(&cfg, 0.12, 11).kill_router(Coord::new(4, 2));
    let mut net = Network::with_faults(cfg, &faults).unwrap();
    let table = net
        .route_table()
        .expect("faulted network carries a table")
        .clone();

    let mut sent = 0u64;
    let mut id = 0;
    for s in dims.iter() {
        for d in dims.iter() {
            if s == d || !table.reachable(s, Dir::P, Dest::tile(d)) {
                continue;
            }
            net.enqueue(net.tile_endpoint(s), Flit::single(s, Dest::tile(d), id, 0));
            id += 1;
            sent += 1;
        }
    }
    assert!(sent > 0, "fault set disconnected the whole array");
    let delivered = drain(&mut net);
    assert_eq!(delivered.len() as u64, sent);
    let snap = net.snapshot();
    assert_eq!(snap.ejected, sent);
    assert_eq!(snap.injected, sent);
}

#[test]
fn detour_traffic_avoids_dead_channels() {
    let dims = Dims::new(4, 2);
    let cfg = NetworkConfig::mesh(dims);
    let (at, out) = (Coord::new(1, 0), Dir::E);
    let faults = FaultModel::default().kill_link(at, out);
    let mut net = Network::with_faults(cfg, &faults).unwrap();

    let (s, d) = (Coord::new(0, 0), Coord::new(3, 0));
    net.enqueue(net.tile_endpoint(s), Flit::single(s, Dest::tile(d), 0, 0));
    let delivered = drain(&mut net);
    assert_eq!(delivered.len(), 1);
    assert_eq!(net.endpoint_kind(delivered[0].0), EndpointKind::Tile(d));

    // Nothing crossed the dead channel, in either direction.
    let loads = net.link_loads();
    let e = loads.ports().iter().position(|&p| p == Dir::E).unwrap();
    let w = loads.ports().iter().position(|&p| p == Dir::W).unwrap();
    assert_eq!(loads.count(dims.index(at), e), 0);
    assert_eq!(loads.count(dims.index(Coord::new(2, 0)), w), 0);
}

#[test]
fn dead_router_endpoints_are_flagged_and_guarded() {
    let dims = Dims::new(4, 4);
    let cfg = NetworkConfig::mesh(dims);
    let dead = Coord::new(2, 2);
    let net = Network::with_faults(cfg, &FaultModel::default().kill_router(dead)).unwrap();
    for c in dims.iter() {
        assert_eq!(net.endpoint_alive(net.tile_endpoint(c)), c != dead);
    }
    let table = net.route_table().unwrap();
    let err = table
        .route(Coord::new(0, 0), Dir::P, Dest::tile(dead))
        .unwrap_err();
    assert!(matches!(err, RouteError::Unreachable { .. }));
}

#[test]
#[should_panic(expected = "dead endpoint")]
fn enqueue_at_dead_endpoint_panics() {
    let cfg = NetworkConfig::mesh(Dims::new(4, 4));
    let dead = Coord::new(1, 1);
    let mut net = Network::with_faults(cfg, &FaultModel::default().kill_router(dead)).unwrap();
    net.enqueue(
        net.tile_endpoint(dead),
        Flit::single(dead, Dest::tile(Coord::new(0, 0)), 0, 0),
    );
}

#[test]
fn empty_fault_model_builds_a_plain_network() {
    let cfg = NetworkConfig::mesh(Dims::new(4, 4));
    let net = Network::with_faults(cfg, &FaultModel::default()).unwrap();
    assert!(net.faults().is_none());
    assert!(net.route_table().is_none());
}

#[test]
fn faulted_ruche_survives_heavy_damage_end_to_end() {
    let cfg = NetworkConfig::full_ruche(Dims::new(8, 8), 2, CrossbarScheme::FullyPopulated);
    let faults = FaultModel::random_links(&cfg, 0.2, 3);
    assert!(!faults.is_empty());
    let mut net = Network::with_faults(cfg, &faults).unwrap();
    let table = net.route_table().unwrap().clone();
    let dims = net.cfg().dims;
    let mut sent = 0u64;
    for (id, s) in dims.iter().enumerate() {
        let d = Coord::new(dims.cols - 1 - s.x, dims.rows - 1 - s.y);
        if d == s || !table.reachable(s, Dir::P, Dest::tile(d)) {
            continue;
        }
        net.enqueue(
            net.tile_endpoint(s),
            Flit::single(s, Dest::tile(d), id as u64, 0),
        );
        sent += 1;
    }
    let delivered = drain(&mut net);
    assert_eq!(delivered.len() as u64, sent);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The never-livelock property the fault subsystem is built around:
    /// for every topology family, fault rate, and seed, every ordered pair
    /// either routes to its destination within `max_route_hops` or
    /// reports `Unreachable` — a table walk can do nothing else.
    #[test]
    fn faulted_routing_terminates_for_every_pair(
        cols in 2u16..=8,
        rows in 2u16..=8,
        p_mil in 0u32..300,
        seed in any::<u64>(),
        topo in 0usize..3,
    ) {
        let p = f64::from(p_mil) / 1000.0;
        let dims = Dims::new(cols, rows);
        let cfg = match topo {
            0 => NetworkConfig::mesh(dims),
            1 if cols > 4 => {
                NetworkConfig::half_ruche(dims, 2, CrossbarScheme::FullyPopulated)
            }
            _ => NetworkConfig::multi_mesh(dims),
        };
        let faults = FaultModel::random_links(&cfg, p, seed);
        let table = RouteTable::build(&cfg, &faults).unwrap();
        let limit = cfg.max_route_hops();
        for s in dims.iter() {
            for d in dims.iter() {
                match try_walk_table_route(&table, s, Dir::P, Dest::tile(d)) {
                    Ok(path) => {
                        prop_assert!(path.len() <= limit, "{s}->{d}: {} hops", path.len());
                        let (last, out) = path[path.len() - 1];
                        prop_assert_eq!(last, d);
                        prop_assert_eq!(out, Dir::P);
                    }
                    Err(RouteError::Unreachable { .. }) => {}
                    Err(e) => prop_assert!(false, "{s}->{d}: {e}"),
                }
            }
        }
    }
}
