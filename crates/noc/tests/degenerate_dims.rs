//! Degenerate array shapes: 1×N and N×1 *lines* are supported end to
//! end (routing, simulation, edge endpoints); the 1×1 single tile is
//! rejected by validation with a precise error, because it has no
//! channels and the pairwise analytics are undefined on it.

use ruche_noc::prelude::*;
use ruche_noc::topology::ConfigError;

/// Every supported line-shaped configuration (Ruche/torus variants whose
/// long axis is degenerate are rejected by the existing extent checks).
fn line_configs() -> Vec<NetworkConfig> {
    vec![
        NetworkConfig::mesh(Dims::new(1, 8)),
        NetworkConfig::mesh(Dims::new(8, 1)),
        NetworkConfig::multi_mesh(Dims::new(1, 8)),
        NetworkConfig::multi_mesh(Dims::new(8, 1)),
        NetworkConfig::half_torus(Dims::new(8, 1)),
        NetworkConfig::half_ruche(Dims::new(8, 1), 3, CrossbarScheme::Depopulated),
        NetworkConfig::half_ruche(Dims::new(8, 1), 2, CrossbarScheme::FullyPopulated),
        NetworkConfig::mesh(Dims::new(8, 1)).with_edge_memory_ports(),
        NetworkConfig::mesh(Dims::new(1, 8)).with_edge_memory_ports(),
        NetworkConfig::half_torus(Dims::new(8, 1)).with_edge_memory_ports(),
    ]
}

#[test]
fn single_tile_is_rejected() {
    let dims = Dims::new(1, 1);
    for cfg in [
        NetworkConfig::mesh(dims),
        NetworkConfig::multi_mesh(dims),
        NetworkConfig::mesh(dims).with_edge_memory_ports(),
    ] {
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::SingleTile),
            "{}",
            cfg.label()
        );
        assert!(Network::new(cfg).is_err());
    }
    // The error explains itself.
    let msg = ConfigError::SingleTile.to_string();
    assert!(msg.contains("1x1"), "{msg}");
}

#[test]
fn degenerate_ruche_and_torus_axes_stay_rejected() {
    // A Ruche or ring axis of extent 1 was already rejected before lines
    // were supported; make sure the precise errors survive.
    assert!(matches!(
        NetworkConfig::full_ruche(Dims::new(1, 8), 2, CrossbarScheme::Depopulated).validate(),
        Err(ConfigError::RucheFactorTooLarge {
            axis: Axis::X,
            extent: 1,
            ..
        })
    ));
    assert!(matches!(
        NetworkConfig::ruche_one(Dims::new(8, 1)).validate(),
        Err(ConfigError::RucheFactorTooLarge {
            axis: Axis::Y,
            extent: 1,
            ..
        })
    ));
    assert!(matches!(
        NetworkConfig::torus(Dims::new(8, 1)).validate(),
        Err(ConfigError::TorusRingTooShort {
            axis: Axis::Y,
            extent: 1
        })
    ));
    assert!(matches!(
        NetworkConfig::half_torus(Dims::new(1, 8)).validate(),
        Err(ConfigError::TorusRingTooShort {
            axis: Axis::X,
            extent: 1
        })
    ));
}

#[test]
fn lines_validate_and_route_all_pairs() {
    for cfg in line_configs() {
        cfg.validate()
            .unwrap_or_else(|e| panic!("{} {}: {e}", cfg.label(), cfg.dims));
        for s in cfg.dims.iter() {
            for d in cfg.dims.iter() {
                let path = try_walk_route(&cfg, s, Dest::tile(d))
                    .unwrap_or_else(|e| panic!("{} {s}->{d}: {e}", cfg.label()));
                assert_eq!(path.last().unwrap().1, Dir::P, "{} {s}->{d}", cfg.label());
            }
        }
    }
}

#[test]
fn lines_deliver_packets_end_to_end() {
    for cfg in line_configs() {
        let dims = cfg.dims;
        let label = cfg.label();
        let mut net = Network::new(cfg).unwrap_or_else(|e| panic!("{label} {dims}: {e}"));
        let src = Coord::new(0, 0);
        let dst = Coord::new(dims.cols - 1, dims.rows - 1);
        net.enqueue(
            net.tile_endpoint(src),
            Flit::single(src, Dest::tile(dst), 0, 0),
        );
        while net.snapshot().ejected == 0 {
            net.step();
            assert!(net.cycle() < 200, "{label} {dims}: packet stuck");
        }
    }
}

#[test]
fn single_row_edge_ports_serve_both_edges() {
    // With one row, the north and south memory endpoints hang off the
    // same routers; routes to both edges must still resolve.
    let cfg = NetworkConfig::mesh(Dims::new(8, 1)).with_edge_memory_ports();
    for col in 0..8 {
        let north = try_walk_route(&cfg, Coord::new(0, 0), Dest::north_edge(col)).unwrap();
        assert_eq!(north.last().unwrap(), &(Coord::new(col, 0), Dir::N));
        let south = try_walk_route(&cfg, Coord::new(0, 0), Dest::south_edge(col, 1)).unwrap();
        assert_eq!(south.last().unwrap(), &(Coord::new(col, 0), Dir::S));
    }
}
