//! Streaming statistics accumulators.

use serde::{Deserialize, Serialize};

/// A streaming mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use ruche_stats::Accum;
///
/// let mut a = Accum::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     a.add(x);
/// }
/// assert_eq!(a.mean(), 5.0);
/// assert_eq!(a.stdev(), 2.0); // population standard deviation
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Accum {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accum {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Accum) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 when fewer than two samples).
    pub fn stdev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// The raw internal state `(count, mean, m2, min, max)`, for exact
    /// serialization. [`Accum::from_parts`] reconstructs a bit-identical
    /// accumulator; the pair is how the service wire codec round-trips
    /// per-tile statistics without losing Welford precision.
    pub fn to_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`Accum::to_parts`] output. The parts
    /// are trusted verbatim — this is a serialization escape hatch, not a
    /// constructor for hand-made statistics.
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Accum {
            count,
            mean,
            m2,
            min,
            max,
        }
    }
}

impl Extend<f64> for Accum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for Accum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut a = Accum::new();
        a.extend(iter);
        a
    }
}

/// A sample store with quantile queries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty store.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `q`-quantile (nearest-rank), `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        let idx = ((self.values.len() as f64 - 1.0) * q).round() as usize;
        Some(self.values[idx])
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// All samples, insertion order not guaranteed after quantile queries.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Extend<f64> for Samples {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
        self.sorted = false;
    }
}

/// Geometric mean of strictly positive values.
///
/// Returns 0 for an empty iterator.
///
/// # Panics
///
/// Panics if any value is non-positive.
///
/// # Examples
///
/// ```
/// use ruche_stats::geomean;
///
/// let g = geomean([1.0, 4.0].into_iter());
/// assert_eq!(g, 2.0);
/// ```
pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u64;
    for v in values {
        assert!(v > 0.0, "geomean requires positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accum_mean_and_stdev() {
        let a: Accum = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(a.count(), 4);
        assert_eq!(a.mean(), 2.5);
        assert!((a.stdev() - 1.118).abs() < 1e-3);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(4.0));
        assert_eq!(a.sum(), 10.0);
    }

    #[test]
    fn accum_empty_is_safe() {
        let a = Accum::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.stdev(), 0.0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
    }

    #[test]
    fn accum_merge_matches_combined() {
        let mut a: Accum = (0..50).map(f64::from).collect();
        let b: Accum = (50..100).map(f64::from).collect();
        let combined: Accum = (0..100).map(f64::from).collect();
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert!((a.mean() - combined.mean()).abs() < 1e-9);
        assert!((a.stdev() - combined.stdev()).abs() < 1e-9);
    }

    #[test]
    fn accum_merge_with_empty() {
        let mut a: Accum = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&Accum::new());
        assert_eq!(a, before);
        let mut e = Accum::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn samples_quantiles() {
        let mut s = Samples::new();
        s.extend((1..=100).map(f64::from));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        assert_eq!(s.quantile(0.5), Some(51.0));
        assert_eq!(s.len(), 100);
        assert_eq!(s.mean(), 50.5);
    }

    #[test]
    fn samples_empty_quantile_is_none() {
        let mut s = Samples::new();
        assert_eq!(s.quantile(0.5), None);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn bad_quantile_panics() {
        let mut s = Samples::new();
        s.add(1.0);
        s.quantile(1.5);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(std::iter::empty()), 0.0);
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert!((geomean([1.12, 1.17].into_iter()) - 1.1447).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean([1.0, 0.0].into_iter());
    }
}
