//! Plain-text table and CSV rendering for experiment reports.

use std::fmt::Write as _;

/// An aligned plain-text table builder.
///
/// # Examples
///
/// ```
/// use ruche_stats::Table;
///
/// let mut t = Table::new(vec!["config", "latency", "throughput"]);
/// t.row(vec!["mesh".into(), "10.6".into(), "0.28".into()]);
/// t.row(vec!["ruche2-depop".into(), "7.9".into(), "0.44".into()]);
/// let s = t.render();
/// assert!(s.contains("ruche2-depop"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                let sep = if i + 1 == n { "\n" } else { "  " };
                let _ = write!(out, "{cell:>w$}{sep}", w = w);
            }
        };
        emit(&self.headers, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// A minimal CSV writer (quotes cells containing separators).
#[derive(Debug, Clone, Default)]
pub struct Csv {
    buf: String,
}

impl Csv {
    /// Creates an empty document.
    pub fn new() -> Self {
        Csv::default()
    }

    /// Appends a row of cells.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut first = true;
        for cell in cells {
            if !first {
                self.buf.push(',');
            }
            first = false;
            let c = cell.as_ref();
            if c.contains([',', '"', '\n']) {
                self.buf.push('"');
                self.buf.push_str(&c.replace('"', "\"\""));
                self.buf.push('"');
            } else {
                self.buf.push_str(c);
            }
        }
        self.buf.push('\n');
    }

    /// The document contents.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consumes the writer, returning the document.
    pub fn into_string(self) -> String {
        self.buf
    }
}

/// Formats a float with `digits` decimal places.
pub fn fmt_f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].ends_with("long-header"));
        assert!(lines[2].ends_with("1"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_quoting() {
        let mut c = Csv::new();
        c.row(["plain", "with,comma", "with\"quote"]);
        assert_eq!(c.as_str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
    }

    #[test]
    fn csv_multiple_rows() {
        let mut c = Csv::new();
        c.row(["h1", "h2"]);
        c.row(["1", "2"]);
        assert_eq!(c.into_string(), "h1,h2\n1,2\n");
    }

    #[test]
    fn fmt_f_digits() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(1.0, 0), "1");
    }
}
