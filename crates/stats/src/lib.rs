//! # ruche-stats
//!
//! Measurement and reporting utilities shared by the traffic testbench, the
//! manycore simulator, and the per-figure bench harnesses: streaming
//! statistics accumulators, quantile samples, geometric means, and plain
//! text table / CSV rendering.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accum;
pub mod plot;
pub mod report;

pub use accum::{geomean, Accum, Samples};
pub use plot::{AsciiPlot, Heatmap};
pub use report::{fmt_f, Csv, Table};
