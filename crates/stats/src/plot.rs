//! Minimal ASCII scatter/line plots for terminal reports.
//!
//! The figure harnesses use these to render latency-vs-load curves
//! (Figures 6 and 9) directly in `cargo bench` output, next to the CSV
//! artifacts.

/// One plotted series: marker glyph, name, and `(x, y)` points.
type Series = (char, String, Vec<(f64, f64)>);

/// An ASCII plot of one or more named series on shared axes.
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    title: String,
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
    y_max: Option<f64>,
    series: Vec<Series>,
}

impl AsciiPlot {
    /// Marker glyphs assigned to series in order.
    const MARKS: [char; 10] = ['*', 'o', '+', 'x', '#', '@', '%', '&', '=', '~'];

    /// Creates an empty plot.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        AsciiPlot {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            width: 64,
            height: 20,
            y_max: None,
            series: Vec::new(),
        }
    }

    /// Sets the plot area size in characters (builder style).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 8.
    pub fn with_size(mut self, width: usize, height: usize) -> Self {
        assert!(width >= 8 && height >= 8, "plot area too small");
        self.width = width;
        self.height = height;
        self
    }

    /// Clamps the y axis (points above are clipped to the top row) —
    /// useful for latency curves that diverge at saturation.
    pub fn with_y_max(mut self, y_max: f64) -> Self {
        self.y_max = Some(y_max);
        self
    }

    /// Adds a named series of (x, y) points. Non-finite points are skipped.
    pub fn series(&mut self, name: &str, points: &[(f64, f64)]) -> &mut Self {
        let mark = Self::MARKS[self.series.len() % Self::MARKS.len()];
        let pts: Vec<(f64, f64)> = points
            .iter()
            .copied()
            .filter(|&(x, y)| x.is_finite() && y.is_finite())
            .collect();
        self.series.push((mark, name.to_string(), pts));
        self
    }

    /// Number of series added.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the plot has no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders the plot.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self.series.iter().flat_map(|(_, _, p)| p.clone()).collect();
        if all.is_empty() {
            return format!("{} (no data)\n", self.title);
        }
        let x_min = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let x_max = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let y_min = 0.0f64.min(all.iter().map(|p| p.1).fold(f64::INFINITY, f64::min));
        let y_max = self
            .y_max
            .unwrap_or_else(|| all.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max));
        let x_span = (x_max - x_min).max(1e-12);
        let y_span = (y_max - y_min).max(1e-12);

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (mark, _, pts) in &self.series {
            for &(x, y) in pts {
                let cx = ((x - x_min) / x_span * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((y.min(y_max) - y_min) / y_span * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                grid[row][cx.min(self.width - 1)] = *mark;
            }
        }

        let mut out = String::new();
        out.push_str(&format!("{} — {}\n", self.title, self.y_label));
        for (i, row) in grid.iter().enumerate() {
            let y_here = y_max - y_span * i as f64 / (self.height - 1) as f64;
            let label = if i % 5 == 0 {
                format!("{y_here:>8.1} |")
            } else {
                format!("{:>8} |", "")
            };
            out.push_str(&label);
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(self.width)));
        out.push_str(&format!(
            "{:>10}{:<w$.3}{:>.3}   ({})\n",
            "",
            x_min,
            x_max,
            self.x_label,
            w = self.width - 4
        ));
        out.push_str(&format!("{:>10}", ""));
        for (mark, name, _) in &self.series {
            out.push_str(&format!("{mark} {name}   "));
        }
        out.push('\n');
        out
    }
}

/// A shaded ASCII heatmap over a 2-D grid of intensities — used for the
/// per-router link-utilization maps in the telemetry reports and the
/// `link_heatmap` example.
///
/// Cells are normalized against the grid maximum and rendered with a
/// ten-step shade ramp, each cell two characters wide so the aspect ratio
/// roughly matches a square tile array.
///
/// # Examples
///
/// ```
/// use ruche_stats::Heatmap;
///
/// let h = Heatmap::new("demo", 2, 2, vec![0.0, 0.25, 0.5, 1.0]).unwrap();
/// let s = h.render();
/// assert!(s.starts_with("demo"));
/// assert!(s.contains("@@"), "hottest cell uses the top shade");
/// ```
#[derive(Debug, Clone)]
pub struct Heatmap {
    title: String,
    cols: usize,
    rows: usize,
    cells: Vec<f64>,
}

impl Heatmap {
    /// Shade ramp from cold to hot.
    const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

    /// Creates a heatmap over `cells`, row-major with `cols` columns.
    /// Returns `None` unless `cells.len() == cols * rows` and both
    /// dimensions are non-zero.
    pub fn new(title: &str, cols: usize, rows: usize, cells: Vec<f64>) -> Option<Self> {
        if cols == 0 || rows == 0 || cells.len() != cols * rows {
            return None;
        }
        Some(Heatmap {
            title: title.to_string(),
            cols,
            rows,
            cells,
        })
    }

    /// Grid width in cells.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid height in cells.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The hottest cell value (0 when all cells are non-positive).
    pub fn max(&self) -> f64 {
        self.cells.iter().copied().fold(0.0, f64::max)
    }

    /// Renders the shaded grid with a title line carrying the maximum, so
    /// shades can be read back as absolute values.
    pub fn render(&self) -> String {
        let max = self.max().max(1e-9);
        let mut out = format!("{} (max {:.3})\n", self.title, self.max());
        for y in 0..self.rows {
            out.push_str("  ");
            for x in 0..self.cols {
                let v = (self.cells[y * self.cols + x] / max).clamp(0.0, 1.0);
                let idx = ((v * (Self::SHADES.len() - 1) as f64).round() as usize)
                    .min(Self::SHADES.len() - 1);
                out.push(Self::SHADES[idx]);
                out.push(Self::SHADES[idx]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_shades_by_relative_intensity() {
        let h = Heatmap::new("t", 3, 1, vec![0.0, 0.5, 1.0]).unwrap();
        let s = h.render();
        assert_eq!(h.cols(), 3);
        assert_eq!(h.rows(), 1);
        assert_eq!(h.max(), 1.0);
        let row = s.lines().nth(1).unwrap();
        assert_eq!(row, "    ++@@", "{s}");
        assert!(s.starts_with("t (max 1.000)"));
    }

    #[test]
    fn heatmap_rejects_shape_mismatch() {
        assert!(Heatmap::new("t", 2, 2, vec![0.0; 3]).is_none());
        assert!(Heatmap::new("t", 0, 2, vec![]).is_none());
    }

    #[test]
    fn all_zero_heatmap_renders_blank() {
        let h = Heatmap::new("t", 2, 1, vec![0.0, 0.0]).unwrap();
        let row = h.render().lines().nth(1).unwrap().to_string();
        assert_eq!(row.trim(), "");
    }

    #[test]
    fn renders_points_and_legend() {
        let mut p = AsciiPlot::new("latency", "offered load", "cycles");
        p.series("mesh", &[(0.0, 5.0), (0.5, 10.0), (1.0, 50.0)]);
        p.series("ruche", &[(0.0, 4.0), (0.5, 6.0), (1.0, 20.0)]);
        let s = p.render();
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("mesh") && s.contains("ruche"));
        assert!(s.contains("offered load"));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_plot_is_graceful() {
        let p = AsciiPlot::new("t", "x", "y");
        assert_eq!(p.render(), "t (no data)\n");
    }

    #[test]
    fn clamps_to_y_max() {
        let mut p = AsciiPlot::new("t", "x", "y").with_y_max(10.0);
        p.series("s", &[(0.0, 1.0), (1.0, 1_000_000.0)]);
        let s = p.render();
        // The divergent point appears on the top row instead of crushing
        // the rest of the plot.
        let top_row = s.lines().nth(1).unwrap();
        assert!(top_row.contains('*'), "{s}");
    }

    #[test]
    fn skips_non_finite_points() {
        let mut p = AsciiPlot::new("t", "x", "y");
        p.series("s", &[(0.0, 1.0), (f64::NAN, 2.0), (1.0, f64::INFINITY)]);
        let s = p.render();
        // One mark in the grid (the legend line at the end also shows it).
        let grid_marks: usize = s
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| l.matches('*').count())
            .sum();
        assert_eq!(grid_marks, 1, "{s}");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_plot_panics() {
        AsciiPlot::new("t", "x", "y").with_size(2, 2);
    }
}
