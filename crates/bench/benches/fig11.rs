//! `cargo bench --bench fig11` — regenerates the paper's fig11.
fn main() {
    ruche_bench::figures::fig11::run(ruche_bench::Opts::from_env());
}
