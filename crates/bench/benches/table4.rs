//! `cargo bench --bench table4` — regenerates the paper's table4.
fn main() {
    ruche_bench::figures::table4::run(ruche_bench::Opts::from_env());
}
