//! `cargo bench --bench fig10` — regenerates the paper's fig10.
fn main() {
    ruche_bench::figures::fig10::run(ruche_bench::Opts::from_env());
}
