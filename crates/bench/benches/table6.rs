//! `cargo bench --bench table6` — regenerates the paper's table6.
fn main() {
    ruche_bench::figures::table6::run(ruche_bench::Opts::from_env());
}
