//! `cargo bench --bench fig6` — regenerates the paper's fig6.
fn main() {
    ruche_bench::figures::fig6::run(ruche_bench::Opts::from_env());
}
