//! `cargo bench --bench table3` — regenerates the paper's table3.
fn main() {
    ruche_bench::figures::table3::run(ruche_bench::Opts::from_env());
}
