//! `cargo bench --bench fig9` — regenerates the paper's fig9.
fn main() {
    ruche_bench::figures::fig9::run(ruche_bench::Opts::from_env());
}
