//! Criterion microbenchmarks of the simulation substrate itself:
//! per-cycle engine throughput per router type, route computation, and the
//! allocators. These are performance-regression guards for the simulator,
//! not paper reproductions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ruche_noc::arbiter::{RoundRobin, Wavefront};
use ruche_noc::packet::Flit;
use ruche_noc::prelude::*;

/// Builds a network preloaded with uniform-random traffic at the given
/// per-tile rate for `warm` cycles.
fn loaded_network(cfg: NetworkConfig, rate: f64, warm: u64) -> Network {
    let dims = cfg.dims;
    let mut net = Network::new(cfg).expect("valid config");
    let mut rng = SmallRng::seed_from_u64(42);
    let mut id = 0;
    for cycle in 0..warm {
        for c in dims.iter() {
            if rng.gen_bool(rate) {
                let d = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
                if d != c {
                    let ep = net.tile_endpoint(c);
                    net.enqueue(ep, Flit::single(c, Dest::tile(d), id, cycle));
                    id += 1;
                }
            }
        }
        net.step();
    }
    net
}

fn engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_step_16x16_ur20");
    let dims = Dims::new(16, 16);
    for cfg in [
        NetworkConfig::mesh(dims),
        NetworkConfig::full_ruche(dims, 3, CrossbarScheme::Depopulated),
        NetworkConfig::torus(dims),
    ] {
        let label = cfg.label();
        g.bench_function(&label, |b| {
            b.iter_batched(
                || loaded_network(cfg.clone(), 0.20, 200),
                |mut net| {
                    for _ in 0..100 {
                        net.step();
                    }
                    net.cycle()
                },
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

fn route_compute(c: &mut Criterion) {
    let dims = Dims::new(16, 16);
    let cfg = NetworkConfig::full_ruche(dims, 3, CrossbarScheme::Depopulated);
    c.bench_function("route_compute_ruche3_depop", |b| {
        let mut i = 0u16;
        b.iter(|| {
            i = (i + 7) % 256;
            let here = Coord::new(i % 16, i / 16);
            let dest = Dest::tile(Coord::new((i * 3) % 16, (i * 5) % 16));
            compute_route(&cfg, here, Dir::P, 0, dest)
        });
    });
}

fn allocators(c: &mut Criterion) {
    c.bench_function("wavefront_5x5_full", |b| {
        let mut wf = Wavefront::new(5, 5);
        let req = vec![vec![true; 5]; 5];
        b.iter(|| wf.allocate(&req));
    });
    c.bench_function("round_robin_9", |b| {
        let mut rr = RoundRobin::new(9);
        let reqs = [true, false, true, true, false, true, false, true, true];
        b.iter(|| rr.pick_and_grant(&reqs));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = engine_throughput, route_compute, allocators
}
criterion_main!(benches);
