//! `cargo bench --bench ablations` — design-choice sweeps beyond the paper.
fn main() {
    ruche_bench::figures::ablations::run(ruche_bench::Opts::from_env());
}
