//! `cargo bench --bench fig13` — regenerates the paper's fig13.
fn main() {
    ruche_bench::figures::fig13::run(ruche_bench::Opts::from_env());
}
