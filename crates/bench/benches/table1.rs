//! `cargo bench --bench table1` — regenerates the paper's table1.
fn main() {
    ruche_bench::figures::table1::run(ruche_bench::Opts::from_env());
}
