//! `cargo bench --bench fig7` — regenerates the paper's fig7.
fn main() {
    ruche_bench::figures::fig7::run(ruche_bench::Opts::from_env());
}
