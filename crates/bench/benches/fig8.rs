//! `cargo bench --bench fig8` — regenerates the paper's fig8.
fn main() {
    ruche_bench::figures::fig8::run(ruche_bench::Opts::from_env());
}
