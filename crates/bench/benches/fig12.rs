//! `cargo bench --bench fig12` — regenerates the paper's fig12.
fn main() {
    ruche_bench::figures::fig12::run(ruche_bench::Opts::from_env());
}
