//! `cargo bench --bench table2` — regenerates the paper's table2.
fn main() {
    ruche_bench::figures::table2::run(ruche_bench::Opts::from_env());
}
