//! The degradation sweep is deterministic: the same fault seeds yield
//! byte-identical `BENCH_degradation.json` content regardless of worker
//! count, and the faulted points actually show displaced traffic.

use ruche_bench::{degradation, Opts};

#[test]
fn same_fault_seeds_yield_byte_identical_degradation_json() {
    let serial = degradation::render(Opts::quick().without_cache().with_threads(1));
    let parallel = degradation::render(Opts::quick().without_cache().with_threads(4));
    assert_eq!(
        serial, parallel,
        "degradation JSON must not depend on thread count or rerun"
    );

    // Sanity: the quick sweep covers all three topology families and the
    // full fault-rate grid, and every sample passed static verification.
    for label in ["mesh", "half-ruche2-depop", "ruche2-depop"] {
        assert!(
            serial.contains(&format!("\"label\": \"{label}\"")),
            "{label}"
        );
    }
    for rate in ["0.00", "0.05", "0.15"] {
        assert!(
            serial.contains(&format!("\"fault_rate\": {rate}")),
            "{rate}"
        );
    }
    assert!(serial.contains("\"verified\": true"));
    assert!(!serial.contains("\"verified\": false"));

    // Faulted Ruche points route surviving traffic over detours, and some
    // of that displacement lands on the Ruche channels.
    let ruche_sections: Vec<&str> = serial.split("\"label\": ").collect();
    let full_ruche = ruche_sections
        .iter()
        .find(|s| s.starts_with("\"ruche2-depop\""))
        .expect("full-ruche section present");
    assert!(
        full_ruche
            .lines()
            .filter(|l| l.trim_start().starts_with("\"detour_ruche_fraction\":"))
            .any(|l| !l.contains(" 0.000000")),
        "faulted full-ruche samples attribute some detour traffic to ruche channels"
    );
}
