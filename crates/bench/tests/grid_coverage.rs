//! Cross-checks that every configuration the figure harnesses sweep is
//! covered by `ruche_verify::grid::paper_grid` — i.e. that the CI
//! `verify` job and the repro pre-flight really gate everything that
//! gets simulated. The grid is written out independently in the verify
//! crate (which cannot depend on this one), so this test is what keeps
//! the two lists in lock-step.

use ruche_bench::figures::{fig6, fig8, fig9};
use ruche_bench::suite;
use ruche_noc::prelude::*;
use ruche_verify::grid;
use std::collections::HashSet;

fn grid_keys() -> HashSet<String> {
    grid::paper_grid()
        .iter()
        .map(|cfg| format!("{cfg:?}"))
        .collect()
}

#[track_caller]
fn assert_covered(grid: &HashSet<String>, cfg: &NetworkConfig) {
    assert!(
        grid.contains(&format!("{cfg:?}")),
        "{} {} (dor {:?}, edge {}) missing from the verified paper grid",
        cfg.label(),
        cfg.dims,
        cfg.dor,
        cfg.edge_memory_ports,
    );
}

#[test]
fn full_network_figures_are_verified() {
    let grid = grid_keys();
    for dims in [Dims::new(8, 8), Dims::new(16, 16)] {
        for cfg in fig6::configs(dims) {
            assert_covered(&grid, &cfg);
        }
    }
    for cfg in fig8::configs(Dims::new(16, 16)) {
        assert_covered(&grid, &cfg);
    }
}

#[test]
fn half_network_figures_are_verified() {
    let grid = grid_keys();
    for dims in [Dims::new(16, 8), Dims::new(32, 16), Dims::new(64, 8)] {
        for mut cfg in fig9::configs(dims) {
            // Figure 9 sweeps run with memory endpoints attached.
            cfg.edge_memory_ports = true;
            assert_covered(&grid, &cfg);
        }
    }
}

#[test]
fn manycore_networks_are_verified() {
    let grid = grid_keys();
    // The manycore suite builds a request (X-Y, to-edge) and response
    // (Y-X, from-edge) network from each base fabric (§4).
    for dims in [Dims::new(16, 8), Dims::new(32, 16)] {
        for base in suite::half_ruche_configs(dims) {
            for cfg in grid::manycore_net_pair(&base) {
                assert_covered(&grid, &cfg);
            }
        }
    }
}
