//! Crash-safety and compaction contracts of the concurrent result store,
//! plus its integration with the sweep runner.

use ruche_bench::store::{ResultStore, SHARDS};
use ruche_bench::sweep::SweepJob;
use ruche_bench::SweepRunner;
use ruche_noc::prelude::*;
use ruche_traffic::{Pattern, TbResult, Testbench};
use std::path::PathBuf;

/// A fresh scratch directory per test case (no tempfile dependency).
fn scratch(case: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ruche-store-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn sample(seed: u64) -> TbResult {
    TbResult {
        offered: 0.1 + seed as f64 / 100.0,
        accepted: 0.099,
        avg_latency: 7.25,
        p99_latency: 19.0,
        delivered: 1000 + seed,
        lost: 0,
        per_tile_latency: Vec::new(),
        saturated: false,
    }
}

#[test]
fn entries_survive_a_reopen_byte_identically() {
    let dir = scratch("reopen");
    let store = ResultStore::open(&dir);
    for i in 0..20 {
        store.put(&format!("v1|key-{i}"), &sample(i));
    }
    store.flush();
    let reopened = ResultStore::open(&dir);
    assert_eq!(reopened.len(), 20);
    for i in 0..20 {
        let key = format!("v1|key-{i}");
        assert_eq!(reopened.get_raw(&key), store.get_raw(&key), "bytes");
        assert_eq!(reopened.get(&key).unwrap(), sample(i), "decoded value");
    }
}

#[test]
fn a_simulated_mid_write_crash_loses_at_most_the_torn_tail() {
    let dir = scratch("crash");
    let store = ResultStore::open(&dir);
    for i in 0..16 {
        store.put(&format!("v1|crash-{i}"), &sample(i));
    }
    store.flush();

    // Simulate a crashed *non-atomic* writer: a shard file with a torn
    // final line, and a leftover temporary from an interrupted flush.
    let mut torn_shard = None;
    for i in 0..SHARDS {
        let p = dir.join(format!("shard-{i}.tsv"));
        if let Ok(body) = std::fs::read_to_string(&p) {
            if !body.is_empty() {
                let torn = format!("{body}v1|torn-key\t{{\"result_version\":1,\"off");
                std::fs::write(&p, torn).unwrap();
                torn_shard = Some(i);
                break;
            }
        }
    }
    let torn_shard = torn_shard.expect("at least one shard has entries");
    std::fs::write(
        dir.join(format!("shard-{torn_shard}.tmp.99999")),
        "half a flush",
    )
    .unwrap();

    // Every complete entry survives; the torn tail reads as absent.
    let recovered = ResultStore::open(&dir);
    assert_eq!(recovered.len(), 16, "no complete entry lost");
    for i in 0..16 {
        assert_eq!(recovered.get(&format!("v1|crash-{i}")).unwrap(), sample(i));
    }
    assert!(recovered.get_raw("v1|torn-key").is_none());

    // Compaction heals the file and sweeps the leftover temporary.
    assert_eq!(recovered.compact(), 16);
    assert!(!dir.join(format!("shard-{torn_shard}.tmp.99999")).exists());
    let healed = ResultStore::open(&dir);
    assert_eq!(healed.len(), 16);
}

#[test]
fn compaction_preserves_every_entry_byte_identically() {
    let dir = scratch("compact");
    let store = ResultStore::open(&dir);
    for i in 0..32 {
        store.put(&format!("v1|compact-{i}"), &sample(i));
    }
    // A value from a future schema: must ride through compaction
    // untouched even though this build cannot decode it.
    store.put_raw(
        "v1|from-the-future",
        "{\"result_version\":99,\"zeta\":[1,2,3]}".into(),
    );
    store.flush();
    let before: Vec<(String, String)> = (0..32)
        .map(|i| format!("v1|compact-{i}"))
        .chain(["v1|from-the-future".to_string()])
        .map(|k| (k.clone(), store.get_raw(&k).unwrap()))
        .collect();

    assert_eq!(store.compact(), 33);
    let after = ResultStore::open(&dir);
    assert_eq!(after.len(), 33);
    for (k, raw) in &before {
        assert_eq!(after.get_raw(k).as_ref(), Some(raw), "{k}");
    }
    assert!(after.get("v1|from-the-future").is_none(), "foreign = miss");

    // Compacted shard files are sorted and duplicate-free.
    for i in 0..SHARDS {
        if let Ok(body) = std::fs::read_to_string(dir.join(format!("shard-{i}.tsv"))) {
            let keys: Vec<&str> = body
                .lines()
                .map(|l| l.split_once('\t').unwrap().0)
                .collect();
            let mut sorted = keys.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(keys, sorted, "shard {i} sorted and deduplicated");
        }
    }
}

#[test]
fn concurrent_writers_never_lose_an_entry() {
    let dir = scratch("concurrent");
    let store = ResultStore::open(&dir);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let store = &store;
            s.spawn(move || {
                for i in 0..25u64 {
                    store.put(&format!("v1|t{t}-{i}"), &sample(t * 100 + i));
                }
            });
        }
    });
    assert_eq!(store.len(), 100);
    store.flush();
    let reopened = ResultStore::open(&dir);
    assert_eq!(reopened.len(), 100);
    for t in 0..4u64 {
        for i in 0..25u64 {
            assert_eq!(
                reopened.get(&format!("v1|t{t}-{i}")).unwrap(),
                sample(t * 100 + i)
            );
        }
    }
}

#[test]
fn legacy_tsv_migrates_once_and_atomically() {
    let dir = scratch("migrate");
    let tsv = dir.join("sweep_cache.tsv");
    // Two well-formed legacy lines (old Debug-rendered keys), one line
    // from a foreign model version, and one torn line.
    std::fs::write(
        &tsv,
        "v1|NetworkConfig { a }|Testbench { b }\t0.1\t0.09\t5.5\t12\t900\t0\t0\n\
         v1|NetworkConfig { c }|Testbench { d }\t0.2\t0.18\t9.5\t30\t1800\t3\t1\n\
         v0|old-model\t0.1\t0.1\t1\t1\t1\t0\t0\n\
         v1|torn\t0.3\t0.2\n",
    )
    .unwrap();

    let store = ResultStore::open(dir.join("sweep_store"));
    assert_eq!(store.migrate_legacy_tsv(&tsv), 2, "only valid v1 lines");
    assert!(!tsv.exists(), "original renamed away");
    assert!(tsv.with_extension("tsv.migrated").exists());

    let imported = store
        .get("v1|NetworkConfig { a }|Testbench { b }")
        .expect("imported entry decodes");
    assert_eq!(imported.offered, 0.1);
    assert_eq!(imported.delivered, 900);
    assert!(!imported.saturated);
    let second = store.get("v1|NetworkConfig { c }|Testbench { d }").unwrap();
    assert!(second.saturated);
    assert_eq!(second.lost, 3);

    // Second call: nothing left to migrate.
    assert_eq!(store.migrate_legacy_tsv(&tsv), 0);
    // The imported entries persist across a reopen.
    assert_eq!(ResultStore::open(dir.join("sweep_store")).len(), 2);
}

#[test]
fn runners_sharing_a_store_turn_repeat_batches_into_hits() {
    let dir = scratch("runner");
    let store = std::sync::Arc::new(ResultStore::open(&dir));
    let tb = Testbench::builder(Pattern::UniformRandom, 0.05)
        .quick()
        .build()
        .unwrap();
    let jobs: Vec<SweepJob> = [4u16, 6]
        .iter()
        .map(|&n| SweepJob::new(NetworkConfig::mesh(Dims::new(n, n)), tb.clone()))
        .collect();

    let mut first = SweepRunner::uncached(2).with_store(store.clone());
    let cold = first.run_all(&jobs);
    assert_eq!(first.simulated, 2);
    assert_eq!(first.cache_hits, 0);

    let mut second = SweepRunner::uncached(2).with_store(store.clone());
    let warm = second.run_all(&jobs);
    assert_eq!(second.simulated, 0, "everything served from the store");
    assert_eq!(second.cache_hits, 2);
    for (a, b) in cold.iter().zip(&warm) {
        // The store persists scalar aggregates only (per-tile data is
        // scrubbed, exactly as the legacy cache did); every scalar must
        // round-trip bit-exactly.
        let scrubbed = TbResult {
            per_tile_latency: Vec::new(),
            ..a.clone()
        };
        assert_eq!(&scrubbed, b, "store round-trip is exact");
    }

    // And the streaming sink sees every job exactly once.
    let seen = std::sync::Mutex::new(Vec::new());
    let mut third = SweepRunner::uncached(2).with_store(store);
    third.run_all_with(&jobs, |i, res| {
        seen.lock().unwrap().push((i, res.clone()));
    });
    let mut seen = seen.into_inner().unwrap();
    seen.sort_by_key(|(i, _)| *i);
    assert_eq!(seen.len(), jobs.len());
    for (k, (i, res)) in seen.iter().enumerate() {
        assert_eq!(k, *i);
        assert_eq!(res, &warm[*i]);
    }
}
