//! The deprecated `SweepJob::key` is kept for one release as a thin shim
//! over [`SweepJob::cache_key`]. This test is the only place allowed to
//! call it: it pins down that the shim agrees with its replacement until
//! removal.

#![allow(deprecated)]

use ruche_bench::sweep::{SweepJob, MODEL_VERSION};
use ruche_noc::prelude::*;
use ruche_traffic::{Pattern, SweepRequest, Testbench};

#[test]
fn key_matches_cache_key() {
    let tb = Testbench::builder(Pattern::UniformRandom, 0.1)
        .quick()
        .build()
        .unwrap();
    for cfg in [
        NetworkConfig::mesh(Dims::new(8, 8)),
        NetworkConfig::torus(Dims::new(16, 8)),
        NetworkConfig::full_ruche(Dims::new(16, 16), 2, CrossbarScheme::Depopulated),
        NetworkConfig::mesh(Dims::new(8, 8)).with_step_threads(4),
    ] {
        let job = SweepJob::new(cfg, tb.clone());
        assert_eq!(job.key(), job.cache_key(), "shim must stay pinned");
    }
}

#[test]
fn key_is_the_versioned_canonical_request_rendering() {
    let tb = Testbench::builder(Pattern::Tornado, 0.2).build().unwrap();
    let job = SweepJob::new(NetworkConfig::mesh(Dims::new(4, 4)), tb.clone());
    let expect = format!(
        "{MODEL_VERSION}|{}",
        SweepRequest::new(job.cfg.clone(), tb).cache_key()
    );
    assert_eq!(job.key(), expect);
    assert!(job.key().starts_with("v1|{\"key_version\":1,"));
}
