//! Tombstone for the removed `SweepJob::key` shim.
//!
//! `key()` was deprecated in 0.7.0 as a thin delegate to
//! [`SweepJob::cache_key`] and removed one release later, per the
//! CHANGELOG's deprecation policy. What must survive the removal is the
//! *wire key itself*: every store entry ever written under the shim was
//! byte-identical to `cache_key()`, so pinning the canonical rendering
//! here proves old stores stay readable.

use ruche_bench::sweep::{SweepJob, MODEL_VERSION};
use ruche_noc::prelude::*;
use ruche_traffic::{Pattern, SweepRequest, Testbench};

#[test]
fn cache_key_is_the_versioned_canonical_request_rendering() {
    let tb = Testbench::builder(Pattern::Tornado, 0.2).build().unwrap();
    let job = SweepJob::new(NetworkConfig::mesh(Dims::new(4, 4)), tb.clone());
    let expect = format!(
        "{MODEL_VERSION}|{}",
        SweepRequest::new(job.cfg.clone(), tb).cache_key()
    );
    assert_eq!(job.cache_key(), expect);
    assert!(job.cache_key().starts_with("v1|{\"key_version\":1,"));
}

#[test]
fn cache_key_ignores_engine_knobs() {
    // The knobs the removed shim also never leaked: results computed at
    // any (step_mode × step_threads) point share one store entry.
    let tb = Testbench::builder(Pattern::UniformRandom, 0.1)
        .quick()
        .build()
        .unwrap();
    let base = SweepJob::new(NetworkConfig::mesh(Dims::new(8, 8)), tb.clone());
    let threaded = SweepJob::new(
        NetworkConfig::mesh(Dims::new(8, 8)).with_step_threads(4),
        tb,
    );
    assert_eq!(base.cache_key(), threaded.cache_key());
}
