//! The parallel sweep engine is deterministic: a figure sweep renders
//! byte-identical CSV rows whether it runs on one worker or many, and
//! whether the clock advances cycle by cycle or through the event wheel.

use ruche_bench::figures::fig6;
use ruche_bench::sweep::{self, SweepRunner};
use ruche_noc::geometry::Dims;
use ruche_noc::topology::StepMode;
use ruche_stats::fmt_f;
use ruche_traffic::{Pattern, Testbench};

/// Renders the Figure 6 quick curve rows for one pattern at the given
/// worker-pool width, step-level shard thread count, and step mode,
/// exactly as `figures::fig6` formats them.
fn fig6_quick_rows_mode(threads: usize, step_threads: usize, mode: Option<StepMode>) -> String {
    let dims = Dims::new(8, 8);
    let rates = [0.02, 0.10, 0.20, 0.30, 0.45];
    let pattern = Pattern::UniformRandom;
    let mut jobs = Vec::new();
    for cfg in fig6::configs(dims) {
        // The proto's rate is never run — curve_jobs replaces it.
        let proto = Testbench::builder(pattern, 1.0)
            .quick()
            .build()
            .expect("smoke testbench is valid");
        jobs.extend(sweep::curve_jobs(&cfg, &proto, &rates));
    }
    let mut runner = SweepRunner::uncached(threads).with_step_threads(step_threads);
    if let Some(mode) = mode {
        runner = runner.with_step_mode(mode);
    }
    let results = runner.run_all(&jobs);
    let mut out = String::new();
    for (job, res) in jobs.iter().zip(&results) {
        let pt = sweep::curve_point(res);
        out.push_str(&format!(
            "{dims},{},{},{},{},{}\n",
            pattern.name(),
            job.cfg.label(),
            fmt_f(pt.offered, 3),
            fmt_f(pt.accepted, 4),
            fmt_f(pt.avg_latency, 2),
        ));
    }
    out
}

/// Renders the Figure 6 quick curve rows without a step-mode override.
fn fig6_quick_rows_sharded(threads: usize, step_threads: usize) -> String {
    fig6_quick_rows_mode(threads, step_threads, None)
}

#[test]
fn parallel_fig6_sweep_is_byte_identical_to_serial() {
    let serial = fig6_quick_rows_sharded(1, 0);
    let parallel = fig6_quick_rows_sharded(4, 0);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "CSV rows must not depend on thread count");
}

#[test]
fn step_level_parallelism_is_byte_identical_to_run_level() {
    // One worker stepping each network across 4 shard threads must render
    // the same bytes as 4 workers stepping serially.
    let step_level = fig6_quick_rows_sharded(1, 4);
    let run_level = fig6_quick_rows_sharded(4, 0);
    assert!(!step_level.is_empty());
    assert_eq!(
        step_level, run_level,
        "CSV rows must not depend on where the parallelism lives"
    );
}

#[test]
fn event_driven_sweep_is_byte_identical_to_cycle_accurate() {
    let cycle = fig6_quick_rows_mode(2, 0, Some(StepMode::CycleAccurate));
    let event = fig6_quick_rows_mode(2, 0, Some(StepMode::EventDriven));
    assert!(!cycle.is_empty());
    assert_eq!(cycle, event, "CSV rows must not depend on the step mode");
}
