//! The full `repro --quick` artifact set must be byte-identical whether
//! every network steps serially or across four shard threads, and whether
//! the clock advances cycle by cycle or through the event wheel — the
//! end-to-end form of the determinism guarantees in `docs/PARALLELISM.md`
//! and `docs/EVENTS.md`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs the real `repro` binary with the given `RUCHE_STEP_THREADS` and
/// extra CLI arguments, redirecting artifacts into `dir` and bypassing the
/// run cache so both engines actually simulate every point.
fn run_repro_args(step_threads: &str, args: &[&str], dir: &Path) {
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--quick", "--telemetry"])
        .args(args)
        .env("RUCHE_STEP_THREADS", step_threads)
        .env("RUCHE_RESULTS_DIR", dir)
        .env("RUCHE_NO_CACHE", "1")
        .env("RUCHE_THREADS", "2")
        .stdout(std::process::Stdio::null())
        .status()
        .expect("repro binary runs");
    assert!(
        status.success(),
        "repro --quick {args:?} failed with RUCHE_STEP_THREADS={step_threads}"
    );
}

/// Runs the real `repro` binary with the given `RUCHE_STEP_THREADS`.
fn run_repro(step_threads: &str, dir: &Path) {
    run_repro_args(step_threads, &[], dir);
}

/// Collects every artifact in `dir` keyed by file name. Cache files
/// (`*.tsv`) are skipped: they are keyed stores, not rendered artifacts,
/// and their append order may legitimately differ between runs.
fn artifacts(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().into_string().expect("utf-8 file name");
        if name.ends_with(".tsv") {
            continue;
        }
        out.insert(name, std::fs::read(entry.path()).expect("read artifact"));
    }
    out
}

#[test]
#[ignore = "runs two full quick repro sweeps (~minutes); exercised by the dedicated CI step"]
fn quick_repro_artifacts_are_byte_identical_across_step_threads() {
    let base = std::env::temp_dir().join(format!("ruche_step_artifacts_{}", std::process::id()));
    let serial_dir: PathBuf = base.join("serial");
    let sharded_dir: PathBuf = base.join("sharded");
    run_repro("1", &serial_dir);
    run_repro("4", &sharded_dir);

    let serial = artifacts(&serial_dir);
    let sharded = artifacts(&sharded_dir);
    let names: Vec<&str> = serial.keys().map(String::as_str).collect();
    for expected in [
        "ablations.csv",
        "fig6_synthetic_curves.csv",
        "fig7_area_vs_cycle.csv",
        "fig8_fairness.csv",
        "fig9_half_ruche_curves.csv",
        "fig10_speedup.csv",
        "fig11_scalability.csv",
        "fig12_load_latency.csv",
        "fig13_energy.csv",
        "table6_summary.csv",
        "telemetry_fig6_mesh.json",
        "telemetry_fig8_torus.json",
    ] {
        assert!(names.contains(&expected), "missing artifact {expected}");
    }
    assert_eq!(
        serial.keys().collect::<Vec<_>>(),
        sharded.keys().collect::<Vec<_>>(),
        "the two engines must write the same artifact set"
    );
    for (name, bytes) in &serial {
        assert_eq!(
            Some(bytes),
            sharded.get(name),
            "artifact {name} differs between step_threads=1 and step_threads=4"
        );
    }

    std::fs::remove_dir_all(&base).ok();
}

#[test]
#[ignore = "runs two full quick repro sweeps (~minutes); exercised by the dedicated CI step"]
fn quick_repro_artifacts_are_byte_identical_across_step_modes() {
    let base = std::env::temp_dir().join(format!("ruche_mode_artifacts_{}", std::process::id()));
    let cycle_dir: PathBuf = base.join("cycle");
    let event_dir: PathBuf = base.join("event");
    run_repro_args("1", &["--step-mode", "cycle"], &cycle_dir);
    run_repro_args("1", &["--step-mode", "event"], &event_dir);

    let cycle = artifacts(&cycle_dir);
    let event = artifacts(&event_dir);
    assert!(
        cycle.contains_key("fig6_synthetic_curves.csv"),
        "missing fig6 artifact"
    );
    assert_eq!(
        cycle.keys().collect::<Vec<_>>(),
        event.keys().collect::<Vec<_>>(),
        "the two step modes must write the same artifact set"
    );
    for (name, bytes) in &cycle {
        assert_eq!(
            Some(bytes),
            event.get(name),
            "artifact {name} differs between --step-mode cycle and --step-mode event"
        );
    }

    std::fs::remove_dir_all(&base).ok();
}
