//! `step_bench`: single-run step-level scaling microbenchmark.
//!
//! Measures `Network::step` throughput (cycles/sec) and speedup as the
//! step-thread count sweeps {1, 2, 4, 8}, for mesh and Ruche (RF 2) grids
//! from 16×16 up to 128×128 (the scale regime the sharded engine targets).
//! Traffic is pre-generated from a fixed seed, and the per-run **digest**
//! (injected, ejected, final cycle, total link traversals) is asserted
//! identical across every thread count before anything is written — the
//! timing numbers vary with the machine, the simulation results never do.
//!
//! Results land in `results/BENCH_step.json`; `docs/PARALLELISM.md`
//! explains how to read them. Pass `--quick` to drop the largest grid and
//! shorten runs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ruche_bench::out::{banner, write_artifact};
use ruche_bench::sweep::MODEL_VERSION;
use ruche_bench::Opts;
use ruche_noc::packet::Flit;
use ruche_noc::prelude::*;
use ruche_stats::fmt_f;
use std::fmt::Write as _;
use std::time::Instant;

/// Swept step-thread counts.
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Injection probability per tile per loaded cycle.
const RATE: f64 = 0.2;
/// Traffic seed (fixed: the digest must be reproducible).
const SEED: u64 = 17;

/// Simulation results that must not depend on the thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Digest {
    injected: u64,
    ejected: u64,
    final_cycle: u64,
    traversals: u64,
}

/// One timed run: steps `cfg` under the pre-generated `traffic` for
/// `cycles` loaded cycles plus the drain, returning the digest and the
/// measured step rate in cycles/sec.
fn timed_run(
    cfg: &NetworkConfig,
    traffic: &[Vec<(Coord, Flit)>],
    step_threads: usize,
) -> (Digest, f64) {
    let mut net =
        Network::new(cfg.clone().with_step_threads(step_threads)).expect("valid bench config");
    let start = Instant::now();
    for batch in traffic {
        for &(c, f) in batch {
            net.enqueue(net.tile_endpoint(c), f);
        }
        net.step();
    }
    while !net.snapshot().is_idle() {
        net.step();
        assert!(
            net.snapshot().cycles_since_progress < 50_000,
            "bench traffic deadlocked"
        );
    }
    let secs = start.elapsed().as_secs_f64();
    let snap = net.snapshot();
    let digest = Digest {
        injected: snap.injected,
        ejected: snap.ejected,
        final_cycle: snap.cycle,
        traversals: net.link_loads().iter().map(|(_, _, n)| n).sum(),
    };
    (digest, snap.cycle as f64 / secs.max(1e-9))
}

/// Pre-generates `cycles` batches of uniform-random single-flit traffic so
/// the timed region contains only `enqueue` + `step`. Load stops at 60% of
/// the run so the tail measures drain behaviour.
fn gen_traffic(dims: Dims, cycles: u64) -> Vec<Vec<(Coord, Flit)>> {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let loaded = cycles * 3 / 5;
    let mut id = 0u64;
    (0..cycles)
        .map(|cycle| {
            let mut batch = Vec::new();
            if cycle >= loaded {
                return batch;
            }
            for c in dims.iter() {
                if rng.gen_bool(RATE) {
                    let d = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
                    batch.push((c, Flit::single(c, Dest::tile(d), id, cycle)));
                    id += 1;
                }
            }
            batch
        })
        .collect()
}

/// The benched (dims, loaded-cycle-count) grid sizes.
fn grids(quick: bool) -> Vec<(Dims, u64)> {
    let mut g = vec![(Dims::new(16, 16), 600), (Dims::new(64, 64), 120)];
    if !quick {
        g.push((Dims::new(128, 128), 40));
    }
    g
}

/// The benched topology families at `dims`.
fn topologies(dims: Dims) -> Vec<NetworkConfig> {
    vec![
        NetworkConfig::mesh(dims),
        NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated),
    ]
}

fn main() {
    let opts = Opts::from_env();
    banner(
        "step_bench",
        "Network::step scaling vs step-thread count (sharded engine)",
    );
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"version\": \"{MODEL_VERSION}\",");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"rate\": {RATE},");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"runs\": [");
    let mut first = true;
    for (dims, cycles) in grids(opts.quick) {
        let traffic = gen_traffic(dims, cycles);
        for cfg in topologies(dims) {
            println!("-- {} {} ({cycles} loaded cycles)", dims, cfg.label());
            let mut baseline: Option<(Digest, f64)> = None;
            let mut rows = Vec::new();
            for &t in &THREADS {
                let (digest, rate) = timed_run(&cfg, &traffic, t);
                let shards = Network::new(cfg.clone().with_step_threads(t))
                    .expect("valid bench config")
                    .step_threads();
                match &baseline {
                    None => baseline = Some((digest, rate)),
                    Some((d0, _)) => assert_eq!(
                        *d0,
                        digest,
                        "{} {}: digest diverged at {t} step threads",
                        dims,
                        cfg.label()
                    ),
                }
                let speedup = rate / baseline.expect("set above").1;
                println!(
                    "   threads={t} (shards={shards}): {} cycles/sec, speedup {}",
                    fmt_f(rate, 0),
                    fmt_f(speedup, 2),
                );
                rows.push((t, shards, rate, speedup));
            }
            let (digest, _) = baseline.expect("at least one thread count");
            if !first {
                let _ = writeln!(json, ",");
            }
            first = false;
            let _ = writeln!(json, "    {{");
            let _ = writeln!(json, "      \"dims\": \"{dims}\",");
            let _ = writeln!(json, "      \"topology\": \"{}\",", cfg.label());
            let _ = writeln!(json, "      \"loaded_cycles\": {cycles},");
            let _ = writeln!(
                json,
                "      \"digest\": {{\"injected\": {}, \"ejected\": {}, \
                 \"final_cycle\": {}, \"traversals\": {}}},",
                digest.injected, digest.ejected, digest.final_cycle, digest.traversals
            );
            let _ = writeln!(json, "      \"threads\": [");
            for (i, (t, shards, rate, speedup)) in rows.iter().enumerate() {
                let _ = writeln!(
                    json,
                    "        {{\"threads\": {t}, \"shards\": {shards}, \
                     \"cycles_per_sec\": {}, \"speedup\": {}}}{}",
                    fmt_f(*rate, 1),
                    fmt_f(*speedup, 3),
                    if i + 1 < rows.len() { "," } else { "" }
                );
            }
            let _ = writeln!(json, "      ]");
            let _ = write!(json, "    }}");
        }
    }
    let _ = writeln!(json, "\n  ]");
    let _ = writeln!(json, "}}");
    write_artifact("BENCH_step.json", &json);
}
