//! `step_bench`: single-run stepping microbenchmarks.
//!
//! Two sections, two artifacts:
//!
//! 1. **Thread scaling** (`results/BENCH_step.json`) — measures
//!    `Network::step` throughput (cycles/sec) and speedup as the
//!    step-thread count sweeps {1, 2, 4, 8}, for mesh and Ruche (RF 2)
//!    grids from 16×16 up to 128×128, at the saturating rate the sharded
//!    engine targets (0.2) plus low-injection points (0.01–0.05) where
//!    per-cycle overhead dominates.
//! 2. **Step-mode comparison** (`results/BENCH_step_mode.json`) — measures
//!    the full (step mode × step threads) grid — cycle-accurate vs
//!    event-driven vs auto, each serial and sharded — on sparse workloads
//!    (bursty and steady trickle), where the event wheel fast-forwards the
//!    quiescent spans between bursts and per-shard sleep/wake keeps idle
//!    bands off the pool. `docs/EVENTS.md` explains how to read it.
//!
//! Every grid point is measured as **warmup + median-of-3**: one untimed
//! run primes caches and the worker pool, then three timed runs report
//! their median rate. Traffic is pre-generated from a fixed seed, and the
//! per-run **digest** (injected, ejected, final cycle, total link
//! traversals) is asserted identical across every thread count, every step
//! mode, and every repeat before anything is written — a divergence
//! anywhere in the cross product aborts the bench with a non-zero exit.
//! The timing numbers vary with the machine, the simulation results never
//! do. Every emitted record carries its `step_mode` and `step_threads`.
//!
//! Pass `--quick` to drop the largest grid and shorten runs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ruche_bench::out::{banner, write_artifact};
use ruche_bench::sweep::MODEL_VERSION;
use ruche_bench::Opts;
use ruche_noc::packet::Flit;
use ruche_noc::prelude::*;
use ruche_stats::fmt_f;
use std::fmt::Write as _;
use std::time::Instant;

/// Swept step-thread counts.
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Traffic seed (fixed: the digest must be reproducible).
const SEED: u64 = 17;
/// Step modes compared by the mode section.
const MODES: [StepMode; 3] = [
    StepMode::CycleAccurate,
    StepMode::EventDriven,
    StepMode::Auto,
];
/// Step-thread counts crossed with [`MODES`] by the mode section: the
/// serial baseline plus the sharded points where event-driven stepping
/// composes with the per-shard sleep/wake machinery.
const MODE_THREADS: [usize; 3] = [1, 2, 4];

/// Simulation results that must not depend on the thread count or the
/// step mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Digest {
    injected: u64,
    ejected: u64,
    final_cycle: u64,
    traversals: u64,
}

impl Digest {
    fn of(net: &Network) -> Self {
        let snap = net.snapshot();
        Digest {
            injected: snap.injected,
            ejected: snap.ejected,
            final_cycle: snap.cycle,
            traversals: net.link_loads().iter().map(|(_, _, n)| n).sum(),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"injected\": {}, \"ejected\": {}, \"final_cycle\": {}, \"traversals\": {}}}",
            self.injected, self.ejected, self.final_cycle, self.traversals
        )
    }
}

/// Warmup + median-of-3 around one timed point. The first (discarded) run
/// primes caches, page tables, and the step-thread pool; the next three
/// are timed and the median rate is reported. All four digests must agree
/// — a digest that varies between identical runs is nondeterminism, not
/// noise, and aborts the bench.
fn warm_median3(mut run: impl FnMut() -> (Digest, f64)) -> (Digest, f64) {
    let (digest, _) = run();
    let mut rates = [0.0f64; 3];
    for r in &mut rates {
        let (d, cps) = run();
        assert_eq!(digest, d, "digest varied between identical repeat runs");
        *r = cps;
    }
    rates.sort_by(f64::total_cmp);
    (digest, rates[1])
}

/// One timed run: steps `cfg` under the pre-generated `traffic` for
/// `cycles` loaded cycles plus the drain, returning the digest and the
/// measured step rate in cycles/sec.
fn timed_run(
    cfg: &NetworkConfig,
    traffic: &[Vec<(Coord, Flit)>],
    step_threads: usize,
) -> (Digest, f64) {
    let mut net =
        Network::new(cfg.clone().with_step_threads(step_threads)).expect("valid bench config");
    let start = Instant::now();
    for batch in traffic {
        for &(c, f) in batch {
            net.enqueue(net.tile_endpoint(c), f);
        }
        net.step();
    }
    while !net.snapshot().is_idle() {
        net.step();
        assert!(
            net.snapshot().cycles_since_progress < 50_000,
            "bench traffic deadlocked"
        );
    }
    let secs = start.elapsed().as_secs_f64();
    let snap = net.snapshot();
    (Digest::of(&net), snap.cycle as f64 / secs.max(1e-9))
}

/// One timed mode run: drives `cfg` in `mode` with `step_threads` shards
/// through the sparse `schedule` of (cycle, source, flit) injections,
/// fast-forwarding to the next injection whenever the network quiesces (a
/// no-op in cycle mode), until at least `horizon` cycles have elapsed and
/// the network drained.
fn timed_mode_run(
    cfg: &NetworkConfig,
    schedule: &[(u64, Coord, Flit)],
    horizon: u64,
    mode: StepMode,
    step_threads: usize,
) -> (Digest, f64) {
    let mut net = Network::new(
        cfg.clone()
            .with_step_mode(mode)
            .with_step_threads(step_threads),
    )
    .expect("valid bench config");
    let start = Instant::now();
    let mut next = 0usize;
    let mut iters = 0u64;
    while net.cycle() < horizon || !net.is_quiescent() {
        while schedule.get(next).is_some_and(|&(c, ..)| c == net.cycle()) {
            let (_, src, f) = schedule[next];
            net.enqueue(net.tile_endpoint(src), f);
            next += 1;
        }
        assert!(
            schedule.get(next).is_none_or(|&(c, ..)| c > net.cycle()),
            "fast-forward skipped past a scheduled injection"
        );
        net.step();
        let wake = schedule.get(next).map_or(horizon, |&(c, ..)| c);
        net.fast_forward(wake.min(horizon));
        iters += 1;
        assert!(iters < 2 * horizon + 200_000, "bench traffic deadlocked");
    }
    let secs = start.elapsed().as_secs_f64();
    let cycle = net.cycle();
    (Digest::of(&net), cycle as f64 / secs.max(1e-9))
}

/// Pre-generates `cycles` batches of uniform-random single-flit traffic at
/// per-tile `rate` so the timed region contains only `enqueue` + `step`.
/// Load stops at 60% of the run so the tail measures drain behaviour.
fn gen_traffic(dims: Dims, cycles: u64, rate: f64) -> Vec<Vec<(Coord, Flit)>> {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let loaded = cycles * 3 / 5;
    let mut id = 0u64;
    (0..cycles)
        .map(|cycle| {
            let mut batch = Vec::new();
            if cycle >= loaded {
                return batch;
            }
            for c in dims.iter() {
                if rng.gen_bool(rate) {
                    let d = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
                    batch.push((c, Flit::single(c, Dest::tile(d), id, cycle)));
                    id += 1;
                }
            }
            batch
        })
        .collect()
}

/// Pre-generates a bursty sparse schedule: `bursts` bursts of `size`
/// uniform-random single-flit packets, one burst every `period` cycles.
/// Returns the schedule and the run horizon (`bursts * period`).
fn gen_bursty(dims: Dims, bursts: u64, period: u64, size: usize) -> (Vec<(u64, Coord, Flit)>, u64) {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut schedule = Vec::new();
    let mut id = 0u64;
    for b in 0..bursts {
        let cycle = b * period;
        for _ in 0..size {
            let s = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
            let d = Coord::new(rng.gen_range(0..dims.cols), rng.gen_range(0..dims.rows));
            schedule.push((cycle, s, Flit::single(s, Dest::tile(d), id, cycle)));
            id += 1;
        }
    }
    (schedule, bursts * period)
}

/// Flattens steady per-tile-rate traffic into a sparse schedule for the
/// mode driver. The horizon is the loaded-cycle count; the drain runs past
/// it identically in every mode.
fn gen_steady(dims: Dims, cycles: u64, rate: f64) -> (Vec<(u64, Coord, Flit)>, u64) {
    let mut schedule = Vec::new();
    for (cycle, batch) in gen_traffic(dims, cycles, rate).iter().enumerate() {
        for &(c, f) in batch {
            schedule.push((cycle as u64, c, f));
        }
    }
    (schedule, cycles)
}

/// The benched (dims, loaded-cycle-count, per-tile rate) grid. The 0.2
/// points exercise the saturated regime the sharded engine targets; the
/// low-injection points (0.01–0.05) show scaling where per-cycle overhead,
/// not router work, dominates.
fn grids(quick: bool) -> Vec<(Dims, u64, f64)> {
    let mut g = vec![
        (Dims::new(16, 16), 600, 0.2),
        (Dims::new(16, 16), 600, 0.05),
        (Dims::new(64, 64), 120, 0.2),
        (Dims::new(64, 64), 120, 0.01),
    ];
    if !quick {
        g.push((Dims::new(128, 128), 40, 0.2));
    }
    g
}

/// The benched topology families at `dims`.
fn topologies(dims: Dims) -> Vec<NetworkConfig> {
    vec![
        NetworkConfig::mesh(dims),
        NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated),
    ]
}

/// One workload row of the step-mode comparison.
struct ModeRow {
    cfg: NetworkConfig,
    dims: Dims,
    workload: &'static str,
    schedule: Vec<(u64, Coord, Flit)>,
    horizon: u64,
}

/// The step-mode comparison workloads: bursty sparse traffic (quiescent
/// between bursts — the regime the event wheel exists for) and a steady
/// trickle (never quiescent — the regime where event mode must merely not
/// lose).
fn mode_rows(quick: bool) -> Vec<ModeRow> {
    let big = Dims::new(64, 64);
    let small = Dims::new(16, 16);
    let bursts = if quick { 16 } else { 32 };
    let mut rows = Vec::new();
    let (schedule, horizon) = gen_bursty(big, bursts, 65_536, 16);
    rows.push(ModeRow {
        cfg: NetworkConfig::mesh(big),
        dims: big,
        workload: "bursty",
        schedule,
        horizon,
    });
    let (schedule, horizon) = gen_steady(small, 600, 0.02);
    rows.push(ModeRow {
        cfg: NetworkConfig::mesh(small),
        dims: small,
        workload: "steady",
        schedule,
        horizon,
    });
    if !quick {
        let (schedule, horizon) = gen_bursty(big, bursts, 65_536, 16);
        rows.push(ModeRow {
            cfg: NetworkConfig::full_ruche(big, 2, CrossbarScheme::Depopulated),
            dims: big,
            workload: "bursty",
            schedule,
            horizon,
        });
    }
    rows
}

/// Runs the thread-scaling section and writes `BENCH_step.json`.
fn bench_threads(opts: &Opts) {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"version\": \"{MODEL_VERSION}\",");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"runs\": [");
    let mut first = true;
    for (dims, cycles, rate) in grids(opts.quick) {
        let traffic = gen_traffic(dims, cycles, rate);
        for cfg in topologies(dims) {
            println!(
                "-- {} {} ({cycles} loaded cycles, rate {rate})",
                dims,
                cfg.label()
            );
            let mut baseline: Option<(Digest, f64)> = None;
            let mut rows = Vec::new();
            let mut mode_name = "";
            for &t in &THREADS {
                let (digest, cps) = warm_median3(|| timed_run(&cfg, &traffic, t));
                let probe =
                    Network::new(cfg.clone().with_step_threads(t)).expect("valid bench config");
                let shards = probe.step_threads();
                mode_name = probe.step_mode().name();
                match &baseline {
                    None => baseline = Some((digest, cps)),
                    Some((d0, _)) => assert_eq!(
                        *d0,
                        digest,
                        "{} {}: digest diverged at {t} step threads",
                        dims,
                        cfg.label()
                    ),
                }
                let speedup = cps / baseline.expect("set above").1;
                println!(
                    "   threads={t} (shards={shards}): {} cycles/sec, speedup {}",
                    fmt_f(cps, 0),
                    fmt_f(speedup, 2),
                );
                rows.push((t, shards, cps, speedup));
            }
            let (digest, _) = baseline.expect("at least one thread count");
            if !first {
                let _ = writeln!(json, ",");
            }
            first = false;
            let _ = writeln!(json, "    {{");
            let _ = writeln!(json, "      \"dims\": \"{dims}\",");
            let _ = writeln!(json, "      \"topology\": \"{}\",", cfg.label());
            let _ = writeln!(json, "      \"loaded_cycles\": {cycles},");
            let _ = writeln!(json, "      \"rate\": {rate},");
            let _ = writeln!(json, "      \"digest\": {},", digest.json());
            let _ = writeln!(json, "      \"threads\": [");
            for (i, (t, shards, cps, speedup)) in rows.iter().enumerate() {
                let _ = writeln!(
                    json,
                    "        {{\"step_mode\": \"{mode_name}\", \"step_threads\": {t}, \
                     \"shards\": {shards}, \
                     \"cycles_per_sec\": {}, \"speedup\": {}}}{}",
                    fmt_f(*cps, 1),
                    fmt_f(*speedup, 3),
                    if i + 1 < rows.len() { "," } else { "" }
                );
            }
            let _ = writeln!(json, "      ]");
            let _ = write!(json, "    }}");
        }
    }
    let _ = writeln!(json, "\n  ]");
    let _ = writeln!(json, "}}");
    write_artifact("BENCH_step.json", &json);
}

/// Runs the step-mode comparison section and writes
/// `BENCH_step_mode.json`.
fn bench_modes(opts: &Opts) {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"version\": \"{MODEL_VERSION}\",");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"runs\": [");
    let mut first = true;
    for row in mode_rows(opts.quick) {
        // Aggregate packets per cycle over the whole horizon — the honest
        // load figure for a workload with quiescent gaps.
        let rate = row.schedule.len() as f64 / row.horizon as f64;
        println!(
            "-- {} {} {} ({} packets over {} cycles, rate {})",
            row.dims,
            row.cfg.label(),
            row.workload,
            row.schedule.len(),
            row.horizon,
            fmt_f(rate, 5),
        );
        let mut baseline: Option<(Digest, f64)> = None;
        let mut results = Vec::new();
        for mode in MODES {
            for &t in &MODE_THREADS {
                let (digest, cps) =
                    warm_median3(|| timed_mode_run(&row.cfg, &row.schedule, row.horizon, mode, t));
                let shards = Network::new(row.cfg.clone().with_step_threads(t))
                    .expect("valid bench config")
                    .step_threads();
                match &baseline {
                    None => baseline = Some((digest, cps)),
                    Some((d0, _)) => assert_eq!(
                        *d0,
                        digest,
                        "{} {} {}: digest diverged in {} mode at {t} step threads",
                        row.dims,
                        row.cfg.label(),
                        row.workload,
                        mode.name()
                    ),
                }
                let speedup = cps / baseline.expect("set above").1;
                println!(
                    "   mode={} threads={t} (shards={shards}): {} cycles/sec, speedup {}",
                    mode.name(),
                    fmt_f(cps, 0),
                    fmt_f(speedup, 2),
                );
                results.push((mode, t, shards, cps, speedup));
            }
        }
        let (digest, _) = baseline.expect("at least one mode");
        if !first {
            let _ = writeln!(json, ",");
        }
        first = false;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"dims\": \"{}\",", row.dims);
        let _ = writeln!(json, "      \"topology\": \"{}\",", row.cfg.label());
        let _ = writeln!(json, "      \"workload\": \"{}\",", row.workload);
        let _ = writeln!(json, "      \"packets\": {},", row.schedule.len());
        let _ = writeln!(json, "      \"horizon\": {},", row.horizon);
        let _ = writeln!(json, "      \"injection_rate\": {},", fmt_f(rate, 5));
        let _ = writeln!(json, "      \"digest\": {},", digest.json());
        let _ = writeln!(json, "      \"modes\": [");
        for (i, (mode, t, shards, cps, speedup)) in results.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{\"step_mode\": \"{}\", \"step_threads\": {t}, \"shards\": {shards}, \
                 \"cycles_per_sec\": {}, \"speedup\": {}}}{}",
                mode.name(),
                fmt_f(*cps, 1),
                fmt_f(*speedup, 3),
                if i + 1 < results.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = write!(json, "    }}");
    }
    let _ = writeln!(json, "\n  ]");
    let _ = writeln!(json, "}}");
    write_artifact("BENCH_step_mode.json", &json);
}

fn main() {
    let opts = Opts::from_env();
    banner(
        "step_bench",
        "Network::step scaling (step threads) and step-mode comparison",
    );
    bench_threads(&opts);
    bench_modes(&opts);
}
