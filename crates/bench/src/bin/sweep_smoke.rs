//! Sweep-engine smoke benchmark: runs the Figure 6 quick point set through
//! the parallel runner (cache disabled, so every point simulates) and emits
//! `results/BENCH_sweep.json` with wall-clock and throughput numbers.
//!
//! ```text
//! cargo run --release -p ruche-bench --bin sweep_smoke -- --threads 4
//! ```

use ruche_bench::out::{results_dir, write_artifact};
use ruche_bench::sweep::{self, SweepRunner};
use ruche_bench::Opts;
use ruche_noc::geometry::Dims;
use ruche_traffic::{Pattern, Testbench};
use std::time::Instant;

fn main() {
    let opts = Opts::from_env();
    let dims = Dims::new(8, 8);
    let rates = [0.02, 0.10, 0.20, 0.30, 0.45];

    // The Figure 6 quick sweep: 8 configs × 4 patterns × 5 rates.
    let mut jobs = Vec::new();
    for pattern in [
        Pattern::UniformRandom,
        Pattern::BitComplement,
        Pattern::Transpose,
        Pattern::Tornado,
    ] {
        for cfg in ruche_bench::figures::fig6::configs(dims) {
            // The proto's rate is never run — curve_jobs replaces it.
            let proto = Testbench::builder(pattern, 1.0)
                .quick()
                .build()
                .expect("smoke testbench is valid");
            jobs.extend(sweep::curve_jobs(&cfg, &proto, &rates));
        }
    }

    // Cache off: this benchmark measures simulation throughput, not disk.
    let mut runner = SweepRunner::new(opts.without_cache());
    let start = Instant::now();
    let results = runner.run_all(&jobs);
    let elapsed = start.elapsed().as_secs_f64();

    let delivered: u64 = results.iter().map(|r| r.delivered).sum();
    let points_per_sec = jobs.len() as f64 / elapsed;
    println!(
        "sweep_smoke: {} points, {} threads, {:.2}s wall ({:.1} points/s, {delivered} packets)",
        jobs.len(),
        runner.threads(),
        elapsed,
        points_per_sec,
    );

    let json = format!(
        "{{\n  \"bench\": \"sweep_smoke\",\n  \"points\": {},\n  \"threads\": {},\n  \"wall_seconds\": {:.3},\n  \"points_per_second\": {:.2},\n  \"packets_delivered\": {delivered},\n  \"model_version\": \"{}\"\n}}\n",
        jobs.len(),
        runner.threads(),
        elapsed,
        points_per_sec,
        sweep::MODEL_VERSION,
    );
    write_artifact("BENCH_sweep.json", &json);
    println!("wrote {}", results_dir().join("BENCH_sweep.json").display());
}
