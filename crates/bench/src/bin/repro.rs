//! Regenerates the paper's full evaluation in order:
//! `cargo run --release -p ruche-bench --bin repro [-- --quick]`.

use ruche_bench::{figures, preflight, Opts};

fn main() {
    let opts = Opts::from_env();
    println!(
        "Reproducing 'Evaluating Ruche Networks' (ISCA '25){}",
        if opts.quick { " [quick sweep]" } else { "" }
    );
    // Source-invariant scan: `--lint-only` runs `ruche-lint` and stops,
    // mirroring `--verify-only` (see also `cargo run -p ruche-lint`).
    if opts.lint_only {
        if !preflight::lint_invariants() {
            std::process::exit(1);
        }
        return;
    }
    // Prove every configuration deadlock-free before simulating any of
    // them; `--verify-only` stops here (see also the `verify_net` bin).
    if !preflight::verify_paper_grid() {
        std::process::exit(1);
    }
    if opts.verify_only {
        return;
    }
    // The degradation sweep is its own mode: fault tolerance is orthogonal
    // to the paper's figures, and CI runs it as a separate job.
    if opts.degradation {
        ruche_bench::degradation::run(opts);
        return;
    }
    figures::table1::run(opts);
    figures::fig6::run(opts);
    figures::fig7::run(opts);
    figures::table2::run(opts);
    figures::table3::run(opts);
    figures::fig8::run(opts);
    figures::fig9::run(opts);
    figures::table4::run(opts);
    figures::fig10::run(opts);
    figures::fig11::run(opts);
    figures::fig12::run(opts);
    figures::fig13::run(opts);
    figures::table6::run(opts);
    figures::ablations::run(opts);
    if opts.telemetry {
        ruche_bench::telemetry::run(opts);
    }
}
