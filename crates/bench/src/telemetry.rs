//! `repro --telemetry`: per-link telemetry capture for one representative
//! configuration from each synthetic-traffic figure (6, 8, 9).
//!
//! For each capture the probed testbench reruns the figure's traffic with
//! a [`NetTelemetry`] instrument attached, writes the deterministic JSON
//! blob (`results/telemetry_<fig>_<label>.json`) with stall-cause
//! attribution, and prints the per-router X-channel utilization heatmap —
//! the mesh's bright mid-column bisection band versus the Ruche networks'
//! flattened profile. `docs/OBSERVABILITY.md` explains how to read both.

use crate::opts::Opts;
use crate::out::{banner, write_artifact};
use ruche_noc::geometry::Axis;
use ruche_noc::prelude::*;
use ruche_stats::Heatmap;
use ruche_telemetry::JsonProbe;
use ruche_traffic::{run_probed, Pattern, Testbench};

/// Injection/ejection time-series bin width, cycles.
const WINDOW: u64 = 64;

/// One figure-representative capture.
struct Capture {
    fig: &'static str,
    cfg: NetworkConfig,
    pattern: Pattern,
    rate: f64,
}

/// The captured set: one config per synthetic-traffic figure, chosen to
/// exercise each router family — fig6's wormhole mesh near saturation,
/// fig8's credit/VC torus at low load, fig9's Half Ruche edge traffic.
fn captures() -> Vec<Capture> {
    vec![
        Capture {
            fig: "fig6",
            cfg: NetworkConfig::mesh(Dims::new(8, 8)),
            pattern: Pattern::UniformRandom,
            rate: 0.30,
        },
        Capture {
            fig: "fig8",
            cfg: NetworkConfig::torus(Dims::new(16, 16)),
            pattern: Pattern::UniformRandom,
            rate: 0.02,
        },
        Capture {
            fig: "fig9",
            cfg: NetworkConfig::half_ruche(Dims::new(16, 8), 2, CrossbarScheme::Depopulated),
            pattern: Pattern::TileToMemory,
            rate: 0.10,
        },
    ]
}

/// Per-router flits/cycle forwarded on X-axis channels (local and Ruche),
/// the quantity the figures' bisection arguments are about.
fn x_utilization_grid(tel: &NetTelemetry, dims: Dims) -> Vec<f64> {
    let mut grid = vec![0.0f64; dims.count()];
    let cycles = tel.cycles().max(1) as f64;
    for (node, cell) in grid.iter_mut().enumerate().take(tel.n_nodes()) {
        for (p, dir) in tel.ports().iter().enumerate() {
            if dir.axis() == Some(Axis::X) {
                *cell += tel.traversed(node, p) as f64 / cycles;
            }
        }
    }
    grid
}

/// Runs every capture: JSON artifact plus printed heatmap.
pub fn run(opts: Opts) {
    banner(
        "Telemetry",
        "per-link counters and stall attribution for one representative config per figure",
    );
    for c in captures() {
        let dims = c.cfg.dims;
        let label = c.cfg.label();
        let b = Testbench::builder(c.pattern, c.rate);
        let tb = if opts.quick { b.quick() } else { b }
            .build()
            .expect("capture testbench is valid");
        let (res, tel) = run_probed(&c.cfg, &tb, WINDOW).expect("pattern fits the array");

        let mut probe = JsonProbe::new();
        probe.annotate("config", &label);
        probe.annotate("figure", c.fig);
        probe.annotate("pattern", &format!("{:?}", c.pattern));
        probe.annotate("rate", &format!("{:.3}", c.rate));
        tel.export(&mut probe);
        write_artifact(
            &format!("telemetry_{}_{label}.json", c.fig),
            &probe.into_json(),
        );

        let title = format!(
            "{} {label} {:?} @ {:.2}: X-channel utilization per router, flits/cycle \
             (accepted {:.3}{})",
            c.fig,
            c.pattern,
            c.rate,
            res.accepted,
            if res.saturated { ", saturated" } else { "" },
        );
        let map = Heatmap::new(
            &title,
            dims.cols as usize,
            dims.rows as usize,
            x_utilization_grid(&tel, dims),
        )
        .expect("grid matches dims");
        print!("{}", map.render());
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_cover_all_three_figures_and_validate() {
        let caps = captures();
        let figs: Vec<&str> = caps.iter().map(|c| c.fig).collect();
        assert_eq!(figs, ["fig6", "fig8", "fig9"]);
        for c in &caps {
            assert!(c.cfg.validate().is_ok(), "{}", c.cfg.label());
            assert!((0.0..=1.0).contains(&c.rate));
        }
    }

    #[test]
    fn x_grid_sums_x_ports_only() {
        let dims = Dims::new(4, 4);
        let mut net = Network::new(NetworkConfig::mesh(dims)).unwrap();
        net.attach_telemetry(WINDOW);
        // One flit straight east across the top row.
        let (src, dst) = (Coord::new(0, 0), Coord::new(3, 0));
        net.enqueue(
            net.tile_endpoint(src),
            ruche_noc::packet::Flit::single(src, Dest::tile(dst), 0, 0),
        );
        while !net.snapshot().is_idle() {
            net.step();
        }
        let tel = net.telemetry().unwrap();
        let grid = x_utilization_grid(tel, dims);
        // Three eastward link traversals, at nodes 0, 1, 2 of row 0; the
        // final P-port ejection is not an X-channel.
        assert!(grid[0] > 0.0 && grid[1] > 0.0 && grid[2] > 0.0, "{grid:?}");
        assert_eq!(grid[3], 0.0, "{grid:?}");
        assert!(grid[4..].iter().all(|&v| v == 0.0), "{grid:?}");
    }
}
