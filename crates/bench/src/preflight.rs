//! Static pre-flight verification of everything the harness sweeps.
//!
//! Before any cycle is simulated, every configuration in the paper grid
//! is proven deadlock-free and routing-sound by `ruche-verify` (the
//! channel-dependency-graph check plus the routing-lint battery). A
//! broken configuration therefore fails in milliseconds with a concrete
//! witness instead of hanging a multi-minute sweep — and the debug-build
//! verification hook is installed so every `Network::new` in a debug
//! sweep re-checks its configuration automatically.

use ruche_verify::{grid, install_debug_hook, verify, Severity};

/// Runs the `ruche-lint` invariant scan over the workspace sources,
/// printing findings; returns whether the scan came back clean. The
/// source-level complement of [`verify_paper_grid`]: that one proves the
/// *configurations* sound, this one proves the *code* still honors the
/// determinism contracts the artifacts depend on (`repro -- --lint-only`).
pub fn lint_invariants() -> bool {
    match ruche_lint::lint_workspace(&ruche_lint::workspace_root()) {
        Ok(report) => {
            for f in &report.findings {
                eprintln!("{f}");
            }
            if report.is_clean() {
                println!(
                    "pre-flight: ruche-lint clean ({} file(s) scanned)",
                    report.files_scanned
                );
                true
            } else {
                eprintln!(
                    "pre-flight: FAILED — {} ruche-lint finding(s)",
                    report.findings.len()
                );
                false
            }
        }
        Err(e) => {
            eprintln!("pre-flight: ruche-lint could not scan the workspace: {e}");
            false
        }
    }
}

/// Verifies the full paper grid, printing a one-line summary (plus full
/// reports for any configuration that is not error-free). Returns
/// whether all configurations are free of error findings.
pub fn verify_paper_grid() -> bool {
    install_debug_hook();
    let configs = grid::paper_grid();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for cfg in &configs {
        let report = verify(cfg);
        errors += report.count(Severity::Error);
        warnings += report.count(Severity::Warning);
        if report.has_errors() {
            eprintln!("{report}");
        }
    }
    if errors > 0 {
        eprintln!(
            "pre-flight: FAILED — {errors} error finding(s) across {} configuration(s)",
            configs.len()
        );
        false
    } else {
        println!(
            "pre-flight: {} configurations statically verified deadlock-free \
             ({warnings} warning(s))",
            configs.len()
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_preflight_passes_on_the_shipped_tree() {
        assert!(lint_invariants());
    }

    #[test]
    fn preflight_passes_on_the_shipped_grid() {
        // Debug-build cost is dominated by the largest arrays; still well
        // under test-suite budget, and this is the check that gates every
        // sweep.
        assert!(verify_paper_grid());
    }
}
