//! Static pre-flight verification of everything the harness sweeps.
//!
//! Before any cycle is simulated, every configuration in the paper grid
//! is proven deadlock-free and routing-sound by `ruche-verify` (the
//! channel-dependency-graph check plus the routing-lint battery). A
//! broken configuration therefore fails in milliseconds with a concrete
//! witness instead of hanging a multi-minute sweep — and the debug-build
//! verification hook is installed so every `Network::new` in a debug
//! sweep re-checks its configuration automatically.

use ruche_verify::{grid, install_debug_hook, verify, Severity};

/// Verifies the full paper grid, printing a one-line summary (plus full
/// reports for any configuration that is not error-free). Returns
/// whether all configurations are free of error findings.
pub fn verify_paper_grid() -> bool {
    install_debug_hook();
    let configs = grid::paper_grid();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for cfg in &configs {
        let report = verify(cfg);
        errors += report.count(Severity::Error);
        warnings += report.count(Severity::Warning);
        if report.has_errors() {
            eprintln!("{report}");
        }
    }
    if errors > 0 {
        eprintln!(
            "pre-flight: FAILED — {errors} error finding(s) across {} configuration(s)",
            configs.len()
        );
        false
    } else {
        println!(
            "pre-flight: {} configurations statically verified deadlock-free \
             ({warnings} warning(s))",
            configs.len()
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preflight_passes_on_the_shipped_grid() {
        // Debug-build cost is dominated by the largest arrays; still well
        // under test-suite budget, and this is the check that gates every
        // sweep.
        assert!(verify_paper_grid());
    }
}
