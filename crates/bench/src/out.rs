//! Output helpers: the `results/` directory and experiment banners.

use std::path::PathBuf;

/// The repository `results/` directory (created on demand).
///
/// `RUCHE_RESULTS_DIR` redirects every artifact and cache file, letting
/// tests and scripted comparisons run the bench binaries against isolated
/// output directories.
pub fn results_dir() -> PathBuf {
    if let Ok(d) = std::env::var("RUCHE_RESULTS_DIR") {
        let p = PathBuf::from(d);
        std::fs::create_dir_all(&p).expect("create results dir");
        return p;
    }
    // The bench runs from the workspace (or a member) directory; walk up
    // until a `Cargo.toml` with a `[workspace]` is found, else use cwd.
    let mut dir = std::env::current_dir().expect("cwd");
    for _ in 0..4 {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                break;
            }
        }
        if !dir.pop() {
            break;
        }
    }
    let results = dir.join("results");
    std::fs::create_dir_all(&results).expect("create results dir");
    results
}

/// Writes a result artifact and reports its path.
pub fn write_artifact(name: &str, contents: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).expect("write artifact");
    println!("[wrote {}]", path.display());
}

/// Prints an experiment banner.
pub fn banner(id: &str, what: &str) {
    println!("\n=== {id}: {what} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists_after_call() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        assert!(d.is_dir());
    }

    #[test]
    fn artifacts_roundtrip() {
        write_artifact("test_artifact.txt", "hello");
        let p = results_dir().join("test_artifact.txt");
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "hello");
        std::fs::remove_file(p).unwrap();
    }
}
