//! Harness options.

use ruche_noc::topology::StepMode;

/// Options shared by all figure harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Opts {
    /// Reduced sweeps for smoke runs (`--quick` or `RUCHE_QUICK=1`).
    pub quick: bool,
    /// Worker-pool width for the sweep engine (`--threads N`,
    /// `--threads=N`, or `RUCHE_THREADS=N`; defaults to the machine's
    /// available parallelism).
    pub threads: usize,
    /// Skip the on-disk sweep cache (`--no-cache` or `RUCHE_NO_CACHE=1`).
    pub no_cache: bool,
    /// Run the static pre-flight verification and exit without sweeping
    /// (`--verify-only` or `RUCHE_VERIFY_ONLY=1`).
    pub verify_only: bool,
    /// Run the `ruche-lint` invariant scan and exit without sweeping
    /// (`--lint-only` or `RUCHE_LINT_ONLY=1`).
    pub lint_only: bool,
    /// Capture per-link telemetry for one representative configuration per
    /// synthetic-traffic figure and write the JSON blobs under `results/`
    /// (`--telemetry` or `RUCHE_TELEMETRY=1`).
    pub telemetry: bool,
    /// Run the graceful-degradation fault sweep instead of the figure
    /// suite, writing `results/BENCH_degradation.json` (`--degradation` or
    /// `RUCHE_DEGRADATION=1`).
    pub degradation: bool,
    /// Step-level shard threads per simulation (`--step-threads N`,
    /// `--step-threads=N`, or `RUCHE_STEP_THREADS=N`; 0 keeps every run
    /// serial). When > 1, the sweep engine trades run-level for step-level
    /// parallelism: the worker-pool width is divided by this factor and
    /// each `Network::step` is sharded instead. Results are byte-identical
    /// either way.
    pub step_threads: usize,
    /// Clock-advance mode applied to every simulated network
    /// (`--step-mode cycle|event|auto`, `--step-mode=..`, or
    /// `RUCHE_STEP_MODE=..`; `None` lets each network resolve the
    /// environment itself). Results are byte-identical in every mode — the
    /// event modes only fast-forward provably-empty spans.
    pub step_mode: Option<StepMode>,
}

/// The machine's available parallelism (1 if it can't be queried).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Opts {
    /// Parses from the process arguments and environment.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::parse(&args, |k| std::env::var(k).ok())
    }

    /// Parses from explicit arguments and an environment lookup (the
    /// testable core of [`Self::from_env`]).
    pub fn parse(args: &[String], env: impl Fn(&str) -> Option<String>) -> Self {
        let flag = |name: &str, var: &str| {
            args.iter().any(|a| a == name) || env(var).as_deref() == Some("1")
        };
        let mut threads = None;
        let mut step_threads = None;
        let mut step_mode = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--threads" {
                threads = it.next().and_then(|v| v.parse().ok());
            } else if let Some(v) = a.strip_prefix("--threads=") {
                threads = v.parse().ok();
            } else if a == "--step-threads" {
                step_threads = it.next().and_then(|v| v.parse().ok());
            } else if let Some(v) = a.strip_prefix("--step-threads=") {
                step_threads = v.parse().ok();
            } else if a == "--step-mode" {
                step_mode = it.next().and_then(|v| v.parse().ok());
            } else if let Some(v) = a.strip_prefix("--step-mode=") {
                step_mode = v.parse().ok();
            }
        }
        let threads = threads
            .or_else(|| env("RUCHE_THREADS").and_then(|v| v.parse().ok()))
            .filter(|&n| n > 0)
            .unwrap_or_else(default_threads);
        let step_threads = step_threads
            .or_else(|| env("RUCHE_STEP_THREADS").and_then(|v| v.parse().ok()))
            .unwrap_or(0);
        let step_mode = step_mode.or_else(|| env("RUCHE_STEP_MODE").and_then(|v| v.parse().ok()));
        Opts {
            quick: flag("--quick", "RUCHE_QUICK"),
            threads,
            no_cache: flag("--no-cache", "RUCHE_NO_CACHE"),
            verify_only: flag("--verify-only", "RUCHE_VERIFY_ONLY"),
            lint_only: flag("--lint-only", "RUCHE_LINT_ONLY"),
            telemetry: flag("--telemetry", "RUCHE_TELEMETRY"),
            degradation: flag("--degradation", "RUCHE_DEGRADATION"),
            step_threads,
            step_mode,
        }
    }

    /// Full-sweep options.
    pub fn full() -> Self {
        Opts {
            quick: false,
            threads: default_threads(),
            no_cache: false,
            verify_only: false,
            lint_only: false,
            telemetry: false,
            degradation: false,
            step_threads: 0,
            step_mode: None,
        }
    }

    /// Quick-sweep options.
    pub fn quick() -> Self {
        Opts {
            quick: true,
            ..Self::full()
        }
    }

    /// Overrides the worker-pool width.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Disables the on-disk sweep cache.
    pub fn without_cache(mut self) -> Self {
        self.no_cache = true;
        self
    }

    /// Overrides the step-level shard thread count (0 = serial steps).
    pub fn with_step_threads(mut self, step_threads: usize) -> Self {
        self.step_threads = step_threads;
        self
    }

    /// Overrides the clock-advance mode applied to simulated networks.
    pub fn with_step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = Some(mode);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    const NO_ENV: fn(&str) -> Option<String> = |_| None;

    #[test]
    fn constructors() {
        assert!(Opts::quick().quick);
        assert!(!Opts::full().quick);
        assert!(Opts::full().threads >= 1);
        assert!(!Opts::full().no_cache);
        assert_eq!(Opts::full().with_threads(3).threads, 3);
        assert!(Opts::full().without_cache().no_cache);
    }

    #[test]
    fn parses_threads_flag_both_forms() {
        let o = Opts::parse(&strs(&["bench", "--threads", "7"]), NO_ENV);
        assert_eq!(o.threads, 7);
        let o = Opts::parse(&strs(&["bench", "--threads=5", "--quick"]), NO_ENV);
        assert_eq!(o.threads, 5);
        assert!(o.quick);
    }

    #[test]
    fn parses_threads_env_and_flag_precedence() {
        let env = |k: &str| (k == "RUCHE_THREADS").then(|| "3".to_string());
        assert_eq!(Opts::parse(&strs(&["bench"]), env).threads, 3);
        // An explicit flag beats the environment.
        assert_eq!(
            Opts::parse(&strs(&["bench", "--threads=2"]), env).threads,
            2
        );
    }

    #[test]
    fn rejects_zero_and_garbage_thread_counts() {
        let o = Opts::parse(&strs(&["bench", "--threads", "0"]), NO_ENV);
        assert!(o.threads >= 1);
        let o = Opts::parse(&strs(&["bench", "--threads", "lots"]), NO_ENV);
        assert_eq!(o.threads, default_threads());
    }

    #[test]
    fn parses_no_cache() {
        assert!(Opts::parse(&strs(&["bench", "--no-cache"]), NO_ENV).no_cache);
        let env = |k: &str| (k == "RUCHE_NO_CACHE").then(|| "1".to_string());
        assert!(Opts::parse(&strs(&["bench"]), env).no_cache);
        assert!(!Opts::parse(&strs(&["bench"]), NO_ENV).no_cache);
    }

    #[test]
    fn parses_telemetry() {
        assert!(Opts::parse(&strs(&["bench", "--telemetry"]), NO_ENV).telemetry);
        let env = |k: &str| (k == "RUCHE_TELEMETRY").then(|| "1".to_string());
        assert!(Opts::parse(&strs(&["bench"]), env).telemetry);
        assert!(!Opts::parse(&strs(&["bench"]), NO_ENV).telemetry);
        assert!(!Opts::full().telemetry);
    }

    #[test]
    fn parses_degradation() {
        assert!(Opts::parse(&strs(&["bench", "--degradation"]), NO_ENV).degradation);
        let env = |k: &str| (k == "RUCHE_DEGRADATION").then(|| "1".to_string());
        assert!(Opts::parse(&strs(&["bench"]), env).degradation);
        assert!(!Opts::parse(&strs(&["bench"]), NO_ENV).degradation);
        assert!(!Opts::full().degradation);
    }

    #[test]
    fn parses_step_threads_flag_env_and_default() {
        assert_eq!(Opts::parse(&strs(&["bench"]), NO_ENV).step_threads, 0);
        let o = Opts::parse(&strs(&["bench", "--step-threads", "4"]), NO_ENV);
        assert_eq!(o.step_threads, 4);
        let o = Opts::parse(&strs(&["bench", "--step-threads=2"]), NO_ENV);
        assert_eq!(o.step_threads, 2);
        let env = |k: &str| (k == "RUCHE_STEP_THREADS").then(|| "3".to_string());
        assert_eq!(Opts::parse(&strs(&["bench"]), env).step_threads, 3);
        // An explicit flag beats the environment.
        assert_eq!(
            Opts::parse(&strs(&["bench", "--step-threads=8"]), env).step_threads,
            8
        );
        assert_eq!(Opts::full().with_step_threads(4).step_threads, 4);
    }

    #[test]
    fn parses_step_mode_flag_env_and_default() {
        assert_eq!(Opts::parse(&strs(&["bench"]), NO_ENV).step_mode, None);
        let o = Opts::parse(&strs(&["bench", "--step-mode", "event"]), NO_ENV);
        assert_eq!(o.step_mode, Some(StepMode::EventDriven));
        let o = Opts::parse(&strs(&["bench", "--step-mode=auto"]), NO_ENV);
        assert_eq!(o.step_mode, Some(StepMode::Auto));
        let env = |k: &str| (k == "RUCHE_STEP_MODE").then(|| "cycle".to_string());
        assert_eq!(
            Opts::parse(&strs(&["bench"]), env).step_mode,
            Some(StepMode::CycleAccurate)
        );
        // An explicit flag beats the environment.
        assert_eq!(
            Opts::parse(&strs(&["bench", "--step-mode=event"]), env).step_mode,
            Some(StepMode::EventDriven)
        );
        // Garbage spellings fall back to unset rather than aborting.
        assert_eq!(
            Opts::parse(&strs(&["bench", "--step-mode", "wheel"]), NO_ENV).step_mode,
            None
        );
        assert_eq!(
            Opts::full().with_step_mode(StepMode::Auto).step_mode,
            Some(StepMode::Auto)
        );
    }

    #[test]
    fn parses_lint_only() {
        assert!(Opts::parse(&strs(&["bench", "--lint-only"]), NO_ENV).lint_only);
        let env = |k: &str| (k == "RUCHE_LINT_ONLY").then(|| "1".to_string());
        assert!(Opts::parse(&strs(&["bench"]), env).lint_only);
        assert!(!Opts::parse(&strs(&["bench"]), NO_ENV).lint_only);
        assert!(!Opts::full().lint_only);
    }

    #[test]
    fn parses_verify_only() {
        assert!(Opts::parse(&strs(&["bench", "--verify-only"]), NO_ENV).verify_only);
        let env = |k: &str| (k == "RUCHE_VERIFY_ONLY").then(|| "1".to_string());
        assert!(Opts::parse(&strs(&["bench"]), env).verify_only);
        assert!(!Opts::parse(&strs(&["bench"]), NO_ENV).verify_only);
        assert!(!Opts::full().verify_only);
    }
}
