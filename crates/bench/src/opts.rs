//! Harness options.

/// Options shared by all figure harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Opts {
    /// Reduced sweeps for smoke runs (`--quick` or `RUCHE_QUICK=1`).
    pub quick: bool,
}

impl Opts {
    /// Parses from the process arguments and environment.
    pub fn from_env() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("RUCHE_QUICK").map(|v| v == "1").unwrap_or(false);
        Opts { quick }
    }

    /// Full-sweep options.
    pub fn full() -> Self {
        Opts { quick: false }
    }

    /// Quick-sweep options.
    pub fn quick() -> Self {
        Opts { quick: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(Opts::quick().quick);
        assert!(!Opts::full().quick);
    }
}
