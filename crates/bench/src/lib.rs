//! # ruche-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation section. Each `cargo bench --bench <target>` (or
//! `cargo run --release -p ruche-bench --bin repro`) prints the
//! reproduction rows/series and writes CSVs under `results/`.
//!
//! | Target | Reproduces |
//! |---|---|
//! | `table1` | Topology physical-scalability comparison |
//! | `fig6`   | Full Ruche synthetic traffic curves (8×8, 16×16) |
//! | `fig7`   | Router area vs cycle time sweep |
//! | `table2` | Router area breakdown @ ~98 FO4 |
//! | `table3` | Per-packet router energy |
//! | `fig8`   | Per-tile latency fairness (16×16 UR) |
//! | `fig9`   | Half Ruche synthetic traffic (16×8, 32×16, 64×8) |
//! | `table4` | Bisection vs memory-tile bandwidth ratios |
//! | `fig10`  | Benchmark speedup over mesh (16×8, 32×16) |
//! | `fig11`  | Benchmark scalability vs 16×8 mesh |
//! | `fig12`  | Remote-load latency split (32×16) |
//! | `fig13`  | Total energy breakdown (32×16) |
//! | `table6` | Geomean summary |
//!
//! The manycore figures (10–13, table 6) share one expensive simulation
//! suite; results are cached in `results/cache.tsv` so later figures reuse
//! earlier runs. Pass `--quick` (or set `RUCHE_QUICK=1`) for a reduced
//! sweep.

pub mod degradation;
pub mod figures;
pub mod opts;
pub mod out;
pub mod preflight;
pub mod store;
pub mod suite;
pub mod sweep;
pub mod telemetry;

pub use opts::Opts;
pub use store::ResultStore;
pub use sweep::{SweepJob, SweepRunner};
