//! Figure 9: Half Ruche synthetic traffic on 16×8, 32×16, and 64×8.

use crate::opts::Opts;
use crate::out::{banner, write_artifact};
use crate::sweep::{self, SweepRunner};
use ruche_noc::geometry::Dims;
use ruche_noc::prelude::*;
use ruche_stats::{fmt_f, Csv, Table};
use ruche_traffic::{CurvePoint, Pattern, Testbench};

/// The Figure 9 network set for one array size (adds Ruche-4 on 64×8 as
/// the paper does).
pub fn configs(dims: Dims) -> Vec<NetworkConfig> {
    use CrossbarScheme::{Depopulated, FullyPopulated};
    let mut v = vec![
        NetworkConfig::mesh(dims),
        NetworkConfig::half_torus(dims),
        NetworkConfig::half_ruche(dims, 2, Depopulated),
        NetworkConfig::half_ruche(dims, 2, FullyPopulated),
        NetworkConfig::half_ruche(dims, 3, Depopulated),
        NetworkConfig::half_ruche(dims, 3, FullyPopulated),
    ];
    if dims.cols == 64 {
        v.push(NetworkConfig::half_ruche(dims, 4, Depopulated));
        v.push(NetworkConfig::half_ruche(dims, 4, FullyPopulated));
    }
    v
}

/// Prints the Figure 9 reproduction and writes the curves.
pub fn run(opts: Opts) {
    banner(
        "Figure 9",
        "Half Ruche synthetic traffic: tile-to-tile and tile-to-memory",
    );
    let sizes = if opts.quick {
        vec![Dims::new(16, 8)]
    } else {
        vec![Dims::new(16, 8), Dims::new(32, 16), Dims::new(64, 8)]
    };
    let rates: Vec<f64> = if opts.quick {
        vec![0.02, 0.08, 0.16, 0.30]
    } else {
        (1..=20).map(|i| 0.02 * i as f64).collect()
    };
    // Same fan-out-then-replay structure as Figure 6.
    let mut jobs = Vec::new();
    for &dims in &sizes {
        for pattern in [Pattern::UniformRandom, Pattern::TileToMemory] {
            for mut cfg in configs(dims) {
                cfg.edge_memory_ports = true;
                // The proto's own rate is never run — curve_jobs replaces
                // it with each sweep rate.
                let b = Testbench::builder(pattern, 1.0);
                let proto = if opts.quick { b.quick() } else { b }
                    .build()
                    .expect("figure testbench is valid");
                jobs.extend(sweep::curve_jobs(&cfg, &proto, &rates));
                jobs.push(sweep::saturation_job(&cfg, pattern, 3));
            }
        }
    }
    let mut runner = SweepRunner::new(opts);
    let results = runner.run_all(&jobs);
    let mut next = results.iter();

    let mut csv = Csv::new();
    csv.row([
        "size",
        "pattern",
        "config",
        "offered",
        "accepted",
        "avg_latency",
    ]);
    for &dims in &sizes {
        for pattern in [Pattern::UniformRandom, Pattern::TileToMemory] {
            let pname = if pattern == Pattern::UniformRandom {
                "tile-to-tile"
            } else {
                "tile-to-memory"
            };
            let mut t = Table::new(vec!["config", "zero-load lat", "saturation thpt"]);
            let mut plot = ruche_stats::AsciiPlot::new(
                &format!("{dims} {pname}"),
                "offered load (packets/tile/cycle)",
                "avg latency (cycles)",
            );
            for mut cfg in configs(dims) {
                cfg.edge_memory_ports = true;
                let curve: Vec<CurvePoint> = rates
                    .iter()
                    .map(|_| sweep::curve_point(next.next().expect("curve result")))
                    .collect();
                for pt in &curve {
                    csv.row([
                        format!("{dims}"),
                        pname.into(),
                        cfg.label(),
                        fmt_f(pt.offered, 3),
                        fmt_f(pt.accepted, 4),
                        fmt_f(pt.avg_latency, 2),
                    ]);
                }
                let pts: Vec<(f64, f64)> = curve
                    .iter()
                    .filter(|p| !p.saturated)
                    .map(|p| (p.offered, p.avg_latency))
                    .collect();
                plot.series(&cfg.label(), &pts);
                let sat = next.next().expect("saturation result").accepted;
                t.row(vec![
                    cfg.label(),
                    fmt_f(curve[0].avg_latency, 1),
                    fmt_f(sat, 3),
                ]);
            }
            println!("--- {dims}, {pname} ---");
            println!("{}", t.render());
            if pattern == Pattern::TileToMemory {
                println!("{}", plot.render());
            }
        }
    }
    write_artifact("fig9_half_ruche_curves.csv", csv.as_str());
    println!("paper shape: Half Ruche roughly doubles tile-to-tile saturation over mesh;");
    println!("tile-to-memory approaches the compute:memory bound (~21% on 16x8, ~11% on");
    println!("32x16); half-torus lands between mesh and ruche2; ruche4 keeps scaling 64x8.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ruche4_only_on_the_wide_array() {
        assert_eq!(configs(Dims::new(16, 8)).len(), 6);
        assert_eq!(configs(Dims::new(32, 16)).len(), 6);
        let wide = configs(Dims::new(64, 8));
        assert_eq!(wide.len(), 8);
        assert!(wide.iter().any(|c| c.label() == "half-ruche4-depop"));
        for mut c in wide {
            c.edge_memory_ports = true;
            c.validate().unwrap();
        }
    }
}
