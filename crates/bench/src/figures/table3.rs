//! Table 3: per-packet router energy by output direction.

use crate::opts::Opts;
use crate::out::banner;
use ruche_noc::geometry::{Dims, Dir};
use ruche_noc::prelude::*;
use ruche_phys::{EnergyModel, Tech};
use ruche_stats::{fmt_f, Table};

/// Prints the Table 3 reproduction (model vs paper, pJ/packet).
pub fn run(_opts: Opts) {
    banner("Table 3", "router energy per packet by direction (pJ)");
    let dims = Dims::new(8, 8);
    let depop = EnergyModel::new(
        &NetworkConfig::full_ruche(dims, 3, CrossbarScheme::Depopulated),
        Tech::n12(),
    );
    let pop = EnergyModel::new(
        &NetworkConfig::full_ruche(dims, 3, CrossbarScheme::FullyPopulated),
        Tech::n12(),
    );
    let torus = EnergyModel::new(&NetworkConfig::torus(dims), Tech::n12());

    let mut t = Table::new(vec![
        "direction",
        "depop",
        "paper",
        "pop",
        "paper",
        "torus",
        "paper",
    ]);
    let rows: [(&str, Dir, f64, f64, Option<f64>); 4] = [
        ("Horizontal", Dir::E, 1.66, 1.95, Some(2.41)),
        ("Vertical", Dir::S, 1.82, 2.01, Some(3.35)),
        ("Ruche Horizontal", Dir::RE, 1.40, 1.81, None),
        ("Ruche Vertical", Dir::RS, 1.49, 2.00, None),
    ];
    for (name, dir, p_depop, p_pop, p_torus) in rows {
        t.row(vec![
            name.to_string(),
            fmt_f(depop.router_energy_pj(dir), 2),
            fmt_f(p_depop, 2),
            fmt_f(pop.router_energy_pj(dir), 2),
            fmt_f(p_pop, 2),
            p_torus
                .map(|_| fmt_f(torus.router_energy_pj(dir), 2))
                .unwrap_or_else(|| "-".into()),
            p_torus.map(|v| fmt_f(v, 2)).unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "long-wire energy (pJ/hop, excluded from the table as in the paper): ruche3 {:.2}, torus link {:.2}",
        depop.link_energy_pj(Dir::RE),
        torus.link_energy_pj(Dir::E)
    );
}
