//! Figure 6: Full Ruche synthetic-traffic analysis on 8×8 and 16×16.

use crate::opts::Opts;
use crate::out::{banner, write_artifact};
use crate::sweep::{self, SweepRunner};
use ruche_noc::geometry::Dims;
use ruche_noc::prelude::*;
use ruche_stats::{fmt_f, Csv, Table};
use ruche_traffic::{CurvePoint, Pattern, Testbench};

/// The Figure 6 network set, paper order.
pub fn configs(dims: Dims) -> Vec<NetworkConfig> {
    use CrossbarScheme::{Depopulated, FullyPopulated};
    vec![
        NetworkConfig::mesh(dims),
        NetworkConfig::multi_mesh(dims),
        NetworkConfig::torus(dims),
        NetworkConfig::ruche_one(dims),
        NetworkConfig::full_ruche(dims, 2, FullyPopulated),
        NetworkConfig::full_ruche(dims, 2, Depopulated),
        NetworkConfig::full_ruche(dims, 3, FullyPopulated),
        NetworkConfig::full_ruche(dims, 3, Depopulated),
    ]
}

fn patterns() -> Vec<Pattern> {
    vec![
        Pattern::UniformRandom,
        Pattern::BitComplement,
        Pattern::Transpose,
        Pattern::Tornado,
    ]
}

/// Prints the Figure 6 reproduction and writes per-(size, pattern) curves.
pub fn run(opts: Opts) {
    banner(
        "Figure 6",
        "synthetic traffic: mesh / torus / multi-mesh / Full Ruche (single-flit, 2-deep FIFOs)",
    );
    let sizes = if opts.quick {
        vec![Dims::new(8, 8)]
    } else {
        vec![Dims::new(8, 8), Dims::new(16, 16)]
    };
    let rates: Vec<f64> = if opts.quick {
        vec![0.02, 0.10, 0.20, 0.30, 0.45]
    } else {
        (1..=25).map(|i| 0.02 * i as f64).collect()
    };
    // Every (size, pattern, config) point is an independent job; build the
    // whole figure's job list, fan it out once, then replay the loop nest
    // consuming results in the exact same order.
    let mut jobs = Vec::new();
    for &dims in &sizes {
        for pattern in patterns() {
            for cfg in configs(dims) {
                // The proto's own rate is never run — curve_jobs replaces
                // it with each sweep rate.
                let b = Testbench::builder(pattern, 1.0);
                let proto = if opts.quick { b.quick() } else { b }
                    .build()
                    .expect("figure testbench is valid");
                jobs.extend(sweep::curve_jobs(&cfg, &proto, &rates));
                jobs.push(sweep::saturation_job(&cfg, pattern, 3));
            }
        }
    }
    let mut runner = SweepRunner::new(opts);
    let results = runner.run_all(&jobs);
    let mut next = results.iter();

    let mut csv = Csv::new();
    csv.row([
        "size",
        "pattern",
        "config",
        "offered",
        "accepted",
        "avg_latency",
    ]);
    for &dims in &sizes {
        for pattern in patterns() {
            let mut t = Table::new(vec!["config", "zero-load lat", "saturation thpt"]);
            let mut plot = ruche_stats::AsciiPlot::new(
                &format!("{dims} {}", pattern.name()),
                "offered load (packets/tile/cycle)",
                "avg latency (cycles)",
            );
            for cfg in configs(dims) {
                let curve: Vec<CurvePoint> = rates
                    .iter()
                    .map(|_| sweep::curve_point(next.next().expect("curve result")))
                    .collect();
                for pt in &curve {
                    csv.row([
                        format!("{dims}"),
                        pattern.name().into(),
                        cfg.label(),
                        fmt_f(pt.offered, 3),
                        fmt_f(pt.accepted, 4),
                        fmt_f(pt.avg_latency, 2),
                    ]);
                }
                let pts: Vec<(f64, f64)> = curve
                    .iter()
                    .filter(|p| !p.saturated)
                    .map(|p| (p.offered, p.avg_latency))
                    .collect();
                plot.series(&cfg.label(), &pts);
                let sat = next.next().expect("saturation result").accepted;
                t.row(vec![
                    cfg.label(),
                    fmt_f(curve[0].avg_latency, 1),
                    fmt_f(sat, 3),
                ]);
            }
            println!("--- {dims}, {} ---", pattern.name());
            println!("{}", t.render());
            if pattern == Pattern::UniformRandom {
                println!("{}", plot.render());
            }
        }
    }
    write_artifact("fig6_synthetic_curves.csv", csv.as_str());
    println!("paper shape to check: UR saturation mesh ≈ 0.28 / torus ≈ 0.42 /");
    println!("ruche1-pop ≈ 0.48 on 8x8; on 16x16 the torus VC-router handicap widens");
    println!("(mesh ≈ 0.15, torus ≈ 0.19, ruche1-pop ≈ 0.28, multi-mesh ≈ ruche1).");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_config_set_matches_paper() {
        let cfgs = configs(Dims::new(8, 8));
        let labels: Vec<String> = cfgs.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "mesh",
                "multi-mesh",
                "torus",
                "ruche1-pop",
                "ruche2-pop",
                "ruche2-depop",
                "ruche3-pop",
                "ruche3-depop"
            ]
        );
        for c in cfgs {
            c.validate().unwrap();
        }
    }

    #[test]
    fn figure6_patterns_match_paper() {
        let names: Vec<&str> = patterns().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["uniform-random", "bit-complement", "transpose", "tornado"]
        );
    }
}
