//! Table 1: topology comparison on physical-scalability criteria.

use crate::opts::Opts;
use crate::out::banner;
use ruche_noc::topology::SurveyTopology;
use ruche_stats::Table;

/// Prints Table 1.
pub fn run(_opts: Opts) {
    banner("Table 1", "physical scalability criteria by topology");
    let mut t = Table::new(vec![
        "Topology",
        "RegularTile",
        "RegularWires",
        "ConstRadix",
        "StdCell",
        "NonPow2",
        "LongRange",
        "ConstLinkDist",
    ]);
    let mark = |b: bool| if b { "yes" } else { "-" }.to_string();
    for s in SurveyTopology::ALL {
        let p = s.properties();
        t.row(vec![
            s.name().to_string(),
            mark(p.regular_tile_shape),
            mark(p.regular_wire_routing),
            mark(p.constant_router_radix),
            mark(p.standard_cell_based),
            mark(p.non_power_of_2_tiling),
            mark(p.long_range_links),
            mark(p.constant_link_distance),
        ]);
    }
    println!("{}", t.render());
}
