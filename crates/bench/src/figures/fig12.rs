//! Figure 12: average remote-load latency on 32×16, split into intrinsic
//! and congestion-induced components.

use crate::opts::Opts;
use crate::out::{banner, write_artifact};
use crate::suite::{half_ruche_configs, workload_list, Suite};
use ruche_manycore::prelude::Workload;
use ruche_noc::geometry::Dims;
use ruche_stats::{fmt_f, Csv, Table};

/// Prints the Figure 12 reproduction and writes `fig12_load_latency.csv`.
pub fn run(opts: Opts) {
    banner(
        "Figure 12",
        "remote-load latency split (intrinsic + congestion), 32x16",
    );
    let mut suite = Suite::load();
    let dims = if opts.quick {
        Dims::new(16, 8)
    } else {
        Dims::new(32, 16)
    };
    if opts.quick {
        println!("(quick mode: using 16x8 instead of 32x16)");
    }
    let configs = half_ruche_configs(dims);
    let mut csv = Csv::new();
    csv.row(["workload", "config", "intrinsic", "congestion", "total"]);
    let mut header = vec!["workload".to_string()];
    header.extend(configs.iter().map(|c| format!("{} (i+c)", c.label())));
    let mut t = Table::new(header.iter().map(String::as_str).collect());
    for (bench, ds) in workload_list(opts) {
        let mut row = vec![Workload::build_name(bench, ds)];
        for cfg in &configs {
            let e = suite.get_or_run(dims, cfg, bench, ds);
            row.push(format!(
                "{}+{}",
                fmt_f(e.lat_intrinsic, 1),
                fmt_f(e.lat_congestion, 1)
            ));
            csv.row([
                row[0].clone(),
                cfg.label(),
                fmt_f(e.lat_intrinsic, 2),
                fmt_f(e.lat_congestion, 2),
                fmt_f(e.lat_total, 2),
            ]);
        }
        t.row(row);
    }
    println!("{}", t.render());
    write_artifact("fig12_load_latency.csv", csv.as_str());
    println!("paper shape: intrinsic latency is workload-independent (IPOLY balances");
    println!("banks); ruche2-depop already cuts intrinsic ~27%; congestion is largest");
    println!("for streaming workloads (FFT/SGEMM/PR-social) and never grows with ruche.");
}
