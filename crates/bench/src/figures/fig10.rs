//! Figure 10: parallel-benchmark speedup over 2-D mesh on 16×8 and 32×16.

use crate::opts::Opts;
use crate::out::{banner, write_artifact};
use crate::suite::{half_ruche_configs, workload_list, Suite};
use ruche_noc::geometry::Dims;
use ruche_stats::{fmt_f, geomean, Csv, Table};

/// Prints the Figure 10 reproduction and writes `fig10_speedup.csv`.
pub fn run(opts: Opts) {
    banner(
        "Figure 10",
        "benchmark speedup over 2-D mesh (execution-driven manycore)",
    );
    let mut suite = Suite::load();
    let mut csv = Csv::new();
    csv.row(["size", "workload", "config", "cycles", "speedup_vs_mesh"]);
    let sizes = if opts.quick {
        vec![Dims::new(16, 8)]
    } else {
        vec![Dims::new(16, 8), Dims::new(32, 16)]
    };
    for &dims in &sizes {
        let configs = half_ruche_configs(dims);
        let labels: Vec<String> = configs.iter().map(|c| c.label()).collect();
        let mut header = vec!["workload".to_string()];
        header.extend(labels.iter().skip(1).cloned());
        let mut t = Table::new(header.iter().map(String::as_str).collect());
        let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
        for (bench, ds) in workload_list(opts) {
            let mesh = suite.get_or_run(dims, &configs[0], bench, ds);
            let mut row = vec![ruche_manycore::prelude::Workload::build_name(bench, ds)];
            csv.row([
                format!("{dims}"),
                row[0].clone(),
                "mesh".into(),
                mesh.cycles.to_string(),
                "1.000".into(),
            ]);
            per_cfg[0].push(1.0);
            for (i, cfg) in configs.iter().enumerate().skip(1) {
                let e = suite.get_or_run(dims, cfg, bench, ds);
                let speedup = mesh.cycles as f64 / e.cycles as f64;
                per_cfg[i].push(speedup);
                row.push(fmt_f(speedup, 2));
                csv.row([
                    format!("{dims}"),
                    row[0].clone(),
                    cfg.label(),
                    e.cycles.to_string(),
                    fmt_f(speedup, 3),
                ]);
            }
            t.row(row);
        }
        let mut geo = vec!["GEOMEAN".to_string()];
        for speeds in per_cfg.iter().skip(1) {
            geo.push(fmt_f(geomean(speeds.iter().copied()), 2));
        }
        t.row(geo);
        println!("--- {dims}: speedup over mesh ---");
        println!("{}", t.render());
    }
    write_artifact("fig10_speedup.csv", csv.as_str());
    println!("paper shape: consistent ruche speedups, most of the gain already at");
    println!("ruche2-depop; ruche3-pop best; half-torus trails every ruche config and");
    println!("loses outright on Jacobi (folded-torus neighbor pathology); 32x16 gains");
    println!("exceed 16x8 gains.");
}
