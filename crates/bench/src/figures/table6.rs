//! Table 6: geomean summary of the Half Ruche evaluation.

use crate::opts::Opts;
use crate::out::{banner, write_artifact};
use crate::suite::{half_ruche_configs, workload_list, Suite};
use ruche_noc::geometry::Dims;
use ruche_phys::{tile_area_increase, Tech};
use ruche_stats::{fmt_f, geomean, Csv, Table};

/// Prints the Table 6 reproduction and writes `table6_summary.csv`.
pub fn run(opts: Opts) {
    banner("Table 6", "Half Ruche evaluation summary (geomean scores)");
    let mut suite = Suite::load();
    let (small, large) = if opts.quick {
        (Dims::new(8, 4), Dims::new(16, 8))
    } else {
        (Dims::new(16, 8), Dims::new(32, 16))
    };
    let wide = Dims::new(64, 8);
    let tech = Tech::n12();
    let workloads = workload_list(opts);
    let configs_large = half_ruche_configs(large);
    let labels: Vec<String> = configs_large.iter().map(|c| c.label()).collect();

    // Collect per-config metric vectors (geomeans over workloads).
    let n = configs_large.len();
    let mut speed_small = vec![vec![]; n];
    let mut speed_large = vec![vec![]; n];
    let mut scal_large = vec![vec![]; n];
    let mut scal_wide = vec![vec![]; n];
    let mut lat_intr = vec![vec![]; n];
    let mut lat_cong = vec![vec![]; n];
    let mut lat_total = vec![vec![]; n];
    let mut eff_compute = vec![vec![]; n];
    let mut eff_noc = vec![vec![]; n];
    let mut eff_total = vec![vec![]; n];

    for &(bench, ds) in &workloads {
        let mesh_small = suite.get_or_run(small, &half_ruche_configs(small)[0], bench, ds);
        let mesh_large = suite.get_or_run(large, &configs_large[0], bench, ds);
        for (i, cfg_l) in configs_large.iter().enumerate() {
            let e_small = suite.get_or_run(small, &half_ruche_configs(small)[i], bench, ds);
            let e_large = suite.get_or_run(large, cfg_l, bench, ds);
            speed_small[i].push(mesh_small.cycles as f64 / e_small.cycles as f64);
            speed_large[i].push(mesh_large.cycles as f64 / e_large.cycles as f64);
            scal_large[i].push(mesh_small.cycles as f64 / e_large.cycles as f64);
            if !opts.quick {
                let e_wide = suite.get_or_run(wide, &half_ruche_configs(wide)[i], bench, ds);
                scal_wide[i].push(mesh_small.cycles as f64 / e_wide.cycles as f64);
            }
            lat_intr[i].push(mesh_large.lat_intrinsic / e_large.lat_intrinsic.max(1e-9));
            lat_cong[i].push((mesh_large.lat_congestion + 1.0) / (e_large.lat_congestion + 1.0));
            lat_total[i].push(mesh_large.lat_total / e_large.lat_total.max(1e-9));
            eff_compute[i].push(mesh_large.compute_pj() / e_large.compute_pj());
            eff_noc[i].push(mesh_large.noc_pj() / e_large.noc_pj());
            eff_total[i].push(mesh_large.total_pj() / e_large.total_pj());
        }
    }

    let tile_area: Vec<f64> = configs_large
        .iter()
        .map(|c| tile_area_increase(c, &tech))
        .collect();

    let g = |v: &Vec<f64>| geomean(v.iter().copied());
    let metrics: Vec<(String, Vec<f64>)> = vec![
        (
            format!("{small} speedup vs mesh"),
            speed_small.iter().map(g).collect(),
        ),
        (
            format!("{large} speedup vs mesh"),
            speed_large.iter().map(g).collect(),
        ),
        (
            format!("{large} scalability (vs {small} mesh)"),
            scal_large.iter().map(g).collect(),
        ),
        (
            format!("{wide} scalability (vs {small} mesh)"),
            if opts.quick {
                vec![f64::NAN; n]
            } else {
                scal_wide.iter().map(g).collect()
            },
        ),
        (
            "load latency reduction (intrinsic)".into(),
            lat_intr.iter().map(g).collect(),
        ),
        (
            "load latency reduction (congestion)".into(),
            lat_cong.iter().map(g).collect(),
        ),
        (
            "load latency reduction (total)".into(),
            lat_total.iter().map(g).collect(),
        ),
        (
            "energy efficiency (compute)".into(),
            eff_compute.iter().map(g).collect(),
        ),
        (
            "energy efficiency (NoC)".into(),
            eff_noc.iter().map(g).collect(),
        ),
        (
            "energy efficiency (total)".into(),
            eff_total.iter().map(g).collect(),
        ),
        ("tile area increase".into(), tile_area.clone()),
        (
            format!("{large} speedup vs mesh (area normalized)"),
            speed_large
                .iter()
                .map(g)
                .zip(&tile_area)
                .map(|(s, a)| s / a)
                .collect(),
        ),
    ];

    let mut header = vec!["metric".to_string()];
    header.extend(labels.iter().cloned());
    let mut t = Table::new(header.iter().map(String::as_str).collect());
    let mut csv = Csv::new();
    let mut csv_head = vec!["metric".to_string()];
    csv_head.extend(labels.iter().cloned());
    csv.row(csv_head);
    for (name, values) in &metrics {
        let mut row = vec![name.clone()];
        row.extend(values.iter().map(|v| {
            if v.is_nan() {
                "-".to_string()
            } else {
                format!("{}x", fmt_f(*v, 3))
            }
        }));
        csv.row(row.clone());
        t.row(row);
    }
    println!("{}", t.render());
    write_artifact("table6_summary.csv", csv.as_str());
    println!("paper anchors (32x16): ruche2-depop 1.17x speedup / ruche3-pop 1.24x;");
    println!("half-torus 1.08x with ~1.01x area-normalized gain; NoC energy efficiency");
    println!("1.28-1.35x for ruche vs 0.75x for half-torus; tile area +5.8%..+9.0%.");
}
