//! Table 4: bisection bandwidth vs memory-tile bandwidth ratios.

use crate::opts::Opts;
use crate::out::banner;
use ruche_noc::geometry::Dims;
use ruche_noc::prelude::*;
use ruche_stats::Table;

/// Prints the Table 4 reproduction (channel counts, computed from the
/// actual link tables).
pub fn run(_opts: Opts) {
    banner(
        "Table 4",
        "bisection BW vs memory-tile BW (channels; * = bisection >= memory)",
    );
    let mut t = Table::new(vec![
        "size",
        "aspect",
        "noc",
        "bisection",
        "memoryBW",
        "compute:mem",
    ]);
    for (cols, rows, aspect, ratio) in [
        (16u16, 8u16, "2:1", "4:1"),
        (32, 16, "2:1", "8:1"),
        (64, 8, "8:1", "4:1"),
        (32, 8, "4:1", "4:1"),
    ] {
        let dims = Dims::new(cols, rows);
        for cfg in [
            NetworkConfig::mesh(dims),
            NetworkConfig::half_ruche(dims, 2, CrossbarScheme::Depopulated),
            NetworkConfig::half_ruche(dims, 3, CrossbarScheme::Depopulated),
        ] {
            let bisect = cfg.horizontal_bisection_channels();
            let mem = cfg.memory_tile_bandwidth();
            let star = if bisect >= mem { "*" } else { "" };
            t.row(vec![
                format!("{dims}"),
                aspect.to_string(),
                cfg.topology.name(),
                format!("{bisect}{star}"),
                mem.to_string(),
                ratio.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("(the paper's 32x8 + ruche3 sweet spot: bisection matches memory BW 1:1)");
}
