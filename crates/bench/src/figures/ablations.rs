//! Ablations of the design choices DESIGN.md calls out — beyond the
//! paper's own sweeps:
//!
//! 1. **Input FIFO depth** — the paper argues two-element minimal buffering
//!    suffices for Ruche routers (§3.2); sweep 1..8 and watch saturation.
//! 2. **Ruche Factor beyond 3** — extend Figure 6's RF sweep to RF 4–5 on
//!    16×16 to expose the diminishing-returns knee.
//! 3. **Core memory-level parallelism** — the manycore's outstanding-
//!    request limit, which moves workloads between latency-bound and
//!    bandwidth-bound regimes.
//! 4. **Channel width** — router area/energy scaling at 32..256 bits
//!    (the paper's argument against widening channels for bandwidth).

use crate::opts::Opts;
use crate::out::{banner, write_artifact};
use crate::sweep::{self, SweepRunner};
use ruche_manycore::prelude::*;
use ruche_noc::geometry::Dims;
use ruche_noc::prelude::*;
use ruche_phys::{min_cycle_time_fo4, router_area, EnergyModel, RouterParams, Tech};
use ruche_stats::{fmt_f, Csv, Table};
use ruche_traffic::Pattern;

fn fifo_depth_ablation(opts: Opts, runner: &mut SweepRunner, csv: &mut Csv) {
    let dims = if opts.quick {
        Dims::new(8, 8)
    } else {
        Dims::new(16, 16)
    };
    println!("-- ablation 1: input FIFO depth ({dims} uniform random saturation) --");
    let bases = |dims| {
        [
            NetworkConfig::mesh(dims),
            NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated),
            NetworkConfig::torus(dims),
        ]
    };
    let jobs: Vec<_> = [1usize, 2, 4, 8]
        .iter()
        .flat_map(|&depth| {
            bases(dims).map(|b| {
                sweep::saturation_job(&b.with_fifo_depth(depth), Pattern::UniformRandom, 5)
            })
        })
        .collect();
    let results = runner.run_all(&jobs);
    let mut next = results.iter();

    let mut t = Table::new(vec!["depth", "mesh", "ruche2-depop", "torus"]);
    for depth in [1usize, 2, 4, 8] {
        let mut row = vec![depth.to_string()];
        for base in bases(dims) {
            let cfg = base.with_fifo_depth(depth);
            let sat = next.next().expect("saturation result").accepted;
            csv.row([
                "fifo_depth".to_string(),
                cfg.label(),
                depth.to_string(),
                fmt_f(sat, 4),
            ]);
            row.push(fmt_f(sat, 3));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("expected: depth 2 captures nearly all of the throughput (credit round");
    println!("trip = 2 cycles); depth 1 halves link utilization; deeper buffers only");
    println!("help the VC router, at area cost the paper charges against it.\n");
}

fn ruche_factor_ablation(opts: Opts, runner: &mut SweepRunner, csv: &mut Csv) {
    let dims = if opts.quick {
        Dims::new(8, 8)
    } else {
        Dims::new(16, 16)
    };
    println!("-- ablation 2: Ruche Factor sweep ({dims} uniform random) --");
    let tech = Tech::n12();
    let mut t = Table::new(vec!["config", "sat thpt", "zero-load hops", "router area"]);
    let mut cfgs = vec![NetworkConfig::mesh(dims)];
    let max_rf = if opts.quick { 3 } else { 5 };
    for rf in 1..=max_rf {
        cfgs.push(if rf == 1 {
            NetworkConfig::ruche_one(dims)
        } else {
            NetworkConfig::full_ruche(dims, rf, CrossbarScheme::Depopulated)
        });
    }
    let jobs: Vec<_> = cfgs
        .iter()
        .map(|c| sweep::saturation_job(c, Pattern::UniformRandom, 5))
        .collect();
    let results = runner.run_all(&jobs);
    for (cfg, res) in cfgs.into_iter().zip(&results) {
        let sat = res.accepted;
        let hops = mean_route_hops(&cfg);
        let area = router_area(&RouterParams::of(&cfg), &tech).total();
        csv.row([
            "ruche_factor".to_string(),
            cfg.label(),
            fmt_f(sat, 4),
            fmt_f(hops, 3),
        ]);
        t.row(vec![
            cfg.label(),
            fmt_f(sat, 3),
            fmt_f(hops, 2),
            fmt_f(area, 0),
        ]);
    }
    println!("{}", t.render());
    println!("expected: throughput and hop count improve with RF while router area is");
    println!("flat — the paper's 'use longer wires for cost-effective gains' guideline —");
    println!("with a knee once RF approaches the array radius.\n");
}

fn mlp_ablation(opts: Opts, csv: &mut Csv) {
    println!("-- ablation 3: core outstanding-request limit (manycore, 16x8) --");
    let dims = Dims::new(16, 8);
    let (bench, ds) = (Benchmark::Fft, DatasetId::Fft16K);
    let w = Workload::build(bench, ds, dims);
    let limits: &[u32] = if opts.quick {
        &[4, 16]
    } else {
        &[2, 4, 8, 16, 32]
    };
    let mut t = Table::new(vec![
        "outstanding",
        "mesh cycles",
        "mesh congestion",
        "ruche2 speedup",
    ]);
    for &out in limits {
        let mut sys = SystemConfig::new(NetworkConfig::mesh(dims));
        sys.max_outstanding = out;
        let mesh = ruche_manycore::machine::run(&sys, &w).expect("run completes");
        let mut sys2 = SystemConfig::new(NetworkConfig::half_ruche(
            dims,
            2,
            CrossbarScheme::Depopulated,
        ));
        sys2.max_outstanding = out;
        let ruche = ruche_manycore::machine::run(&sys2, &w).expect("run completes");
        let speedup = mesh.cycles as f64 / ruche.cycles as f64;
        csv.row([
            "mlp".to_string(),
            out.to_string(),
            mesh.cycles.to_string(),
            fmt_f(speedup, 3),
        ]);
        t.row(vec![
            out.to_string(),
            mesh.cycles.to_string(),
            fmt_f(mesh.load_latency.congestion.mean(), 1),
            fmt_f(speedup, 2),
        ]);
    }
    println!("{}", t.render());
    println!("expected: more MLP shifts the workload from latency-bound to bandwidth-");
    println!("bound; congestion (and the ruche advantage) grows with the limit until");
    println!("the bisection, not the cores, sets the pace.\n");
}

fn channel_width_ablation(_opts: Opts, csv: &mut Csv) {
    println!("-- ablation 4: channel width scaling (phys models) --");
    let dims = Dims::new(8, 8);
    let tech = Tech::n12();
    let mut t = Table::new(vec![
        "width",
        "mesh area",
        "ruche2-depop area",
        "min FO4 (mesh)",
        "pJ/hop (mesh E)",
    ]);
    for bits in [32u32, 64, 128, 256] {
        let mut mesh = NetworkConfig::mesh(dims);
        mesh.channel_width_bits = bits;
        let mut ruche = NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated);
        ruche.channel_width_bits = bits;
        let am = router_area(&RouterParams::of(&mesh), &tech).total();
        let ar = router_area(&RouterParams::of(&ruche), &tech).total();
        let fo4 = min_cycle_time_fo4(&RouterParams::of(&mesh), &tech);
        let pj = EnergyModel::new(&mesh, tech).hop_energy_pj(Dir::E);
        csv.row([
            "channel_width".to_string(),
            bits.to_string(),
            fmt_f(am, 0),
            fmt_f(ar, 0),
        ]);
        t.row(vec![
            bits.to_string(),
            fmt_f(am, 0),
            fmt_f(ar, 0),
            fmt_f(fo4, 1),
            fmt_f(pj, 2),
        ]);
    }
    println!("{}", t.render());
    println!("expected: area and energy scale linearly with width (the paper's §1");
    println!("argument that widening channels is not a scalable bandwidth lever),");
    println!("while a ruche2 router at 128b costs less than a mesh router at 256b.");
}

fn pipelined_torus_ablation(opts: Opts, runner: &mut SweepRunner, csv: &mut Csv) {
    println!("-- ablation 5: pipelining the torus router (§3.2 quantified) --");
    // Figure 7 shows the torus cannot reach the Ruche cycle time without
    // pipelining. Here we grant it that pipeline stage and measure what it
    // costs at the network level: hop latency up, and the lengthened
    // credit loop starves two-element FIFOs unless buffers deepen (which
    // Table 2 then charges as area).
    let dims = if opts.quick {
        Dims::new(8, 8)
    } else {
        Dims::new(16, 16)
    };
    let mut t = Table::new(vec!["config", "zero-load lat", "sat thpt"]);
    let cases = vec![
        NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated),
        NetworkConfig::torus(dims),
        NetworkConfig::torus(dims).with_pipeline_stages(1),
        NetworkConfig::torus(dims)
            .with_pipeline_stages(1)
            .with_fifo_depth(4),
    ];
    let labels = [
        "ruche2-depop (1 cyc/hop)",
        "torus (1 cyc/hop, optimistic)",
        "torus pipelined (2 cyc/hop)",
        "torus pipelined, 4-deep FIFOs",
    ];
    let jobs: Vec<_> = cases
        .iter()
        .flat_map(|c| {
            [
                sweep::zero_load_job(c, Pattern::UniformRandom, 5),
                sweep::saturation_job(c, Pattern::UniformRandom, 5),
            ]
        })
        .collect();
    let results = runner.run_all(&jobs);
    let mut next = results.iter();
    for (_cfg, label) in cases.into_iter().zip(labels) {
        let zl = next.next().expect("zero-load result").avg_latency;
        let sat = next.next().expect("saturation result").accepted;
        csv.row([
            "pipelined_torus".to_string(),
            label.to_string(),
            fmt_f(zl, 2),
            fmt_f(sat, 4),
        ]);
        t.row(vec![label.to_string(), fmt_f(zl, 1), fmt_f(sat, 3)]);
    }
    println!("{}", t.render());
    println!("expected: Figure 6's torus curves are *optimistic* (they grant it the");
    println!("Ruche cycle time); once pipelined to meet timing, the torus loses zero-");
    println!("load latency and, with minimal buffering, throughput too — recovering");
    println!("only by doubling its FIFO depth (more of the area Table 2 charges).\n");
}

fn dor_order_ablation(_opts: Opts, csv: &mut Csv) {
    println!("-- ablation 6: response-network DOR order (Abts et al. via §4) --");
    // The paper routes requests X-Y and responses Y-X, citing Abts et al.
    // that this placement is best for all-to-edge traffic. Measure what
    // X-Y responses would cost instead.
    let dims = Dims::new(16, 8);
    let mut t = Table::new(vec!["resp DOR", "mesh cycles", "ruche2 cycles"]);
    for (name, dor) in [("Y-X (paper)", DorOrder::YX), ("X-Y", DorOrder::XY)] {
        let w = Workload::build(Benchmark::Fft, DatasetId::Fft16K, dims);
        let mut row = vec![name.to_string()];
        for net in [
            NetworkConfig::mesh(dims),
            NetworkConfig::half_ruche(dims, 2, CrossbarScheme::Depopulated),
        ] {
            let mut sys = SystemConfig::new(net);
            sys.resp_dor = dor;
            let r = ruche_manycore::machine::run(&sys, &w).expect("run completes");
            row.push(r.cycles.to_string());
        }
        csv.row([
            "resp_dor".to_string(),
            name.to_string(),
            row[1].clone(),
            row[2].clone(),
        ]);
        t.row(row);
    }
    println!("{}", t.render());
    println!("expected: X-Y responses funnel all memory return traffic through the");
    println!("edge rows before spreading, congesting row 0 / row N-1 — Y-X responses");
    println!("(the paper's choice) run faster on both networks.\n");
}

fn design_point_32x8_ablation(opts: Opts, csv: &mut Csv) {
    println!("-- ablation 7: the paper's unevaluated 32x8 + ruche3 design point --");
    // §4.5: "32×8 with Ruche3 appears to be an interesting design point,
    // since it can match the bisection and memory-tile bandwidth 1:1."
    // The paper never simulates it; we do.
    let mut suite = crate::suite::Suite::load();
    let workloads: Vec<(Benchmark, DatasetId)> = if opts.quick {
        vec![(Benchmark::Fft, DatasetId::Fft16K)]
    } else {
        vec![
            (Benchmark::Sgemm, DatasetId::Default),
            (Benchmark::Fft, DatasetId::Fft16K),
            (
                Benchmark::PageRank,
                DatasetId::Graph(ruche_manycore::prelude::GraphId::Pk),
            ),
        ]
    };
    let mut t = Table::new(vec!["workload", "array", "cycles", "cycles x tiles (norm)"]);
    for &(bench, ds) in &workloads {
        let mut base_work = None;
        for dims in [Dims::new(32, 8), Dims::new(32, 16), Dims::new(64, 8)] {
            let cfg = NetworkConfig::half_ruche(dims, 3, CrossbarScheme::FullyPopulated);
            let e = suite.get_or_run(dims, &cfg, bench, ds);
            // cycles × tiles ∝ core-seconds: lower = better per-core use.
            let work = e.cycles as f64 * dims.count() as f64;
            let norm = work / *base_work.get_or_insert(work);
            csv.row([
                "design_32x8".to_string(),
                format!("{dims}"),
                e.cycles.to_string(),
                fmt_f(norm, 3),
            ]);
            t.row(vec![
                ruche_manycore::prelude::Workload::build_name(bench, ds),
                format!("{dims} ruche3-pop"),
                e.cycles.to_string(),
                fmt_f(norm, 2),
            ]);
        }
    }
    println!("{}", t.render());
    println!("expected: 32x8+ruche3 (bisection = memory BW, 1:1) gets the best");
    println!("per-core utilization — the bigger arrays finish sooner but burn more");
    println!("than proportionally many core-cycles on the same fixed problem.\n");
}

/// Runs all seven ablations and writes `ablations.csv`.
pub fn run(opts: Opts) {
    banner("Ablations", "design-choice sweeps beyond the paper");
    let mut csv = Csv::new();
    csv.row(["ablation", "x", "y1", "y2"]);
    // The synthetic-traffic ablations share one sweep runner (and thus one
    // cache handle); the manycore ablations stay serial — their workload
    // runs go through the `suite` cache instead.
    let mut runner = SweepRunner::new(opts);
    fifo_depth_ablation(opts, &mut runner, &mut csv);
    ruche_factor_ablation(opts, &mut runner, &mut csv);
    mlp_ablation(opts, &mut csv);
    channel_width_ablation(opts, &mut csv);
    pipelined_torus_ablation(opts, &mut runner, &mut csv);
    dor_order_ablation(opts, &mut csv);
    design_point_32x8_ablation(opts, &mut csv);
    write_artifact("ablations.csv", csv.as_str());
}
