//! Figure 13: total energy breakdown on 32×16, normalized to 2-D mesh.

use crate::opts::Opts;
use crate::out::{banner, write_artifact};
use crate::suite::{half_ruche_configs, workload_list, Suite};
use ruche_manycore::prelude::Workload;
use ruche_noc::geometry::Dims;
use ruche_stats::{fmt_f, Csv, Table};

/// Prints the Figure 13 reproduction and writes `fig13_energy.csv`.
pub fn run(opts: Opts) {
    banner(
        "Figure 13",
        "total energy breakdown (core/stall/router/wire) normalized to mesh, 32x16",
    );
    let mut suite = Suite::load();
    let dims = if opts.quick {
        Dims::new(16, 8)
    } else {
        Dims::new(32, 16)
    };
    if opts.quick {
        println!("(quick mode: using 16x8 instead of 32x16)");
    }
    let configs = half_ruche_configs(dims);
    let mut csv = Csv::new();
    csv.row([
        "workload",
        "config",
        "core",
        "stall",
        "router",
        "wire",
        "total_vs_mesh",
    ]);
    let mut header = vec!["workload".to_string()];
    header.extend(configs.iter().map(|c| c.label()));
    let mut t = Table::new(header.iter().map(String::as_str).collect());
    for (bench, ds) in workload_list(opts) {
        let mesh = suite.get_or_run(dims, &configs[0], bench, ds);
        let mesh_total = mesh.total_pj();
        let mut row = vec![Workload::build_name(bench, ds)];
        for cfg in &configs {
            let e = suite.get_or_run(dims, cfg, bench, ds);
            row.push(fmt_f(e.total_pj() / mesh_total, 2));
            csv.row([
                row[0].clone(),
                cfg.label(),
                fmt_f(e.core_pj / mesh_total, 4),
                fmt_f(e.stall_pj / mesh_total, 4),
                fmt_f(e.router_pj / mesh_total, 4),
                fmt_f(e.wire_pj / mesh_total, 4),
                fmt_f(e.total_pj() / mesh_total, 4),
            ]);
        }
        t.row(row);
    }
    println!("{}", t.render());
    write_artifact("fig13_energy.csv", csv.as_str());
    println!("paper shape: core energy constant across networks; ruche cuts router");
    println!("energy (fewer hops) and stall energy (lower load latency); wire energy");
    println!("stays a small slice; half-torus *increases* total energy over mesh.");
}
