//! Figure 7: router cell area vs target cycle time (FO4).

use crate::opts::Opts;
use crate::out::{banner, write_artifact};
use ruche_noc::geometry::Dims;
use ruche_noc::prelude::*;
use ruche_phys::{area_sweep, min_cycle_time_fo4, RouterParams, Tech};
use ruche_stats::{fmt_f, Csv, Table};

fn configs(dims: Dims) -> Vec<NetworkConfig> {
    vec![
        NetworkConfig::mesh(dims),
        NetworkConfig::multi_mesh(dims),
        NetworkConfig::full_ruche(dims, 3, CrossbarScheme::Depopulated),
        NetworkConfig::full_ruche(dims, 3, CrossbarScheme::FullyPopulated),
        NetworkConfig::torus(dims),
    ]
}

/// Prints the Figure 7 reproduction and writes `fig7_area_vs_cycle.csv`.
pub fn run(opts: Opts) {
    banner(
        "Figure 7",
        "area vs cycle time: mesh / multi-mesh / Full Ruche / torus (128-bit, X-Y DOR)",
    );
    let tech = Tech::n12();
    let step = if opts.quick { 8.0 } else { 2.0 };
    let mut csv = Csv::new();
    csv.row(["router", "target_fo4", "area_um2"]);
    let mut t = Table::new(vec![
        "router",
        "min cycle (FO4)",
        "area @98 FO4",
        "area @min+2",
    ]);
    for cfg in configs(Dims::new(8, 8)) {
        let p = RouterParams::of(&cfg);
        let t_min = min_cycle_time_fo4(&p, &tech);
        let sweep = area_sweep(&p, &tech, 98.0, step);
        for pt in &sweep {
            if let Some(a) = pt.area_um2 {
                csv.row([cfg.label(), fmt_f(pt.target_fo4, 1), fmt_f(a, 0)]);
            }
        }
        let relaxed = sweep.first().and_then(|p| p.area_um2).unwrap_or(0.0);
        let tight = ruche_phys::area_at(&p, &tech, t_min + 2.0)
            .map(|a| a.total())
            .unwrap_or(0.0);
        t.row(vec![
            cfg.label(),
            fmt_f(t_min, 1),
            fmt_f(relaxed, 0),
            fmt_f(tight, 0),
        ]);
    }
    println!("{}", t.render());
    println!("paper shape: ruche pop/depop reach ~mesh-class minimum cycle time without");
    println!("pipelining; the torus wavefront allocator hits its timing wall far earlier.");
    write_artifact("fig7_area_vs_cycle.csv", csv.as_str());
}
