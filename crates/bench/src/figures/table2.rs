//! Table 2: router area breakdown at relaxed timing (~98 FO4).

use crate::opts::Opts;
use crate::out::banner;
use ruche_noc::geometry::Dims;
use ruche_noc::prelude::*;
use ruche_phys::{router_area, RouterParams, Tech};
use ruche_stats::{fmt_f, Table};

/// Paper values for side-by-side comparison: (crossbar, decode,
/// fifo-or-vc, arbiter-or-allocator, total).
const PAPER: [(&str, [f64; 5]); 4] = [
    ("multi-mesh", [791.0, 96.0, 2250.0, 53.0, 3190.0]),
    ("ruche3-depop", [599.0, 99.0, 2250.0, 42.0, 2991.0]),
    ("ruche3-pop", [986.0, 100.0, 2250.0, 74.0, 3411.0]),
    ("torus", [410.0, 349.0, 2435.0, 194.0, 3388.0]),
];

fn configs(dims: Dims) -> Vec<NetworkConfig> {
    vec![
        NetworkConfig::multi_mesh(dims),
        NetworkConfig::full_ruche(dims, 3, CrossbarScheme::Depopulated),
        NetworkConfig::full_ruche(dims, 3, CrossbarScheme::FullyPopulated),
        NetworkConfig::torus(dims),
    ]
}

/// Prints the Table 2 reproduction (model vs paper).
pub fn run(_opts: Opts) {
    banner(
        "Table 2",
        "multi-mesh / Full Ruche / torus router area breakdown (um^2, 128-bit channels)",
    );
    let tech = Tech::n12();
    let mut t = Table::new(vec![
        "router",
        "crossbar",
        "decode",
        "fifo/vc",
        "arb/alloc",
        "TOTAL",
        "paper",
        "err%",
    ]);
    for (cfg, (_, paper)) in configs(Dims::new(8, 8)).iter().zip(PAPER) {
        let a = router_area(&RouterParams::of(cfg), &tech);
        let err = 100.0 * (a.total() - paper[4]) / paper[4];
        t.row(vec![
            cfg.label(),
            fmt_f(a.crossbar, 0),
            fmt_f(a.decode, 0),
            fmt_f(a.fifo, 0),
            fmt_f(a.allocator, 0),
            fmt_f(a.total(), 0),
            fmt_f(paper[4], 0),
            fmt_f(err, 1),
        ]);
    }
    println!("{}", t.render());
    println!("paper headline: depopulation cuts the crossbar ~40% vs fully-populated;");
    println!("depop Full Ruche lands ~12% under the 2-VC torus router.");
}
