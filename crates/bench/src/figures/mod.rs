//! One module per reproduced table/figure. Each exposes
//! `run(opts: Opts)`, printing the reproduction and writing artifacts
//! under `results/`.

pub mod ablations;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table6;
