//! Figure 8: per-tile average-latency fairness on 16×16 uniform random at
//! low load.

use crate::opts::Opts;
use crate::out::{banner, write_artifact};
use crate::sweep::{SweepJob, SweepRunner};
use ruche_noc::geometry::Dims;
use ruche_noc::prelude::*;
use ruche_stats::{fmt_f, Accum, Csv, Table};
use ruche_traffic::{Pattern, Testbench};

/// The Figure 8 network set for one array size.
pub fn configs(dims: Dims) -> Vec<NetworkConfig> {
    use CrossbarScheme::FullyPopulated;
    vec![
        NetworkConfig::mesh(dims),
        NetworkConfig::torus(dims),
        NetworkConfig::full_ruche(dims, 2, FullyPopulated),
        NetworkConfig::full_ruche(dims, 3, FullyPopulated),
    ]
}

/// Prints the Figure 8 reproduction and writes the per-tile distribution.
pub fn run(opts: Opts) {
    banner(
        "Figure 8",
        "fairness: distribution of per-tile mean latency, 16x16 uniform random, low load",
    );
    let dims = Dims::new(16, 16);
    let b = Testbench::builder(Pattern::UniformRandom, 0.02);
    let tb = if opts.quick {
        b.quick()
    } else {
        b.warmup(1_000).measure(8_000).drain(2_000)
    }
    .build()
    .expect("figure testbench is valid");
    // Per-tile jobs bypass the sweep cache (it stores scalar aggregates)
    // but still fan out across the worker pool.
    let jobs: Vec<SweepJob> = configs(dims)
        .into_iter()
        .map(|cfg| SweepJob::new(cfg, tb.clone()).with_per_tile())
        .collect();
    let results = SweepRunner::new(opts).run_all(&jobs);

    let mut csv = Csv::new();
    csv.row(["config", "tile_x", "tile_y", "mean_latency"]);
    let mut t = Table::new(vec!["config", "mean", "stdev", "min", "max", "stdev/mesh"]);
    let mut mesh_stdev = None;
    let mut torus_mean = None;
    for (cfg, res) in configs(dims).into_iter().zip(&results) {
        let mut dist = Accum::new();
        for (i, a) in res.per_tile_latency.iter().enumerate() {
            if a.count() > 0 {
                dist.add(a.mean());
                let c = dims.coord(i);
                csv.row([
                    cfg.label(),
                    c.x.to_string(),
                    c.y.to_string(),
                    fmt_f(a.mean(), 3),
                ]);
            }
        }
        if cfg.label() == "mesh" {
            mesh_stdev = Some(dist.stdev());
        }
        if cfg.label() == "torus" {
            torus_mean = Some(dist.mean());
        }
        t.row(vec![
            cfg.label(),
            fmt_f(dist.mean(), 2),
            fmt_f(dist.stdev(), 2),
            fmt_f(dist.min().unwrap_or(0.0), 2),
            fmt_f(dist.max().unwrap_or(0.0), 2),
            mesh_stdev
                .map(|m| fmt_f(m / dist.stdev().max(1e-9), 2))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", t.render());
    if let Some(tm) = torus_mean {
        println!("(torus mean = {tm:.2}; the paper's ruche2/ruche3 land 1.18x/1.34x below it)");
    }
    println!("paper: mesh mu=10.6 sigma=1.67; ruche2/ruche3 cut sigma 2.0x/2.9x vs mesh;");
    println!("torus is perfectly symmetric but ruche means drop below the torus mean.");
    write_artifact("fig8_fairness.csv", csv.as_str());
}
