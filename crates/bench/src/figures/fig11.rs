//! Figure 11: scalability — speedup of 32×16 and 64×8 over the 16×8 mesh
//! (ideal = 4× with 4× the cores).

use crate::opts::Opts;
use crate::out::{banner, write_artifact};
use crate::suite::{half_ruche_configs, workload_list, Suite};
use ruche_manycore::prelude::Workload;
use ruche_noc::geometry::Dims;
use ruche_noc::prelude::*;
use ruche_stats::{fmt_f, geomean, Csv, Table};

/// Prints the Figure 11 reproduction and writes `fig11_scalability.csv`.
pub fn run(opts: Opts) {
    banner(
        "Figure 11",
        "scalability: speedup of 32x16 and 64x8 over the 16x8 mesh (ideal 4x)",
    );
    let mut suite = Suite::load();
    let base_dims = Dims::new(16, 8);
    let base_cfg = NetworkConfig::mesh(base_dims);
    let mut csv = Csv::new();
    csv.row(["size", "workload", "config", "scalability_vs_16x8_mesh"]);
    let sizes = if opts.quick {
        vec![Dims::new(32, 16)]
    } else {
        vec![Dims::new(32, 16), Dims::new(64, 8)]
    };
    for &dims in &sizes {
        let configs = half_ruche_configs(dims);
        let mut header = vec!["workload".to_string()];
        header.extend(configs.iter().map(|c| c.label()));
        let mut t = Table::new(header.iter().map(String::as_str).collect());
        let mut per_cfg: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
        for (bench, ds) in workload_list(opts) {
            let base = suite.get_or_run(base_dims, &base_cfg, bench, ds);
            let mut row = vec![Workload::build_name(bench, ds)];
            for (i, cfg) in configs.iter().enumerate() {
                let e = suite.get_or_run(dims, cfg, bench, ds);
                let s = base.cycles as f64 / e.cycles as f64;
                per_cfg[i].push(s);
                row.push(fmt_f(s, 2));
                csv.row([format!("{dims}"), row[0].clone(), cfg.label(), fmt_f(s, 3)]);
            }
            t.row(row);
        }
        let mut geo = vec!["GEOMEAN".to_string()];
        for s in &per_cfg {
            geo.push(fmt_f(geomean(s.iter().copied()), 2));
        }
        t.row(geo);
        println!("--- {dims} vs 16x8 mesh ---");
        println!("{}", t.render());
    }
    write_artifact("fig11_scalability.csv", csv.as_str());
    println!("paper shape: ruche lifts scalability everywhere; 64x8 mesh collapses on");
    println!("its bisection; at ruche3 the 64x8 array overtakes 32x16 by exploiting its");
    println!("higher compute:memory ratio; half-torus scales worst of the augmented nets.");
}
