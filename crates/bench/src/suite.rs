//! The shared Half-Ruche manycore simulation suite (Figures 10–13 and
//! Table 6 all consume it), with a disk cache so each (array, network,
//! workload) combination is simulated exactly once across harnesses.

use crate::opts::Opts;
use crate::out::results_dir;
use ruche_manycore::prelude::*;
use ruche_noc::prelude::*;
// lint:allow(hash-order): the suite cache is keyed by config label and only
// ever looked up; artifact emission collects the keys and sorts them first.
use std::collections::HashMap;
use std::fmt::Write as _;

/// The network configurations of the Half-Ruche evaluation (§4.6),
/// paper order: mesh, ruche2-depop, ruche2-pop, ruche3-depop, ruche3-pop,
/// half-torus.
pub fn half_ruche_configs(dims: Dims) -> Vec<NetworkConfig> {
    use CrossbarScheme::{Depopulated, FullyPopulated};
    vec![
        NetworkConfig::mesh(dims),
        NetworkConfig::half_ruche(dims, 2, Depopulated),
        NetworkConfig::half_ruche(dims, 2, FullyPopulated),
        NetworkConfig::half_ruche(dims, 3, Depopulated),
        NetworkConfig::half_ruche(dims, 3, FullyPopulated),
        NetworkConfig::half_torus(dims),
    ]
}

/// The benchmark × dataset list (Table 5). `quick` trims to one dataset
/// per benchmark.
pub fn workload_list(opts: Opts) -> Vec<(Benchmark, DatasetId)> {
    let mut list = Vec::new();
    for b in Benchmark::ALL {
        let ds = b.datasets();
        let take = if opts.quick { 1 } else { ds.len() };
        for d in ds.into_iter().take(take) {
            list.push((b, d));
        }
    }
    list
}

/// Cached aggregates of one machine run — everything Figures 10–13 and
/// Table 6 need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Runtime, cycles.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Stall cycles (waiting).
    pub stall: u64,
    /// Idle cycles (after completion).
    pub idle: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
    /// Mean remote-load latency, cycles.
    pub lat_total: f64,
    /// Mean intrinsic component.
    pub lat_intrinsic: f64,
    /// Mean congestion component.
    pub lat_congestion: f64,
    /// Measured accesses.
    pub lat_count: u64,
    /// Core dynamic energy, pJ.
    pub core_pj: f64,
    /// Stall/idle energy, pJ.
    pub stall_pj: f64,
    /// Router energy, pJ.
    pub router_pj: f64,
    /// Long-wire energy, pJ.
    pub wire_pj: f64,
}

impl Entry {
    /// Total energy, pJ.
    pub fn total_pj(&self) -> f64 {
        self.core_pj + self.stall_pj + self.router_pj + self.wire_pj
    }

    /// NoC energy (router + wire), pJ.
    pub fn noc_pj(&self) -> f64 {
        self.router_pj + self.wire_pj
    }

    /// Compute energy (core + stall), pJ.
    pub fn compute_pj(&self) -> f64 {
        self.core_pj + self.stall_pj
    }

    fn from_run(r: &RunResult) -> Self {
        Entry {
            cycles: r.cycles,
            instructions: r.instructions,
            stall: r.stall_cycles,
            idle: r.idle_cycles,
            mem_ops: r.mem_ops,
            lat_total: r.load_latency.total.mean(),
            lat_intrinsic: r.load_latency.intrinsic.mean(),
            lat_congestion: r.load_latency.congestion.mean(),
            lat_count: r.load_latency.total.count(),
            core_pj: r.energy.core_pj,
            stall_pj: r.energy.stall_pj,
            router_pj: r.energy.router_pj,
            wire_pj: r.energy.wire_pj,
        }
    }

    fn to_tsv(self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.cycles,
            self.instructions,
            self.stall,
            self.idle,
            self.mem_ops,
            self.lat_total,
            self.lat_intrinsic,
            self.lat_congestion,
            self.lat_count,
            self.core_pj,
            self.stall_pj,
            self.router_pj,
            self.wire_pj
        )
    }

    fn from_tsv(fields: &[&str]) -> Option<Entry> {
        if fields.len() != 13 {
            return None;
        }
        Some(Entry {
            cycles: fields[0].parse().ok()?,
            instructions: fields[1].parse().ok()?,
            stall: fields[2].parse().ok()?,
            idle: fields[3].parse().ok()?,
            mem_ops: fields[4].parse().ok()?,
            lat_total: fields[5].parse().ok()?,
            lat_intrinsic: fields[6].parse().ok()?,
            lat_congestion: fields[7].parse().ok()?,
            lat_count: fields[8].parse().ok()?,
            core_pj: fields[9].parse().ok()?,
            stall_pj: fields[10].parse().ok()?,
            router_pj: fields[11].parse().ok()?,
            wire_pj: fields[12].parse().ok()?,
        })
    }
}

/// Bump when anything that invalidates cached runs changes (engine,
/// kernels, calibration). v5: vendored RNG changed workload streams.
const CACHE_VERSION: &str = "v5";

/// The run cache: maps (array, network label, workload) to aggregates,
/// persisted as TSV under `results/cache.tsv`.
///
/// Only instances created with [`Suite::load`] persist; `Suite::default()`
/// is in-memory only, so tests and ad-hoc uses can never clobber the
/// on-disk cache with a partial view.
#[derive(Debug, Default)]
pub struct Suite {
    entries: HashMap<String, Entry>,
    workload_cache: HashMap<String, Workload>,
    persist: bool,
}

impl Suite {
    fn key(dims: Dims, label: &str, workload: &str) -> String {
        format!("{CACHE_VERSION}|{dims}|{label}|{workload}")
    }

    fn cache_path() -> std::path::PathBuf {
        results_dir().join("cache.tsv")
    }

    /// Loads the persisted cache (empty if none).
    pub fn load() -> Self {
        let mut entries = HashMap::new();
        if let Ok(body) = std::fs::read_to_string(Self::cache_path()) {
            for line in body.lines() {
                let mut parts = line.splitn(2, '\t');
                let (Some(key), Some(rest)) = (parts.next(), parts.next()) else {
                    continue;
                };
                if !key.starts_with(CACHE_VERSION) {
                    continue;
                }
                let fields: Vec<&str> = rest.split('\t').collect();
                if let Some(e) = Entry::from_tsv(&fields) {
                    entries.insert(key.to_string(), e);
                }
            }
        }
        Suite {
            entries,
            workload_cache: HashMap::new(),
            persist: true,
        }
    }

    /// Persists the cache. Merges with whatever is on disk first, so a
    /// suite holding a subset of entries never erases another's work.
    pub fn save(&self) {
        if !self.persist {
            return;
        }
        let mut merged = Suite::load().entries;
        merged.extend(self.entries.iter().map(|(k, v)| (k.clone(), *v)));
        let mut body = String::new();
        let mut keys: Vec<&String> = merged.keys().collect();
        keys.sort();
        for k in keys {
            let _ = writeln!(body, "{k}\t{}", merged[k].to_tsv());
        }
        let _ = std::fs::write(Self::cache_path(), body);
    }

    /// Number of cached runs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the aggregates for (dims, net, workload), simulating and
    /// caching on a miss.
    ///
    /// # Panics
    ///
    /// Panics if the machine run fails (invalid config or cycle-cap).
    pub fn get_or_run(
        &mut self,
        dims: Dims,
        net: &NetworkConfig,
        bench: Benchmark,
        ds: DatasetId,
    ) -> Entry {
        let wname = Workload::build_name(bench, ds);
        let key = Self::key(dims, &net.label(), &wname);
        if let Some(&e) = self.entries.get(&key) {
            return e;
        }
        let wkey = format!("{dims}|{wname}");
        let workload = self
            .workload_cache
            .entry(wkey)
            .or_insert_with(|| Workload::build(bench, ds, dims));
        eprintln!("[suite] running {wname} on {} {}", dims, net.label());
        let result = run(&SystemConfig::new(net.clone()), workload)
            .unwrap_or_else(|e| panic!("machine run failed for {wname}: {e}"));
        let entry = Entry::from_run(&result);
        self.entries.insert(key, entry);
        self.save();
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_paper_order() {
        let cfgs = half_ruche_configs(Dims::new(16, 8));
        let labels: Vec<String> = cfgs.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "mesh",
                "half-ruche2-depop",
                "half-ruche2-pop",
                "half-ruche3-depop",
                "half-ruche3-pop",
                "half-torus"
            ]
        );
        for c in cfgs {
            c.validate().unwrap();
        }
    }

    #[test]
    fn workload_list_sizes() {
        assert_eq!(workload_list(Opts::quick()).len(), 7);
        assert_eq!(workload_list(Opts::full()).len(), 19);
    }

    #[test]
    fn entry_tsv_roundtrip() {
        let e = Entry {
            cycles: 123,
            instructions: 456,
            stall: 7,
            idle: 8,
            mem_ops: 9,
            lat_total: 31.5,
            lat_intrinsic: 20.25,
            lat_congestion: 11.25,
            lat_count: 42,
            core_pj: 1.5,
            stall_pj: 2.5,
            router_pj: 3.5,
            wire_pj: 4.5,
        };
        let s = e.to_tsv();
        let fields: Vec<&str> = s.split('\t').collect();
        assert_eq!(Entry::from_tsv(&fields), Some(e));
        assert_eq!(e.total_pj(), 12.0);
        assert_eq!(e.noc_pj(), 8.0);
        assert_eq!(e.compute_pj(), 4.0);
    }

    #[test]
    fn suite_runs_and_caches() {
        let dims = Dims::new(8, 4);
        let mut suite = Suite::default();
        let net = NetworkConfig::mesh(dims);
        let a = suite.get_or_run(dims, &net, Benchmark::Jacobi, DatasetId::Default);
        let b = suite.get_or_run(dims, &net, Benchmark::Jacobi, DatasetId::Default);
        assert_eq!(a, b);
        assert_eq!(suite.len(), 1);
        assert!(!suite.is_empty());
        assert!(a.cycles > 0);
    }

    #[test]
    fn default_suite_never_touches_the_disk_cache() {
        // Regression test: a partial in-memory suite (as used above) must
        // not clobber results/cache.tsv when it "saves".
        let before = std::fs::read_to_string(Suite::cache_path()).unwrap_or_default();
        let dims = Dims::new(8, 4);
        let mut suite = Suite::default();
        let net = NetworkConfig::mesh(dims);
        let _ = suite.get_or_run(dims, &net, Benchmark::Jacobi, DatasetId::Default);
        suite.save();
        let after = std::fs::read_to_string(Suite::cache_path()).unwrap_or_default();
        assert_eq!(before, after, "ephemeral suites leave the cache alone");
    }
}
