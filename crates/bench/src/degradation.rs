//! `repro --degradation`: the graceful-degradation sweep.
//!
//! Sweeps link-fault probability over the three topology families the
//! paper's bandwidth argument contrasts — mesh, Half Ruche, and Full
//! Ruche — measuring saturation throughput and zero-load latency as the
//! network degrades, plus how much surviving traffic the up\*/down\* fault
//! routing displaces onto detour channels (and what share of those
//! detours ride the Ruche channels). Results land in
//! `results/BENCH_degradation.json`, rendered deterministically: the same
//! fault seeds yield byte-identical JSON.
//!
//! Every faulted sample is statically verified by
//! [`ruche_verify::verify_faulted_cached`] before a single cycle is
//! simulated; a rejected sample (cycle witness or invalid model) is
//! recorded as `"verified": false` and skipped. See `docs/RESILIENCE.md`
//! for how to read the curves.

use crate::opts::Opts;
use crate::out::{banner, write_artifact};
use crate::sweep::{SweepJob, SweepRunner, MODEL_VERSION};
use ruche_noc::fault::FaultModel;
use ruche_noc::prelude::*;
use ruche_stats::{fmt_f, Table};
use ruche_traffic::{run_probed, Pattern, Testbench, TestbenchBuilder};
use std::fmt::Write as _;

/// Injection/ejection time-series bin width for the attribution runs.
const WINDOW: u64 = 64;
/// Offered load of the detour-attribution runs: low enough that the
/// faulted network is unsaturated at every swept fault rate, so per-link
/// traversal deltas measure routing displacement, not congestion collapse.
const ATTRIBUTION_RATE: f64 = 0.05;
/// Traffic seed shared by the faulted attribution runs and their unfaulted
/// baselines, so the per-link delta reflects the fault model alone.
const ATTRIBUTION_SEED: u64 = 7;

/// The degradation sweep's topology families.
fn topologies(dims: Dims) -> Vec<NetworkConfig> {
    vec![
        NetworkConfig::mesh(dims),
        NetworkConfig::half_ruche(dims, 2, CrossbarScheme::Depopulated),
        NetworkConfig::full_ruche(dims, 2, CrossbarScheme::Depopulated),
    ]
}

/// Swept link-fault probabilities.
fn fault_rates(quick: bool) -> Vec<f64> {
    if quick {
        vec![0.0, 0.05, 0.15]
    } else {
        (0..=10).map(|i| 0.02 * f64::from(i)).collect()
    }
}

/// Fault seeds (one fault realization each, averaged in the summary).
fn seeds(quick: bool) -> Vec<u64> {
    if quick {
        vec![1]
    } else {
        vec![1, 2, 3]
    }
}

/// One simulated `(topology, fault rate, seed)` sample.
struct Sample {
    seed: u64,
    dead_links: usize,
    dead_routers: usize,
    /// Fraction of ordered source/destination pairs still connected.
    connected_pairs: f64,
    /// Whether the faulted configuration passed static verification
    /// (unverified samples carry zeroed metrics).
    verified: bool,
    saturation: f64,
    zero_load: f64,
    /// Flits that appeared on links beyond the unfaulted baseline run —
    /// surviving traffic displaced onto detour channels.
    displaced_flits: u64,
    /// Share of the displaced flits that rode Ruche channels.
    detour_ruche_fraction: f64,
}

/// Per-link traversal totals of a probed run.
fn traversal_profile(cfg: &NetworkConfig, tb: &Testbench) -> (Vec<u64>, Vec<Dir>) {
    let (_, tel) = run_probed(cfg, tb, WINDOW).expect("attribution run is valid");
    let ports = tel.ports().to_vec();
    let mut flat = Vec::with_capacity(tel.n_nodes() * ports.len());
    for n in 0..tel.n_nodes() {
        for p in 0..ports.len() {
            flat.push(tel.traversed(n, p));
        }
    }
    (flat, ports)
}

/// Displaced-traffic attribution: per-link traversal delta of the faulted
/// run over the unfaulted baseline at the same (low) load. Positive
/// deltas are detour traffic; the Ruche share tells how much of the
/// rerouting the long-range channels absorbed.
fn attribute_detours(
    cfg: &NetworkConfig,
    baseline: &[u64],
    ports: &[Dir],
    faults: &FaultModel,
) -> (u64, f64) {
    let tb = attribution_tb()
        .faults(faults.clone())
        .build()
        .expect("attribution testbench is valid");
    let (faulted, _) = traversal_profile(cfg, &tb);
    let np = ports.len();
    let mut displaced = 0u64;
    let mut on_ruche = 0u64;
    for (i, (&f, &b)) in faulted.iter().zip(baseline).enumerate() {
        let d = f.saturating_sub(b);
        displaced += d;
        if ports[i % np].is_ruche() {
            on_ruche += d;
        }
    }
    let fraction = if displaced == 0 {
        0.0
    } else {
        on_ruche as f64 / displaced as f64
    };
    (displaced, fraction)
}

fn attribution_tb() -> TestbenchBuilder {
    // Quick windows regardless of mode: attribution is a low-load routing
    // diagnostic, not a throughput measurement.
    Testbench::builder(Pattern::UniformRandom, ATTRIBUTION_RATE)
        .quick()
        .seed(ATTRIBUTION_SEED)
}

fn metric_tb(rate: f64, seed: u64, faults: &FaultModel, quick: bool) -> Testbench {
    let b = Testbench::builder(Pattern::UniformRandom, rate).seed(seed);
    let b = if quick { b.quick() } else { b };
    b.faults(faults.clone())
        .build()
        .expect("degradation testbench is valid")
}

/// Renders the full degradation sweep as deterministic JSON. Split from
/// [`run`] so the determinism test can compare two renders byte for byte.
pub fn render(opts: Opts) -> String {
    let dims = if opts.quick {
        Dims::new(8, 8)
    } else {
        Dims::new(16, 8)
    };
    let rates = fault_rates(opts.quick);
    let seeds = seeds(opts.quick);

    // Phase 1: enumerate every sample, verify it, and queue the metric
    // simulations as sweep jobs (fanned out across the worker pool; the
    // keyed cache makes warm reruns cheap).
    struct Pending {
        topo: usize,
        rate: usize,
        seed: u64,
        faults: FaultModel,
        verified: bool,
        sat_job: Option<usize>,
        zl_job: Option<usize>,
    }
    let topos = topologies(dims);
    let mut pending = Vec::new();
    let mut jobs: Vec<SweepJob> = Vec::new();
    for (ti, cfg) in topos.iter().enumerate() {
        for (ri, &p) in rates.iter().enumerate() {
            for &seed in &seeds {
                let faults = FaultModel::random_links(cfg, p, seed);
                let verified = match ruche_verify::verify_faulted_cached(cfg, &faults) {
                    Ok(()) => true,
                    Err(report) => {
                        eprintln!(
                            "degradation: {} at fault rate {p} (seed {seed}) REJECTED:\n{report}",
                            cfg.label()
                        );
                        false
                    }
                };
                let (sat_job, zl_job) = if verified {
                    let sat = jobs.len();
                    jobs.push(SweepJob::new(
                        cfg.clone(),
                        metric_tb(1.0, 3, &faults, opts.quick),
                    ));
                    let zl = jobs.len();
                    jobs.push(SweepJob::new(
                        cfg.clone(),
                        metric_tb(0.005, 3, &faults, opts.quick),
                    ));
                    (Some(sat), Some(zl))
                } else {
                    (None, None)
                };
                pending.push(Pending {
                    topo: ti,
                    rate: ri,
                    seed,
                    faults,
                    verified,
                    sat_job,
                    zl_job,
                });
            }
        }
    }
    let mut runner = SweepRunner::new(opts);
    let results = runner.run_all(&jobs);

    // Phase 2: attribution runs (sequential: each needs its own probed
    // network) against one unfaulted baseline profile per topology.
    let baselines: Vec<(Vec<u64>, Vec<Dir>)> = topos
        .iter()
        .map(|cfg| {
            let tb = attribution_tb()
                .build()
                .expect("baseline testbench is valid");
            traversal_profile(cfg, &tb)
        })
        .collect();

    let mut samples: Vec<Vec<Vec<Sample>>> = (0..topos.len())
        .map(|_| (0..rates.len()).map(|_| Vec::new()).collect())
        .collect();
    for p in &pending {
        let cfg = &topos[p.topo];
        let table = ruche_noc::fault::RouteTable::build(cfg, &p.faults);
        let connected = table.as_ref().map_or(0.0, |t| t.connected_pair_fraction());
        let (displaced, ruche_frac) = if p.verified {
            let (base, ports) = &baselines[p.topo];
            attribute_detours(cfg, base, ports, &p.faults)
        } else {
            (0, 0.0)
        };
        samples[p.topo][p.rate].push(Sample {
            seed: p.seed,
            dead_links: p.faults.dead_links().len(),
            dead_routers: p.faults.dead_routers().len(),
            connected_pairs: connected,
            verified: p.verified,
            saturation: p.sat_job.map_or(0.0, |i| results[i].accepted),
            zero_load: p.zl_job.map_or(0.0, |i| results[i].avg_latency),
            displaced_flits: displaced,
            detour_ruche_fraction: ruche_frac,
        });
    }

    // Phase 3: deterministic JSON.
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"degradation\",");
    let _ = writeln!(out, "  \"model_version\": \"{MODEL_VERSION}\",");
    let _ = writeln!(out, "  \"quick\": {},", opts.quick);
    let _ = writeln!(out, "  \"dims\": \"{}x{}\",", dims.cols, dims.rows);
    let _ = writeln!(out, "  \"pattern\": \"uniform-random\",");
    let _ = writeln!(
        out,
        "  \"fault_rates\": [{}],",
        rates
            .iter()
            .map(|r| format!("{r:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "  \"seeds\": [{}],",
        seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"topologies\": [");
    for (ti, cfg) in topos.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"label\": \"{}\",", cfg.label());
        let _ = writeln!(out, "      \"points\": [");
        for (ri, &p) in rates.iter().enumerate() {
            let group = &samples[ti][ri];
            let mean = |f: &dyn Fn(&Sample) -> f64| {
                let live: Vec<f64> = group.iter().filter(|s| s.verified).map(f).collect();
                if live.is_empty() {
                    0.0
                } else {
                    live.iter().sum::<f64>() / live.len() as f64
                }
            };
            let _ = writeln!(out, "        {{");
            let _ = writeln!(out, "          \"fault_rate\": {p:.2},");
            let _ = writeln!(
                out,
                "          \"mean_saturation_throughput\": {:.6},",
                mean(&|s| s.saturation)
            );
            let _ = writeln!(
                out,
                "          \"mean_zero_load_latency\": {:.6},",
                mean(&|s| s.zero_load)
            );
            let _ = writeln!(
                out,
                "          \"mean_connected_pairs\": {:.6},",
                mean(&|s| s.connected_pairs)
            );
            let _ = writeln!(out, "          \"samples\": [");
            for (si, s) in group.iter().enumerate() {
                let _ = writeln!(out, "            {{");
                let _ = writeln!(out, "              \"seed\": {},", s.seed);
                let _ = writeln!(out, "              \"verified\": {},", s.verified);
                let _ = writeln!(out, "              \"dead_links\": {},", s.dead_links);
                let _ = writeln!(out, "              \"dead_routers\": {},", s.dead_routers);
                let _ = writeln!(
                    out,
                    "              \"connected_pairs\": {:.6},",
                    s.connected_pairs
                );
                let _ = writeln!(
                    out,
                    "              \"saturation_throughput\": {:.6},",
                    s.saturation
                );
                let _ = writeln!(
                    out,
                    "              \"zero_load_latency\": {:.6},",
                    s.zero_load
                );
                let _ = writeln!(
                    out,
                    "              \"displaced_flits\": {},",
                    s.displaced_flits
                );
                let _ = writeln!(
                    out,
                    "              \"detour_ruche_fraction\": {:.6}",
                    s.detour_ruche_fraction
                );
                let _ = write!(out, "            }}");
                let _ = writeln!(out, "{}", if si + 1 < group.len() { "," } else { "" });
            }
            let _ = writeln!(out, "          ]");
            let _ = write!(out, "        }}");
            let _ = writeln!(out, "{}", if ri + 1 < rates.len() { "," } else { "" });
        }
        let _ = writeln!(out, "      ]");
        let _ = write!(out, "    }}");
        let _ = writeln!(out, "{}", if ti + 1 < topos.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Runs the degradation sweep: prints the summary table and writes
/// `results/BENCH_degradation.json`.
pub fn run(opts: Opts) {
    banner(
        "Degradation",
        "graceful degradation under link/router faults: mesh vs Half Ruche vs Full Ruche",
    );
    let json = render(opts);
    // Re-derive the printed summary from the same data the JSON carries.
    let mut t = Table::new(vec![
        "config",
        "fault rate",
        "connected",
        "sat thpt",
        "zero-load lat",
        "ruche detour",
    ]);
    for topo in parse_summary(&json) {
        for p in topo.1 {
            t.row(vec![
                topo.0.clone(),
                fmt_f(p.0, 2),
                fmt_f(p.3, 3),
                fmt_f(p.1, 3),
                fmt_f(p.2, 1),
                fmt_f(p.4, 2),
            ]);
        }
    }
    println!("{}", t.render());
    println!("reading: saturation decays gracefully with fault rate; Ruche topologies");
    println!("hold more headroom (channel diversity absorbs detours) and their");
    println!("detour-attribution column shows the Ruche channels carrying them.");
    write_artifact("BENCH_degradation.json", &json);
}

/// Minimal extraction of the per-point summary rows back out of the
/// rendered JSON (label, then per point: rate, sat, zero-load, connected,
/// ruche detour fraction averaged over samples).
#[allow(clippy::type_complexity)]
fn parse_summary(json: &str) -> Vec<(String, Vec<(f64, f64, f64, f64, f64)>)> {
    let mut topos = Vec::new();
    let mut cur: Option<(String, Vec<(f64, f64, f64, f64, f64)>)> = None;
    let mut point: Option<(f64, f64, f64, f64)> = None;
    let mut fracs: Vec<f64> = Vec::new();
    let grab = |line: &str| -> f64 {
        line.split(':')
            .nth(1)
            .and_then(|v| v.trim().trim_end_matches(',').parse().ok())
            .unwrap_or(0.0)
    };
    for line in json.lines() {
        let l = line.trim();
        if let Some(label) = l.strip_prefix("\"label\": \"") {
            if let Some(t) = cur.take() {
                topos.push(t);
            }
            cur = Some((label.trim_end_matches("\",").to_string(), Vec::new()));
        } else if l.starts_with("\"fault_rate\":") {
            point = Some((grab(l), 0.0, 0.0, 0.0));
            fracs.clear();
        } else if l.starts_with("\"mean_saturation_throughput\":") {
            if let Some(p) = point.as_mut() {
                p.1 = grab(l);
            }
        } else if l.starts_with("\"mean_zero_load_latency\":") {
            if let Some(p) = point.as_mut() {
                p.2 = grab(l);
            }
        } else if l.starts_with("\"mean_connected_pairs\":") {
            if let Some(p) = point.as_mut() {
                p.3 = grab(l);
            }
        } else if l.starts_with("\"detour_ruche_fraction\":") {
            fracs.push(grab(l));
        } else if l == "]" || l == "]," {
            // end of a samples array: fold the finished point into the
            // current topology (harmlessly refolds on other closers).
            if let (Some(p), Some(t)) = (point.take(), cur.as_mut()) {
                let frac = if fracs.is_empty() {
                    0.0
                } else {
                    fracs.iter().sum::<f64>() / fracs.len() as f64
                };
                t.1.push((p.0, p.1, p.2, p.3, frac));
            }
        }
    }
    if let Some(t) = cur.take() {
        topos.push(t);
    }
    topos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_set_covers_the_three_families() {
        let labels: Vec<String> = topologies(Dims::new(8, 8))
            .iter()
            .map(|c| c.label())
            .collect();
        assert_eq!(labels, ["mesh", "half-ruche2-depop", "ruche2-depop"]);
        for cfg in topologies(Dims::new(16, 8)) {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn fault_rate_grid_spans_zero_to_twenty_percent() {
        let quick = fault_rates(true);
        assert_eq!(quick.first(), Some(&0.0));
        assert!(quick.iter().all(|&p| (0.0..=0.20).contains(&p)));
        let full = fault_rates(false);
        assert_eq!(full.len(), 11);
        assert_eq!(full.first(), Some(&0.0));
        assert!((full.last().unwrap() - 0.20).abs() < 1e-12);
        assert_eq!(seeds(true).len(), 1);
        assert_eq!(seeds(false).len(), 3);
    }

    #[test]
    fn summary_parser_reads_back_the_render() {
        // A tiny hand-rolled blob in the render's exact shape.
        let json = "\
{
  \"topologies\": [
    {
      \"label\": \"mesh\",
      \"points\": [
        {
          \"fault_rate\": 0.05,
          \"mean_saturation_throughput\": 0.250000,
          \"mean_zero_load_latency\": 8.500000,
          \"mean_connected_pairs\": 0.990000,
          \"samples\": [
            {
              \"detour_ruche_fraction\": 0.400000
            }
          ]
        }
      ]
    }
  ]
}
";
        let topos = parse_summary(json);
        assert_eq!(topos.len(), 1);
        assert_eq!(topos[0].0, "mesh");
        let (rate, sat, zl, conn, frac) = topos[0].1[0];
        assert_eq!(rate, 0.05);
        assert_eq!(sat, 0.25);
        assert_eq!(zl, 8.5);
        assert_eq!(conn, 0.99);
        assert_eq!(frac, 0.4);
    }
}
