//! The crash-safe concurrent sweep result store.
//!
//! Replaces the append-only `results/sweep_cache.tsv` as the keyed result
//! backend shared by the sweep service daemon and the offline `repro`
//! path. Design:
//!
//! * **Sharded in-memory index.** Keys hash (FNV-1a) onto [`SHARDS`]
//!   independently locked shards, so concurrent daemon connections never
//!   contend on one global lock.
//! * **Versioned serialized values.** Each entry's value is the rendered
//!   [`TbResult::to_wire`] JSON, which carries `result_version`. A value
//!   some future build wrote with a different version decodes as a miss —
//!   but its *bytes* are preserved verbatim through every flush and
//!   compaction, so downgrading never destroys data.
//! * **Atomic writes.** A flush writes each dirty shard to a
//!   pid-suffixed temporary file and `rename`s it into place. A crash at
//!   any instant leaves either the old complete file or the new complete
//!   file — never a truncated one.
//! * **Torn-tail tolerance.** Loading drops any line whose value is not
//!   valid JSON (the signature of a partial write by some non-atomic
//!   producer) and keeps everything else, so one bad tail cannot poison
//!   the store.
//! * **Explicit compaction.** [`ResultStore::compact`] rewrites every
//!   shard sorted and deduplicated and sweeps leftover temporaries;
//!   entries survive byte-identically.
//!
//! Entry format is one `key\tvalue` line per result: keys are canonical
//! [`SweepRequest`](ruche_traffic::SweepRequest) renderings prefixed with
//! [`MODEL_VERSION`](crate::sweep::MODEL_VERSION) (neither can contain a
//! tab or newline), values are JSON objects.

use crate::out::results_dir;
use ruche_telemetry::json::parse;
use ruche_traffic::TbResult;
// lint:allow(hash-order): shard maps are insert/lookup only; every byte
// that reaches disk goes through an explicit sort in `render_shard`.
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Number of shard files (and independent locks). Fixed: the shard of a
/// key must be stable across processes and versions.
pub const SHARDS: usize = 8;

/// One shard: its entries (key → rendered value bytes) and whether any
/// differ from what its file held at load time.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<String, String>,
    dirty: bool,
}

/// The concurrent keyed result store. See the module docs for the layout
/// and crash-safety contract.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    shards: Vec<Mutex<Shard>>,
}

/// FNV-1a, the shard routing hash — stable across processes, platforms,
/// and Rust versions (unlike `DefaultHasher`).
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Writes `body` to `path` atomically: temporary file in the same
/// directory, then rename. Readers see the old or the new file, never a
/// prefix.
fn write_atomic(path: &Path, body: &str) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path)
}

/// Parses one stored line into `(key, value)`, or `None` for torn or
/// foreign garbage: the line must have a tab, a non-empty key, and a value
/// that is at least well-formed JSON (any version).
fn parse_entry(line: &str) -> Option<(&str, &str)> {
    let (key, value) = line.split_once('\t')?;
    if key.is_empty() || parse(value).is_err() {
        return None;
    }
    Some((key, value))
}

impl ResultStore {
    /// Opens the store rooted at `dir`, loading whatever shard files
    /// exist. Nothing is created on disk until the first [`flush`]
    /// (ResultStore::flush), so opening a store is free of side effects.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        let mut shards = Vec::with_capacity(SHARDS);
        for i in 0..SHARDS {
            let mut shard = Shard::default();
            if let Ok(body) = std::fs::read_to_string(Self::shard_path(&dir, i)) {
                for line in body.lines() {
                    if let Some((k, v)) = parse_entry(line) {
                        shard.entries.insert(k.to_string(), v.to_string());
                    }
                }
            }
            shards.push(Mutex::new(shard));
        }
        ResultStore { dir, shards }
    }

    /// Opens the store at its default location,
    /// `results/sweep_store/` (honoring `RUCHE_RESULTS_DIR`).
    pub fn open_default() -> Self {
        Self::open(results_dir().join("sweep_store"))
    }

    /// The directory this store persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn shard_path(dir: &Path, i: usize) -> PathBuf {
        dir.join(format!("shard-{i}.tsv"))
    }

    fn shard_of(&self, key: &str) -> &Mutex<Shard> {
        &self.shards[(fnv1a(key) % SHARDS as u64) as usize]
    }

    /// The decoded result stored under `key`. Foreign-version or
    /// undecodable values read as a miss (their bytes stay put).
    pub fn get(&self, key: &str) -> Option<TbResult> {
        let shard = self.shard_of(key).lock().expect("store shard lock");
        let raw = shard.entries.get(key)?;
        TbResult::from_wire(&parse(raw).ok()?).ok()
    }

    /// The raw stored value bytes under `key`, decodable or not.
    pub fn get_raw(&self, key: &str) -> Option<String> {
        let shard = self.shard_of(key).lock().expect("store shard lock");
        shard.entries.get(key).cloned()
    }

    /// Stores `res` under `key` (in memory; [`flush`](ResultStore::flush)
    /// persists).
    pub fn put(&self, key: &str, res: &TbResult) {
        self.put_raw(key, res.to_wire().render());
    }

    /// Stores pre-rendered value bytes under `key`. The migration path
    /// and tests use this; `value` must be a single line of valid JSON.
    pub fn put_raw(&self, key: &str, value: String) {
        debug_assert!(!key.contains(['\t', '\n']), "keys are single-line");
        debug_assert!(!value.contains('\n'), "values are single-line");
        let mut shard = self.shard_of(key).lock().expect("store shard lock");
        if shard.entries.get(key).map(String::as_str) != Some(value.as_str()) {
            shard.entries.insert(key.to_string(), value);
            shard.dirty = true;
        }
    }

    /// Total entries across all shards (in memory, persisted or not).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("store shard lock").entries.len())
            .sum()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders a shard's merged view, sorted by key for byte-stable files.
    fn render_shard(entries: &HashMap<String, String>) -> String {
        let mut keys: Vec<&String> = entries.keys().collect();
        keys.sort();
        let mut body = String::new();
        for k in keys {
            body.push_str(k);
            body.push('\t');
            body.push_str(&entries[k]);
            body.push('\n');
        }
        body
    }

    /// Persists every dirty shard: the on-disk file is re-read and merged
    /// under the shard lock (an entry written by a concurrent process
    /// survives unless this store overwrote that very key), then the
    /// merged view is written atomically.
    pub fn flush(&self) {
        self.persist(false);
    }

    /// Rewrites **every** shard — sorted, deduplicated by key, merged
    /// with whatever is on disk — and sweeps leftover temporary files.
    /// Every live entry survives byte-identically; only duplicate-key
    /// lines (last wins at load) and torn tails disappear. Returns the
    /// number of entries in the compacted store.
    pub fn compact(&self) -> usize {
        self.persist(true);
        if let Ok(dir) = std::fs::read_dir(&self.dir) {
            for f in dir.flatten() {
                if f.file_name().to_string_lossy().contains(".tmp.") {
                    let _ = std::fs::remove_file(f.path());
                }
            }
        }
        self.len()
    }

    fn persist(&self, everything: bool) {
        for (i, slot) in self.shards.iter().enumerate() {
            let mut shard = slot.lock().expect("store shard lock");
            if !shard.dirty && !everything {
                continue;
            }
            let path = Self::shard_path(&self.dir, i);
            let mut merged: HashMap<String, String> = HashMap::new();
            if let Ok(body) = std::fs::read_to_string(&path) {
                for line in body.lines() {
                    if let Some((k, v)) = parse_entry(line) {
                        merged.insert(k.to_string(), v.to_string());
                    }
                }
            }
            merged.extend(shard.entries.iter().map(|(k, v)| (k.clone(), v.clone())));
            if merged.is_empty() {
                shard.dirty = false;
                continue;
            }
            if std::fs::create_dir_all(&self.dir).is_ok()
                && write_atomic(&path, &Self::render_shard(&merged)).is_ok()
            {
                shard.entries = merged;
                shard.dirty = false;
            }
        }
    }

    /// One-shot migration of a legacy `sweep_cache.tsv` into this store.
    ///
    /// Every legacy line that still parses is re-serialized as a
    /// versioned store value under its original key; keys already present
    /// in the store win over legacy ones. On success the legacy file is
    /// renamed to `<path>.migrated`, so the migration runs exactly once
    /// and an interrupted run can never truncate the original. Returns
    /// the number of entries imported.
    ///
    /// (Legacy keys are `Debug`-rendered and therefore unreachable from
    /// the canonical `SweepRequest` key space — they are preserved as
    /// historical data, not rewritten, because the original structured
    /// config cannot be reconstructed from a `Debug` string.)
    pub fn migrate_legacy_tsv(&self, path: &Path) -> usize {
        let Ok(body) = std::fs::read_to_string(path) else {
            return 0;
        };
        let mut imported = 0;
        for line in body.lines() {
            if let Some((key, res)) = crate::sweep::SweepCache::parse_line(line) {
                if self.get_raw(&key).is_none() {
                    self.put_raw(&key, res.to_wire().render());
                    imported += 1;
                }
            }
        }
        self.flush();
        let mut renamed = path.as_os_str().to_os_string();
        renamed.push(".migrated");
        let _ = std::fs::rename(path, renamed);
        imported
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_stable() {
        // Pinned: a changed hash would strand every persisted entry in
        // the wrong file. These are the published FNV-1a test vectors.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("foobar"), 0x8594_4171_f739_67e8);
        // lint:allow(hash-order): cardinality check only
        let spread: std::collections::HashSet<u64> = (0..64)
            .map(|i| fnv1a(&format!("key-{i}")) % SHARDS as u64)
            .collect();
        assert!(spread.len() > 1, "keys spread across shards");
    }

    #[test]
    fn torn_lines_are_dropped_and_valid_ones_kept() {
        assert!(parse_entry("k\t{\"a\":1}").is_some());
        assert!(parse_entry("k\t{\"a\":1").is_none(), "torn JSON");
        assert!(parse_entry("no-tab-here").is_none());
        assert!(parse_entry("\t{}").is_none(), "empty key");
        // Foreign but well-formed values pass through.
        assert_eq!(
            parse_entry("k\t{\"result_version\":99}"),
            Some(("k", "{\"result_version\":99}"))
        );
    }
}
