//! The parallel sweep engine.
//!
//! Every figure's point set — one testbench run per (network config,
//! testbench) pair — is expressed as a list of independent [`SweepJob`]s
//! and executed by a [`SweepRunner`] across a worker pool. Results come
//! back **in job order** regardless of thread count, so figure output
//! (tables, CSVs) is byte-identical between `--threads 1` and `--threads N`.
//!
//! The runner consults the keyed result store (`results/sweep_store/`,
//! see [`crate::store`]) before simulating: the key is [`MODEL_VERSION`]
//! plus the canonical [`SweepRequest`] wire rendering of the full
//! `NetworkConfig` + `Testbench`, so any change to either parameter set —
//! or a bumped model or key version — is a clean miss. Jobs that need
//! per-tile latency data ([`SweepJob::with_per_tile`]) bypass the store,
//! which persists scalar aggregates only. A legacy `sweep_cache.tsv` is
//! migrated into the store once, on first use.

use crate::opts::Opts;
use crate::out::results_dir;
use crate::store::ResultStore;
use ruche_noc::prelude::*;
use ruche_stats::Accum;
use ruche_traffic::{CurvePoint, Pattern, SweepRequest, TbResult, Testbench};
// lint:allow(hash-order): the legacy sweep cache is insert/lookup only;
// every artifact writer sorts the merged keys before emitting a byte.
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Bump when simulator or model changes invalidate cached sweep results
/// (router engine, RNG, testbench methodology).
pub const MODEL_VERSION: &str = "v1";

/// One independent simulation: a network configuration driven by one
/// testbench. Plain data, so jobs move freely across worker threads.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepJob {
    /// The network under test.
    pub cfg: NetworkConfig,
    /// The traffic driving it.
    pub tb: Testbench,
    /// Keep per-tile latency accumulators (skips the cache, which stores
    /// scalar aggregates only).
    pub per_tile: bool,
}

impl SweepJob {
    /// A job running `tb` on `cfg`.
    pub fn new(cfg: NetworkConfig, tb: Testbench) -> Self {
        SweepJob {
            cfg,
            tb,
            per_tile: false,
        }
    }

    /// Marks the job as needing per-tile latency data (uncached).
    pub fn with_per_tile(mut self) -> Self {
        self.per_tile = true;
        self
    }

    /// The job's canonical wire identity — the [`SweepRequest`] shared by
    /// the daemon, the result store, and `repro`.
    pub fn request(&self) -> SweepRequest {
        SweepRequest::new(self.cfg.clone(), self.tb.clone())
    }

    /// The store key: [`MODEL_VERSION`] plus the canonical
    /// [`SweepRequest`] rendering (which carries its own explicit
    /// `key_version`). Byte-stable across processes and constructible by
    /// any client that can write JSON — unlike the `Debug`-based
    /// `SweepJob::key` it replaced (deprecated in 0.7.0, removed the
    /// release after, per the one-release deprecation policy).
    /// `step_threads` and `step_mode` never reach the key, so results
    /// from any engine at any thread count are interchangeable.
    pub fn cache_key(&self) -> String {
        format!("{MODEL_VERSION}|{}", self.request().cache_key())
    }
}

/// The latency-curve point set: one job per injection rate, mirroring
/// `ruche_traffic::latency_curve`.
pub fn curve_jobs(cfg: &NetworkConfig, proto: &Testbench, rates: &[f64]) -> Vec<SweepJob> {
    rates
        .iter()
        .map(|&r| {
            SweepJob::new(
                cfg.clone(),
                Testbench {
                    injection_rate: r,
                    ..proto.clone()
                },
            )
        })
        .collect()
}

/// The saturation-throughput job, mirroring
/// `ruche_traffic::saturation_throughput` (rate 1.0; read `accepted`).
pub fn saturation_job(cfg: &NetworkConfig, pattern: Pattern, seed: u64) -> SweepJob {
    SweepJob::new(
        cfg.clone(),
        Testbench::builder(pattern, 1.0)
            .seed(seed)
            .build()
            .expect("saturation testbench is valid"),
    )
}

/// The zero-load-latency job, mirroring `ruche_traffic::zero_load_latency`
/// (rate 0.005; read `avg_latency`).
pub fn zero_load_job(cfg: &NetworkConfig, pattern: Pattern, seed: u64) -> SweepJob {
    SweepJob::new(
        cfg.clone(),
        Testbench::builder(pattern, 0.005)
            .seed(seed)
            .build()
            .expect("zero-load testbench is valid"),
    )
}

/// Projects a testbench result onto the latency-curve point figures plot.
pub fn curve_point(res: &TbResult) -> CurvePoint {
    CurvePoint {
        offered: res.offered,
        accepted: res.accepted,
        avg_latency: res.avg_latency,
        saturated: res.saturated,
    }
}

/// The **legacy** keyed on-disk result cache, persisted as TSV under
/// `results/sweep_cache.tsv`.
///
/// Superseded by [`ResultStore`], which the runner and the sweep service
/// now share; an existing TSV is migrated into the store once
/// ([`ResultStore::migrate_legacy_tsv`]) and renamed away. The type stays
/// for that migration and for downstream code that still links it; its
/// `save` is now atomic (tmp + rename), so even the legacy path can no
/// longer truncate the cache mid-write.
///
/// Follows the same discipline as `suite::Suite`: only instances created
/// with [`SweepCache::load`] persist, so ad-hoc in-memory caches can never
/// clobber the on-disk file with a partial view.
#[derive(Debug, Default)]
pub struct SweepCache {
    entries: HashMap<String, TbResult>,
    dirty: bool,
    persist: bool,
}

impl SweepCache {
    fn path() -> std::path::PathBuf {
        results_dir().join("sweep_cache.tsv")
    }

    /// Loads the persisted cache (empty if none). Entries from other model
    /// versions are dropped.
    pub fn load() -> Self {
        let mut entries = HashMap::new();
        if let Ok(body) = std::fs::read_to_string(Self::path()) {
            for line in body.lines() {
                if let Some((key, res)) = Self::parse_line(line) {
                    entries.insert(key, res);
                }
            }
        }
        SweepCache {
            entries,
            dirty: false,
            persist: true,
        }
    }

    pub(crate) fn parse_line(line: &str) -> Option<(String, TbResult)> {
        let fields: Vec<&str> = line.split('\t').collect();
        let [key, offered, accepted, avg, p99, delivered, lost, saturated] = fields[..] else {
            return None;
        };
        if !key.starts_with(MODEL_VERSION) || !key[MODEL_VERSION.len()..].starts_with('|') {
            return None;
        }
        Some((
            key.to_string(),
            TbResult {
                offered: offered.parse().ok()?,
                accepted: accepted.parse().ok()?,
                avg_latency: avg.parse().ok()?,
                p99_latency: p99.parse().ok()?,
                delivered: delivered.parse().ok()?,
                lost: lost.parse().ok()?,
                per_tile_latency: Vec::new(),
                saturated: match saturated {
                    "1" => true,
                    "0" => false,
                    _ => return None,
                },
            },
        ))
    }

    fn render_line(key: &str, r: &TbResult) -> String {
        format!(
            "{key}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.offered,
            r.accepted,
            r.avg_latency,
            r.p99_latency,
            r.delivered,
            r.lost,
            u8::from(r.saturated)
        )
    }

    /// The cached result for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&TbResult> {
        self.entries.get(key)
    }

    /// Caches `res` under `key`.
    pub fn insert(&mut self, key: String, res: TbResult) {
        self.entries.insert(key, res);
        self.dirty = true;
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Persists new entries, merging with whatever is on disk first so
    /// concurrent harnesses never erase each other's results. The write
    /// is atomic — a temporary file renamed into place — so an
    /// interrupted run leaves either the old complete file or the new
    /// one, never a truncated prefix.
    pub fn save(&mut self) {
        if !self.persist || !self.dirty {
            return;
        }
        let mut merged = SweepCache::load().entries;
        merged.extend(self.entries.iter().map(|(k, v)| (k.clone(), v.clone())));
        let mut keys: Vec<&String> = merged.keys().collect();
        keys.sort();
        let mut body = String::new();
        for k in keys {
            let _ = writeln!(body, "{}", Self::render_line(k, &merged[k]));
        }
        let path = Self::path();
        let tmp = path.with_extension(format!("tsv.tmp.{}", std::process::id()));
        if std::fs::write(&tmp, body).is_ok() && std::fs::rename(&tmp, &path).is_ok() {
            self.dirty = false;
        }
    }
}

/// Executes [`SweepJob`]s across a worker pool, returning results in job
/// order (deterministic output regardless of thread count).
#[derive(Debug)]
pub struct SweepRunner {
    threads: usize,
    step_threads: usize,
    step_mode: Option<StepMode>,
    store: Option<Arc<ResultStore>>,
    /// Jobs served from the result store across this runner's lifetime.
    pub cache_hits: usize,
    /// Jobs simulated across this runner's lifetime.
    pub simulated: usize,
}

impl SweepRunner {
    /// A runner honoring `opts` (thread count, cache enable, step-level
    /// parallelism). When `opts.step_threads > 1`, run-level parallelism is
    /// traded for step-level: the worker-pool width is divided by the
    /// step-thread count (each simulation shards its own `Network::step`
    /// across that many threads instead). Results are byte-identical either
    /// way, so the cache is shared across the trade-off.
    pub fn new(opts: Opts) -> Self {
        let threads = if opts.step_threads > 1 {
            (opts.threads / opts.step_threads).max(1)
        } else {
            opts.threads
        };
        let store = (!opts.no_cache).then(|| {
            let store = ResultStore::open_default();
            store.migrate_legacy_tsv(&results_dir().join("sweep_cache.tsv"));
            Arc::new(store)
        });
        SweepRunner {
            threads,
            step_threads: opts.step_threads,
            step_mode: opts.step_mode,
            store,
            cache_hits: 0,
            simulated: 0,
        }
    }

    /// A runner with an explicit thread count and no result store (tests).
    pub fn uncached(threads: usize) -> Self {
        SweepRunner {
            threads,
            step_threads: 0,
            step_mode: None,
            store: None,
            cache_hits: 0,
            simulated: 0,
        }
    }

    /// A runner backed by an explicit (typically shared) result store —
    /// how the sweep service daemon and its runner see one cache.
    pub fn with_store(mut self, store: Arc<ResultStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The result store backing this runner, if caching is enabled.
    pub fn store(&self) -> Option<&Arc<ResultStore>> {
        self.store.as_ref()
    }

    /// Shards every simulated job's `Network::step` across `step_threads`
    /// threads (tests; [`SweepRunner::new`] derives this from its opts).
    /// Unlike `new`, the run-level width is left untouched.
    pub fn with_step_threads(mut self, step_threads: usize) -> Self {
        self.step_threads = step_threads;
        self
    }

    /// Applies a clock-advance mode to every simulated job (tests;
    /// [`SweepRunner::new`] derives this from its opts). Results — and
    /// hence cache entries — are byte-identical in every mode.
    pub fn with_step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = Some(mode);
        self
    }

    /// The worker-pool width this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The step-level shard thread count applied to simulated jobs
    /// (0 = serial steps).
    pub fn step_threads(&self) -> usize {
        self.step_threads
    }

    /// The clock-advance mode applied to simulated jobs (`None` lets each
    /// network resolve `RUCHE_STEP_MODE` itself).
    pub fn step_mode(&self) -> Option<StepMode> {
        self.step_mode
    }

    /// Runs every job, in parallel, returning `results[i]` for `jobs[i]`.
    ///
    /// # Panics
    ///
    /// Panics if any job's pattern is invalid for its configuration (the
    /// same contract as `ruche_traffic::run`), or if a worker panics.
    pub fn run_all(&mut self, jobs: &[SweepJob]) -> Vec<TbResult> {
        self.run_all_with(jobs, |_, _| {})
    }

    /// Like [`SweepRunner::run_all`], additionally invoking `sink(i,
    /// &result)` the moment `jobs[i]`'s result exists — store hits
    /// immediately (in job order), simulated jobs from the worker that
    /// finished them (in completion order). The sweep service streams
    /// per-job responses through this hook while the batch is still
    /// running; the returned vector stays in job order regardless.
    ///
    /// Every job reaches the sink exactly once. The sink runs on worker
    /// threads, so it must be `Sync` and should be quick.
    ///
    /// # Panics
    ///
    /// As [`SweepRunner::run_all`].
    pub fn run_all_with(
        &mut self,
        jobs: &[SweepJob],
        sink: impl Fn(usize, &TbResult) + Sync,
    ) -> Vec<TbResult> {
        let mut slots: Vec<Option<TbResult>> = vec![None; jobs.len()];
        let mut misses: Vec<usize> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            let cached = (self.store.is_some() && !job.per_tile)
                .then(|| self.store.as_ref().and_then(|s| s.get(&job.cache_key())))
                .flatten();
            match cached {
                Some(res) => {
                    sink(i, &res);
                    slots[i] = Some(res);
                    self.cache_hits += 1;
                }
                None => misses.push(i),
            }
        }

        if !misses.is_empty() {
            let computed = run_pool(
                jobs,
                &misses,
                self.threads,
                self.step_threads,
                self.step_mode,
                &sink,
            );
            for (&i, res) in misses.iter().zip(computed) {
                if let Some(store) = &self.store {
                    if !jobs[i].per_tile {
                        store.put(&jobs[i].cache_key(), &scrub_per_tile(&res));
                    }
                }
                slots[i] = Some(res);
                self.simulated += 1;
            }
            if let Some(store) = &self.store {
                store.flush();
            }
        }

        slots
            .into_iter()
            .map(|s| s.expect("every job resolved"))
            .collect()
    }
}

/// Drops per-tile accumulators before caching: the cache stores scalar
/// aggregates, and cached jobs never ask for per-tile data.
fn scrub_per_tile(res: &TbResult) -> TbResult {
    TbResult {
        per_tile_latency: Vec::<Accum>::new(),
        ..res.clone()
    }
}

/// Runs `jobs[misses[..]]` on a scoped worker pool; returns results in
/// `misses` order. Workers pull the next job index from a shared atomic
/// cursor, so scheduling is dynamic but the output order is fixed. A
/// non-zero `step_threads` shards each simulation's `Network::step`, and a
/// set `step_mode` selects the clock-advance mode (both engines are
/// byte-identical to the reference, so these only change where wall-clock
/// time goes).
fn run_pool(
    jobs: &[SweepJob],
    misses: &[usize],
    threads: usize,
    step_threads: usize,
    step_mode: Option<StepMode>,
    sink: &(impl Fn(usize, &TbResult) + Sync),
) -> Vec<TbResult> {
    let workers = threads.min(misses.len()).max(1);
    let slots: Vec<Mutex<Option<TbResult>>> = misses.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = misses.get(k) else { break };
                let job = &jobs[i];
                let mut cfg = job.cfg.clone();
                if step_threads > 0 {
                    cfg = cfg.with_step_threads(step_threads);
                }
                if let Some(mode) = step_mode {
                    cfg = cfg.with_step_mode(mode);
                }
                let res = ruche_traffic::run(&cfg, &job.tb)
                    .unwrap_or_else(|e| panic!("sweep job {i} cannot run: {e}"));
                sink(i, &res);
                *slots[k].lock().expect("slot lock") = Some(res);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruche_noc::geometry::Dims;

    fn quick_tb(rate: f64) -> Testbench {
        Testbench::builder(Pattern::UniformRandom, rate)
            .quick()
            .build()
            .expect("test parameters are valid")
    }

    #[test]
    fn distinct_configs_get_distinct_keys() {
        let dims = Dims::new(8, 8);
        let tb = quick_tb(0.1);
        let a = SweepJob::new(NetworkConfig::mesh(dims), tb.clone());
        let b = SweepJob::new(NetworkConfig::torus(dims), tb.clone());
        let c = SweepJob::new(NetworkConfig::mesh(dims).with_fifo_depth(4), tb.clone());
        let d = SweepJob::new(NetworkConfig::mesh(dims), quick_tb(0.2));
        let e = SweepJob::new(
            NetworkConfig::mesh(dims),
            ruche_traffic::TestbenchBuilder::from(tb.clone())
                .seed(99)
                .build()
                .unwrap(),
        );
        let keys = [
            a.cache_key(),
            b.cache_key(),
            c.cache_key(),
            d.cache_key(),
            e.cache_key(),
        ];
        for (i, k) in keys.iter().enumerate() {
            for (j, l) in keys.iter().enumerate() {
                assert_eq!(i == j, k == l, "{k} vs {l}");
            }
        }
    }

    #[test]
    fn identical_jobs_share_a_key_and_hit_the_cache() {
        let dims = Dims::new(4, 4);
        let job = SweepJob::new(NetworkConfig::mesh(dims), quick_tb(0.05));
        assert_eq!(job.cache_key(), job.clone().cache_key());

        let mut cache = SweepCache::default();
        let res = ruche_traffic::run(&job.cfg, &job.tb).unwrap();
        cache.insert(job.cache_key(), res.clone());
        let hit = cache.get(&job.cache_key()).expect("cache hit");
        assert_eq!(hit.avg_latency, res.avg_latency);
        assert_eq!(hit.delivered, res.delivered);
        assert!(cache
            .get(&SweepJob::new(NetworkConfig::torus(dims), quick_tb(0.05)).cache_key())
            .is_none());
    }

    #[test]
    fn step_threads_does_not_change_the_cache_key() {
        let dims = Dims::new(8, 8);
        let tb = quick_tb(0.1);
        let serial = SweepJob::new(NetworkConfig::mesh(dims), tb.clone());
        let sharded = SweepJob::new(NetworkConfig::mesh(dims).with_step_threads(4), tb.clone());
        assert_eq!(
            serial.cache_key(),
            sharded.cache_key(),
            "sharded and serial runs are byte-identical, so they must share \
             a cache entry"
        );
        // And therefore a result computed serially is a hit for a sharded
        // run (and vice versa).
        let mut cache = SweepCache::default();
        let tb4 = quick_tb(0.05);
        let a = SweepJob::new(NetworkConfig::mesh(Dims::new(4, 4)), tb4.clone());
        let b = SweepJob::new(
            NetworkConfig::mesh(Dims::new(4, 4)).with_step_threads(2),
            tb4,
        );
        let res = ruche_traffic::run(&a.cfg, &a.tb).unwrap();
        cache.insert(a.cache_key(), res);
        assert!(
            cache.get(&b.cache_key()).is_some(),
            "cache hits must be thread-count-independent"
        );
    }

    #[test]
    fn step_mode_does_not_change_the_cache_key() {
        let dims = Dims::new(8, 8);
        let tb = quick_tb(0.1);
        let cycle = SweepJob::new(NetworkConfig::mesh(dims), tb.clone());
        let event = SweepJob::new(
            NetworkConfig::mesh(dims).with_step_mode(StepMode::EventDriven),
            tb.clone(),
        );
        let auto = SweepJob::new(NetworkConfig::mesh(dims).with_step_mode(StepMode::Auto), tb);
        assert_eq!(
            cycle.cache_key(),
            event.cache_key(),
            "event-driven and cycle-accurate runs are byte-identical, so \
             they must share a cache entry"
        );
        assert_eq!(cycle.cache_key(), auto.cache_key());
        // And therefore a result computed in one mode is a hit for a run
        // in any other mode.
        let mut cache = SweepCache::default();
        let tb4 = quick_tb(0.05);
        let a = SweepJob::new(NetworkConfig::mesh(Dims::new(4, 4)), tb4.clone());
        let b = SweepJob::new(
            NetworkConfig::mesh(Dims::new(4, 4)).with_step_mode(StepMode::EventDriven),
            tb4,
        );
        let res = ruche_traffic::run(&a.cfg, &a.tb).unwrap();
        cache.insert(a.cache_key(), res);
        assert!(
            cache.get(&b.cache_key()).is_some(),
            "cache hits must be step-mode-independent"
        );
    }

    #[test]
    fn step_threads_divide_the_run_pool() {
        let opts = Opts::full()
            .without_cache()
            .with_threads(8)
            .with_step_threads(4);
        let runner = SweepRunner::new(opts);
        assert_eq!(runner.threads(), 2, "run-level threads divided");
        assert_eq!(runner.step_threads(), 4);
        // Serial steps leave the pool width alone; narrow pools floor at 1.
        assert_eq!(SweepRunner::new(Opts::full().with_threads(8)).threads(), 8);
        let narrow = Opts::full().with_threads(2).with_step_threads(8);
        assert_eq!(SweepRunner::new(narrow).threads(), 1);
    }

    #[test]
    fn cache_lines_roundtrip() {
        let r = TbResult {
            offered: 0.1,
            accepted: 0.0975,
            avg_latency: 7.25,
            p99_latency: 19.0,
            delivered: 1234,
            lost: 0,
            per_tile_latency: Vec::new(),
            saturated: false,
        };
        let line = SweepCache::render_line("v1|k", &r);
        let (key, back) = SweepCache::parse_line(&line).expect("parses");
        assert_eq!(key, "v1|k");
        assert_eq!(back.offered, r.offered);
        assert_eq!(back.accepted, r.accepted);
        assert_eq!(back.avg_latency, r.avg_latency);
        assert_eq!(back.p99_latency, r.p99_latency);
        assert_eq!(back.delivered, r.delivered);
        assert_eq!(back.lost, r.lost);
        assert_eq!(back.saturated, r.saturated);
        // Foreign model versions are ignored on load.
        assert!(SweepCache::parse_line(&line.replacen("v1|", "v0|", 1)).is_none());
    }

    #[test]
    fn results_are_in_job_order_for_any_thread_count() {
        let dims = Dims::new(4, 4);
        let jobs: Vec<SweepJob> = [0.02, 0.05, 0.1, 0.15, 0.2, 0.25]
            .iter()
            .map(|&r| SweepJob::new(NetworkConfig::mesh(dims), quick_tb(r)))
            .collect();
        let serial = SweepRunner::uncached(1).run_all(&jobs);
        let parallel = SweepRunner::uncached(4).run_all(&jobs);
        assert_eq!(serial.len(), jobs.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(s.offered, jobs[i].tb.injection_rate, "order preserved");
            assert_eq!(s.avg_latency, p.avg_latency, "job {i}");
            assert_eq!(s.accepted, p.accepted, "job {i}");
            assert_eq!(s.delivered, p.delivered, "job {i}");
        }
    }

    #[test]
    fn per_tile_jobs_bypass_the_cache_and_keep_their_data() {
        let dims = Dims::new(4, 4);
        let job = SweepJob::new(NetworkConfig::mesh(dims), quick_tb(0.05)).with_per_tile();
        let mut runner = SweepRunner::uncached(2);
        let res = runner.run_all(std::slice::from_ref(&job));
        assert_eq!(res[0].per_tile_latency.len(), dims.count());
        assert_eq!(runner.cache_hits, 0);
        assert_eq!(runner.simulated, 1);
    }
}
