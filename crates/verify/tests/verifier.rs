//! End-to-end tests of the static verifier: the paper's configurations
//! prove clean, and deliberately broken routing is provably caught with
//! concrete witnesses.

use ruche_noc::prelude::*;
use ruche_noc::routing::compute_route;
use ruche_verify::{grid, install_debug_hook, verify, verify_with, Lint, Severity, Witness};

/// A debug-build-friendly sample of the paper grid: one of each topology
/// family, both crossbar schemes, both edge-traffic directions. The full
/// grid runs in release via the `verify_net` binary (CI `verify` job).
fn sample_configs() -> Vec<NetworkConfig> {
    use CrossbarScheme::{Depopulated, FullyPopulated};
    let dims = Dims::new(8, 8);
    let half = Dims::new(16, 8);
    vec![
        NetworkConfig::mesh(dims),
        NetworkConfig::multi_mesh(dims),
        NetworkConfig::torus(dims),
        NetworkConfig::ruche_one(dims),
        NetworkConfig::full_ruche(dims, 2, Depopulated),
        NetworkConfig::full_ruche(dims, 3, FullyPopulated),
        NetworkConfig::half_torus(half).with_edge_memory_ports(),
        NetworkConfig::half_ruche(half, 3, Depopulated).with_edge_memory_ports(),
        NetworkConfig::half_ruche(half, 3, Depopulated)
            .with_edge_memory_ports()
            .with_dor(DorOrder::YX),
        NetworkConfig::mesh(half)
            .with_edge_memory_ports()
            .with_dor(DorOrder::YX),
    ]
}

#[test]
fn paper_sample_is_clean() {
    for cfg in sample_configs() {
        let report = verify(&cfg);
        assert!(
            report.is_clean(),
            "{} {} not clean:\n{report}",
            cfg.label(),
            cfg.dims
        );
        assert_eq!(report.stats.largest_scc, 1, "{}", cfg.label());
        assert!(report.stats.channels > 0, "{}", cfg.label());
    }
}

#[test]
fn paper_grid_enumerates_and_validates() {
    // The full grid is release-speed work; in the debug test suite just
    // prove it enumerates, validates, and contains the figure sets.
    let grid = grid::paper_grid();
    assert!(grid.len() >= 40);
    for cfg in &grid {
        cfg.validate().expect("grid config validates");
    }
}

/// The canonical broken configuration: a torus whose routes never switch
/// to VC 1 at the dateline. The ring's channel dependencies then chain
/// all the way around and the Dally–Seitz condition fails — the verifier
/// must prove it with a concrete cycle.
#[test]
fn dateline_disabled_torus_has_deadlock_cycle() {
    let cfg = NetworkConfig::torus(Dims::new(8, 8));
    let no_dateline = |cfg: &NetworkConfig, here: Coord, in_dir: Dir, in_vc: u8, dest: Dest| {
        let mut dec = compute_route(cfg, here, in_dir, in_vc, dest);
        dec.out_vc = 0; // dateline VC partitioning disabled
        dec
    };
    let report = verify_with(&cfg, &no_dateline);
    assert!(report.has_errors(), "{report}");
    assert!(report.stats.largest_scc > 1, "{report}");

    let cycle = report
        .of_lint(Lint::ChannelDeadlock)
        .find(|f| f.witness.is_some())
        .expect("a deadlock finding with a witness");
    assert_eq!(cycle.severity, Severity::Error);
    let Some(Witness::Cycle { channels, routes }) = &cycle.witness else {
        panic!("deadlock witness must be a cycle");
    };
    // A torus ring has at least 3 nodes, so any channel cycle spans at
    // least 3 channels; each dependency edge names its inducing route.
    assert!(channels.len() >= 3, "cycle too short: {channels:?}");
    assert_eq!(channels.len(), routes.len());
    // All channels on one dependency cycle sit on VC 0 of a single ring.
    assert!(channels.iter().all(|c| c.vc == 0));

    // The genuine dateline routing on the same config is clean.
    assert!(verify(&cfg).is_clean());
}

/// Routing Y-X on hardware whose crossbar only implements X-Y turns must
/// trip the crossbar-connectivity lint.
#[test]
fn wrong_dor_routing_violates_crossbar() {
    let cfg = NetworkConfig::mesh(Dims::new(6, 6));
    let yx = cfg.clone().with_dor(DorOrder::YX);
    let yx_route = move |_: &NetworkConfig, here: Coord, in_dir: Dir, in_vc: u8, dest: Dest| {
        compute_route(&yx, here, in_dir, in_vc, dest)
    };
    let report = verify_with(&cfg, &yx_route);
    assert!(report.has_errors(), "{report}");
    assert!(
        report.of_lint(Lint::CrossbarConnectivity).count() > 0,
        "{report}"
    );
}

/// A routing function that refuses to eject bounces forever; the
/// totality lint reports the hop-limit overrun (and minimal-progress
/// flags the non-decreasing hops).
#[test]
fn non_terminating_route_is_caught() {
    let cfg = NetworkConfig::mesh(Dims::new(6, 6));
    let bouncing = |cfg: &NetworkConfig, here: Coord, in_dir: Dir, in_vc: u8, dest: Dest| {
        let dec = compute_route(cfg, here, in_dir, in_vc, dest);
        if dec.out == Dir::P {
            let out = if here.x == 0 { Dir::E } else { Dir::W };
            RouteDecision { out, out_vc: 0 }
        } else {
            dec
        }
    };
    let report = verify_with(&cfg, &bouncing);
    assert!(report.of_lint(Lint::RouteTotality).count() > 0, "{report}");
    assert!(
        report.of_lint(Lint::MinimalProgress).count() > 0,
        "{report}"
    );
}

/// A route that walks off the array edge is reported with the partial
/// path as witness.
#[test]
fn route_leaving_the_array_is_caught() {
    let cfg = NetworkConfig::mesh(Dims::new(4, 4));
    let northbound = |_: &NetworkConfig, _: Coord, _: Dir, _: u8, _: Dest| RouteDecision {
        out: Dir::N,
        out_vc: 0,
    };
    let report = verify_with(&cfg, &northbound);
    let finding = report
        .of_lint(Lint::RouteTotality)
        .next()
        .expect("totality finding");
    assert_eq!(finding.severity, Severity::Error);
    assert!(matches!(finding.witness, Some(Witness::Route { .. })));
}

/// Dropping back to VC 0 mid-ring is legal hardware-wise but voids the
/// dateline ordering argument: warned, and (here) also a deadlock.
#[test]
fn vc_drop_on_ring_is_warned() {
    let cfg = NetworkConfig::torus(Dims::new(8, 8));
    let dropping = |cfg: &NetworkConfig, here: Coord, in_dir: Dir, in_vc: u8, dest: Dest| {
        let mut dec = compute_route(cfg, here, in_dir, in_vc, dest);
        // Invert the dateline discipline: start rides VC 1, crossing
        // drops to VC 0.
        if dec.out != dest.exit_dir() || dest.edge.is_some() {
            dec.out_vc = 1 - dec.out_vc;
        }
        dec
    };
    let report = verify_with(&cfg, &dropping);
    assert!(report.of_lint(Lint::VcMonotonicity).count() > 0, "{report}");
}

/// VC indices beyond the port's VC count are flagged on wormhole routers
/// (every port has exactly one VC).
#[test]
fn vc_out_of_range_is_flagged() {
    let cfg = NetworkConfig::mesh(Dims::new(4, 4));
    let vc9 = |cfg: &NetworkConfig, here: Coord, in_dir: Dir, in_vc: u8, dest: Dest| {
        let mut dec = compute_route(cfg, here, in_dir, in_vc, dest);
        dec.out_vc = 9;
        dec
    };
    let report = verify_with(&cfg, &vc9);
    assert!(report.of_lint(Lint::VcRange).count() > 0, "{report}");
}

/// The debug hook wires `verify_cached` into `Network::new`: after
/// installation, constructing any (clean) network still succeeds, and
/// the hook slot reports as taken.
#[test]
fn debug_hook_installs_and_passes_clean_configs() {
    let first = install_debug_hook();
    // Whether or not another test in this process got there first, the
    // second installation must report the slot as taken.
    assert!(!install_debug_hook() || first);
    let cfg = NetworkConfig::full_ruche(Dims::new(8, 8), 2, CrossbarScheme::Depopulated);
    let net = Network::new(cfg).expect("clean config constructs");
    assert_eq!(net.cycle(), 0);
}

/// Degenerate *line* arrays are fully supported and verify clean; the
/// single-tile array is rejected through the config lint.
#[test]
fn degenerate_lines_verify_clean_but_single_tile_fails() {
    for cfg in [
        NetworkConfig::mesh(Dims::new(8, 1)).with_edge_memory_ports(),
        NetworkConfig::mesh(Dims::new(1, 8)),
        NetworkConfig::multi_mesh(Dims::new(8, 1)),
        NetworkConfig::half_torus(Dims::new(8, 1)),
        NetworkConfig::half_ruche(Dims::new(8, 1), 3, CrossbarScheme::Depopulated),
    ] {
        let report = verify(&cfg);
        assert!(report.is_clean(), "{} {}: {report}", cfg.label(), cfg.dims);
    }
    let report = verify(&NetworkConfig::mesh(Dims::new(1, 1)));
    assert!(report.has_errors());
    assert_eq!(report.of_lint(Lint::Config).count(), 1, "{report}");
}

/// Reports render their witnesses in a human-readable form.
#[test]
fn reports_render_readably() {
    let cfg = NetworkConfig::torus(Dims::new(8, 8));
    let no_dateline = |cfg: &NetworkConfig, here: Coord, in_dir: Dir, in_vc: u8, dest: Dest| {
        let mut dec = compute_route(cfg, here, in_dir, in_vc, dest);
        dec.out_vc = 0;
        dec
    };
    let text = verify_with(&cfg, &no_dateline).render();
    assert!(text.contains("channel-deadlock"), "{text}");
    assert!(text.contains("dependency cycle"), "{text}");
    assert!(text.contains("held by route"), "{text}");

    let clean = verify(&NetworkConfig::mesh(Dims::new(4, 4))).render();
    assert!(clean.contains("clean"), "{clean}");
}
