//! Static verification of fault-injected configurations.
//!
//! A faulted network routes with the precomputed up\*/down\* table
//! (see [`ruche_noc::fault`]), not DOR, so the unfaulted lint battery does
//! not apply wholesale:
//!
//! * **Checked** — route totality over the surviving channels (every
//!   reachable pair terminates within the hop bound, never crossing a
//!   dead channel) and Dally–Seitz deadlock freedom of the faulted
//!   channel-dependency graph, with concrete cycle witnesses. The
//!   degradation sweep refuses to simulate any faulted configuration
//!   whose report has errors.
//! * **Reported as info** — pairs the faults partition away
//!   ([`Lint::Unreachable`]): benign, but the traffic layer must not
//!   offer load to them (and the degradation metrics account for them).
//! * **Skipped** — minimal-progress (detours legitimately move away from
//!   the destination), crossbar connectivity (fault routing assumes the
//!   fully-populated turn capability), symmetry (faults break it by
//!   design), and the VC lints (fault injection is wormhole-only, VC 0).

use crate::cdg::Cdg;
use crate::report::{CdgStats, Lint, Report, RouteId, Severity, Witness};
use crate::{lints, TraceStep};
use ruche_noc::fault::{FaultModel, RouteTable};
use ruche_noc::prelude::*;
// lint:allow(hash-order): verdict cache keyed by config label, lookup-only.
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Statically verifies `cfg` with `faults` injected: route totality over
/// the surviving channels plus deadlock freedom of the faulted
/// channel-dependency graph. See the [module docs](self) for exactly
/// which lints run.
pub fn verify_faulted(cfg: &NetworkConfig, faults: &FaultModel) -> Report {
    let label = format!("{}+faults", cfg.label());
    let dims = format!("{}x{}", cfg.dims.cols, cfg.dims.rows);
    let mut sink = lints::Sink::new();

    let table = match cfg
        .validate()
        .map_err(|e| format!("configuration rejected: {e}"))
        .and_then(|()| {
            RouteTable::build(cfg, faults).map_err(|e| format!("fault model rejected: {e}"))
        }) {
        Ok(table) => table,
        Err(message) => {
            sink.push(Lint::Config, Severity::Error, message, None);
            return Report {
                label,
                dims,
                findings: sink.finish(),
                stats: CdgStats::default(),
            };
        }
    };

    let cases = lints::route_cases(cfg);
    let mut cdg = Cdg::new();
    let mut unreachable = 0usize;
    for &route in &cases {
        let steps = match trace_table(cfg, &table, route) {
            Ok(steps) => steps,
            Err((RouteError::Unreachable { .. }, _)) => {
                unreachable += 1;
                sink.push(
                    Lint::Unreachable,
                    Severity::Info,
                    format!("faults partition {route}"),
                    None,
                );
                continue;
            }
            Err((err, partial)) => {
                sink.push(
                    Lint::RouteTotality,
                    Severity::Error,
                    format!("{err}"),
                    Some(Witness::Route {
                        route,
                        steps: partial.iter().map(|s| (s.here, s.out)).collect(),
                    }),
                );
                continue;
            }
        };
        for step in &steps {
            // A table route must never board a dead channel; this firing
            // means the table construction itself is broken.
            if faults.channel_dead(cfg, step.here, step.out) {
                sink.push(
                    Lint::RouteTotality,
                    Severity::Error,
                    format!("route crosses dead channel {} -{}->", step.here, step.out),
                    Some(Witness::Route {
                        route,
                        steps: steps.iter().map(|s| (s.here, s.out)).collect(),
                    }),
                );
            }
        }
        cdg.add_trace(cfg, route, &steps);
    }

    for (channels, routes) in cdg.cycles() {
        sink.push(
            Lint::ChannelDeadlock,
            Severity::Error,
            format!(
                "channel-dependency cycle of length {} — the faulted network can deadlock",
                channels.len()
            ),
            Some(Witness::Cycle { channels, routes }),
        );
    }

    let stats = CdgStats {
        channels: cdg.channel_count(),
        dependencies: cdg.edge_count(),
        routes: cases.len(),
        largest_scc: cdg.largest_scc(),
    };
    sink.push(
        Lint::CdgStats,
        Severity::Info,
        format!(
            "{} channels, {} dependencies from {} routes ({unreachable} unreachable); \
             largest SCC {}",
            stats.channels, stats.dependencies, stats.routes, stats.largest_scc
        ),
        None,
    );

    Report {
        label,
        dims,
        findings: sink.finish(),
        stats,
    }
}

/// Memoized pass/fail faulted verification, keyed by `(cfg, faults)` —
/// the faulted counterpart of [`crate::verify_cached`]. Unreachable-pair
/// findings are `Info` and do not fail the check.
///
/// # Errors
///
/// The rendered [`Report`] when verification produces any error finding.
pub fn verify_faulted_cached(cfg: &NetworkConfig, faults: &FaultModel) -> Result<(), String> {
    static CACHE: OnceLock<Mutex<HashMap<String, Result<(), String>>>> = OnceLock::new();
    let key = format!("{cfg:?}|{faults:?}");
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("faulted verify cache lock").get(&key) {
        return hit.clone();
    }
    let report = verify_faulted(cfg, faults);
    let result = if report.has_errors() {
        Err(report.render())
    } else {
        Ok(())
    };
    cache
        .lock()
        .expect("faulted verify cache lock")
        .insert(key, result.clone());
    result
}

/// Walks one route through the fault table, recording full per-hop state
/// (the faulted analogue of the lint battery's `trace`). All fault
/// routing is single-VC.
fn trace_table(
    cfg: &NetworkConfig,
    table: &RouteTable,
    route: RouteId,
) -> Result<Vec<TraceStep>, (RouteError, Vec<TraceStep>)> {
    let mut here = route.src;
    let mut in_dir = route.entry;
    let mut steps = Vec::new();
    let limit = cfg.max_route_hops();
    loop {
        let dec = match table.route(here, in_dir, route.dest) {
            Ok(dec) => dec,
            Err(e) => return Err((e, steps)),
        };
        steps.push(TraceStep {
            here,
            in_dir,
            in_vc: 0,
            out: dec.out,
            out_vc: dec.out_vc,
        });
        if here == route.dest.coord && dec.out == route.dest.exit_dir() {
            return Ok(steps);
        }
        let Some(next) = cfg.neighbor(here, dec.out) else {
            let err = RouteError::LeftArray {
                at: here,
                out: dec.out,
            };
            return Err((err, steps));
        };
        in_dir = dec.out.opposite();
        here = next;
        if steps.len() > limit {
            return Err((RouteError::HopLimit { limit }, steps));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulted_mesh_is_deadlock_free_with_unreachable_info() {
        let cfg = NetworkConfig::mesh(Dims::new(6, 6));
        let faults = FaultModel::random_links(&cfg, 0.15, 5).kill_router(Coord::new(3, 3));
        let report = verify_faulted(&cfg, &faults);
        assert!(!report.has_errors(), "{report}");
        assert_eq!(report.stats.largest_scc.max(1), 1, "{report}");
        // The dead router's own pairs are at least reported unreachable.
        assert!(
            report.of_lint(Lint::Unreachable).next().is_some(),
            "{report}"
        );
        assert_eq!(verify_faulted_cached(&cfg, &faults), Ok(()));
    }

    #[test]
    fn faulted_ruche_depop_grid_verifies() {
        for (rf, seed) in [(2u16, 9u64), (4, 10)] {
            let cfg = NetworkConfig::half_ruche(Dims::new(16, 8), rf, CrossbarScheme::Depopulated)
                .with_edge_memory_ports();
            let faults = FaultModel::random_links(&cfg, 0.08, seed);
            let report = verify_faulted(&cfg, &faults);
            assert!(!report.has_errors(), "{report}");
        }
    }

    #[test]
    fn invalid_fault_model_reports_config_error() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 4));
        let faults = FaultModel::default().kill_router(Coord::new(9, 9));
        let report = verify_faulted(&cfg, &faults);
        assert!(report.has_errors());
        assert_eq!(report.of_lint(Lint::Config).count(), 1, "{report}");
    }

    #[test]
    fn empty_fault_model_matches_route_case_count() {
        let cfg = NetworkConfig::mesh(Dims::new(4, 4));
        let clean = verify_faulted(&cfg, &FaultModel::default());
        assert!(!clean.has_errors(), "{clean}");
        assert_eq!(clean.of_lint(Lint::Unreachable).count(), 0);
        let base = crate::verify(&cfg);
        assert_eq!(clean.stats.routes, base.stats.routes);
    }
}
