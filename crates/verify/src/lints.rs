//! The lint battery: route enumeration, per-hop invariant checks, and
//! finding assembly.
//!
//! The pass enumerates every routing state the network can reach — all
//! `(source, entry port, destination)` triples, including edge-memory
//! traffic in exactly the directions the crossbar implements — walks each
//! route with the (possibly injected) routing function, and checks each
//! hop against:
//!
//! * **route totality** — the walk terminates at its destination within
//!   [`NetworkConfig::max_route_hops`] and never leaves the array;
//! * **minimal progress** — each non-ejection hop strictly decreases the
//!   remaining distance (ring distance on torus axes), which rules out
//!   livelock;
//! * **crossbar connectivity** — every `(input → output)` transition is
//!   implemented by the configured [`Connectivity`] matrix;
//! * **VC range / monotonicity** — VC indices fit the per-port VC count
//!   and never decrease while riding a torus ring (the dateline ordering);
//! * **symmetry** — on translation-symmetric topologies, route lengths
//!   are invariant under X and Y reflection of the array.
//!
//! Every walked hop also feeds the channel-dependency graph; after the
//! sweep, a Tarjan pass proves the Dally–Seitz acyclicity condition or
//! reports each cycle with a concrete witness.

use crate::cdg::Cdg;
use crate::report::{CdgStats, Finding, Lint, Report, RouteId, Severity, Witness};
use crate::{RouteFn, TraceStep};
use ruche_noc::prelude::*;
use ruche_noc::routing::edge_entry;
use ruche_noc::topology::{fold_logical, DorOrder};
// lint:allow(hash-order): per-lint overflow counts; the report sorts by
// lint name (and severity) before rendering, so map order never leaks.
use std::collections::HashMap;

/// At most this many findings per lint carry a full witness; the rest are
/// folded into a single "N more suppressed" line so a badly broken
/// configuration produces a readable report instead of megabytes.
const WITNESS_CAP: usize = 3;

/// Collects findings with the per-lint witness cap applied.
pub(crate) struct Sink {
    findings: Vec<Finding>,
    counts: HashMap<Lint, (usize, Severity)>,
}

impl Sink {
    pub(crate) fn new() -> Self {
        Sink {
            findings: Vec::new(),
            counts: HashMap::new(),
        }
    }

    pub(crate) fn push(
        &mut self,
        lint: Lint,
        severity: Severity,
        message: String,
        witness: Option<Witness>,
    ) {
        let entry = self.counts.entry(lint).or_insert((0, severity));
        entry.0 += 1;
        entry.1 = entry.1.max(severity);
        if entry.0 <= WITNESS_CAP {
            self.findings.push(Finding {
                lint,
                severity,
                message,
                witness,
            });
        }
    }

    pub(crate) fn finish(mut self) -> Vec<Finding> {
        let mut overflow: Vec<(Lint, usize, Severity)> = self
            .counts
            .iter()
            .filter(|(_, &(n, _))| n > WITNESS_CAP)
            .map(|(&lint, &(n, sev))| (lint, n - WITNESS_CAP, sev))
            .collect();
        overflow.sort_by_key(|&(lint, ..)| lint.name());
        for (lint, extra, severity) in overflow {
            self.findings.push(Finding {
                lint,
                severity,
                message: format!("...and {extra} more {lint} finding(s) suppressed"),
                witness: None,
            });
        }
        // Most severe first, stable within a severity.
        self.findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
        self.findings
    }
}

/// Walks one route with the injected routing function, recording the full
/// per-hop state (input port, input VC, output port, output VC).
fn trace(
    cfg: &NetworkConfig,
    route_fn: &RouteFn,
    route: RouteId,
) -> Result<Vec<TraceStep>, (RouteError, Vec<TraceStep>)> {
    let mut here = route.src;
    let mut in_dir = route.entry;
    let mut in_vc = 0u8;
    let mut steps = Vec::new();
    let limit = cfg.max_route_hops();
    loop {
        let dec = route_fn(cfg, here, in_dir, in_vc, route.dest);
        steps.push(TraceStep {
            here,
            in_dir,
            in_vc,
            out: dec.out,
            out_vc: dec.out_vc,
        });
        if here == route.dest.coord && dec.out == route.dest.exit_dir() {
            return Ok(steps);
        }
        let Some(next) = cfg.neighbor(here, dec.out) else {
            let err = RouteError::LeftArray {
                at: here,
                out: dec.out,
            };
            return Err((err, steps));
        };
        in_dir = dec.out.opposite();
        in_vc = dec.out_vc;
        here = next;
        if steps.len() > limit {
            return Err((RouteError::HopLimit { limit }, steps));
        }
    }
}

/// Every routing state the verifier must cover. Edge traffic is
/// enumerated in exactly the directions the crossbar derivation
/// implements (requests route X-Y *to* the edges, responses Y-X *from*
/// them, unless `edge_bidirectional` carries both).
pub(crate) fn route_cases(cfg: &NetworkConfig) -> Vec<RouteId> {
    let mut cases = Vec::new();
    for src in cfg.dims.iter() {
        for dst in cfg.dims.iter() {
            cases.push(RouteId {
                src,
                entry: Dir::P,
                dest: Dest::tile(dst),
            });
        }
    }
    if cfg.edge_memory_ports {
        let to_edge = cfg.edge_bidirectional || cfg.dor == DorOrder::XY;
        let from_edge = cfg.edge_bidirectional || cfg.dor == DorOrder::YX;
        for col in 0..cfg.dims.cols {
            for edge in [EdgePort::North, EdgePort::South] {
                if to_edge {
                    let dest = match edge {
                        EdgePort::North => Dest::north_edge(col),
                        EdgePort::South => Dest::south_edge(col, cfg.dims.rows),
                    };
                    for src in cfg.dims.iter() {
                        cases.push(RouteId {
                            src,
                            entry: Dir::P,
                            dest,
                        });
                    }
                }
                if from_edge {
                    let (src, entry) = edge_entry(cfg.dims, edge, col);
                    for dst in cfg.dims.iter() {
                        cases.push(RouteId {
                            src,
                            entry,
                            dest: Dest::tile(dst),
                        });
                    }
                }
            }
        }
    }
    cases
}

/// Remaining distance from `here` to `goal`: Manhattan on open axes, the
/// shortest logical ring distance on torus axes. Every legal hop of every
/// supported routing function strictly decreases this, which is the
/// livelock-freedom argument the `minimal-progress` lint enforces.
fn progress_metric(cfg: &NetworkConfig, here: Coord, goal: Coord) -> u32 {
    let mut metric = 0u32;
    for axis in [Axis::X, Axis::Y] {
        let (h, g) = match axis {
            Axis::X => (here.x, goal.x),
            Axis::Y => (here.y, goal.y),
        };
        if cfg.torus_axis(axis) {
            let k = cfg.extent(axis) as u32;
            let lh = fold_logical(h, cfg.extent(axis)) as u32;
            let lg = fold_logical(g, cfg.extent(axis)) as u32;
            let fwd = (lg + k - lh) % k;
            metric += fwd.min(k - fwd);
        } else {
            metric += u32::from(h.abs_diff(g));
        }
    }
    metric
}

/// Runs the full lint battery for `cfg`, walking routes with `route_fn`.
pub(crate) fn analyze(cfg: &NetworkConfig, route_fn: &RouteFn) -> Report {
    let label = cfg.label();
    let dims = format!("{}x{}", cfg.dims.cols, cfg.dims.rows);
    let mut sink = Sink::new();

    if let Err(e) = cfg.validate() {
        sink.push(
            Lint::Config,
            Severity::Error,
            format!("configuration rejected: {e}"),
            None,
        );
        return Report {
            label,
            dims,
            findings: sink.finish(),
            stats: CdgStats::default(),
        };
    }

    let conn = Connectivity::of(cfg);
    let cases = route_cases(cfg);
    let mut cdg = Cdg::new();
    // Tile-to-tile hop counts for the symmetry lint, indexed
    // `[src][dst]`; only trusted if every tile-to-tile trace succeeded.
    let n = cfg.dims.count();
    let mut hops: Vec<u32> = vec![0; n * n];
    let mut hops_complete = true;

    for &route in &cases {
        // A failed walk still yields its partial path: the per-hop lints
        // below run on it too, so a non-terminating route reports *why*
        // it bounces (usually minimal-progress violations) and not just
        // that it does.
        let (steps, complete) = match trace(cfg, route_fn, route) {
            Ok(steps) => (steps, true),
            Err((err, partial)) => {
                sink.push(
                    Lint::RouteTotality,
                    Severity::Error,
                    format!("{err}"),
                    Some(Witness::Route {
                        route,
                        steps: partial.iter().map(|s| (s.here, s.out)).collect(),
                    }),
                );
                hops_complete = false;
                (partial, false)
            }
        };
        let witness = || Witness::Route {
            route,
            steps: steps.iter().map(|s| (s.here, s.out)).collect(),
        };
        for step in &steps {
            if !conn.allows(step.in_dir, step.out) {
                sink.push(
                    Lint::CrossbarConnectivity,
                    Severity::Error,
                    format!(
                        "router {} routes {} -> {}, not implemented by the {:?} crossbar",
                        step.here, step.in_dir, step.out, cfg.scheme
                    ),
                    Some(witness()),
                );
            }
            if usize::from(step.out_vc) >= cfg.vcs(step.out) {
                sink.push(
                    Lint::VcRange,
                    Severity::Error,
                    format!(
                        "router {} requests vc{} on {}, which has {} VC(s)",
                        step.here,
                        step.out_vc,
                        step.out,
                        cfg.vcs(step.out)
                    ),
                    Some(witness()),
                );
            }
            let same_ring = step.in_dir.axis().is_some()
                && step.in_dir.axis() == step.out.axis()
                && cfg.torus_axis(step.in_dir.axis().expect("checked"));
            if same_ring && step.out_vc < step.in_vc {
                sink.push(
                    Lint::VcMonotonicity,
                    Severity::Warning,
                    format!(
                        "router {} drops vc{} -> vc{} while staying on the {} ring",
                        step.here,
                        step.in_vc,
                        step.out_vc,
                        step.in_dir.axis().map(|a| format!("{a:?}")).expect("ring"),
                    ),
                    Some(witness()),
                );
            }
            // Every hop with a link behind it must make strict progress
            // toward the egress router; ejections (P or edge exits, the
            // outputs with no link) are exempt.
            if let Some(next) = cfg.neighbor(step.here, step.out) {
                let before = progress_metric(cfg, step.here, route.dest.coord);
                let after = progress_metric(cfg, next, route.dest.coord);
                if after >= before {
                    sink.push(
                        Lint::MinimalProgress,
                        Severity::Error,
                        format!(
                            "hop {} -{}-> {next} leaves remaining distance at {after} (was {before})",
                            step.here, step.out
                        ),
                        Some(witness()),
                    );
                }
            }
        }
        cdg.add_trace(cfg, route, &steps);
        if complete && route.entry == Dir::P && route.dest.edge.is_none() {
            hops[cfg.dims.index(route.src) * n + cfg.dims.index(route.dest.coord)] =
                steps.len() as u32;
        }
    }

    // Dally–Seitz: cycles in the channel-dependency graph.
    for (channels, routes) in cdg.cycles() {
        sink.push(
            Lint::ChannelDeadlock,
            Severity::Error,
            format!(
                "channel-dependency cycle of length {} — the network can deadlock",
                channels.len()
            ),
            Some(Witness::Cycle { channels, routes }),
        );
    }

    // Reflection symmetry of route lengths. Torus axes are excluded: the
    // folded layout maps a physical reflection to a ring rotation, whose
    // interaction with the tie-break direction legitimately changes hop
    // counts.
    let reflective = !cfg.torus_axis(Axis::X) && !cfg.torus_axis(Axis::Y);
    if reflective && hops_complete {
        let reflect = |c: Coord, fx: bool| -> Coord {
            if fx {
                Coord::new(cfg.dims.cols - 1 - c.x, c.y)
            } else {
                Coord::new(c.x, cfg.dims.rows - 1 - c.y)
            }
        };
        for src in cfg.dims.iter() {
            for dst in cfg.dims.iter() {
                let base = hops[cfg.dims.index(src) * n + cfg.dims.index(dst)];
                for flip_x in [true, false] {
                    let (rs, rd) = (reflect(src, flip_x), reflect(dst, flip_x));
                    let mirrored = hops[cfg.dims.index(rs) * n + cfg.dims.index(rd)];
                    if mirrored != base {
                        sink.push(
                            Lint::Symmetry,
                            Severity::Warning,
                            format!(
                                "route {src}->{dst} takes {base} hop(s) but its {} mirror \
                                 {rs}->{rd} takes {mirrored}",
                                if flip_x { "X" } else { "Y" }
                            ),
                            None,
                        );
                    }
                }
            }
        }
    }

    let stats = CdgStats {
        channels: cdg.channel_count(),
        dependencies: cdg.edge_count(),
        routes: cases.len(),
        largest_scc: cdg.largest_scc(),
    };
    sink.push(
        Lint::CdgStats,
        Severity::Info,
        format!(
            "{} channels, {} dependencies from {} routes; largest SCC {}",
            stats.channels, stats.dependencies, stats.routes, stats.largest_scc
        ),
        None,
    );

    Report {
        label,
        dims,
        findings: sink.finish(),
        stats,
    }
}
