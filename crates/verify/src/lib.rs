//! # ruche-verify
//!
//! Static verification of [`NetworkConfig`]s — no simulation required.
//!
//! The verifier enumerates every routing state a configuration can reach
//! (all `(router, input port, input VC, destination)` combinations that
//! deterministic routing admits), drives the per-hop route-compute
//! function over them, and proves — or refutes with a concrete
//! counterexample — the invariants the simulator otherwise only
//! *assumes*:
//!
//! * **Deadlock freedom** (Dally & Seitz): the channel-dependency graph
//!   over `(link, vc)` channels is acyclic. A violation is reported as
//!   the actual cycle, channel by channel, with the route inducing each
//!   dependency edge.
//! * **Route totality and livelock freedom**: every route terminates at
//!   its destination within the hop bound, and every hop strictly
//!   decreases the remaining distance.
//! * **Crossbar consistency**: every routing transition is implemented
//!   by the configured crossbar scheme, and every VC request fits the
//!   port's VC count (with dateline monotonicity on torus rings).
//! * **Symmetry**: route lengths are reflection-invariant on
//!   translation-symmetric topologies.
//!
//! See `docs/VERIFY.md` at the repository root for the underlying model
//! and how to read a cycle witness.
//!
//! ## Quick start
//!
//! ```
//! use ruche_noc::prelude::*;
//! use ruche_verify::verify;
//!
//! let cfg = NetworkConfig::full_ruche(Dims::new(8, 8), 2, CrossbarScheme::Depopulated);
//! let report = verify(&cfg);
//! assert!(report.is_clean(), "{report}");
//! ```
//!
//! The `verify_net` binary runs the same analysis over every
//! configuration the paper's figures sweep ([`grid::paper_grid`]) and
//! exits non-zero on any error finding; [`install_debug_hook`] arranges
//! for debug builds of the simulator to verify each [`Network`]
//! construction automatically.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cdg;
pub mod faulted;
pub mod grid;
mod lints;
mod report;

pub use faulted::{verify_faulted, verify_faulted_cached};
pub use report::{CdgStats, Channel, Finding, Lint, Report, RouteId, Severity, Witness};

use ruche_noc::prelude::*;
// lint:allow(hash-order): verdict cache keyed by config label, lookup-only.
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// A per-hop routing function, same signature as
/// [`compute_route`](ruche_noc::routing::compute_route). [`verify_with`]
/// accepts any such function, which is how the test suite proves the
/// checker catches deliberately broken routing (e.g. a torus with the
/// dateline VC switch disabled).
pub type RouteFn = dyn Fn(&NetworkConfig, Coord, Dir, u8, Dest) -> RouteDecision;

/// Full per-hop routing state recorded while walking a route.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TraceStep {
    pub(crate) here: Coord,
    pub(crate) in_dir: Dir,
    pub(crate) in_vc: u8,
    pub(crate) out: Dir,
    pub(crate) out_vc: u8,
}

/// Statically verifies `cfg` under its real routing function.
pub fn verify(cfg: &NetworkConfig) -> Report {
    verify_with(cfg, &ruche_noc::routing::compute_route)
}

/// Statically verifies `cfg`, walking routes with an arbitrary routing
/// function instead of the built-in one.
///
/// The crossbar-connectivity lint still checks against the crossbar the
/// *configuration* implements, so this doubles as a check that a custom
/// routing function fits the configured hardware.
pub fn verify_with(cfg: &NetworkConfig, route_fn: &RouteFn) -> Report {
    lints::analyze(cfg, route_fn)
}

/// Memoized pass/fail verification, keyed by the configuration.
///
/// Returns `Err` with the rendered report when verification produces any
/// error finding. Results are cached process-wide: repeated construction
/// of the same configuration (the sweep engine builds thousands of
/// [`Network`]s) verifies only once.
///
/// # Errors
///
/// The rendered [`Report`] of a configuration with error findings.
pub fn verify_cached(cfg: &NetworkConfig) -> Result<(), String> {
    static CACHE: OnceLock<Mutex<HashMap<String, Result<(), String>>>> = OnceLock::new();
    let key = format!("{cfg:?}");
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("verify cache lock").get(&key) {
        return hit.clone();
    }
    let report = verify(cfg);
    let result = if report.has_errors() {
        Err(report.render())
    } else {
        Ok(())
    };
    cache
        .lock()
        .expect("verify cache lock")
        .insert(key, result.clone());
    result
}

/// Registers [`verify_cached`] as the simulator's debug-build
/// verification hook: every `Network::new` in a `debug_assertions` build
/// then statically verifies its configuration before constructing the
/// network, panicking with the full report on an error finding.
///
/// Returns `false` if a hook was already installed (the first
/// installation wins); installing this crate's hook twice is harmless.
pub fn install_debug_hook() -> bool {
    ruche_noc::sim::register_debug_verifier(verify_cached)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_mesh_verifies() {
        let report = verify(&NetworkConfig::mesh(Dims::new(6, 6)));
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.stats.largest_scc, 1);
    }

    #[test]
    fn cached_verification_is_stable() {
        let cfg = NetworkConfig::torus(Dims::new(6, 6));
        assert_eq!(verify_cached(&cfg), Ok(()));
        assert_eq!(verify_cached(&cfg), Ok(()));
    }

    #[test]
    fn invalid_config_reports_config_lint() {
        let cfg = NetworkConfig::full_ruche(Dims::new(4, 4), 9, CrossbarScheme::Depopulated);
        let report = verify(&cfg);
        assert!(report.has_errors());
        assert!(report.of_lint(Lint::Config).count() == 1, "{report}");
    }
}
