//! The paper's configuration grid.
//!
//! [`paper_grid`] returns every distinct [`NetworkConfig`] the
//! reproduction sweeps — the Figure 6/7/8 full-network grid, the
//! Figure 9 half-network grid (with edge memory ports, as the sweeps run
//! them), and the manycore request/response network pair of §4 — so the
//! `verify_net` binary and the CI `verify` job prove every simulated
//! configuration deadlock-free before any cycle is simulated.
//!
//! The lists are intentionally written out here rather than imported
//! from the bench crate (which depends on this one); the bench test
//! suite cross-checks that its figure sweeps stay inside this grid.

use ruche_noc::prelude::*;
// lint:allow(hash-order): membership-only dedup of config labels; nothing
// iterates the set.
use std::collections::HashSet;

/// The Figure 6/7/8 full-network set for one array size.
pub fn full_network_configs(dims: Dims) -> Vec<NetworkConfig> {
    use CrossbarScheme::{Depopulated, FullyPopulated};
    vec![
        NetworkConfig::mesh(dims),
        NetworkConfig::multi_mesh(dims),
        NetworkConfig::torus(dims),
        NetworkConfig::ruche_one(dims),
        NetworkConfig::full_ruche(dims, 2, FullyPopulated),
        NetworkConfig::full_ruche(dims, 2, Depopulated),
        NetworkConfig::full_ruche(dims, 3, FullyPopulated),
        NetworkConfig::full_ruche(dims, 3, Depopulated),
    ]
}

/// The Figure 9 half-network set for one array size (Ruche-4 appears on
/// 64-column arrays, as in the paper), with edge memory ports attached
/// the way the sweeps run them.
pub fn half_network_configs(dims: Dims) -> Vec<NetworkConfig> {
    use CrossbarScheme::{Depopulated, FullyPopulated};
    let mut v = vec![
        NetworkConfig::mesh(dims),
        NetworkConfig::half_torus(dims),
        NetworkConfig::half_ruche(dims, 2, Depopulated),
        NetworkConfig::half_ruche(dims, 2, FullyPopulated),
        NetworkConfig::half_ruche(dims, 3, Depopulated),
        NetworkConfig::half_ruche(dims, 3, FullyPopulated),
    ];
    if dims.cols == 64 {
        v.push(NetworkConfig::half_ruche(dims, 4, Depopulated));
        v.push(NetworkConfig::half_ruche(dims, 4, FullyPopulated));
    }
    v.into_iter()
        .map(NetworkConfig::with_edge_memory_ports)
        .collect()
}

/// The manycore request/response network pair built from one base
/// fabric (§4): requests route X-Y to the edge memories, responses
/// route Y-X back from them.
pub fn manycore_net_pair(base: &NetworkConfig) -> [NetworkConfig; 2] {
    let req = base.clone().with_edge_memory_ports();
    let resp = base.clone().with_edge_memory_ports().with_dor(DorOrder::YX);
    [req, resp]
}

/// Every distinct configuration the paper reproduction simulates,
/// deduplicated.
pub fn paper_grid() -> Vec<NetworkConfig> {
    let mut grid: Vec<NetworkConfig> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut push = |cfg: NetworkConfig| {
        if seen.insert(format!("{cfg:?}")) {
            grid.push(cfg);
        }
    };

    // Figures 6/7/8: full networks on square arrays.
    for dims in [Dims::new(8, 8), Dims::new(16, 16)] {
        for cfg in full_network_configs(dims) {
            push(cfg);
        }
    }
    // Figure 9 (and 10/12/13): half networks with edge memory traffic.
    for dims in [Dims::new(16, 8), Dims::new(32, 16), Dims::new(64, 8)] {
        for cfg in half_network_configs(dims) {
            push(cfg);
        }
    }
    // Manycore request/response pairs over the half-network fabrics,
    // plus the DOR-order ablation's bidirectional-edge response net.
    for dims in [Dims::new(16, 8), Dims::new(32, 16)] {
        for base in half_network_configs(dims) {
            for cfg in manycore_net_pair(&base) {
                push(cfg);
            }
        }
    }
    for base in half_network_configs(Dims::new(16, 8)) {
        let mut resp_xy = base.with_edge_memory_ports();
        resp_xy.edge_bidirectional = true;
        push(resp_xy);
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_deduplicated_and_valid() {
        let grid = paper_grid();
        assert!(grid.len() >= 40, "grid unexpectedly small: {}", grid.len());
        let mut seen = HashSet::new();
        for cfg in &grid {
            assert!(seen.insert(format!("{cfg:?}")), "duplicate {}", cfg.label());
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
        }
    }

    #[test]
    fn grid_covers_both_traffic_directions() {
        let grid = paper_grid();
        assert!(grid
            .iter()
            .any(|c| c.edge_memory_ports && c.dor == DorOrder::YX));
        assert!(grid.iter().any(|c| c.edge_bidirectional));
        assert!(grid.iter().any(|c| !c.edge_memory_ports));
    }
}
