//! Findings, witnesses, and the per-configuration verification report.
//!
//! Every check the verifier runs reports through these types: a
//! [`Finding`] names the [`Lint`] that fired and carries a concrete
//! [`Witness`] — a routed path or a channel-dependency cycle — so a
//! failure is never just an assertion, it is a reproducible counterexample.

use ruche_noc::prelude::*;
use ruche_noc::routing::PathStep;
use std::fmt;

/// How serious a finding is.
///
/// Ordered so that `Error > Warning > Info`, which is the order findings
/// are reported in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Diagnostic output (e.g. channel-dependency-graph statistics).
    Info,
    /// A broken structural invariant that does not by itself make the
    /// network incorrect (e.g. an asymmetry in route lengths).
    Warning,
    /// A provable correctness violation: deadlock cycle, non-terminating
    /// route, crossbar mismatch.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "ERROR",
        })
    }
}

/// The individual checks the verifier runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// `NetworkConfig::validate` rejected the configuration outright.
    Config,
    /// A route left the array or exceeded the hop bound
    /// ([`NetworkConfig::max_route_hops`]) without ejecting.
    RouteTotality,
    /// A hop failed to strictly decrease the remaining distance to the
    /// destination — the livelock-freedom argument.
    MinimalProgress,
    /// A route requested an (input → output) transition the configured
    /// crossbar scheme does not implement.
    CrossbarConnectivity,
    /// A route requested a virtual channel beyond the port's VC count.
    VcRange,
    /// A packet's VC decreased while staying on a torus ring — legal for
    /// the router, but it voids the dateline ordering argument.
    VcMonotonicity,
    /// The channel-dependency graph has a cycle: the Dally–Seitz
    /// deadlock-freedom condition is violated.
    ChannelDeadlock,
    /// A faulted configuration leaves a source/destination pair with no
    /// surviving route (benign: the degradation sweep accounts for it, but
    /// traffic must not be offered to the pair).
    Unreachable,
    /// Route lengths are not invariant under array reflection on a
    /// translation-symmetric topology.
    Symmetry,
    /// Channel-dependency-graph statistics (always `Info`).
    CdgStats,
}

impl Lint {
    /// Short lint name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Lint::Config => "config",
            Lint::RouteTotality => "route-totality",
            Lint::MinimalProgress => "minimal-progress",
            Lint::CrossbarConnectivity => "crossbar-connectivity",
            Lint::VcRange => "vc-range",
            Lint::VcMonotonicity => "vc-monotonicity",
            Lint::ChannelDeadlock => "channel-deadlock",
            Lint::Unreachable => "unreachable",
            Lint::Symmetry => "symmetry",
            Lint::CdgStats => "cdg-stats",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.name())
    }
}

/// A virtual channel on a physical link: the node that owns the output,
/// the output direction, and the VC index.
///
/// These are the vertices of the channel-dependency graph. Injection and
/// ejection channels are excluded — a packet never *holds* them while
/// waiting for a network channel, so they cannot take part in a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Channel {
    /// Router that drives the channel.
    pub from: Coord,
    /// Output direction at `from`.
    pub out: Dir,
    /// Virtual channel index on the link.
    pub vc: u8,
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -{}-> vc{}", self.from, self.out, self.vc)
    }
}

/// Identifies one enumerated route: where the packet entered the network,
/// through which port, and where it was heading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteId {
    /// First router the packet traverses.
    pub src: Coord,
    /// Input port at `src` (`P` for tile injection, `N`/`S` for packets
    /// arriving from an edge memory endpoint).
    pub entry: Dir,
    /// Packet destination.
    pub dest: Dest,
}

impl fmt::Display for RouteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.entry {
            Dir::P => write!(f, "{} -> {}", self.src, self.dest),
            Dir::N => write!(f, "N-edge[{}] -> {}", self.src.x, self.dest),
            Dir::S => write!(f, "S-edge[{}] -> {}", self.src.x, self.dest),
            other => write!(f, "{}(in {}) -> {}", self.src, other, self.dest),
        }
    }
}

/// The concrete counterexample attached to a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Witness {
    /// A cycle in the channel-dependency graph. `channels[i] →
    /// channels[(i+1) % len]` is a dependency induced by `routes[i]`: a
    /// packet on that route holds `channels[i]` while requesting the next.
    Cycle {
        /// The channels on the cycle, in dependency order.
        channels: Vec<Channel>,
        /// One inducing route per dependency edge (same length).
        routes: Vec<RouteId>,
    },
    /// A single offending route, with as much of its path as was walked.
    Route {
        /// The route that triggered the finding.
        route: RouteId,
        /// `(router, output)` steps walked so far.
        steps: Vec<PathStep>,
    },
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Witness::Cycle { channels, routes } => {
                writeln!(f, "dependency cycle over {} channel(s):", channels.len())?;
                for (i, ch) in channels.iter().enumerate() {
                    writeln!(f, "      {ch}   [held by route {}]", routes[i])?;
                }
                write!(f, "      ...back to {}", channels[0])
            }
            Witness::Route { route, steps } => {
                write!(f, "route {route}: ")?;
                for (i, (at, out)) in steps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{at}:{out}")?;
                }
                Ok(())
            }
        }
    }
}

/// One verification finding: a lint, its severity, a human-readable
/// message, and (usually) a concrete witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which check fired.
    pub lint: Lint,
    /// How serious it is.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Counterexample, when one exists.
    pub witness: Option<Witness>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.severity, self.lint, self.message)?;
        if let Some(w) = &self.witness {
            write!(f, "\n    {w}")?;
        }
        Ok(())
    }
}

/// Size statistics of the analyzed channel-dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CdgStats {
    /// Vertices: distinct `(link, vc)` channels reached by some route.
    pub channels: usize,
    /// Edges: distinct hold-one-request-next dependencies.
    pub dependencies: usize,
    /// Number of routes enumerated to build the graph.
    pub routes: usize,
    /// Largest strongly connected component (1 = acyclic).
    pub largest_scc: usize,
}

/// The verification result for one [`NetworkConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// `cfg.label()` of the verified configuration.
    pub label: String,
    /// Array dimensions, as `cols x rows` text.
    pub dims: String,
    /// All findings, most severe first.
    pub findings: Vec<Finding>,
    /// Channel-dependency-graph statistics.
    pub stats: CdgStats,
}

impl Report {
    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Whether any `Error` finding was produced.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Whether the configuration is fully clean (no errors, no warnings).
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0 && self.count(Severity::Warning) == 0
    }

    /// Findings of a specific lint.
    pub fn of_lint(&self, lint: Lint) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.lint == lint)
    }

    /// Multi-line human-readable rendering of the whole report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} {} — {} channels, {} dependencies, {} routes, largest SCC {}",
            self.label,
            self.dims,
            self.stats.channels,
            self.stats.dependencies,
            self.stats.routes,
            self.stats.largest_scc
        );
        if self.is_clean() {
            let _ = writeln!(out, "  clean: deadlock-free and all routing lints hold");
        }
        for finding in &self.findings {
            let _ = writeln!(out, "  {finding}");
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}
