//! Statically verifies every configuration in the paper grid.
//!
//! ```text
//! verify_net [FILTER] [--strict]
//! ```
//!
//! Prints one summary row per configuration (channel-dependency-graph
//! size, largest SCC, finding counts) followed by the full findings of
//! any configuration that is not clean. Exits non-zero if any
//! configuration has an error finding (`--strict`: or a warning). An
//! optional `FILTER` substring restricts the run to matching labels.

use ruche_verify::{grid, verify, Severity};

fn main() {
    let mut filter: Option<String> = None;
    let mut strict = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--strict" => strict = true,
            "--help" | "-h" => {
                println!("usage: verify_net [FILTER] [--strict]");
                return;
            }
            other => filter = Some(other.to_string()),
        }
    }

    let configs: Vec<_> = grid::paper_grid()
        .into_iter()
        .filter(|cfg| filter.as_deref().is_none_or(|f| cfg.label().contains(f)))
        .collect();

    let mut table = ruche_stats::Table::new(vec![
        "config", "dims", "dor", "edge-mem", "channels", "deps", "scc", "errors", "warnings",
    ]);
    let mut dirty = Vec::new();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for cfg in &configs {
        let report = verify(cfg);
        errors += report.count(Severity::Error);
        warnings += report.count(Severity::Warning);
        table.row(vec![
            report.label.clone(),
            report.dims.clone(),
            format!("{:?}", cfg.dor),
            match (cfg.edge_memory_ports, cfg.edge_bidirectional) {
                (_, true) => "both".into(),
                (true, _) => "yes".into(),
                (false, _) => "-".into(),
            },
            report.stats.channels.to_string(),
            report.stats.dependencies.to_string(),
            report.stats.largest_scc.to_string(),
            report.count(Severity::Error).to_string(),
            report.count(Severity::Warning).to_string(),
        ]);
        if !report.is_clean() {
            dirty.push(report);
        }
    }

    println!(
        "static verification of {} configuration(s)\n",
        configs.len()
    );
    println!("{}", table.render());
    for report in &dirty {
        println!("{report}");
    }
    if errors > 0 || (strict && warnings > 0) {
        println!("FAIL: {errors} error(s), {warnings} warning(s)");
        std::process::exit(1);
    }
    println!("OK: all configurations deadlock-free ({warnings} warning(s))");
}
