//! Statically verifies every configuration in the paper grid, plus a
//! faulted-grid sample (random link kills and a dead router over the
//! degradation sweep's topologies, checked with the up*/down* table).
//!
//! ```text
//! verify_net [FILTER] [--strict]
//! ```
//!
//! Prints one summary row per configuration (channel-dependency-graph
//! size, largest SCC, finding counts) followed by the full findings of
//! any configuration that is not clean. Exits non-zero if any
//! configuration has an error finding (`--strict`: or a warning). An
//! optional `FILTER` substring restricts the run to matching labels.

use ruche_noc::fault::FaultModel;
use ruche_noc::prelude::*;
use ruche_verify::{grid, verify, verify_faulted, Severity};

/// The faulted sample: the degradation sweep's three topology families at
/// representative fault rates, plus a dead-router case.
fn faulted_sample() -> Vec<(NetworkConfig, FaultModel)> {
    let mut sample = Vec::new();
    let topos = [
        NetworkConfig::mesh(Dims::new(8, 8)),
        NetworkConfig::half_ruche(Dims::new(16, 8), 2, CrossbarScheme::Depopulated),
        NetworkConfig::full_ruche(Dims::new(8, 8), 2, CrossbarScheme::Depopulated),
    ];
    for cfg in topos {
        for (p, seed) in [(0.05, 1u64), (0.15, 2)] {
            let faults = FaultModel::random_links(&cfg, p, seed);
            sample.push((cfg.clone(), faults));
        }
        let dead = Coord::new(cfg.dims.cols / 2, cfg.dims.rows / 2);
        sample.push((cfg.clone(), FaultModel::default().kill_router(dead)));
    }
    sample
}

fn main() {
    let mut filter: Option<String> = None;
    let mut strict = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--strict" => strict = true,
            "--help" | "-h" => {
                println!("usage: verify_net [FILTER] [--strict]");
                return;
            }
            other => filter = Some(other.to_string()),
        }
    }

    let configs: Vec<_> = grid::paper_grid()
        .into_iter()
        .filter(|cfg| filter.as_deref().is_none_or(|f| cfg.label().contains(f)))
        .collect();

    let mut table = ruche_stats::Table::new(vec![
        "config", "dims", "dor", "edge-mem", "channels", "deps", "scc", "errors", "warnings",
    ]);
    let mut dirty = Vec::new();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for cfg in &configs {
        let report = verify(cfg);
        errors += report.count(Severity::Error);
        warnings += report.count(Severity::Warning);
        table.row(vec![
            report.label.clone(),
            report.dims.clone(),
            format!("{:?}", cfg.dor),
            match (cfg.edge_memory_ports, cfg.edge_bidirectional) {
                (_, true) => "both".into(),
                (true, _) => "yes".into(),
                (false, _) => "-".into(),
            },
            report.stats.channels.to_string(),
            report.stats.dependencies.to_string(),
            report.stats.largest_scc.to_string(),
            report.count(Severity::Error).to_string(),
            report.count(Severity::Warning).to_string(),
        ]);
        if !report.is_clean() {
            dirty.push(report);
        }
    }

    let faulted = faulted_sample();
    let mut n_faulted = 0usize;
    for (cfg, faults) in &faulted {
        if filter.as_deref().is_some_and(|f| !cfg.label().contains(f)) {
            continue;
        }
        n_faulted += 1;
        let report = verify_faulted(cfg, faults);
        errors += report.count(Severity::Error);
        warnings += report.count(Severity::Warning);
        table.row(vec![
            report.label.clone(),
            report.dims.clone(),
            format!("{:?}", cfg.dor),
            format!(
                "{}L/{}R",
                faults.dead_links().len(),
                faults.dead_routers().len()
            ),
            report.stats.channels.to_string(),
            report.stats.dependencies.to_string(),
            report.stats.largest_scc.to_string(),
            report.count(Severity::Error).to_string(),
            report.count(Severity::Warning).to_string(),
        ]);
        if !report.is_clean() {
            dirty.push(report);
        }
    }

    println!(
        "static verification of {} configuration(s) + {n_faulted} faulted sample(s)\n",
        configs.len()
    );
    println!("{}", table.render());
    for report in &dirty {
        println!("{report}");
    }
    if errors > 0 || (strict && warnings > 0) {
        println!("FAIL: {errors} error(s), {warnings} warning(s)");
        std::process::exit(1);
    }
    println!("OK: all configurations deadlock-free ({warnings} warning(s))");
}
